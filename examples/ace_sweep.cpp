// The "lightweight testing during development" workflow (§5.2, Lesson 3):
// run the exhaustive ACE seq-1 suite — and optionally seq-2 — against every
// registered file system and print a pass/fail summary. On the paper's
// setup seq-1 ran in under 15 minutes per system; here it takes well under
// a second per system.
//
// Usage: ace_sweep [seq]     (seq = 1 or 2; default 1)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/workload/ace.h"

int main(int argc, char** argv) {
  int seq = argc > 1 ? std::atoi(argv[1]) : 1;
  if (seq < 1 || seq > 2) {
    std::fprintf(stderr, "usage: %s [1|2]\n", argv[0]);
    return 2;
  }

  std::printf("ACE seq-%d sweep over all registered file systems\n\n", seq);
  std::printf("%-14s %10s %14s %9s %10s\n", "fs", "workloads", "crash states",
              "reports", "time");
  bool all_clean = true;
  for (const std::string& fs : chipmunk::RegisteredFsNames()) {
    auto config = chipmunk::MakeFsConfig(fs);
    chipmunk::Harness harness(*config);
    workload::AceOptions options;
    options.seq = seq;
    options.weak_mode = fs == "ext4dax" || fs == "xfsdax";
    uint64_t states = 0;
    uint64_t reports = 0;
    uint64_t workloads = 0;
    auto start = std::chrono::steady_clock::now();
    workload::ForEachAceWorkload(options, [&](const workload::Workload& w) {
      auto stats = harness.TestWorkload(w);
      if (stats.ok()) {
        ++workloads;
        states += stats->crash_states;
        if (!stats->clean()) {
          reports += stats->reports.size();
          std::printf("  !! %s: %s\n", w.name.c_str(),
                      stats->reports[0].ToString().c_str());
        }
      }
      return true;
    });
    auto end = std::chrono::steady_clock::now();
    double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
            .count();
    all_clean = all_clean && reports == 0;
    std::printf("%-14s %10llu %14llu %9llu %9.2fs\n", fs.c_str(),
                static_cast<unsigned long long>(workloads),
                static_cast<unsigned long long>(states),
                static_cast<unsigned long long>(reports), secs);
  }
  std::printf("\n%s\n", all_clean
                            ? "all file systems clean (as expected: no bugs "
                              "are injected here)"
                            : "reports found — see above");
  return all_clean ? 0 : 1;
}
