// The paper's Figure 2 walkthrough, step by step and by hand, using the
// lower-level pieces of the framework instead of the all-in-one harness:
//
//   1. run a rename() workload on the buggy file system, recording the
//      persistence-operation trace through the Pm hooks;
//   2. walk the trace and print the logical write sequence;
//   3. construct the specific crash state in which the in-place deletion of
//      the old name persisted but the journaled creation of the new name
//      did not;
//   4. mount the crash state and observe that BOTH names are gone — the
//      rename atomicity violation Chipmunk reported as NOVA bug 4.
#include <cstdio>

#include "src/core/fs_registry.h"
#include "src/core/runner.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"
#include "src/workload/triggers.h"

int main() {
  auto config =
      chipmunk::MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete);

  // ---- 1. Record. ----
  pmem::PmDevice dev(config->device_size);
  pmem::Pm pm(&dev);
  auto fs = config->make(&pm);
  (void)fs->Mkfs();
  (void)fs->Mount();
  std::vector<uint8_t> base_image = dev.Snapshot();

  workload::Workload w;
  w.name = "figure-2";
  w.ops = {trigger::MkOp(workload::OpKind::kCreat, "/old"),
           trigger::MkOp(workload::OpKind::kRename, "/old", "/new")};

  pmem::TraceLogger logger;
  pm.AddHook(&logger);
  vfs::Vfs vfs_layer(fs.get());
  chipmunk::WorkloadRunner runner(&w, &vfs_layer, &pm);
  runner.RunAll();
  pm.RemoveHook(&logger);

  // ---- 2. The write sequence of the rename syscall. ----
  std::printf("persistence operations of rename(/old, /new):\n");
  int fence = 0;
  for (const pmem::PmOp& op : logger.trace()) {
    if (op.syscall_index != 1) {
      continue;  // only the rename
    }
    switch (op.kind) {
      case pmem::PmOpKind::kNtStore:
        std::printf("  nt-store  off=%-8llu len=%zu\n",
                    static_cast<unsigned long long>(op.off), op.data.size());
        break;
      case pmem::PmOpKind::kNtSet:
        std::printf("  nt-set    off=%-8llu len=%zu\n",
                    static_cast<unsigned long long>(op.off), op.data.size());
        break;
      case pmem::PmOpKind::kFlush:
        std::printf("  flush     off=%-8llu len=%zu\n",
                    static_cast<unsigned long long>(op.off), op.data.size());
        break;
      case pmem::PmOpKind::kFence:
        std::printf("  fence  -------------------------- crash point %d\n",
                    ++fence);
        break;
      default:
        break;
    }
  }

  // ---- 3. Build the crash state: everything up to and including the
  // fence that persists the in-place deletion of /old, nothing after. ----
  std::vector<uint8_t> crash_image = base_image;
  int fences_seen = 0;
  for (const pmem::PmOp& op : logger.trace()) {
    if (op.kind == pmem::PmOpKind::kFence && op.syscall_index == 1) {
      ++fences_seen;
      if (fences_seen == 1) {
        break;  // crash right after the in-place delete persisted
      }
    }
    pmem::ApplyOp(crash_image, op);
  }

  // ---- 4. Mount the crash state and look for the file. ----
  pmem::PmDevice crash_dev(std::move(crash_image));
  pmem::Pm crash_pm(&crash_dev);
  auto recovered = config->make(&crash_pm);
  common::Status mount = recovered->Mount();
  std::printf("\nmount after crash: %s\n", mount.ToString().c_str());
  vfs::Vfs v(recovered.get());
  auto old_stat = v.Stat("/old");
  auto new_stat = v.Stat("/new");
  std::printf("stat(/old): %s\n", old_stat.ok()
                                      ? "present"
                                      : old_stat.status().ToString().c_str());
  std::printf("stat(/new): %s\n", new_stat.ok()
                                      ? "present"
                                      : new_stat.status().ToString().c_str());
  if (!old_stat.ok() && !new_stat.ok()) {
    std::printf(
        "\nrename atomicity broken: the file vanished — the crash state has\n"
        "neither the old nor the new name (NOVA bug 4, Figure 2).\n");
  }
  return 0;
}
