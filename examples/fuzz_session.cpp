// A short gray-box fuzzing session (the Syzkaller frontend, §3.4.2) against
// splitfs with its whole historical bug set injected. Shows the corpus
// growing with coverage, the discovery timeline, and the triage clusters the
// paper added to Syzkaller's dashboard.
#include <cstdio>

#include "src/core/fs_registry.h"
#include "src/fuzz/fuzz_engine.h"

int main(int argc, char** argv) {
  size_t iterations = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;

  vfs::BugSet bugs;
  for (const vfs::BugInfo& info : vfs::AllBugs()) {
    if (std::string(info.fs) == "splitfs") {
      bugs.Enable(info.id);
    }
  }
  auto config = chipmunk::MakeFsConfig("splitfs", bugs);

  fuzz::FuzzOptions options;
  options.seed = 2026;
  options.iterations = iterations;
  fuzz::FuzzEngine fuzzer(*config, options);
  std::printf("fuzzing splitfs (all 5 historical bugs injected), %zu "
              "workloads...\n\n",
              iterations);
  fuzz::FuzzResult result = fuzzer.Run();

  std::printf("executed:        %zu workloads\n", result.executed);
  std::printf("crash states:    %zu\n", result.crash_states);
  std::printf("corpus:          %zu workloads (%zu coverage points)\n",
              result.corpus_size, result.coverage_points);
  std::printf("unique reports:  %zu\n", result.unique_reports.size());

  std::printf("\ndiscovery timeline:\n");
  for (const fuzz::TimelineEntry& entry : result.timeline) {
    std::printf("  %8.3fs  %s\n", entry.cpu_seconds, entry.signature.c_str());
  }

  std::printf("\ntriage clusters (lexical similarity):\n");
  int i = 0;
  for (const fuzz::ReportCluster& cluster : result.clusters) {
    std::printf("--- cluster %d (%zu report(s)) ---\n%s\n", ++i,
                cluster.members.size(),
                cluster.representative.ToString().c_str());
  }
  return 0;
}
