// Quickstart: test a PM file system for crash-consistency bugs in ~30 lines.
//
//   1. Pick a file system configuration from the registry.
//   2. Describe a workload (or generate one with ACE / the fuzzer).
//   3. Hand both to the harness: it records the persistence-operation
//      trace, builds every interesting crash state, mounts each one, and
//      checks it against the oracle.
//
// This program first tests a correct build of novafs (no reports), then
// flips on the historical rename bug (Table 1, bug 4) and shows the report
// Chipmunk produces.
#include <cstdio>

#include "src/core/fs_registry.h"
#include "src/core/harness.h"
#include "src/workload/triggers.h"

int main() {
  // The workload from the paper's Figure 2: create a file, rename it.
  workload::Workload rename_workload;
  rename_workload.name = "quickstart-rename";
  rename_workload.ops = {trigger::MkOp(workload::OpKind::kCreat, "/foo"),
                         trigger::MkOp(workload::OpKind::kRename, "/foo",
                                       "/bar")};

  // 1) A correct novafs: every crash state must check out.
  {
    auto config = chipmunk::MakeFsConfig("novafs");
    chipmunk::Harness harness(*config);
    auto stats = harness.TestWorkload(rename_workload);
    if (!stats.ok()) {
      std::printf("harness error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("fixed novafs:  %llu crash states checked, %zu reports\n",
                static_cast<unsigned long long>(stats->crash_states),
                stats->reports.size());
  }

  // 2) The same file system with NOVA's historical rename bug injected:
  //    the old directory entry is deleted in place before the journaled
  //    transaction that creates the new name.
  {
    auto config = chipmunk::MakeBugConfig(vfs::BugId::kNova4RenameInPlaceDelete);
    chipmunk::Harness harness(*config);
    auto stats = harness.TestWorkload(rename_workload);
    if (!stats.ok()) {
      std::printf("harness error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("buggy novafs:  %llu crash states checked, %zu report(s)\n\n",
                static_cast<unsigned long long>(stats->crash_states),
                stats->reports.size());
    for (const chipmunk::BugReport& report : stats->reports) {
      std::printf("%s\n", report.ToString().c_str());
    }
  }
  return 0;
}
