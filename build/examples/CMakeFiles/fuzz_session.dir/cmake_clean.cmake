file(REMOVE_RECURSE
  "CMakeFiles/fuzz_session.dir/fuzz_session.cpp.o"
  "CMakeFiles/fuzz_session.dir/fuzz_session.cpp.o.d"
  "fuzz_session"
  "fuzz_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
