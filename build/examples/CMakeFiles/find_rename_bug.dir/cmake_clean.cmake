file(REMOVE_RECURSE
  "CMakeFiles/find_rename_bug.dir/find_rename_bug.cpp.o"
  "CMakeFiles/find_rename_bug.dir/find_rename_bug.cpp.o.d"
  "find_rename_bug"
  "find_rename_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_rename_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
