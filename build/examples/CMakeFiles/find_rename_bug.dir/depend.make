# Empty dependencies file for find_rename_bug.
# This may be replaced when dependencies are built.
