
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/find_rename_bug.cpp" "examples/CMakeFiles/find_rename_bug.dir/find_rename_bug.cpp.o" "gcc" "examples/CMakeFiles/find_rename_bug.dir/find_rename_bug.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chipmunk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/chipmunk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/novafs/CMakeFiles/chipmunk_novafs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/winefs/CMakeFiles/chipmunk_winefs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/pmfs/CMakeFiles/chipmunk_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/splitfs/CMakeFiles/chipmunk_splitfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/ext4dax/CMakeFiles/chipmunk_ext4dax.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/xfsdax/CMakeFiles/chipmunk_xfsdax.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/chipmunk_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/chipmunk_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chipmunk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
