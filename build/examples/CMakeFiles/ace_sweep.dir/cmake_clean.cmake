file(REMOVE_RECURSE
  "CMakeFiles/ace_sweep.dir/ace_sweep.cpp.o"
  "CMakeFiles/ace_sweep.dir/ace_sweep.cpp.o.d"
  "ace_sweep"
  "ace_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
