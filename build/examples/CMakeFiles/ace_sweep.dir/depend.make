# Empty dependencies file for ace_sweep.
# This may be replaced when dependencies are built.
