# Empty dependencies file for xfsdax_test.
# This may be replaced when dependencies are built.
