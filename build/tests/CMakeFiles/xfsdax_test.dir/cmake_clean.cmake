file(REMOVE_RECURSE
  "CMakeFiles/xfsdax_test.dir/xfsdax_test.cc.o"
  "CMakeFiles/xfsdax_test.dir/xfsdax_test.cc.o.d"
  "xfsdax_test"
  "xfsdax_test.pdb"
  "xfsdax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfsdax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
