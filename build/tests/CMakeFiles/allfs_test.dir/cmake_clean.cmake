file(REMOVE_RECURSE
  "CMakeFiles/allfs_test.dir/allfs_test.cc.o"
  "CMakeFiles/allfs_test.dir/allfs_test.cc.o.d"
  "allfs_test"
  "allfs_test.pdb"
  "allfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
