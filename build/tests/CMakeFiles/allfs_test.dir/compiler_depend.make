# Empty compiler generated dependencies file for allfs_test.
# This may be replaced when dependencies are built.
