file(REMOVE_RECURSE
  "CMakeFiles/reference_fs_test.dir/reference_fs_test.cc.o"
  "CMakeFiles/reference_fs_test.dir/reference_fs_test.cc.o.d"
  "reference_fs_test"
  "reference_fs_test.pdb"
  "reference_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
