# Empty dependencies file for reference_fs_test.
# This may be replaced when dependencies are built.
