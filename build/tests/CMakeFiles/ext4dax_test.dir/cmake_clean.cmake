file(REMOVE_RECURSE
  "CMakeFiles/ext4dax_test.dir/ext4dax_test.cc.o"
  "CMakeFiles/ext4dax_test.dir/ext4dax_test.cc.o.d"
  "ext4dax_test"
  "ext4dax_test.pdb"
  "ext4dax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext4dax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
