# Empty compiler generated dependencies file for ext4dax_test.
# This may be replaced when dependencies are built.
