# Empty compiler generated dependencies file for winefs_test.
# This may be replaced when dependencies are built.
