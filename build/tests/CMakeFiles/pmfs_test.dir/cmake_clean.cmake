file(REMOVE_RECURSE
  "CMakeFiles/pmfs_test.dir/pmfs_test.cc.o"
  "CMakeFiles/pmfs_test.dir/pmfs_test.cc.o.d"
  "pmfs_test"
  "pmfs_test.pdb"
  "pmfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
