# Empty compiler generated dependencies file for fsck_serialize_test.
# This may be replaced when dependencies are built.
