file(REMOVE_RECURSE
  "CMakeFiles/fsck_serialize_test.dir/fsck_serialize_test.cc.o"
  "CMakeFiles/fsck_serialize_test.dir/fsck_serialize_test.cc.o.d"
  "fsck_serialize_test"
  "fsck_serialize_test.pdb"
  "fsck_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsck_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
