# Empty dependencies file for ace_test.
# This may be replaced when dependencies are built.
