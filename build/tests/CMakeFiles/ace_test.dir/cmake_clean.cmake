file(REMOVE_RECURSE
  "CMakeFiles/ace_test.dir/ace_test.cc.o"
  "CMakeFiles/ace_test.dir/ace_test.cc.o.d"
  "ace_test"
  "ace_test.pdb"
  "ace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
