# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/reference_fs_test[1]_include.cmake")
include("/root/repo/build/tests/novafs_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/allfs_test[1]_include.cmake")
include("/root/repo/build/tests/ace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/pmfs_test[1]_include.cmake")
include("/root/repo/build/tests/winefs_test[1]_include.cmake")
include("/root/repo/build/tests/ext4dax_test[1]_include.cmake")
include("/root/repo/build/tests/splitfs_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/fsck_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/xfsdax_test[1]_include.cmake")
