file(REMOVE_RECURSE
  "CMakeFiles/bench_ace_counts.dir/bench_ace_counts.cc.o"
  "CMakeFiles/bench_ace_counts.dir/bench_ace_counts.cc.o.d"
  "bench_ace_counts"
  "bench_ace_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ace_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
