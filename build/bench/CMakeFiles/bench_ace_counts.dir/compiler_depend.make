# Empty compiler generated dependencies file for bench_ace_counts.
# This may be replaced when dependencies are built.
