# Empty dependencies file for bench_cap_sweep.
# This may be replaced when dependencies are built.
