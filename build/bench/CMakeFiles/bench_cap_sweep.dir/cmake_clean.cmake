file(REMOVE_RECURSE
  "CMakeFiles/bench_cap_sweep.dir/bench_cap_sweep.cc.o"
  "CMakeFiles/bench_cap_sweep.dir/bench_cap_sweep.cc.o.d"
  "bench_cap_sweep"
  "bench_cap_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
