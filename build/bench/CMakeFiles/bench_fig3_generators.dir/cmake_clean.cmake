file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_generators.dir/bench_fig3_generators.cc.o"
  "CMakeFiles/bench_fig3_generators.dir/bench_fig3_generators.cc.o.d"
  "bench_fig3_generators"
  "bench_fig3_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
