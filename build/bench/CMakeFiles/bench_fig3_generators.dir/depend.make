# Empty dependencies file for bench_fig3_generators.
# This may be replaced when dependencies are built.
