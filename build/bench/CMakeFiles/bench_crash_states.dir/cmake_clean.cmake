file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_states.dir/bench_crash_states.cc.o"
  "CMakeFiles/bench_crash_states.dir/bench_crash_states.cc.o.d"
  "bench_crash_states"
  "bench_crash_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
