# Empty dependencies file for bench_crash_states.
# This may be replaced when dependencies are built.
