file(REMOVE_RECURSE
  "CMakeFiles/bench_inflight_stats.dir/bench_inflight_stats.cc.o"
  "CMakeFiles/bench_inflight_stats.dir/bench_inflight_stats.cc.o.d"
  "bench_inflight_stats"
  "bench_inflight_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inflight_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
