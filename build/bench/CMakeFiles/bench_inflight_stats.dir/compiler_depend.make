# Empty compiler generated dependencies file for bench_inflight_stats.
# This may be replaced when dependencies are built.
