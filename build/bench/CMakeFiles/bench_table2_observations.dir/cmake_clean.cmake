file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_observations.dir/bench_table2_observations.cc.o"
  "CMakeFiles/bench_table2_observations.dir/bench_table2_observations.cc.o.d"
  "bench_table2_observations"
  "bench_table2_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
