file(REMOVE_RECURSE
  "CMakeFiles/bench_fix_overhead.dir/bench_fix_overhead.cc.o"
  "CMakeFiles/bench_fix_overhead.dir/bench_fix_overhead.cc.o.d"
  "bench_fix_overhead"
  "bench_fix_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fix_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
