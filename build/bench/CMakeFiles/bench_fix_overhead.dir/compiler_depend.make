# Empty compiler generated dependencies file for bench_fix_overhead.
# This may be replaced when dependencies are built.
