file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_vfs.dir/bug.cc.o"
  "CMakeFiles/chipmunk_vfs.dir/bug.cc.o.d"
  "CMakeFiles/chipmunk_vfs.dir/vfs.cc.o"
  "CMakeFiles/chipmunk_vfs.dir/vfs.cc.o.d"
  "libchipmunk_vfs.a"
  "libchipmunk_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
