# Empty compiler generated dependencies file for chipmunk_vfs.
# This may be replaced when dependencies are built.
