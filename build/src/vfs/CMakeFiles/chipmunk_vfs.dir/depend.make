# Empty dependencies file for chipmunk_vfs.
# This may be replaced when dependencies are built.
