file(REMOVE_RECURSE
  "libchipmunk_vfs.a"
)
