file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_pmem.dir/pm.cc.o"
  "CMakeFiles/chipmunk_pmem.dir/pm.cc.o.d"
  "libchipmunk_pmem.a"
  "libchipmunk_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
