file(REMOVE_RECURSE
  "libchipmunk_pmem.a"
)
