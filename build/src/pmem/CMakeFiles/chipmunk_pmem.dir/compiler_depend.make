# Empty compiler generated dependencies file for chipmunk_pmem.
# This may be replaced when dependencies are built.
