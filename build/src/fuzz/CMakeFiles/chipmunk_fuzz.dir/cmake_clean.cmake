file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_fuzz.dir/fuzzer.cc.o"
  "CMakeFiles/chipmunk_fuzz.dir/fuzzer.cc.o.d"
  "CMakeFiles/chipmunk_fuzz.dir/triage.cc.o"
  "CMakeFiles/chipmunk_fuzz.dir/triage.cc.o.d"
  "libchipmunk_fuzz.a"
  "libchipmunk_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
