file(REMOVE_RECURSE
  "libchipmunk_fuzz.a"
)
