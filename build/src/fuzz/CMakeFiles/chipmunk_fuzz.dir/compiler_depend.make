# Empty compiler generated dependencies file for chipmunk_fuzz.
# This may be replaced when dependencies are built.
