file(REMOVE_RECURSE
  "libchipmunk_workload.a"
)
