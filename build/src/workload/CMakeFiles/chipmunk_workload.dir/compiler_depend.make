# Empty compiler generated dependencies file for chipmunk_workload.
# This may be replaced when dependencies are built.
