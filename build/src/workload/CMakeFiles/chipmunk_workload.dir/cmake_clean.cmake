file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_workload.dir/ace.cc.o"
  "CMakeFiles/chipmunk_workload.dir/ace.cc.o.d"
  "CMakeFiles/chipmunk_workload.dir/serialize.cc.o"
  "CMakeFiles/chipmunk_workload.dir/serialize.cc.o.d"
  "CMakeFiles/chipmunk_workload.dir/workload.cc.o"
  "CMakeFiles/chipmunk_workload.dir/workload.cc.o.d"
  "libchipmunk_workload.a"
  "libchipmunk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
