file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_xfsdax.dir/xfsdax.cc.o"
  "CMakeFiles/chipmunk_xfsdax.dir/xfsdax.cc.o.d"
  "libchipmunk_xfsdax.a"
  "libchipmunk_xfsdax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_xfsdax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
