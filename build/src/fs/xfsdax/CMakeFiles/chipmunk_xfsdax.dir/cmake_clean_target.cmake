file(REMOVE_RECURSE
  "libchipmunk_xfsdax.a"
)
