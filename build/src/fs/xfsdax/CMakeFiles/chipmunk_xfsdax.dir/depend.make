# Empty dependencies file for chipmunk_xfsdax.
# This may be replaced when dependencies are built.
