# Empty compiler generated dependencies file for chipmunk_novafs.
# This may be replaced when dependencies are built.
