file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_novafs.dir/nova_base.cc.o"
  "CMakeFiles/chipmunk_novafs.dir/nova_base.cc.o.d"
  "CMakeFiles/chipmunk_novafs.dir/nova_ops.cc.o"
  "CMakeFiles/chipmunk_novafs.dir/nova_ops.cc.o.d"
  "libchipmunk_novafs.a"
  "libchipmunk_novafs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_novafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
