file(REMOVE_RECURSE
  "libchipmunk_novafs.a"
)
