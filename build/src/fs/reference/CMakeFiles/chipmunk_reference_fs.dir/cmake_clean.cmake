file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_reference_fs.dir/reference_fs.cc.o"
  "CMakeFiles/chipmunk_reference_fs.dir/reference_fs.cc.o.d"
  "libchipmunk_reference_fs.a"
  "libchipmunk_reference_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_reference_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
