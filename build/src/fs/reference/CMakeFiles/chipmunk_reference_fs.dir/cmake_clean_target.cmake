file(REMOVE_RECURSE
  "libchipmunk_reference_fs.a"
)
