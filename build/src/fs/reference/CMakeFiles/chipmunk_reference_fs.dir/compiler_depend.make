# Empty compiler generated dependencies file for chipmunk_reference_fs.
# This may be replaced when dependencies are built.
