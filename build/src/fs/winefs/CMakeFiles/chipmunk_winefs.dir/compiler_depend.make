# Empty compiler generated dependencies file for chipmunk_winefs.
# This may be replaced when dependencies are built.
