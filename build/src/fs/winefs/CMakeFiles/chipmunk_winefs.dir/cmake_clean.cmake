file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_winefs.dir/winefs.cc.o"
  "CMakeFiles/chipmunk_winefs.dir/winefs.cc.o.d"
  "libchipmunk_winefs.a"
  "libchipmunk_winefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_winefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
