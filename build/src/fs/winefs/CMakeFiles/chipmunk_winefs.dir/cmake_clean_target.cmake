file(REMOVE_RECURSE
  "libchipmunk_winefs.a"
)
