file(REMOVE_RECURSE
  "libchipmunk_splitfs.a"
)
