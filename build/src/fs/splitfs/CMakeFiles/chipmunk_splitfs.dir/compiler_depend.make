# Empty compiler generated dependencies file for chipmunk_splitfs.
# This may be replaced when dependencies are built.
