file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_splitfs.dir/splitfs.cc.o"
  "CMakeFiles/chipmunk_splitfs.dir/splitfs.cc.o.d"
  "libchipmunk_splitfs.a"
  "libchipmunk_splitfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_splitfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
