# Empty compiler generated dependencies file for chipmunk_pmfs.
# This may be replaced when dependencies are built.
