file(REMOVE_RECURSE
  "libchipmunk_pmfs.a"
)
