
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/pmfs/pmfs.cc" "src/fs/pmfs/CMakeFiles/chipmunk_pmfs.dir/pmfs.cc.o" "gcc" "src/fs/pmfs/CMakeFiles/chipmunk_pmfs.dir/pmfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vfs/CMakeFiles/chipmunk_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/chipmunk_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chipmunk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
