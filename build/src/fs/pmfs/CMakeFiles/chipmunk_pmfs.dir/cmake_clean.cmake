file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_pmfs.dir/pmfs.cc.o"
  "CMakeFiles/chipmunk_pmfs.dir/pmfs.cc.o.d"
  "libchipmunk_pmfs.a"
  "libchipmunk_pmfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_pmfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
