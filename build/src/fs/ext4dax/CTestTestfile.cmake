# CMake generated Testfile for 
# Source directory: /root/repo/src/fs/ext4dax
# Build directory: /root/repo/build/src/fs/ext4dax
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
