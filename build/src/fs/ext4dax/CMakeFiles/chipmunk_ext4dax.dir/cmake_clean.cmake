file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_ext4dax.dir/ext4dax.cc.o"
  "CMakeFiles/chipmunk_ext4dax.dir/ext4dax.cc.o.d"
  "libchipmunk_ext4dax.a"
  "libchipmunk_ext4dax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_ext4dax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
