# Empty compiler generated dependencies file for chipmunk_ext4dax.
# This may be replaced when dependencies are built.
