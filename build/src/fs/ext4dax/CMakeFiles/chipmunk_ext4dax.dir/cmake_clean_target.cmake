file(REMOVE_RECURSE
  "libchipmunk_ext4dax.a"
)
