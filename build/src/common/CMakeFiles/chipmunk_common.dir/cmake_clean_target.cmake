file(REMOVE_RECURSE
  "libchipmunk_common.a"
)
