# Empty compiler generated dependencies file for chipmunk_common.
# This may be replaced when dependencies are built.
