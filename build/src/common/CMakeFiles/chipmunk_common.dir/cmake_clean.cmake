file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_common.dir/crc32.cc.o"
  "CMakeFiles/chipmunk_common.dir/crc32.cc.o.d"
  "CMakeFiles/chipmunk_common.dir/status.cc.o"
  "CMakeFiles/chipmunk_common.dir/status.cc.o.d"
  "libchipmunk_common.a"
  "libchipmunk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
