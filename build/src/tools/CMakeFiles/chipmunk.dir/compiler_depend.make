# Empty compiler generated dependencies file for chipmunk.
# This may be replaced when dependencies are built.
