file(REMOVE_RECURSE
  "CMakeFiles/chipmunk.dir/chipmunk_cli.cc.o"
  "CMakeFiles/chipmunk.dir/chipmunk_cli.cc.o.d"
  "chipmunk"
  "chipmunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
