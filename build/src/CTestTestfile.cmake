# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("pmem")
subdirs("vfs")
subdirs("fs/reference")
subdirs("fs/novafs")
subdirs("fs/pmfs")
subdirs("fs/winefs")
subdirs("fs/ext4dax")
subdirs("fs/splitfs")
subdirs("fs/xfsdax")
subdirs("core")
subdirs("workload")
subdirs("fuzz")
subdirs("tools")
