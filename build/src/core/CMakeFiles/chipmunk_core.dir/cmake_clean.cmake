file(REMOVE_RECURSE
  "CMakeFiles/chipmunk_core.dir/checker.cc.o"
  "CMakeFiles/chipmunk_core.dir/checker.cc.o.d"
  "CMakeFiles/chipmunk_core.dir/fs_registry.cc.o"
  "CMakeFiles/chipmunk_core.dir/fs_registry.cc.o.d"
  "CMakeFiles/chipmunk_core.dir/fsck.cc.o"
  "CMakeFiles/chipmunk_core.dir/fsck.cc.o.d"
  "CMakeFiles/chipmunk_core.dir/harness.cc.o"
  "CMakeFiles/chipmunk_core.dir/harness.cc.o.d"
  "CMakeFiles/chipmunk_core.dir/oracle.cc.o"
  "CMakeFiles/chipmunk_core.dir/oracle.cc.o.d"
  "CMakeFiles/chipmunk_core.dir/report.cc.o"
  "CMakeFiles/chipmunk_core.dir/report.cc.o.d"
  "CMakeFiles/chipmunk_core.dir/runner.cc.o"
  "CMakeFiles/chipmunk_core.dir/runner.cc.o.d"
  "libchipmunk_core.a"
  "libchipmunk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipmunk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
