file(REMOVE_RECURSE
  "libchipmunk_core.a"
)
