
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checker.cc" "src/core/CMakeFiles/chipmunk_core.dir/checker.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/checker.cc.o.d"
  "/root/repo/src/core/fs_registry.cc" "src/core/CMakeFiles/chipmunk_core.dir/fs_registry.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/fs_registry.cc.o.d"
  "/root/repo/src/core/fsck.cc" "src/core/CMakeFiles/chipmunk_core.dir/fsck.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/fsck.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/chipmunk_core.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/harness.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/chipmunk_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/chipmunk_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/report.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/chipmunk_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/chipmunk_core.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/chipmunk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/chipmunk_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/chipmunk_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/novafs/CMakeFiles/chipmunk_novafs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/pmfs/CMakeFiles/chipmunk_pmfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/winefs/CMakeFiles/chipmunk_winefs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/ext4dax/CMakeFiles/chipmunk_ext4dax.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/splitfs/CMakeFiles/chipmunk_splitfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/xfsdax/CMakeFiles/chipmunk_xfsdax.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/chipmunk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
