# Empty compiler generated dependencies file for chipmunk_core.
# This may be replaced when dependencies are built.
