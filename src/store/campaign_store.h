// Persistent campaign store: the durability layer that turns a fuzzing run
// into a resumable, shardable campaign.
//
// On-disk layout (one directory per campaign / shard):
//
//   meta.txt        campaign identity, text `key: value` lines. Everything a
//                   resume must agree on (fs, bug set, seed, generator and
//                   scheduler parameters, shard range, fault plan) lives
//                   here; `iterations` is recorded but excluded from the
//                   compatibility check so a resume may extend a campaign.
//   log.bin         append-only record log. 8-byte magic, then CRC32-framed
//                   records: [u32 crc][u32 type][u64 len][payload], crc over
//                   type|len|payload. One kCommit record per committed
//                   workload ordinal, appended and flushed at the fuzz
//                   engine's ordinal-order commit barrier. A torn or
//                   corrupted tail (SIGKILL mid-append, flipped byte) is
//                   detected by the framing and the log is truncated back to
//                   the last valid record — never silently ingested.
//   checkpoint.bin  periodic compacted snapshot of the full campaign state
//                   (counters, corpus, unique reports, timeline, admission
//                   history, corpus-snapshot history), CRC-framed, written
//                   atomically (tmp + rename). After a checkpoint the log is
//                   truncated; a crash between the two leaves overlapping
//                   records, which replay skips by ordinal.
//   index.bin       the crash-state equivalence index: (state hash, version)
//                   pairs, where version is the commit count at which the
//                   state was proven clean. Written with each checkpoint.
//
// Recovery invariant: (checkpoint ∪ valid log prefix) always reconstructs a
// state the uninterrupted run passed through, and the fuzz engine's
// deterministic schedule regenerates everything after it bit-identically.
#ifndef CHIPMUNK_STORE_CAMPAIGN_STORE_H_
#define CHIPMUNK_STORE_CAMPAIGN_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/harness_options.h"
#include "src/core/report.h"

namespace store {

struct CampaignMeta {
  uint64_t format_version = 1;
  std::string fs;
  std::string bugs;
  uint64_t device_size = 0;
  uint64_t seed = 0;
  uint64_t max_ops = 0;
  uint64_t iterations = 0;  // informational; excluded from CompatibleWith
  uint64_t corpus_max = 0;
  uint64_t lookahead = 0;
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  // Explicit ordinal lease range [range_begin, range_begin + range_count)
  // over the campaign's deterministic enumeration. range_count == 0 means
  // "not a lease store" (the whole campaign, or classic shard math applies).
  // Written by coordinator-issued lease runs; part of the identity because a
  // lease store only holds commits for its own disjoint range.
  uint64_t range_begin = 0;
  uint64_t range_count = 0;
  bool lint = true;
  bool inject_faults = false;
  uint64_t fault_seed = 0;
  // Representative-state pruning was active. Part of the identity: a pruned
  // campaign mounts fewer states and inserts fewer clean hashes into the
  // equivalence index, so it cannot resume (or share an index with) an
  // exhaustive one.
  bool representative = false;
  // Violation-targeted replay was active. Part of the identity: targeting
  // reorders each fence window's visitation, so under budget /
  // stop-at-first-report cutoffs a targeted campaign mounts a different
  // state set (and records different clean hashes) than an untargeted one.
  bool targeted = false;
  // Path of the mined-invariant set driving targeted replay and invariant
  // checking (empty = none). Part of the identity: a different set steers
  // targeting and lint findings differently.
  std::string invariants;
  // Concurrent-workload schedule identity. threads > 1 means every workload
  // was concurrentized onto that many threads with interleavings drawn from
  // schedule_seed; both shape the per-ordinal workload stream, so they are
  // part of the identity (defaults match stores written before the
  // concurrency subsystem existed: single-threaded, seed 0).
  uint64_t threads = 1;
  uint64_t schedule_seed = 0;
  // Which workload generator drives the campaign. "fuzz" (the coverage-guided
  // mutator, the historical default for stores written before this field
  // existed), "ace" (the bounded-exhaustive ACE sweep), or "mixed" (a
  // cross-generator merge). Part of the identity: an ace store and a fuzz
  // store walk different workload streams, so one can never resume or
  // warm-start the other — but `campaign merge` folds them when the target
  // (fs/bugs/device) matches.
  std::string generator = "fuzz";
  // ACE sweep shape (generator == "ace" only; zero/false otherwise). Part of
  // the identity: they define the canonical ordinal <-> workload mapping.
  uint64_t ace_seq = 0;
  bool ace_metadata = false;
  bool ace_weak = false;
  bool merged = false;  // produced by `campaign merge`; not resumable

  // True when `other` denotes the same deterministic campaign: everything
  // except `iterations` must match. On mismatch, *why names the first
  // differing field.
  bool CompatibleWith(const CampaignMeta& other, std::string* why) const;
};

std::string SerializeMeta(const CampaignMeta& meta);
common::StatusOr<CampaignMeta> ParseMeta(const std::string& text);

// One committed workload ordinal: everything the fuzz engine's commit stage
// needs to re-apply the commit without re-executing the workload.
struct CommitRecord {
  uint64_t ordinal = 0;  // global workload ordinal (shard offset included)
  std::string workload_name;
  std::string workload_text;  // workload::Serialize form
  bool ran = false;           // the harness produced a result object
  bool ok = false;            // the replay survived (possibly after retry)
  bool retried = false;       // first attempt died, retried at jobs=1
  bool admitted = false;      // joined the corpus (decided at live commit)
  std::string error;          // final failure (ok == false)
  std::string first_error;    // first attempt's failure (retried == true)
  uint64_t crash_states = 0;
  uint64_t states_deduped = 0;
  uint64_t states_pruned = 0;  // representative-mode class members skipped
  uint64_t states_quarantined = 0;
  uint64_t lint_findings = 0;
  std::vector<std::string> lint_rules;  // one id per finding
  uint64_t hb_findings = 0;  // happens-before + invariant findings
  std::vector<std::string> hb_rules;  // one id per hb finding
  std::vector<chipmunk::BugReport> reports;  // non-lint reports
  std::vector<uint32_t> cov_slots;   // coverage slots hit by this workload
  std::vector<uint64_t> clean_hashes;  // equivalence-index insertions
  double wall_seconds = 0;  // cumulative campaign wall clock at commit
  double cpu_seconds = 0;   // cumulative campaign CPU clock at commit
};

struct CorpusSnapshotEntry {
  std::string name;
  std::string text;  // workload::Serialize form
  uint64_t lint_findings = 0;
  uint64_t hb_findings = 0;
};

struct TimelinePoint {
  uint64_t ordinal = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  std::string signature;
};

// The checkpointable campaign state: a faithful snapshot of the fuzz
// engine's commit-side state after `committed` commits.
struct CampaignState {
  uint64_t committed = 0;  // local ordinals [0, committed) applied
  uint64_t executed = 0;
  uint64_t crash_states = 0;
  uint64_t states_deduped = 0;
  uint64_t states_pruned = 0;
  uint64_t replay_failures = 0;
  uint64_t replay_retries = 0;
  uint64_t workloads_quarantined = 0;
  uint64_t states_quarantined = 0;
  uint64_t lint_findings = 0;
  uint64_t hb_findings = 0;
  // Raw Rng draws consumed by corpus eviction so far; replays fast-forward
  // the eviction stream by exactly this many Next() calls.
  uint64_t eviction_draws = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  std::map<std::string, uint64_t> lint_rule_counts;
  std::map<std::string, uint64_t> hb_rule_counts;
  std::vector<CorpusSnapshotEntry> corpus;
  std::vector<uint32_t> corpus_cov_slots;
  std::vector<chipmunk::BugReport> unique_reports;  // signature-sorted
  // Total occurrences per report signature (every hit, not just the first):
  // the first occurrence is kept in unique_reports, later ones only bump the
  // counter, so stats can say "seen N times" without storing N reports.
  std::map<std::string, uint64_t> report_hits;
  std::vector<TimelinePoint> timeline;
  // Per-local-ordinal corpus-admission decisions (1 admitted / 0 not).
  std::vector<uint8_t> admitted;
  // Admission decisions inherited from a prior completed run of the same
  // campaign (warm rerun): forced verbatim so that dedup-skipped states —
  // which contribute no recovery coverage — cannot change corpus evolution.
  std::vector<uint8_t> warm_admitted;
  // Corpus snapshots after recent commits (commit count -> corpus), kept for
  // the last lookahead-1 commits: a resume generates its first workloads
  // against pins older than the checkpoint and reads them from here.
  std::vector<std::pair<uint64_t, std::vector<CorpusSnapshotEntry>>>
      corpus_history;
};

// Thread-safe crash-state equivalence index: canonical state hash -> the
// earliest commit count (1-based) at which the state was proven clean.
// Version 0 marks entries inherited from a prior run (visible to every
// snapshot). The driver thread inserts at the commit barrier while replay
// workers query concurrently through snapshots.
class StateIndex {
 public:
  // Keeps the minimum version when the hash is already present.
  void Insert(uint64_t hash, uint64_t version);
  bool ContainsAt(uint64_t hash, uint64_t version_cap) const;
  size_t size() const;
  // Sorted by hash — the deterministic serialization order.
  std::vector<std::pair<uint64_t, uint64_t>> Entries() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, uint64_t> map_;
};

// A version-capped read view: Contains(h) is true iff h was proven clean by
// commit `cap` or earlier. Capping at the workload's corpus pin makes the
// answer a function of the ordinal alone — identical for interrupted,
// resumed, and uninterrupted runs at every jobs value.
class StateIndexSnapshot : public chipmunk::StateDedupIndex {
 public:
  StateIndexSnapshot(const StateIndex* index, uint64_t cap)
      : index_(index), cap_(cap) {}
  bool Contains(uint64_t hash) const override {
    return index_->ContainsAt(hash, cap_);
  }

 private:
  const StateIndex* index_;
  uint64_t cap_;
};

// Everything read back from a store directory.
struct LoadedCampaign {
  CampaignMeta meta;
  CampaignState checkpoint;
  // Valid log records, in append order. May overlap the checkpoint (a crash
  // between checkpoint rename and log truncation); callers skip records
  // whose local ordinal is below checkpoint.committed.
  std::vector<CommitRecord> log;
  std::vector<std::pair<uint64_t, uint64_t>> index;  // (hash, version)
  bool log_truncated = false;  // a torn/corrupt tail was cut back
  // Another process holds the writer lock on log.bin: this load observed a
  // live, concurrently appending campaign. The snapshot is still a valid
  // prefix of the run (torn mid-append tails are skipped in memory), it is
  // just not final.
  bool live = false;
};

class CampaignStore {
 public:
  // Creates `dir` (if needed) and starts a fresh campaign in it, replacing
  // any previous campaign files.
  static common::StatusOr<std::unique_ptr<CampaignStore>> Create(
      const std::string& dir, const CampaignMeta& meta);

  // Opens an existing campaign for appending (resume). Fills *loaded with
  // the recovered state; the log file position is the end of the valid
  // prefix (a corrupt tail has already been truncated away on disk).
  static common::StatusOr<std::unique_ptr<CampaignStore>> OpenForResume(
      const std::string& dir, LoadedCampaign* loaded);

  // Read-only load (stats, merge, warm-start). Does not modify the
  // directory: a corrupt log tail is skipped in memory, not truncated.
  static common::StatusOr<LoadedCampaign> Load(const std::string& dir);

  // Appends one commit record and flushes it to the OS. Called at the
  // ordinal-order commit barrier; after it returns, a SIGKILL loses at most
  // the not-yet-committed lookahead window.
  common::Status AppendCommit(const CommitRecord& rec);

  // Atomically replaces checkpoint.bin + index.bin, then truncates the log:
  // compaction. The index is passed explicitly (sorted (hash, version)
  // pairs) so the caller controls the serialized view.
  common::Status WriteCheckpoint(
      const CampaignState& state,
      const std::vector<std::pair<uint64_t, uint64_t>>& index);

  const CampaignMeta& meta() const { return meta_; }
  const std::string& dir() const { return dir_; }

  ~CampaignStore();

 private:
  CampaignStore(std::string dir, CampaignMeta meta, int log_fd)
      : dir_(std::move(dir)), meta_(std::move(meta)), log_fd_(log_fd) {}

  std::string dir_;
  CampaignMeta meta_;
  int log_fd_ = -1;  // append handle for log.bin
};

// Serialization internals, exposed for corruption tests: one framed record
// as appended to log.bin, and the record parsed back.
std::string EncodeRecordFrame(uint32_t type, const std::string& payload);
std::string EncodeCommitPayload(const CommitRecord& rec);
common::StatusOr<CommitRecord> DecodeCommitPayload(const std::string& payload);

}  // namespace store

#endif  // CHIPMUNK_STORE_CAMPAIGN_STORE_H_
