#include "src/store/campaign_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "src/common/crc32.h"
#include "src/common/parse.h"

namespace store {

namespace fs = std::filesystem;

namespace {

// File magics double as coarse format versions: bump the trailing digit on
// any incompatible layout change. '2': states_pruned added to commit records
// and checkpoints (representative-state pruning). '3': hb_findings/hb_rules
// added to commit records, checkpoints, and corpus entries (happens-before
// analyzer). Checkpoint '4': per-signature report_hits added (generator
// identity lives in meta.txt, which is forward compatible on its own).
constexpr char kLogMagic[8] = {'C', 'H', 'M', 'K', 'L', 'O', 'G', '3'};
constexpr char kCkptMagic[8] = {'C', 'H', 'M', 'K', 'C', 'K', 'P', '4'};
constexpr char kIdxMagic[8] = {'C', 'H', 'M', 'K', 'I', 'D', 'X', '1'};

constexpr uint32_t kRecordCommit = 1;

// --- little-endian buffer codec ----------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  uint8_t U8() {
    if (!Need(1)) {
      return 0;
    }
    return static_cast<uint8_t>(buf_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) {
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[pos_++])) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[pos_++])) << (8 * i);
    }
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint64_t n = U64();
    if (!Need(n)) {
      return {};
    }
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  // Element-count guard for vectors: each element needs at least
  // `min_elem_bytes`, so a corrupt length cannot trigger a huge allocation.
  uint64_t Count(uint64_t min_elem_bytes) {
    const uint64_t n = U64();
    if (min_elem_bytes != 0 && n > (buf_.size() - pos_) / min_elem_bytes + 1) {
      ok_ = false;
      return 0;
    }
    return ok_ ? n : 0;
  }
  bool ok() const { return ok_ && pos_ <= buf_.size(); }
  bool done() const { return ok_ && pos_ == buf_.size(); }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- struct codecs ------------------------------------------------------

void PutReport(ByteWriter& w, const chipmunk::BugReport& r) {
  w.Str(r.fs);
  w.Str(r.workload_name);
  w.U32(static_cast<uint32_t>(r.kind));
  w.Str(r.detail);
  w.U64(static_cast<uint64_t>(static_cast<int64_t>(r.syscall_index)));
  w.Str(r.syscall);
  w.U8(r.mid_syscall ? 1 : 0);
  w.U64(r.crash_point);
  w.U64(r.subset.size());
  for (size_t u : r.subset) {
    w.U64(u);
  }
  w.Str(r.lint_rule);
}

chipmunk::BugReport GetReport(ByteReader& r) {
  chipmunk::BugReport b;
  b.fs = r.Str();
  b.workload_name = r.Str();
  b.kind = static_cast<chipmunk::CheckKind>(r.U32());
  b.detail = r.Str();
  b.syscall_index = static_cast<int>(static_cast<int64_t>(r.U64()));
  b.syscall = r.Str();
  b.mid_syscall = r.U8() != 0;
  b.crash_point = r.U64();
  const uint64_t n = r.Count(8);
  for (uint64_t i = 0; i < n; ++i) {
    b.subset.push_back(r.U64());
  }
  b.lint_rule = r.Str();
  return b;
}

void PutCorpusEntry(ByteWriter& w, const CorpusSnapshotEntry& e) {
  w.Str(e.name);
  w.Str(e.text);
  w.U64(e.lint_findings);
  w.U64(e.hb_findings);
}

CorpusSnapshotEntry GetCorpusEntry(ByteReader& r) {
  CorpusSnapshotEntry e;
  e.name = r.Str();
  e.text = r.Str();
  e.lint_findings = r.U64();
  e.hb_findings = r.U64();
  return e;
}

std::string EncodeState(const CampaignState& s) {
  ByteWriter w;
  w.U64(s.committed);
  w.U64(s.executed);
  w.U64(s.crash_states);
  w.U64(s.states_deduped);
  w.U64(s.states_pruned);
  w.U64(s.replay_failures);
  w.U64(s.replay_retries);
  w.U64(s.workloads_quarantined);
  w.U64(s.states_quarantined);
  w.U64(s.lint_findings);
  w.U64(s.hb_findings);
  w.U64(s.eviction_draws);
  w.F64(s.wall_seconds);
  w.F64(s.cpu_seconds);
  w.U64(s.lint_rule_counts.size());
  for (const auto& [rule, count] : s.lint_rule_counts) {
    w.Str(rule);
    w.U64(count);
  }
  w.U64(s.hb_rule_counts.size());
  for (const auto& [rule, count] : s.hb_rule_counts) {
    w.Str(rule);
    w.U64(count);
  }
  w.U64(s.corpus.size());
  for (const CorpusSnapshotEntry& e : s.corpus) {
    PutCorpusEntry(w, e);
  }
  w.U64(s.corpus_cov_slots.size());
  for (uint32_t slot : s.corpus_cov_slots) {
    w.U32(slot);
  }
  w.U64(s.unique_reports.size());
  for (const chipmunk::BugReport& r : s.unique_reports) {
    PutReport(w, r);
  }
  w.U64(s.report_hits.size());
  for (const auto& [sig, hits] : s.report_hits) {
    w.Str(sig);
    w.U64(hits);
  }
  w.U64(s.timeline.size());
  for (const TimelinePoint& t : s.timeline) {
    w.U64(t.ordinal);
    w.F64(t.wall_seconds);
    w.F64(t.cpu_seconds);
    w.Str(t.signature);
  }
  w.U64(s.admitted.size());
  for (uint8_t a : s.admitted) {
    w.U8(a);
  }
  w.U64(s.warm_admitted.size());
  for (uint8_t a : s.warm_admitted) {
    w.U8(a);
  }
  w.U64(s.corpus_history.size());
  for (const auto& [commits, corpus] : s.corpus_history) {
    w.U64(commits);
    w.U64(corpus.size());
    for (const CorpusSnapshotEntry& e : corpus) {
      PutCorpusEntry(w, e);
    }
  }
  return w.Take();
}

common::StatusOr<CampaignState> DecodeState(const std::string& payload) {
  ByteReader r(payload);
  CampaignState s;
  s.committed = r.U64();
  s.executed = r.U64();
  s.crash_states = r.U64();
  s.states_deduped = r.U64();
  s.states_pruned = r.U64();
  s.replay_failures = r.U64();
  s.replay_retries = r.U64();
  s.workloads_quarantined = r.U64();
  s.states_quarantined = r.U64();
  s.lint_findings = r.U64();
  s.hb_findings = r.U64();
  s.eviction_draws = r.U64();
  s.wall_seconds = r.F64();
  s.cpu_seconds = r.F64();
  uint64_t n = r.Count(9);
  for (uint64_t i = 0; i < n; ++i) {
    std::string rule = r.Str();
    s.lint_rule_counts[std::move(rule)] = r.U64();
  }
  n = r.Count(9);
  for (uint64_t i = 0; i < n; ++i) {
    std::string rule = r.Str();
    s.hb_rule_counts[std::move(rule)] = r.U64();
  }
  n = r.Count(24);
  for (uint64_t i = 0; i < n; ++i) {
    s.corpus.push_back(GetCorpusEntry(r));
  }
  n = r.Count(4);
  for (uint64_t i = 0; i < n; ++i) {
    s.corpus_cov_slots.push_back(r.U32());
  }
  n = r.Count(8);
  for (uint64_t i = 0; i < n; ++i) {
    s.unique_reports.push_back(GetReport(r));
  }
  n = r.Count(9);
  for (uint64_t i = 0; i < n; ++i) {
    std::string sig = r.Str();
    s.report_hits[std::move(sig)] = r.U64();
  }
  n = r.Count(32);
  for (uint64_t i = 0; i < n; ++i) {
    TimelinePoint t;
    t.ordinal = r.U64();
    t.wall_seconds = r.F64();
    t.cpu_seconds = r.F64();
    t.signature = r.Str();
    s.timeline.push_back(std::move(t));
  }
  n = r.Count(1);
  for (uint64_t i = 0; i < n; ++i) {
    s.admitted.push_back(r.U8());
  }
  n = r.Count(1);
  for (uint64_t i = 0; i < n; ++i) {
    s.warm_admitted.push_back(r.U8());
  }
  n = r.Count(16);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t commits = r.U64();
    const uint64_t entries = r.Count(24);
    std::vector<CorpusSnapshotEntry> corpus;
    for (uint64_t j = 0; j < entries; ++j) {
      corpus.push_back(GetCorpusEntry(r));
    }
    s.corpus_history.emplace_back(commits, std::move(corpus));
  }
  if (!r.done()) {
    return common::Corruption("campaign checkpoint payload malformed");
  }
  return s;
}

std::string EncodeIndex(
    const std::vector<std::pair<uint64_t, uint64_t>>& index) {
  ByteWriter w;
  w.U64(index.size());
  for (const auto& [hash, version] : index) {
    w.U64(hash);
    w.U64(version);
  }
  return w.Take();
}

common::StatusOr<std::vector<std::pair<uint64_t, uint64_t>>> DecodeIndex(
    const std::string& payload) {
  ByteReader r(payload);
  std::vector<std::pair<uint64_t, uint64_t>> index;
  const uint64_t n = r.Count(16);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t hash = r.U64();
    const uint64_t version = r.U64();
    index.emplace_back(hash, version);
  }
  if (!r.done()) {
    return common::Corruption("campaign index payload malformed");
  }
  return index;
}

// --- file helpers -------------------------------------------------------

// Reads log.bin through a file descriptor so a shared-lock probe can detect
// a concurrent writer: the appender holds flock(LOCK_EX) on this file for
// the life of its run, so a failed LOCK_SH try means the campaign is being
// appended to right now. *live is set (never cleared) on that signal.
common::StatusOr<std::string> ReadLogLockAware(const fs::path& path,
                                               bool* live) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return common::NotFound("cannot open " + path.string());
  }
  if (::flock(fd, LOCK_SH | LOCK_NB) == 0) {
    ::flock(fd, LOCK_UN);
  } else if (errno == EWOULDBLOCK && live != nullptr) {
    *live = true;
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return common::IoError("read " + path.string());
    }
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

common::StatusOr<std::string> ReadWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::NotFound("cannot open " + path.string());
  }
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

common::Status WriteFileAtomic(const fs::path& path,
                               const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return common::IoError("cannot open " + tmp.string());
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      return common::IoError("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return common::IoError("rename " + tmp.string() + ": " + ec.message());
  }
  return common::Status::Ok();
}

// A single CRC-framed blob after an 8-byte magic (checkpoint.bin,
// index.bin). Returns the payload.
common::StatusOr<std::string> ReadFramedFile(const fs::path& path,
                                             const char magic[8]) {
  ASSIGN_OR_RETURN(std::string raw, ReadWholeFile(path));
  if (raw.size() < 20 || std::memcmp(raw.data(), magic, 8) != 0) {
    return common::Corruption(path.string() + ": bad magic");
  }
  ByteReader hdr(raw);
  (void)hdr.U64();  // magic, verified above
  const uint32_t crc = hdr.U32();
  const uint64_t len = hdr.U64();
  if (raw.size() != 20 + len) {
    return common::Corruption(path.string() + ": bad payload length");
  }
  std::string payload = raw.substr(20);
  if (common::Crc32(payload.data(), payload.size()) != crc) {
    return common::Corruption(path.string() + ": checksum mismatch");
  }
  return payload;
}

std::string EncodeFramedFile(const char magic[8], const std::string& payload) {
  ByteWriter w;
  std::string out(magic, 8);
  w.U32(common::Crc32(payload.data(), payload.size()));
  w.U64(payload.size());
  out += w.Take();
  out += payload;
  return out;
}

// Parses the log byte stream after the magic. Stops at the first torn or
// corrupt record; *valid_end receives the file offset of the end of the
// valid prefix (including the magic).
std::vector<CommitRecord> ParseLog(const std::string& raw, size_t* valid_end,
                                   bool* truncated) {
  std::vector<CommitRecord> records;
  size_t pos = sizeof(kLogMagic);
  *truncated = false;
  while (pos < raw.size()) {
    if (raw.size() - pos < 16) {
      *truncated = true;
      break;
    }
    const std::string header = raw.substr(pos, 16);
    ByteReader hdr(header);
    const uint32_t crc = hdr.U32();
    const uint32_t type = hdr.U32();
    const uint64_t len = hdr.U64();
    if (raw.size() - pos - 16 < len) {
      *truncated = true;
      break;
    }
    const uint32_t actual =
        common::Crc32(raw.data() + pos + 4, 12 + static_cast<size_t>(len));
    if (actual != crc) {
      *truncated = true;
      break;
    }
    const std::string payload = raw.substr(pos + 16, len);
    if (type == kRecordCommit) {
      auto rec = DecodeCommitPayload(payload);
      if (!rec.ok()) {
        *truncated = true;
        break;
      }
      records.push_back(std::move(rec).value());
    }
    // Unknown record types are valid frames: skip, keep parsing.
    pos += 16 + len;
  }
  *valid_end = pos;
  return records;
}

common::StatusOr<LoadedCampaign> LoadInternal(const std::string& dir,
                                              size_t* log_valid_end) {
  LoadedCampaign loaded;
  ASSIGN_OR_RETURN(std::string meta_text, ReadWholeFile(fs::path(dir) / "meta.txt"));
  ASSIGN_OR_RETURN(loaded.meta, ParseMeta(meta_text));
  if (loaded.meta.format_version != 1) {
    return common::Invalid(dir + ": unsupported campaign format_version " +
                           std::to_string(loaded.meta.format_version));
  }

  const fs::path ckpt = fs::path(dir) / "checkpoint.bin";
  if (fs::exists(ckpt)) {
    ASSIGN_OR_RETURN(std::string payload, ReadFramedFile(ckpt, kCkptMagic));
    ASSIGN_OR_RETURN(loaded.checkpoint, DecodeState(payload));
  }

  const fs::path idx = fs::path(dir) / "index.bin";
  if (fs::exists(idx)) {
    ASSIGN_OR_RETURN(std::string payload, ReadFramedFile(idx, kIdxMagic));
    ASSIGN_OR_RETURN(loaded.index, DecodeIndex(payload));
  }

  const fs::path log = fs::path(dir) / "log.bin";
  if (fs::exists(log)) {
    ASSIGN_OR_RETURN(std::string raw, ReadLogLockAware(log, &loaded.live));
    if (raw.size() < sizeof(kLogMagic) && loaded.live) {
      // The writer created the file but its magic is still in flight: an
      // empty log, not corruption.
      if (log_valid_end != nullptr) {
        *log_valid_end = sizeof(kLogMagic);
      }
      return loaded;
    }
    if (raw.size() < sizeof(kLogMagic) ||
        std::memcmp(raw.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
      return common::Corruption(log.string() + ": bad magic");
    }
    size_t valid_end = 0;
    loaded.log = ParseLog(raw, &valid_end, &loaded.log_truncated);
    if (log_valid_end != nullptr) {
      *log_valid_end = valid_end;
    }
    if (loaded.live) {
      // A short tail on a live campaign is a record append in flight, not a
      // torn crash artifact; don't report it as one.
      loaded.log_truncated = false;
    }
  }
  return loaded;
}

}  // namespace

// --- meta ---------------------------------------------------------------

std::string SerializeMeta(const CampaignMeta& m) {
  std::string out;
  auto kv = [&out](const char* key, const std::string& value) {
    out += std::string(key) + ": " + value + "\n";
  };
  auto num = [&kv](const char* key, uint64_t value) {
    kv(key, std::to_string(value));
  };
  num("format_version", m.format_version);
  kv("fs", m.fs);
  kv("bugs", m.bugs);
  num("device_size", m.device_size);
  num("seed", m.seed);
  num("max_ops", m.max_ops);
  num("iterations", m.iterations);
  num("corpus_max", m.corpus_max);
  num("lookahead", m.lookahead);
  num("shard_index", m.shard_index);
  num("shard_count", m.shard_count);
  num("range_begin", m.range_begin);
  num("range_count", m.range_count);
  num("lint", m.lint ? 1 : 0);
  num("inject_faults", m.inject_faults ? 1 : 0);
  num("fault_seed", m.fault_seed);
  num("representative", m.representative ? 1 : 0);
  num("targeted", m.targeted ? 1 : 0);
  kv("invariants", m.invariants);
  num("threads", m.threads);
  num("schedule_seed", m.schedule_seed);
  kv("generator", m.generator);
  num("ace_seq", m.ace_seq);
  num("ace_metadata", m.ace_metadata ? 1 : 0);
  num("ace_weak", m.ace_weak ? 1 : 0);
  num("merged", m.merged ? 1 : 0);
  return out;
}

common::StatusOr<CampaignMeta> ParseMeta(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      kv[line.substr(0, colon)] = line.substr(colon + 2);
    } else if (line.size() > 1 && line.back() == ':') {
      kv[line.substr(0, line.size() - 1)] = "";
    }
  }
  CampaignMeta m;
  std::string bad;
  auto num = [&kv, &bad](const char* key, uint64_t* out) {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return;  // absent keys keep their defaults (forward compatibility)
    }
    if (!common::ParseUint64(it->second, ~uint64_t{0}, out) && bad.empty()) {
      bad = key;
    }
  };
  num("format_version", &m.format_version);
  m.fs = kv["fs"];
  m.bugs = kv["bugs"];
  num("device_size", &m.device_size);
  num("seed", &m.seed);
  num("max_ops", &m.max_ops);
  num("iterations", &m.iterations);
  num("corpus_max", &m.corpus_max);
  num("lookahead", &m.lookahead);
  num("shard_index", &m.shard_index);
  num("shard_count", &m.shard_count);
  num("range_begin", &m.range_begin);
  num("range_count", &m.range_count);
  uint64_t flag = 0;
  num("lint", &flag);
  m.lint = flag != 0;
  flag = 0;
  num("inject_faults", &flag);
  m.inject_faults = flag != 0;
  num("fault_seed", &m.fault_seed);
  flag = 0;
  num("representative", &flag);
  m.representative = flag != 0;
  flag = 0;
  num("targeted", &flag);
  m.targeted = flag != 0;
  m.invariants = kv["invariants"];
  num("threads", &m.threads);
  num("schedule_seed", &m.schedule_seed);
  // Absent in stores written before ace campaigns existed; those were all
  // fuzz campaigns, which is exactly the struct default.
  if (auto it = kv.find("generator"); it != kv.end()) {
    m.generator = it->second;
  }
  num("ace_seq", &m.ace_seq);
  flag = 0;
  num("ace_metadata", &flag);
  m.ace_metadata = flag != 0;
  flag = 0;
  num("ace_weak", &flag);
  m.ace_weak = flag != 0;
  flag = 0;
  num("merged", &flag);
  m.merged = flag != 0;
  if (!bad.empty()) {
    return common::Invalid("meta.txt: bad numeric value for '" + bad + "'");
  }
  if (m.fs.empty()) {
    return common::Invalid("meta.txt: missing fs");
  }
  return m;
}

bool CampaignMeta::CompatibleWith(const CampaignMeta& other,
                                  std::string* why) const {
  auto fail = [why](const char* field) {
    if (why != nullptr) {
      *why = field;
    }
    return false;
  };
  if (format_version != other.format_version) {
    return fail("format_version");
  }
  if (fs != other.fs) {
    return fail("fs");
  }
  if (bugs != other.bugs) {
    return fail("bugs");
  }
  if (device_size != other.device_size) {
    return fail("device_size");
  }
  if (generator != other.generator) {
    return fail("generator");
  }
  if (ace_seq != other.ace_seq) {
    return fail("ace_seq");
  }
  if (ace_metadata != other.ace_metadata) {
    return fail("ace_metadata");
  }
  if (ace_weak != other.ace_weak) {
    return fail("ace_weak");
  }
  if (seed != other.seed) {
    return fail("seed");
  }
  if (max_ops != other.max_ops) {
    return fail("max_ops");
  }
  if (corpus_max != other.corpus_max) {
    return fail("corpus_max");
  }
  if (lookahead != other.lookahead) {
    return fail("lookahead");
  }
  if (shard_index != other.shard_index) {
    return fail("shard_index");
  }
  if (shard_count != other.shard_count) {
    return fail("shard_count");
  }
  if (range_begin != other.range_begin) {
    return fail("range_begin");
  }
  if (range_count != other.range_count) {
    return fail("range_count");
  }
  if (lint != other.lint) {
    return fail("lint");
  }
  if (inject_faults != other.inject_faults) {
    return fail("inject_faults");
  }
  if (fault_seed != other.fault_seed) {
    return fail("fault_seed");
  }
  if (representative != other.representative) {
    return fail("representative");
  }
  if (targeted != other.targeted) {
    return fail("targeted");
  }
  if (invariants != other.invariants) {
    return fail("invariants");
  }
  if (threads != other.threads) {
    return fail("threads");
  }
  if (schedule_seed != other.schedule_seed) {
    return fail("schedule_seed");
  }
  if (merged != other.merged) {
    return fail("merged");
  }
  return true;
}

// --- commit records -----------------------------------------------------

std::string EncodeCommitPayload(const CommitRecord& rec) {
  ByteWriter w;
  w.U64(rec.ordinal);
  w.Str(rec.workload_name);
  w.Str(rec.workload_text);
  w.U8(rec.ran ? 1 : 0);
  w.U8(rec.ok ? 1 : 0);
  w.U8(rec.retried ? 1 : 0);
  w.U8(rec.admitted ? 1 : 0);
  w.Str(rec.error);
  w.Str(rec.first_error);
  w.U64(rec.crash_states);
  w.U64(rec.states_deduped);
  w.U64(rec.states_pruned);
  w.U64(rec.states_quarantined);
  w.U64(rec.lint_findings);
  w.U64(rec.lint_rules.size());
  for (const std::string& rule : rec.lint_rules) {
    w.Str(rule);
  }
  w.U64(rec.hb_findings);
  w.U64(rec.hb_rules.size());
  for (const std::string& rule : rec.hb_rules) {
    w.Str(rule);
  }
  w.U64(rec.reports.size());
  for (const chipmunk::BugReport& r : rec.reports) {
    PutReport(w, r);
  }
  w.U64(rec.cov_slots.size());
  for (uint32_t slot : rec.cov_slots) {
    w.U32(slot);
  }
  w.U64(rec.clean_hashes.size());
  for (uint64_t h : rec.clean_hashes) {
    w.U64(h);
  }
  w.F64(rec.wall_seconds);
  w.F64(rec.cpu_seconds);
  return w.Take();
}

common::StatusOr<CommitRecord> DecodeCommitPayload(const std::string& payload) {
  ByteReader r(payload);
  CommitRecord rec;
  rec.ordinal = r.U64();
  rec.workload_name = r.Str();
  rec.workload_text = r.Str();
  rec.ran = r.U8() != 0;
  rec.ok = r.U8() != 0;
  rec.retried = r.U8() != 0;
  rec.admitted = r.U8() != 0;
  rec.error = r.Str();
  rec.first_error = r.Str();
  rec.crash_states = r.U64();
  rec.states_deduped = r.U64();
  rec.states_pruned = r.U64();
  rec.states_quarantined = r.U64();
  rec.lint_findings = r.U64();
  uint64_t n = r.Count(8);
  for (uint64_t i = 0; i < n; ++i) {
    rec.lint_rules.push_back(r.Str());
  }
  rec.hb_findings = r.U64();
  n = r.Count(8);
  for (uint64_t i = 0; i < n; ++i) {
    rec.hb_rules.push_back(r.Str());
  }
  n = r.Count(8);
  for (uint64_t i = 0; i < n; ++i) {
    rec.reports.push_back(GetReport(r));
  }
  n = r.Count(4);
  for (uint64_t i = 0; i < n; ++i) {
    rec.cov_slots.push_back(r.U32());
  }
  n = r.Count(8);
  for (uint64_t i = 0; i < n; ++i) {
    rec.clean_hashes.push_back(r.U64());
  }
  rec.wall_seconds = r.F64();
  rec.cpu_seconds = r.F64();
  if (!r.done()) {
    return common::Corruption("commit record payload malformed");
  }
  return rec;
}

std::string EncodeRecordFrame(uint32_t type, const std::string& payload) {
  ByteWriter body;
  body.U32(type);
  body.U64(payload.size());
  std::string framed = body.Take() + payload;
  ByteWriter head;
  head.U32(common::Crc32(framed.data(), framed.size()));
  return head.Take() + framed;
}

// --- StateIndex ---------------------------------------------------------

void StateIndex::Insert(uint64_t hash, uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(hash, version);
  if (!inserted && version < it->second) {
    it->second = version;
  }
}

bool StateIndex::ContainsAt(uint64_t hash, uint64_t version_cap) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(hash);
  return it != map_.end() && it->second <= version_cap;
}

size_t StateIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

std::vector<std::pair<uint64_t, uint64_t>> StateIndex::Entries() const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    entries.assign(map_.begin(), map_.end());
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

// --- CampaignStore ------------------------------------------------------

CampaignStore::~CampaignStore() {
  if (log_fd_ >= 0) {
    ::close(log_fd_);
  }
}

common::StatusOr<std::unique_ptr<CampaignStore>> CampaignStore::Create(
    const std::string& dir, const CampaignMeta& meta) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return common::IoError("mkdir " + dir + ": " + ec.message());
  }
  // Take the writer lock before touching any campaign file: if another
  // process is appending to this directory, refuse instead of clobbering its
  // meta/log out from under it. The lock rides the log fd for the store's
  // whole lifetime and is released by close().
  const fs::path log = fs::path(dir) / "log.bin";
  const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return common::IoError("cannot create " + log.string());
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return common::IoError(dir +
                           ": campaign is being written by another process");
  }
  const common::Status meta_status =
      WriteFileAtomic(fs::path(dir) / "meta.txt", SerializeMeta(meta));
  if (!meta_status.ok()) {
    ::close(fd);
    return meta_status;
  }
  fs::remove(fs::path(dir) / "checkpoint.bin", ec);
  fs::remove(fs::path(dir) / "index.bin", ec);
  if (::ftruncate(fd, 0) != 0 || ::lseek(fd, 0, SEEK_SET) < 0 ||
      ::write(fd, kLogMagic, sizeof(kLogMagic)) !=
          static_cast<ssize_t>(sizeof(kLogMagic))) {
    ::close(fd);
    return common::IoError("cannot write log magic to " + log.string());
  }
  return std::unique_ptr<CampaignStore>(new CampaignStore(dir, meta, fd));
}

common::StatusOr<std::unique_ptr<CampaignStore>> CampaignStore::OpenForResume(
    const std::string& dir, LoadedCampaign* loaded) {
  size_t valid_end = 0;
  ASSIGN_OR_RETURN(*loaded, LoadInternal(dir, &valid_end));
  if (loaded->meta.merged) {
    return common::Invalid(dir + ": merged campaigns are not resumable");
  }
  const fs::path log = fs::path(dir) / "log.bin";
  const int fd = ::open(log.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return common::IoError("cannot open " + log.string());
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return common::IoError(dir +
                           ": campaign is being written by another process");
  }
  // Cut a torn/corrupt tail back to the last valid record before appending;
  // O_APPEND is deliberately not used so the position is explicit.
  if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return common::IoError("cannot truncate " + log.string());
  }
  return std::unique_ptr<CampaignStore>(
      new CampaignStore(dir, loaded->meta, fd));
}

common::StatusOr<LoadedCampaign> CampaignStore::Load(const std::string& dir) {
  return LoadInternal(dir, nullptr);
}

common::Status CampaignStore::AppendCommit(const CommitRecord& rec) {
  const std::string frame =
      EncodeRecordFrame(kRecordCommit, EncodeCommitPayload(rec));
  const ssize_t written = ::write(log_fd_, frame.data(), frame.size());
  if (written != static_cast<ssize_t>(frame.size())) {
    return common::IoError("short append to " + dir_ + "/log.bin");
  }
  // No fsync: the durability contract is SIGKILL of the fuzzer, which the
  // OS page cache survives. A machine crash falls back to the checkpoint.
  return common::Status::Ok();
}

common::Status CampaignStore::WriteCheckpoint(
    const CampaignState& state,
    const std::vector<std::pair<uint64_t, uint64_t>>& index) {
  RETURN_IF_ERROR(
      WriteFileAtomic(fs::path(dir_) / "checkpoint.bin",
                      EncodeFramedFile(kCkptMagic, EncodeState(state))));
  RETURN_IF_ERROR(WriteFileAtomic(fs::path(dir_) / "index.bin",
                                  EncodeFramedFile(kIdxMagic, EncodeIndex(index))));
  // Compaction: the checkpoint covers every logged record, so the log
  // restarts empty. A crash landing between the rename above and this
  // truncate leaves stale records behind; replay skips them by ordinal.
  if (::ftruncate(log_fd_, static_cast<off_t>(sizeof(kLogMagic))) != 0 ||
      ::lseek(log_fd_, 0, SEEK_END) < 0) {
    return common::IoError("cannot compact " + dir_ + "/log.bin");
  }
  return common::Status::Ok();
}

}  // namespace store
