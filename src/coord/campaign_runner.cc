#include "src/coord/campaign_runner.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/common/parse.h"

namespace coord {

namespace fs = std::filesystem;

namespace {

// Loads `dir` and decides whether it is a *final* lease store: stamped with
// a lease range, no live writer, and every ordinal of its range committed
// (checkpoint plus valid log suffix). Anything else — missing, partial,
// torn, or still being written — is not final.
bool LeaseFinal(const std::string& dir, store::LoadedCampaign* out) {
  auto loaded = store::CampaignStore::Load(dir);
  if (!loaded.ok() || loaded->live || loaded->meta.range_count == 0) {
    return false;
  }
  const store::CampaignState st = fuzz::FoldCampaign(*loaded);
  if (st.committed != loaded->meta.range_count) {
    return false;
  }
  if (out != nullptr) {
    *out = std::move(*loaded);
  }
  return true;
}

bool StopRequested(const fuzz::CampaignOptions& base) {
  return base.stop != nullptr && base.stop->load(std::memory_order_relaxed);
}

}  // namespace

std::string SocketPath(const std::string& root) {
  return (fs::path(root) / "coordinator.sock").string();
}

std::string LeaseDir(const std::string& root, uint64_t lease_id) {
  return (fs::path(root) / "leases" / ("lease-" + std::to_string(lease_id)))
      .string();
}

std::string MergedDir(const std::string& root) {
  return (fs::path(root) / "merged").string();
}

bool LeaseComplete(const std::string& dir, uint64_t begin, uint64_t count) {
  store::LoadedCampaign loaded;
  if (!LeaseFinal(dir, &loaded)) {
    return false;
  }
  return loaded.meta.range_begin == begin && loaded.meta.range_count == count;
}

common::StatusOr<LeaseRunnerResult> RunLeases(
    fuzz::OrdinalScheduler& scheduler, const LeaseRunnerOptions& options) {
  LeaseRunnerResult result;
  for (;;) {
    if (StopRequested(options.base)) {
      result.interrupted = true;
      break;
    }
    std::optional<fuzz::OrdinalLease> lease = scheduler.Acquire();
    if (!lease) {
      break;
    }
    const std::string dir = LeaseDir(options.root, lease->id);
    const uint64_t count = lease->end - lease->begin;

    if (LeaseComplete(dir, lease->begin, count)) {
      // A previous holder finished this lease but its completion was lost
      // (worker killed after the final checkpoint, coordinator restarted):
      // the store bytes are the result, just report them.
      store::LoadedCampaign loaded;
      (void)LeaseFinal(dir, &loaded);
      const store::CampaignState st = fuzz::FoldCampaign(loaded);
      fuzz::LeaseProgress progress{st.committed, st.crash_states,
                                   st.states_deduped};
      scheduler.Complete(*lease, progress);
      ++result.leases_run;
      continue;
    }

    fuzz::CampaignOptions opt = options.base;
    opt.campaign_dir = dir;
    opt.range_begin = lease->begin;
    opt.range_count = count;
    opt.shard_index = 0;
    opt.shard_count = 1;
    opt.resume = false;
    fuzz::LeaseProgress progress;
    opt.on_commit = [&scheduler, &lease, &progress](uint64_t committed,
                                                    uint64_t crash_states,
                                                    uint64_t states_deduped) {
      progress = fuzz::LeaseProgress{committed, crash_states, states_deduped};
      scheduler.Heartbeat(*lease, progress);
    };

    std::unique_ptr<fuzz::CampaignDriver> driver;
    std::error_code ec;
    if (fs::exists(fs::path(dir) / "meta.txt", ec)) {
      // A partial store from an earlier holder of this lease (our own
      // previous life, or a revoked worker): continue it instead of
      // discarding its committed prefix. Resume is byte-identical, so the
      // finished store cannot tell.
      fuzz::CampaignOptions resume_opt = opt;
      resume_opt.resume = true;
      auto candidate = options.make_driver(resume_opt);
      if (candidate->OpenCampaign().ok()) {
        driver = std::move(candidate);
        ++result.leases_resumed;
      }
    }
    if (driver == nullptr) {
      fs::remove_all(dir, ec);
      driver = options.make_driver(opt);
      RETURN_IF_ERROR(driver->OpenCampaign());
    }

    const fuzz::CampaignResult run = driver->Run();
    progress = fuzz::LeaseProgress{driver->committed(), run.crash_states,
                                   run.states_deduped};
    // Release the store (and its writer lock) before reporting: the
    // coordinator may probe or fold the lease directory the moment it hears
    // the completion.
    driver.reset();
    if (run.interrupted) {
      // Graceful stop mid-lease: the store holds a checkpointed prefix, the
      // lease stays unfinished for the scheduler to reissue (and a later
      // holder resumes from the prefix).
      result.interrupted = true;
      break;
    }
    scheduler.Complete(*lease, progress);
    ++result.leases_run;
  }
  return result;
}

common::StatusOr<fuzz::CampaignMergeResult> FoldLeases(
    const std::string& root, uint64_t expect_total) {
  const fs::path leases = fs::path(root) / "leases";
  std::vector<std::pair<uint64_t, std::string>> complete;
  uint64_t covered = 0;
  std::error_code ec;
  if (fs::exists(leases, ec)) {
    for (const fs::directory_entry& entry :
         fs::directory_iterator(leases, ec)) {
      const std::string name = entry.path().filename().string();
      uint64_t id = 0;
      if (name.rfind("lease-", 0) != 0 ||
          !common::ParseUint64(name.substr(6), ~uint64_t{0}, &id)) {
        continue;
      }
      store::LoadedCampaign loaded;
      if (!LeaseFinal(entry.path().string(), &loaded)) {
        continue;
      }
      covered += loaded.meta.range_count;
      complete.emplace_back(id, entry.path().string());
    }
  }
  if (complete.empty()) {
    return common::NotFound(root + ": no complete lease stores to fold");
  }
  if (expect_total > 0 && covered != expect_total) {
    return common::Invalid(
        root + ": lease stores cover " + std::to_string(covered) + " of " +
        std::to_string(expect_total) + " ordinals; campaign incomplete");
  }
  // Fold in lease order: merge output (corpus contents, report tie-breaks)
  // is source-order dependent, and lease order is the deterministic one.
  std::sort(complete.begin(), complete.end());
  std::vector<std::string> srcs;
  srcs.reserve(complete.size());
  for (const auto& [id, dir] : complete) {
    srcs.push_back(dir);
  }
  ASSIGN_OR_RETURN(fuzz::CampaignMergeResult merged,
                   fuzz::MergeCampaigns(srcs));
  ASSIGN_OR_RETURN(std::unique_ptr<store::CampaignStore> out,
                   store::CampaignStore::Create(MergedDir(root), merged.meta));
  RETURN_IF_ERROR(out->WriteCheckpoint(merged.state, merged.index));
  return merged;
}

}  // namespace coord
