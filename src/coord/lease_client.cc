#include "src/coord/lease_client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace coord {

namespace {

common::StatusOr<int> ConnectUnix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return common::Invalid("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return common::IoError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return common::IoError("connect " + socket_path + ": " +
                           std::strerror(err));
  }
  return fd;
}

}  // namespace

common::StatusOr<std::unique_ptr<LeaseScheduler>> LeaseScheduler::Connect(
    const std::string& socket_path, uint32_t worker_slot,
    uint64_t heartbeat_ms) {
  ASSIGN_OR_RETURN(int fd, ConnectUnix(socket_path));
  std::unique_ptr<LeaseScheduler> client(
      new LeaseScheduler(fd, worker_slot, heartbeat_ms));
  Message hello;
  hello.type = MsgType::kHello;
  hello.worker_slot = worker_slot;
  RETURN_IF_ERROR(WriteFrame(fd, hello));
  return client;
}

LeaseScheduler::LeaseScheduler(int fd, uint32_t worker_slot,
                               uint64_t heartbeat_ms)
    : fd_(fd), worker_slot_(worker_slot), heartbeat_ms_(heartbeat_ms) {
  beater_ = std::thread([this]() { HeartbeatLoop(); });
}

LeaseScheduler::~LeaseScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (beater_.joinable()) {
    beater_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void LeaseScheduler::Send(const Message& m) {
  std::lock_guard<std::mutex> lock(mu_);
  // Best effort: a dead coordinator surfaces on the next Acquire/Complete
  // read; losing a heartbeat to it changes nothing.
  (void)WriteFrame(fd_, m);
}

void LeaseScheduler::HeartbeatLoop() {
  const auto period =
      std::chrono::milliseconds(std::max<uint64_t>(10, heartbeat_ms_ / 4));
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    cv_.wait_for(lock, period);
    if (shutdown_ || !active_) {
      continue;
    }
    Message m;
    m.type = MsgType::kHeartbeat;
    m.worker_slot = worker_slot_;
    m.lease_id = active_lease_.id;
    m.epoch = active_lease_.epoch;
    m.committed = last_progress_.committed;
    m.crash_states = last_progress_.crash_states;
    m.states_deduped = last_progress_.states_deduped;
    (void)WriteFrame(fd_, m);
  }
}

std::optional<fuzz::OrdinalLease> LeaseScheduler::Acquire() {
  Message req;
  req.type = MsgType::kLeaseRequest;
  req.worker_slot = worker_slot_;
  Send(req);
  auto reply = ReadFrame(fd_, &reader_);
  if (!reply.ok() || reply->type == MsgType::kNoWork) {
    return std::nullopt;
  }
  if (reply->type != MsgType::kLeaseGrant) {
    return std::nullopt;
  }
  fuzz::OrdinalLease lease;
  lease.id = reply->lease_id;
  lease.epoch = reply->epoch;
  lease.begin = reply->begin;
  lease.end = reply->end;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_ = true;
    active_lease_ = lease;
    last_progress_ = fuzz::LeaseProgress{};
  }
  return lease;
}

void LeaseScheduler::Heartbeat(const fuzz::OrdinalLease& lease,
                               const fuzz::LeaseProgress& progress) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.worker_slot = worker_slot_;
  m.lease_id = lease.id;
  m.epoch = lease.epoch;
  m.committed = progress.committed;
  m.crash_states = progress.crash_states;
  m.states_deduped = progress.states_deduped;
  std::lock_guard<std::mutex> lock(mu_);
  last_progress_ = progress;
  (void)WriteFrame(fd_, m);
}

bool LeaseScheduler::Complete(const fuzz::OrdinalLease& lease,
                              const fuzz::LeaseProgress& progress) {
  Message m;
  m.type = MsgType::kLeaseDone;
  m.worker_slot = worker_slot_;
  m.lease_id = lease.id;
  m.epoch = lease.epoch;
  m.committed = progress.committed;
  m.crash_states = progress.crash_states;
  m.states_deduped = progress.states_deduped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_ = false;
    (void)WriteFrame(fd_, m);
  }
  auto reply = ReadFrame(fd_, &reader_);
  return reply.ok() && reply->type == MsgType::kDoneAck &&
         reply->accepted != 0;
}

common::StatusOr<std::string> FetchCoordinatorStats(
    const std::string& socket_path) {
  ASSIGN_OR_RETURN(int fd, ConnectUnix(socket_path));
  Message req;
  req.type = MsgType::kStatsRequest;
  common::Status sent = WriteFrame(fd, req);
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  FrameReader reader;
  auto reply = ReadFrame(fd, &reader);
  ::close(fd);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply->type != MsgType::kStatsText) {
    return common::Internal("unexpected coordinator reply");
  }
  return reply->text;
}

}  // namespace coord
