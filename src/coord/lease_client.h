// LeaseScheduler: the worker-side OrdinalScheduler that asks a coordinator
// for leases over the Unix-domain socket protocol (src/coord/protocol.h).
//
// Threading: Acquire/Heartbeat/Complete are called from the runner thread.
// A private heartbeat thread re-sends the last reported progress every
// heartbeat_ms / 4 while a lease is held, so a worker grinding through one
// long workload (no commits, hence no progress callbacks) still looks alive
// to the coordinator's heartbeat-timeout sweep. Sends are serialized by a
// mutex; replies (grants, acks) are only ever read on the runner thread —
// heartbeats have no reply, so the reply stream stays in lockstep with the
// runner's requests.
#ifndef CHIPMUNK_COORD_LEASE_CLIENT_H_
#define CHIPMUNK_COORD_LEASE_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/coord/protocol.h"
#include "src/fuzz/campaign_driver.h"

namespace coord {

class LeaseScheduler : public fuzz::OrdinalScheduler {
 public:
  // Connects to the coordinator socket and sends the hello. heartbeat_ms is
  // the coordinator's timeout; the client beats at a quarter of it.
  static common::StatusOr<std::unique_ptr<LeaseScheduler>> Connect(
      const std::string& socket_path, uint32_t worker_slot,
      uint64_t heartbeat_ms);

  ~LeaseScheduler() override;

  std::optional<fuzz::OrdinalLease> Acquire() override;
  void Heartbeat(const fuzz::OrdinalLease& lease,
                 const fuzz::LeaseProgress& progress) override;
  bool Complete(const fuzz::OrdinalLease& lease,
                const fuzz::LeaseProgress& progress) override;

 private:
  LeaseScheduler(int fd, uint32_t worker_slot, uint64_t heartbeat_ms);

  void Send(const Message& m);  // best-effort locked write
  void HeartbeatLoop();

  int fd_ = -1;
  uint32_t worker_slot_ = 0;
  uint64_t heartbeat_ms_ = 0;
  FrameReader reader_;  // runner thread only

  std::mutex mu_;  // guards sends + the active-lease snapshot below
  std::condition_variable cv_;
  bool shutdown_ = false;
  bool active_ = false;  // a lease is held
  fuzz::OrdinalLease active_lease_;
  fuzz::LeaseProgress last_progress_;
  std::thread beater_;
};

// One-shot stats fetch from a running coordinator (the `campaign stats
// --follow` read side): connects, asks, returns the rendered stats block.
common::StatusOr<std::string> FetchCoordinatorStats(
    const std::string& socket_path);

}  // namespace coord

#endif  // CHIPMUNK_COORD_LEASE_CLIENT_H_
