// The campaign coordinator: a single-threaded poll() event loop that owns a
// fleet of chipmunk worker processes fuzzing one campaign root.
//
// Responsibilities:
//   - partition the campaign's ordinal space [0, total) into fixed-size
//     leases and hand them to workers over the Unix-socket protocol;
//   - track per-lease heartbeats; revoke a lease whose holder dies
//     (disconnect / SIGCHLD) or goes silent past the heartbeat timeout
//     (the holder is SIGKILLed first — a hung harness never finishes), and
//     reissue it under a fresh epoch so a revoked holder's late completion
//     is recognized as stale and rejected;
//   - poison a lease that failed max_lease_failures grants: its ordinals'
//     workloads go to the quarantine directory through the existing
//     quarantine machinery instead of being retried forever;
//   - restart dead managed workers with capped exponential backoff (a
//     restarted worker resumes from the partial lease stores on disk);
//   - fold completed lease stores online into <root>/merged via
//     MergeCampaigns, and serve a live stats snapshot to observers;
//   - drain on SIGTERM/SIGINT (or RequestStop): no new grants, in-flight
//     leases finish, then a final fold.
//
// Crash recovery: the coordinator itself keeps no state that is not on
// disk. A restarted coordinator re-scans <root>/leases, marks finished
// stores complete, SIGKILLs orphaned workers recorded in <root>/worker.pids,
// and continues the campaign.
#ifndef CHIPMUNK_COORD_COORDINATOR_H_
#define CHIPMUNK_COORD_COORDINATOR_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/coord/campaign_runner.h"
#include "src/coord/protocol.h"
#include "src/core/quarantine.h"
#include "src/fuzz/campaign_driver.h"

namespace coord {

struct CoordinatorOptions {
  std::string root;          // campaign root directory
  uint64_t total = 0;        // campaign ordinal count
  uint64_t lease_size = 32;  // ordinals per lease
  // Worker processes to own. 0 = manage none: external clients (tests,
  // manually started workers) connect on their own.
  size_t workers = 0;
  uint64_t heartbeat_ms = 5000;   // silence after which a lease is revoked
  size_t max_lease_failures = 3;  // failed grants before a lease is poisoned
  // argv for the managed worker in a slot (argv[0] = executable path).
  // Required when workers > 0.
  std::function<std::vector<std::string>(size_t slot)> worker_argv;
  // Builds the quarantine entry for one poisoned global ordinal; the
  // coordinator stamps lease provenance and writes it. Null = count
  // poisoned ordinals without writing entries.
  std::function<chipmunk::QuarantineEntry(uint64_t ordinal)> poison_entry;
  std::string quarantine_dir;  // empty = <root>/quarantine
  // Install SIGTERM/SIGINT (drain) and SIGCHLD (reap) handlers. The CLI
  // turns this on; tests drive RequestStop() instead.
  bool install_signal_handlers = false;
  double backoff_initial_s = 0.5;  // first worker-restart delay
  double backoff_max_s = 30.0;     // exponential backoff cap
  bool verbose = true;             // event log on stderr
};

struct CoordinatorOutcome {
  bool drained_early = false;  // stopped before every lease resolved
  size_t leases_total = 0;
  size_t leases_complete = 0;
  size_t leases_poisoned = 0;
  size_t lease_revocations = 0;
  size_t worker_restarts = 0;
  size_t ordinals_quarantined = 0;
  bool folded = false;  // <root>/merged was written
  fuzz::CampaignMergeResult merged;  // valid when folded
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  // Binds the socket, scans lease stores for crash recovery, cleans up
  // orphaned workers, and spawns the managed fleet.
  common::Status Init();

  // The event loop: runs until every lease is resolved (complete or
  // poisoned) and the managed fleet has exited, or until a drain finishes.
  // Always attempts a final fold of the complete lease stores.
  common::StatusOr<CoordinatorOutcome> Run();

  // Thread- and signal-safe drain trigger (same path as SIGTERM).
  void RequestStop();

  std::string socket_path() const { return SocketPath(options_.root); }

  // The stats snapshot served over the socket, rendered as text.
  std::string StatsText() const;

 private:
  struct Lease {
    enum class State { kPending, kGranted, kComplete, kPoisoned };
    State state = State::kPending;
    uint64_t id = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
    uint64_t epoch = 0;     // bumped on every grant
    size_t failures = 0;    // revocations so far
    int owner_fd = -1;      // connection holding the grant (-1 = none)
    int owner_slot = -1;    // managed worker slot holding it (-1 = none)
    double hb_deadline = 0; // monotonic deadline for the next heartbeat
    fuzz::LeaseProgress progress;
  };

  struct Conn {
    FrameReader reader;
    int slot = -1;  // worker slot from the hello (-1 = observer/unknown)
  };

  struct Worker {
    pid_t pid = -1;
    bool alive = false;
    bool managed = false;  // spawned by this coordinator
    size_t leases_granted = 0;
    size_t leases_completed = 0;
    size_t heartbeats = 0;
    size_t restarts = 0;
    double backoff_s = 0;
    double restart_at = 0;  // monotonic restart deadline (0 = none)
  };

  common::Status SetupSocket();
  common::Status SetupSignalPipe();
  void CleanupOrphans();
  void ScanLeases();
  void WritePidsFile() const;
  void Spawn(size_t slot, bool restart);
  void ReapChildren();
  void AcceptNew();
  void ReadConn(int fd);
  void CloseConn(int fd, const char* why);
  void HandleMessage(int fd, const Message& m);
  void HandleLeaseRequest(int fd);
  void GrantTo(int fd, Lease& lease);
  void Revoke(Lease& lease, const char* reason);
  void Poison(Lease& lease);
  void FlushWaiters();
  void SweepTimers(double now);
  void OnLeaseResolved();
  void FoldOnline();
  Worker& WorkerFor(int slot);
  Lease* FindLease(uint64_t id);
  bool AllResolved() const;
  bool AnyGranted() const;
  bool AnyManagedAlive() const;
  void Shutdown();
  void Log(const std::string& line) const;

  CoordinatorOptions options_;
  std::string quarantine_dir_;
  int listen_fd_ = -1;
  int pipe_r_ = -1;
  int pipe_w_ = -1;
  bool draining_ = false;
  double start_s_ = 0;
  std::vector<Lease> leases_;
  std::map<int, Conn> conns_;
  std::vector<int> waiters_;  // fds parked on a lease request
  std::vector<Worker> workers_;
  CoordinatorOutcome outcome_;
};

}  // namespace coord

#endif  // CHIPMUNK_COORD_COORDINATOR_H_
