#include "src/coord/protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

namespace coord {

namespace {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

// Fixed part of the payload, before the variable-length text.
constexpr size_t kFixedPayload = 1 + 1 + 4 + 7 * 8 + 1 + 8;

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kStatsText);
}

}  // namespace

std::string EncodeFrame(const Message& m) {
  std::string payload;
  payload.reserve(kFixedPayload + m.text.size());
  payload.push_back(static_cast<char>(m.version));
  payload.push_back(static_cast<char>(m.type));
  PutU32(payload, m.worker_slot);
  PutU64(payload, m.lease_id);
  PutU64(payload, m.epoch);
  PutU64(payload, m.begin);
  PutU64(payload, m.end);
  PutU64(payload, m.committed);
  PutU64(payload, m.crash_states);
  PutU64(payload, m.states_deduped);
  payload.push_back(static_cast<char>(m.accepted));
  PutU64(payload, m.text.size());
  payload += m.text;

  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

void FrameReader::Feed(const char* data, size_t n) {
  buf_.append(data, n);
  // Drop the consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

FrameReader::Result FrameReader::Next(Message* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) {
      *error = poison_;
    }
    return Result::kError;
  }
  auto poison = [&](const std::string& why) {
    poisoned_ = true;
    poison_ = why;
    if (error != nullptr) {
      *error = why;
    }
    return Result::kError;
  };
  if (buf_.size() - pos_ < 4) {
    return Result::kNeedMore;
  }
  const uint32_t len = GetU32(buf_.data() + pos_);
  if (len > kMaxFrameBytes) {
    return poison("frame length " + std::to_string(len) + " exceeds limit");
  }
  if (len < kFixedPayload) {
    return poison("frame length " + std::to_string(len) +
                  " below minimum payload");
  }
  if (buf_.size() - pos_ < 4 + static_cast<size_t>(len)) {
    return Result::kNeedMore;
  }
  const char* p = buf_.data() + pos_ + 4;
  Message m;
  m.version = static_cast<uint8_t>(p[0]);
  if (m.version != kProtocolVersion) {
    return poison("unsupported protocol version " +
                  std::to_string(m.version));
  }
  const uint8_t type = static_cast<uint8_t>(p[1]);
  if (!KnownType(type)) {
    return poison("unknown message type " + std::to_string(type));
  }
  m.type = static_cast<MsgType>(type);
  m.worker_slot = GetU32(p + 2);
  m.lease_id = GetU64(p + 6);
  m.epoch = GetU64(p + 14);
  m.begin = GetU64(p + 22);
  m.end = GetU64(p + 30);
  m.committed = GetU64(p + 38);
  m.crash_states = GetU64(p + 46);
  m.states_deduped = GetU64(p + 54);
  m.accepted = static_cast<uint8_t>(p[62]);
  const uint64_t text_len = GetU64(p + 63);
  if (text_len != len - kFixedPayload) {
    return poison("frame text length disagrees with frame length");
  }
  m.text.assign(p + kFixedPayload, text_len);
  pos_ += 4 + len;
  *out = std::move(m);
  return Result::kMessage;
}

common::Status WriteFrame(int fd, const Message& m) {
  const std::string frame = EncodeFrame(m);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return common::IoError(std::string("coordinator socket write: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return common::OkStatus();
}

common::StatusOr<Message> ReadFrame(int fd, FrameReader* reader) {
  Message m;
  std::string why;
  for (;;) {
    switch (reader->Next(&m, &why)) {
      case FrameReader::Result::kMessage:
        return m;
      case FrameReader::Result::kError:
        return common::Invalid("coordinator protocol: " + why);
      case FrameReader::Result::kNeedMore:
        break;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return common::IoError(std::string("coordinator socket read: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return common::NotFound("coordinator closed the connection");
    }
    reader->Feed(buf, static_cast<size_t>(n));
  }
}

}  // namespace coord
