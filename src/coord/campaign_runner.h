// Lease-partitioned campaign execution: the runner loop a worker (or a
// single-process `--lease-size` run) drives, and the fold that turns a
// directory of completed lease stores back into one campaign.
//
// Layout under a campaign root directory:
//
//   <root>/coordinator.sock   the coordinator's listening socket
//   <root>/leases/lease-<id>  one mini-campaign store per lease
//   <root>/merged             the folded campaign (MergeCampaigns output)
//   <root>/worker-<slot>.log  a managed worker's stdout+stderr
//   <root>/worker.pids        live worker pids (orphan cleanup on restart)
//
// Each lease runs as its own campaign store whose meta carries
// range_begin/range_count: a fresh corpus, a fresh equivalence index, and a
// schedule that is a pure function of (campaign identity, range). That
// purity is the whole fault-tolerance story — a lease can be killed halfway,
// resumed from its own store, or wiped and re-run by another worker, and the
// completed store bytes come out the same, so the final fold is
// byte-identical to an uninterrupted single-process run partitioned into the
// same leases.
#ifndef CHIPMUNK_COORD_CAMPAIGN_RUNNER_H_
#define CHIPMUNK_COORD_CAMPAIGN_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fuzz/campaign_driver.h"

namespace coord {

std::string SocketPath(const std::string& root);
std::string LeaseDir(const std::string& root, uint64_t lease_id);
std::string MergedDir(const std::string& root);

// Does `dir` hold a finished lease store covering [begin, begin + count)?
// True only for a final store: matching range meta, no live writer, and
// every ordinal of the range committed.
bool LeaseComplete(const std::string& dir, uint64_t begin, uint64_t count);

struct LeaseRunnerOptions {
  std::string root;
  // Base campaign options for one lease: the runner copies these and fills
  // campaign_dir / range_begin / range_count / resume per lease.
  // `iterations` must be the full campaign total.
  fuzz::CampaignOptions base;
  // Builds the generator-specific driver for one lease's options.
  std::function<std::unique_ptr<fuzz::CampaignDriver>(
      const fuzz::CampaignOptions&)>
      make_driver;
};

struct LeaseRunnerResult {
  size_t leases_run = 0;       // leases executed (or verified complete) here
  size_t leases_resumed = 0;   // leases continued from a partial store
  bool interrupted = false;    // a graceful stop ended the loop early
};

// Pulls leases from the scheduler until it reports no work (or a graceful
// stop): for each lease, skip it if its store is already complete (crash
// recovery / lost ack), resume it if a compatible partial store exists,
// otherwise run it fresh — then report completion. On a graceful stop the
// current lease's progress is checkpointed in its own store and the lease is
// left unfinished for the scheduler to reissue.
common::StatusOr<LeaseRunnerResult> RunLeases(
    fuzz::OrdinalScheduler& scheduler, const LeaseRunnerOptions& options);

// Folds every complete lease store under <root>/leases (sorted by lease id)
// into a fresh merged store at <root>/merged and returns the merge result.
// `expect_total` > 0 additionally requires the folded commit count to reach
// it (the completeness gate for a final fold; 0 folds whatever is there —
// the online-progress fold).
common::StatusOr<fuzz::CampaignMergeResult> FoldLeases(
    const std::string& root, uint64_t expect_total);

}  // namespace coord

#endif  // CHIPMUNK_COORD_CAMPAIGN_RUNNER_H_
