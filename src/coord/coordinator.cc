#include "src/coord/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <stdio.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/parse.h"

namespace coord {

namespace fs = std::filesystem;

namespace {

double NowS() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Signal handlers forward one byte into the event loop's self-pipe; the
// loop does the actual work outside signal context.
std::atomic<int> g_signal_fd{-1};

void OnSignal(int sig) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char c = sig == SIGCHLD ? 'C' : 'T';
    [[maybe_unused]] ssize_t n = ::write(fd, &c, 1);
  }
}

// Does this pid look like a chipmunk lease worker? Guards the orphan
// SIGKILL against pid reuse by an unrelated process.
bool LooksLikeWorker(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/cmdline",
                   std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  return raw.str().find("--lease-from") != std::string::npos;
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  quarantine_dir_ = options_.quarantine_dir.empty()
                        ? (fs::path(options_.root) / "quarantine").string()
                        : options_.quarantine_dir;
  workers_.resize(options_.workers);
}

Coordinator::~Coordinator() { Shutdown(); }

void Coordinator::Shutdown() {
  if (g_signal_fd.load(std::memory_order_relaxed) == pipe_w_ && pipe_w_ >= 0) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path().c_str());
    listen_fd_ = -1;
  }
  if (pipe_r_ >= 0) {
    ::close(pipe_r_);
    pipe_r_ = -1;
  }
  if (pipe_w_ >= 0) {
    ::close(pipe_w_);
    pipe_w_ = -1;
  }
}

void Coordinator::Log(const std::string& line) const {
  if (options_.verbose) {
    fprintf(stderr, "coordinator: %s\n", line.c_str());
  }
}

common::Status Coordinator::SetupSocket() {
  const std::string path = socket_path();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return common::Invalid("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return common::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a killed coordinator
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return common::IoError("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return common::IoError("listen " + path + ": " + std::strerror(errno));
  }
  return common::OkStatus();
}

common::Status Coordinator::SetupSignalPipe() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return common::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  pipe_r_ = fds[0];
  pipe_w_ = fds[1];
  if (options_.install_signal_handlers) {
    g_signal_fd.store(pipe_w_, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = OnSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    if (options_.workers > 0) {
      sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
      ::sigaction(SIGCHLD, &sa, nullptr);
    }
    ::signal(SIGPIPE, SIG_IGN);  // worker death mid-write is not fatal
  }
  return common::OkStatus();
}

void Coordinator::CleanupOrphans() {
  const fs::path pids = fs::path(options_.root) / "worker.pids";
  std::ifstream in(pids);
  std::string line;
  while (std::getline(in, line)) {
    const size_t space = line.find(' ');
    uint64_t pid = 0;
    if (space == std::string::npos ||
        !common::ParseUint64(line.substr(space + 1), ~uint64_t{0}, &pid)) {
      continue;
    }
    if (LooksLikeWorker(static_cast<pid_t>(pid))) {
      Log("killing orphaned worker pid " + std::to_string(pid) +
          " from a previous coordinator");
      ::kill(static_cast<pid_t>(pid), SIGKILL);
    }
  }
  std::error_code ec;
  fs::remove(pids, ec);
}

void Coordinator::ScanLeases() {
  const uint64_t size = std::max<uint64_t>(1, options_.lease_size);
  for (uint64_t begin = 0, id = 0; begin < options_.total;
       begin += size, ++id) {
    Lease lease;
    lease.id = id;
    lease.begin = begin;
    lease.end = std::min(options_.total, begin + size);
    // Crash recovery: a finished store on disk is a completed lease no
    // matter which coordinator's worker wrote it.
    if (LeaseComplete(LeaseDir(options_.root, id), lease.begin,
                      lease.end - lease.begin)) {
      lease.state = Lease::State::kComplete;
      auto loaded = store::CampaignStore::Load(LeaseDir(options_.root, id));
      if (loaded.ok()) {
        const store::CampaignState st = fuzz::FoldCampaign(*loaded);
        lease.progress = fuzz::LeaseProgress{st.committed, st.crash_states,
                                             st.states_deduped};
      }
      ++outcome_.leases_complete;
    }
    leases_.push_back(lease);
  }
  if (outcome_.leases_complete > 0) {
    Log("recovered " + std::to_string(outcome_.leases_complete) + " of " +
        std::to_string(leases_.size()) + " leases from disk");
  }
}

void Coordinator::WritePidsFile() const {
  std::ofstream out(fs::path(options_.root) / "worker.pids",
                    std::ios::trunc);
  for (size_t slot = 0; slot < workers_.size(); ++slot) {
    if (workers_[slot].alive) {
      out << slot << ' ' << workers_[slot].pid << '\n';
    }
  }
}

void Coordinator::Spawn(size_t slot, bool restart) {
  if (!options_.worker_argv) {
    return;
  }
  const std::vector<std::string> argv = options_.worker_argv(slot);
  if (argv.empty()) {
    return;
  }
  const std::string log_path =
      (fs::path(options_.root) / ("worker-" + std::to_string(slot) + ".log"))
          .string();
  const pid_t pid = ::fork();
  if (pid < 0) {
    Log("fork failed for worker " + std::to_string(slot) + ": " +
        std::strerror(errno));
    // Retry through the normal backoff machinery.
    workers_[slot].restart_at = NowS() + options_.backoff_initial_s;
    return;
  }
  if (pid == 0) {
    // Child: log file on stdout/stderr, then become the worker. Coordinator
    // fds are all CLOEXEC.
    const int logfd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logfd >= 0) {
      ::dup2(logfd, STDOUT_FILENO);
      ::dup2(logfd, STDERR_FILENO);
      if (logfd > STDERR_FILENO) {
        ::close(logfd);
      }
    }
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGCHLD, SIG_DFL);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    fprintf(stderr, "execv %s: %s\n", cargv[0], std::strerror(errno));
    ::_exit(127);
  }
  Worker& w = workers_[slot];
  w.pid = pid;
  w.alive = true;
  w.managed = true;
  w.restart_at = 0;
  if (restart) {
    ++w.restarts;
    ++outcome_.worker_restarts;
  }
  WritePidsFile();
  Log((restart ? "restarted worker " : "started worker ") +
      std::to_string(slot) + " (pid " + std::to_string(pid) + ")");
}

void Coordinator::ReapChildren() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) {
      return;
    }
    for (size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (!w.alive || w.pid != pid) {
        continue;
      }
      w.alive = false;
      w.pid = -1;
      WritePidsFile();
      const std::string how =
          WIFSIGNALED(status)
              ? "signal " + std::to_string(WTERMSIG(status))
              : "exit " + std::to_string(WEXITSTATUS(status));
      // A dead worker's lease grant dies with it. The disconnect usually
      // arrives first and revokes via owner_fd; this is the backstop for a
      // worker that died before its socket teardown was observed.
      for (Lease& lease : leases_) {
        if (lease.state == Lease::State::kGranted &&
            lease.owner_slot == static_cast<int>(slot)) {
          Revoke(lease, ("worker died (" + how + ")").c_str());
        }
      }
      if (!AllResolved() && !draining_) {
        w.backoff_s = w.backoff_s <= 0
                          ? options_.backoff_initial_s
                          : std::min(options_.backoff_max_s, w.backoff_s * 2);
        w.restart_at = NowS() + w.backoff_s;
        Log("worker " + std::to_string(slot) + " died (" + how +
            "); restart in " + std::to_string(w.backoff_s) + "s");
      } else {
        Log("worker " + std::to_string(slot) + " exited (" + how + ")");
      }
      break;
    }
  }
}

void Coordinator::AcceptNew() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;
    }
    conns_.emplace(fd, Conn{});
  }
}

Coordinator::Worker& Coordinator::WorkerFor(int slot) {
  if (slot < 0) {
    slot = 0;
  }
  if (static_cast<size_t>(slot) >= workers_.size()) {
    // Unmanaged client slots (tests, hand-started workers) still get stats.
    workers_.resize(static_cast<size_t>(slot) + 1);
  }
  return workers_[static_cast<size_t>(slot)];
}

Coordinator::Lease* Coordinator::FindLease(uint64_t id) {
  return id < leases_.size() ? &leases_[id] : nullptr;
}

bool Coordinator::AllResolved() const {
  return std::all_of(leases_.begin(), leases_.end(), [](const Lease& l) {
    return l.state == Lease::State::kComplete ||
           l.state == Lease::State::kPoisoned;
  });
}

bool Coordinator::AnyGranted() const {
  return std::any_of(leases_.begin(), leases_.end(), [](const Lease& l) {
    return l.state == Lease::State::kGranted;
  });
}

bool Coordinator::AnyManagedAlive() const {
  return std::any_of(workers_.begin(), workers_.end(),
                     [](const Worker& w) { return w.managed && w.alive; });
}

void Coordinator::GrantTo(int fd, Lease& lease) {
  auto it = conns_.find(fd);
  const int slot = it != conns_.end() ? it->second.slot : -1;
  lease.state = Lease::State::kGranted;
  ++lease.epoch;
  lease.owner_fd = fd;
  lease.owner_slot = slot;
  lease.hb_deadline =
      NowS() + static_cast<double>(options_.heartbeat_ms) / 1000.0;
  lease.progress = fuzz::LeaseProgress{};
  ++WorkerFor(slot).leases_granted;
  Message m;
  m.type = MsgType::kLeaseGrant;
  m.lease_id = lease.id;
  m.epoch = lease.epoch;
  m.begin = lease.begin;
  m.end = lease.end;
  (void)WriteFrame(fd, m);
  Log("granted lease " + std::to_string(lease.id) + " [" +
      std::to_string(lease.begin) + ", " + std::to_string(lease.end) +
      ") epoch " + std::to_string(lease.epoch) + " to worker " +
      std::to_string(slot));
}

void Coordinator::HandleLeaseRequest(int fd) {
  if (!draining_) {
    for (Lease& lease : leases_) {
      if (lease.state == Lease::State::kPending) {
        GrantTo(fd, lease);
        return;
      }
    }
  }
  if (draining_ || AllResolved()) {
    Message m;
    m.type = MsgType::kNoWork;
    (void)WriteFrame(fd, m);
    return;
  }
  // Every unresolved lease is granted right now; one may come back via
  // revocation, so park the request.
  waiters_.push_back(fd);
}

void Coordinator::FlushWaiters() {
  std::vector<int> parked;
  parked.swap(waiters_);
  for (int fd : parked) {
    if (conns_.find(fd) == conns_.end()) {
      continue;  // waiter disconnected meanwhile
    }
    HandleLeaseRequest(fd);
  }
}

void Coordinator::Revoke(Lease& lease, const char* reason) {
  ++outcome_.lease_revocations;
  ++lease.failures;
  Log("revoking lease " + std::to_string(lease.id) + " epoch " +
      std::to_string(lease.epoch) + " (" + reason + ", failure " +
      std::to_string(lease.failures) + "/" +
      std::to_string(options_.max_lease_failures) + ")");
  if (lease.owner_slot >= 0 &&
      static_cast<size_t>(lease.owner_slot) < workers_.size()) {
    Worker& w = workers_[lease.owner_slot];
    if (w.managed && w.alive) {
      // A holder that stopped heartbeating is presumed hung: kill it so two
      // writers never race on one lease store. The connection is left open —
      // any frames a zombie still sends carry a stale epoch and are ignored;
      // EOF cleans the conn up naturally.
      ::kill(w.pid, SIGKILL);
    }
  }
  lease.owner_fd = -1;
  lease.owner_slot = -1;
  if (lease.failures >= options_.max_lease_failures) {
    Poison(lease);
  } else {
    lease.state = Lease::State::kPending;
  }
  FlushWaiters();
}

void Coordinator::Poison(Lease& lease) {
  lease.state = Lease::State::kPoisoned;
  ++outcome_.leases_poisoned;
  Log("poisoning lease " + std::to_string(lease.id) + ": quarantining " +
      std::to_string(lease.end - lease.begin) + " workloads");
  for (uint64_t ordinal = lease.begin; ordinal < lease.end; ++ordinal) {
    ++outcome_.ordinals_quarantined;
    if (!options_.poison_entry) {
      continue;
    }
    chipmunk::QuarantineEntry entry = options_.poison_entry(ordinal);
    entry.lease = "lease-" + std::to_string(lease.id);
    auto written = chipmunk::WriteQuarantineEntry(quarantine_dir_, entry);
    if (!written.ok()) {
      Log("quarantine write failed for ordinal " + std::to_string(ordinal) +
          ": " + written.status().ToString());
    }
  }
  OnLeaseResolved();
}

void Coordinator::FoldOnline() {
  // Progress fold: best effort — completed leases may not cover a
  // contiguous prefix yet, and with fake test clients there may be no
  // stores at all. The final authoritative fold happens in Run()'s epilogue.
  auto folded = FoldLeases(options_.root, 0);
  if (folded.ok()) {
    Log("folded " + std::to_string(outcome_.leases_complete) +
        " complete leases into " + MergedDir(options_.root));
  }
}

void Coordinator::OnLeaseResolved() {
  if (AllResolved()) {
    // Everyone still parked is out of work for good.
    FlushWaiters();
  }
}

void Coordinator::HandleMessage(int fd, const Message& m) {
  switch (m.type) {
    case MsgType::kHello:
      conns_[fd].slot = static_cast<int>(m.worker_slot);
      break;
    case MsgType::kLeaseRequest:
      HandleLeaseRequest(fd);
      break;
    case MsgType::kHeartbeat: {
      Lease* lease = FindLease(m.lease_id);
      if (lease != nullptr && lease->state == Lease::State::kGranted &&
          lease->epoch == m.epoch) {
        lease->hb_deadline =
            NowS() + static_cast<double>(options_.heartbeat_ms) / 1000.0;
        lease->progress =
            fuzz::LeaseProgress{m.committed, m.crash_states, m.states_deduped};
        ++WorkerFor(conns_[fd].slot).heartbeats;
      }
      break;
    }
    case MsgType::kLeaseDone: {
      Lease* lease = FindLease(m.lease_id);
      Message ack;
      ack.type = MsgType::kDoneAck;
      ack.lease_id = m.lease_id;
      ack.epoch = m.epoch;
      if (lease != nullptr && lease->epoch == m.epoch &&
          lease->state == Lease::State::kGranted) {
        lease->state = Lease::State::kComplete;
        lease->owner_fd = -1;
        lease->owner_slot = -1;
        lease->progress =
            fuzz::LeaseProgress{m.committed, m.crash_states, m.states_deduped};
        ++outcome_.leases_complete;
        Worker& w = WorkerFor(conns_[fd].slot);
        ++w.leases_completed;
        w.backoff_s = 0;  // a finished lease resets the restart backoff
        ack.accepted = 1;
        Log("lease " + std::to_string(lease->id) + " complete (" +
            std::to_string(outcome_.leases_complete) + "/" +
            std::to_string(leases_.size()) + ")");
        OnLeaseResolved();
        if (!AllResolved()) {
          FoldOnline();
        }
      } else if (lease != nullptr && lease->epoch == m.epoch &&
                 lease->state == Lease::State::kComplete) {
        // Duplicate completion for the same grant (retransmit after a lost
        // ack): idempotent accept.
        ack.accepted = 1;
      } else {
        // Stale epoch: the lease was revoked (and possibly reissued) after
        // this holder lost it. Its store was already superseded.
        ack.accepted = 0;
        Log("rejected stale completion of lease " + std::to_string(m.lease_id) +
            " epoch " + std::to_string(m.epoch));
      }
      (void)WriteFrame(fd, ack);
      break;
    }
    case MsgType::kStatsRequest: {
      Message reply;
      reply.type = MsgType::kStatsText;
      reply.text = StatsText();
      (void)WriteFrame(fd, reply);
      break;
    }
    default:
      // Replies (grant/ack/stats) never arrive at the coordinator.
      break;
  }
}

void Coordinator::CloseConn(int fd, const char* why) {
  for (Lease& lease : leases_) {
    if (lease.state == Lease::State::kGranted && lease.owner_fd == fd) {
      Revoke(lease, why);
    }
  }
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), fd),
                 waiters_.end());
  ::close(fd);
  conns_.erase(fd);
}

void Coordinator::ReadConn(int fd) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      conns_[fd].reader.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConn(fd, n == 0 ? "worker disconnected" : "socket error");
    return;
  }
  for (;;) {
    Message m;
    std::string why;
    const FrameReader::Result r = conns_[fd].reader.Next(&m, &why);
    if (r == FrameReader::Result::kNeedMore) {
      return;
    }
    if (r == FrameReader::Result::kError) {
      Log("protocol error from fd " + std::to_string(fd) + ": " + why);
      CloseConn(fd, "protocol error");
      return;
    }
    HandleMessage(fd, m);
    if (conns_.find(fd) == conns_.end()) {
      return;  // handler closed the connection
    }
  }
}

void Coordinator::SweepTimers(double now) {
  for (Lease& lease : leases_) {
    if (lease.state == Lease::State::kGranted && now > lease.hb_deadline) {
      Revoke(lease, "heartbeat timeout");
    }
  }
  for (size_t slot = 0; slot < workers_.size(); ++slot) {
    Worker& w = workers_[slot];
    if (!w.managed || w.alive || w.restart_at == 0) {
      continue;
    }
    if (AllResolved() || draining_) {
      w.restart_at = 0;
      continue;
    }
    if (now >= w.restart_at) {
      Spawn(slot, /*restart=*/true);
    }
  }
}

common::Status Coordinator::Init() {
  if (options_.total == 0) {
    return common::Invalid("coordinator needs a nonzero ordinal count");
  }
  if (options_.workers > 0 && !options_.worker_argv) {
    return common::Invalid("managed workers need a worker_argv builder");
  }
  std::error_code ec;
  fs::create_directories(options_.root, ec);
  if (ec) {
    return common::IoError("mkdir " + options_.root + ": " + ec.message());
  }
  CleanupOrphans();
  ScanLeases();
  RETURN_IF_ERROR(SetupSocket());
  RETURN_IF_ERROR(SetupSignalPipe());
  start_s_ = NowS();
  for (size_t slot = 0; slot < options_.workers; ++slot) {
    Spawn(slot, /*restart=*/false);
  }
  return common::OkStatus();
}

void Coordinator::RequestStop() {
  if (pipe_w_ >= 0) {
    const char c = 'T';
    [[maybe_unused]] ssize_t n = ::write(pipe_w_, &c, 1);
  }
}

common::StatusOr<CoordinatorOutcome> Coordinator::Run() {
  if (listen_fd_ < 0) {
    return common::Invalid("coordinator not initialized");
  }
  for (;;) {
    const double now = NowS();
    SweepTimers(now);

    const bool resolved = AllResolved();
    if ((resolved || (draining_ && !AnyGranted())) && !AnyManagedAlive()) {
      break;
    }

    // Poll deadline: the nearest heartbeat or restart timer, capped so
    // signal-flag style state changes are noticed promptly.
    double timeout_s = 0.2;
    for (const Lease& lease : leases_) {
      if (lease.state == Lease::State::kGranted) {
        timeout_s = std::min(timeout_s, std::max(0.0, lease.hb_deadline - now));
      }
    }
    for (const Worker& w : workers_) {
      if (w.managed && !w.alive && w.restart_at > 0) {
        timeout_s = std::min(timeout_s, std::max(0.0, w.restart_at - now));
      }
    }

    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{pipe_r_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(timeout_s * 1000) + 1);
    if (rc < 0 && errno != EINTR) {
      return common::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc > 0) {
      if ((fds[1].revents & POLLIN) != 0) {
        char buf[64];
        ssize_t n = 0;
        bool reap = false;
        while ((n = ::read(pipe_r_, buf, sizeof(buf))) > 0) {
          for (ssize_t i = 0; i < n; ++i) {
            if (buf[i] == 'T' && !draining_) {
              draining_ = true;
              Log("drain requested: no new leases; waiting for " +
                  std::to_string(std::count_if(
                      leases_.begin(), leases_.end(),
                      [](const Lease& l) {
                        return l.state == Lease::State::kGranted;
                      })) +
                  " granted lease(s)");
              FlushWaiters();
            } else if (buf[i] == 'C') {
              reap = true;
            }
          }
        }
        if (reap) {
          ReapChildren();
        }
      }
      if ((fds[0].revents & POLLIN) != 0) {
        AcceptNew();
      }
      for (size_t i = 2; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
            conns_.find(fds[i].fd) != conns_.end()) {
          ReadConn(fds[i].fd);
        }
      }
    }
    // Without signal handlers (tests), reap opportunistically.
    if (!options_.install_signal_handlers && options_.workers > 0) {
      ReapChildren();
    }
  }

  // Epilogue: the fleet is gone (or was never managed); make sure nothing
  // lingers, then write the authoritative fold.
  for (Worker& w : workers_) {
    if (w.managed && w.alive) {
      ::kill(w.pid, SIGTERM);
    }
  }
  const double kill_deadline = NowS() + 5.0;
  while (AnyManagedAlive() && NowS() < kill_deadline) {
    ReapChildren();
    struct timespec ts{0, 50 * 1000 * 1000};
    ::nanosleep(&ts, nullptr);
  }
  for (Worker& w : workers_) {
    if (w.managed && w.alive) {
      ::kill(w.pid, SIGKILL);
      w.alive = false;
    }
  }

  outcome_.leases_total = leases_.size();
  outcome_.drained_early = !AllResolved();
  const bool fully_complete =
      outcome_.leases_complete == leases_.size() && !leases_.empty();
  auto folded =
      FoldLeases(options_.root, fully_complete ? options_.total : 0);
  if (folded.ok()) {
    outcome_.folded = true;
    outcome_.merged = std::move(*folded);
    Log("final fold: " + std::to_string(outcome_.leases_complete) + "/" +
        std::to_string(leases_.size()) + " leases into " +
        MergedDir(options_.root));
  } else if (fully_complete) {
    // A complete campaign that cannot fold is a real failure.
    return folded.status();
  } else {
    Log("no final fold: " + folded.status().ToString());
  }
  return outcome_;
}

std::string Coordinator::StatsText() const {
  std::ostringstream out;
  size_t pending = 0;
  size_t granted = 0;
  uint64_t committed = 0;
  uint64_t crash_states = 0;
  uint64_t deduped = 0;
  for (const Lease& lease : leases_) {
    switch (lease.state) {
      case Lease::State::kPending:
        ++pending;
        break;
      case Lease::State::kGranted:
        ++granted;
        break;
      default:
        break;
    }
    committed += lease.progress.committed;
    crash_states += lease.progress.crash_states;
    deduped += lease.progress.states_deduped;
  }
  const double elapsed = std::max(1e-9, NowS() - start_s_);
  out << "coordinator: root=" << options_.root << " total=" << options_.total
      << " lease_size=" << options_.lease_size
      << " heartbeat_ms=" << options_.heartbeat_ms << "\n";
  out << "leases: " << leases_.size() << " total, " << outcome_.leases_complete
      << " complete, " << granted << " granted, " << pending << " pending, "
      << outcome_.leases_poisoned << " poisoned; "
      << outcome_.lease_revocations << " revocations\n";
  char rate[64];
  snprintf(rate, sizeof(rate), "%.2f", crash_states / elapsed);
  char dedup[64];
  snprintf(dedup, sizeof(dedup), "%.1f",
           crash_states > 0 ? 100.0 * deduped / crash_states : 0.0);
  out << "progress: " << committed << " of " << options_.total
      << " workloads committed, " << crash_states << " crash states (" << rate
      << " states/sec, " << dedup << "% deduped)\n";
  out << "quarantined: " << outcome_.ordinals_quarantined << " workloads in "
      << outcome_.leases_poisoned << " poisoned lease(s)\n";
  for (size_t slot = 0; slot < workers_.size(); ++slot) {
    const Worker& w = workers_[slot];
    out << "worker " << slot << ": ";
    if (w.managed) {
      out << (w.alive ? "pid " + std::to_string(w.pid) : "down") << ", ";
    }
    out << w.leases_granted << " lease(s) granted, " << w.leases_completed
        << " completed, " << w.heartbeats << " heartbeat(s), " << w.restarts
        << " restart(s)";
    for (const Lease& lease : leases_) {
      if (lease.state == Lease::State::kGranted &&
          lease.owner_slot == static_cast<int>(slot)) {
        out << "; holding lease " << lease.id << " ("
            << lease.progress.committed << "/" << (lease.end - lease.begin)
            << " committed)";
        break;
      }
    }
    out << "\n";
  }
  if (draining_) {
    out << "draining: no new leases are being granted\n";
  }
  return out.str();
}

}  // namespace coord
