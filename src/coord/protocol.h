// The coordinator wire protocol: a small length-prefixed, versioned framing
// over a local Unix-domain stream socket.
//
// Frame layout (all integers little-endian):
//
//   [u32 payload_len][payload]
//
// payload:
//
//   [u8 version][u8 type][u32 worker_slot]
//   [u64 lease_id][u64 epoch][u64 begin][u64 end]
//   [u64 committed][u64 crash_states][u64 states_deduped]
//   [u8 accepted][u64 text_len][text bytes]
//
// Every message carries the same uniform payload; fields a message type does
// not use are zero. That keeps the decoder trivial (no per-type schemas), at
// the cost of ~70 bytes per frame — noise for a protocol whose unit of work
// is a lease of whole fuzzing workloads.
//
// Versioning: the version byte leads the payload. A peer that sees a version
// it does not speak fails the frame (and the coordinator drops the
// connection) rather than guessing at field layout. Unknown *types* within a
// known version are likewise an error — the protocol is a closed
// conversation between binaries of one build, the version byte exists so a
// mixed deployment fails loudly instead of corrupting a campaign.
#ifndef CHIPMUNK_COORD_PROTOCOL_H_
#define CHIPMUNK_COORD_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace coord {

inline constexpr uint8_t kProtocolVersion = 1;
// Upper bound on a frame payload; anything larger is a framing error, not a
// huge allocation. Stats text is the only variable-size field.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

enum class MsgType : uint8_t {
  kHello = 1,         // worker -> coordinator: register worker_slot
  kLeaseRequest = 2,  // worker -> coordinator: ask for the next lease
  kLeaseGrant = 3,    // coordinator -> worker: lease_id/epoch/begin/end
  kNoWork = 4,        // coordinator -> worker: no leases left; exit cleanly
  kHeartbeat = 5,     // worker -> coordinator: lease liveness + progress
  kLeaseDone = 6,     // worker -> coordinator: lease fully committed
  kDoneAck = 7,       // coordinator -> worker: accepted=0 means stale epoch
  kStatsRequest = 8,  // observer -> coordinator: ask for a stats snapshot
  kStatsText = 9,     // coordinator -> observer: rendered stats block
};

struct Message {
  uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kHello;
  uint32_t worker_slot = 0;
  uint64_t lease_id = 0;
  uint64_t epoch = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t committed = 0;
  uint64_t crash_states = 0;
  uint64_t states_deduped = 0;
  uint8_t accepted = 0;
  std::string text;
};

// One frame, ready to write to the socket.
std::string EncodeFrame(const Message& m);

// Incremental frame decoder: feed raw socket bytes in any chunking (a torn
// read mid-header, mid-length, or mid-payload just reports kNeedMore), pull
// complete messages out in order. A malformed frame (bad version, unknown
// type, oversized or short payload) is sticky: the stream is poisoned and
// every later Next() fails too — resynchronizing inside a corrupt byte
// stream is not worth guessing about.
class FrameReader {
 public:
  enum class Result { kMessage, kNeedMore, kError };

  void Feed(const char* data, size_t n);
  // On kMessage fills *out; on kError fills *error (first call).
  Result Next(Message* out, std::string* error);

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
  std::string poison_;
};

// Blocking helpers for one fd. WriteFrame sends the whole frame (retrying
// short writes); ReadFrame blocks for one complete message. A clean EOF
// between frames is NotFound; EOF mid-frame or a malformed frame is an
// error.
common::Status WriteFrame(int fd, const Message& m);
common::StatusOr<Message> ReadFrame(int fd, FrameReader* reader);

}  // namespace coord

#endif  // CHIPMUNK_COORD_PROTOCOL_H_
