// Vfs: POSIX-style layer over a FileSystem — path resolution, the file
// descriptor table, and open(2) flag handling. The workload runner, the
// oracle, and the consistency checker all drive file systems through this
// layer so that every system sees identical syscall semantics.
#ifndef CHIPMUNK_VFS_VFS_H_
#define CHIPMUNK_VFS_VFS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/vfs/filesystem.h"

namespace vfs {

struct OpenFlags {
  bool create = false;
  bool excl = false;
  bool trunc = false;
  bool append = false;
};

// Result of resolving the parent directory of a path: the directory inode and
// the final component name.
struct ResolvedParent {
  InodeNum dir = kInvalidIno;
  std::string leaf;
};

class Vfs {
 public:
  explicit Vfs(FileSystem* fs) : fs_(fs) {}

  FileSystem* fs() { return fs_; }

  // ---- Path helpers. ----

  // Resolves an absolute path ("/a/b") to an inode.
  common::StatusOr<InodeNum> Resolve(const std::string& path);

  // Resolves all but the last component; the leaf need not exist.
  common::StatusOr<ResolvedParent> ResolveParent(const std::string& path);

  // ---- POSIX-style syscalls. ----

  common::StatusOr<int> Open(const std::string& path, OpenFlags flags);
  common::Status Close(int fd);

  common::StatusOr<uint64_t> Write(int fd, const uint8_t* data, uint64_t len);
  common::StatusOr<uint64_t> Pwrite(int fd, const uint8_t* data, uint64_t len,
                                    uint64_t off);
  common::StatusOr<uint64_t> ReadFd(int fd, uint8_t* out, uint64_t len);
  common::StatusOr<uint64_t> Pread(int fd, uint8_t* out, uint64_t len,
                                   uint64_t off);

  common::Status Mkdir(const std::string& path);
  common::Status Unlink(const std::string& path);
  common::Status Rmdir(const std::string& path);
  // remove(3): unlink for files, rmdir for directories.
  common::Status Remove(const std::string& path);
  common::Status Link(const std::string& oldpath, const std::string& newpath);
  common::Status Rename(const std::string& oldpath,
                        const std::string& newpath);
  common::Status Truncate(const std::string& path, uint64_t size);
  common::Status FallocateFd(int fd, uint32_t mode, uint64_t off, uint64_t len);
  common::Status FsyncFd(int fd);
  common::Status FdatasyncFd(int fd);
  common::Status Sync();

  common::Status SetXattr(const std::string& path, const std::string& name,
                          const std::vector<uint8_t>& value);
  common::StatusOr<std::vector<uint8_t>> GetXattr(const std::string& path,
                                                  const std::string& name);
  common::Status RemoveXattr(const std::string& path, const std::string& name);
  common::StatusOr<std::vector<std::string>> ListXattrs(const std::string& path);

  common::StatusOr<FsStat> Stat(const std::string& path);
  common::StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path);

  // Reads a whole file's contents by path (checker convenience).
  common::StatusOr<std::vector<uint8_t>> ReadFile(const std::string& path);

  // Number of currently open descriptors (used by winefs CPU assignment and
  // the fuzzer's fd pool).
  int open_fd_count() const;

  // The inode behind an open descriptor, if valid.
  common::StatusOr<InodeNum> FdInode(int fd) const;

  void CloseAll();

 private:
  struct OpenFile {
    InodeNum ino = kInvalidIno;
    uint64_t offset = 0;
    bool append = false;
    bool in_use = false;
  };

  // Validates that `fd` is open and its inode still exists; kBadFd otherwise.
  common::StatusOr<InodeNum> CheckFd(int fd);

  FileSystem* fs_;
  std::vector<OpenFile> fds_;
};

// Splits an absolute path into components; rejects empty components and
// relative paths. "/" yields an empty vector.
common::StatusOr<std::vector<std::string>> SplitPath(const std::string& path);

}  // namespace vfs

#endif  // CHIPMUNK_VFS_VFS_H_
