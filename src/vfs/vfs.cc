#include "src/vfs/vfs.h"

#include <algorithm>

#include "src/common/coverage.h"

namespace vfs {

using common::ErrorCode;
using common::Status;
using common::StatusOr;

StatusOr<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return common::Invalid("path must be absolute: '" + path + "'");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j == i) {
      return common::Invalid("empty path component in '" + path + "'");
    }
    std::string part = path.substr(i, j - i);
    if (part == "." || part == "..") {
      return common::Invalid("'.'/'..' components not supported");
    }
    if (part.size() > 63) {
      return Status(ErrorCode::kNameTooLong, part);
    }
    parts.push_back(std::move(part));
    i = j + 1;
  }
  return parts;
}

StatusOr<InodeNum> Vfs::Resolve(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  InodeNum cur = fs_->RootIno();
  for (const std::string& part : parts) {
    ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(cur));
    if (st.type != FileType::kDirectory) {
      return common::NotDir(path);
    }
    ASSIGN_OR_RETURN(cur, fs_->Lookup(cur, part));
  }
  return cur;
}

StatusOr<ResolvedParent> Vfs::ResolveParent(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return common::Invalid("path has no final component: '" + path + "'");
  }
  InodeNum cur = fs_->RootIno();
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(cur));
    if (st.type != FileType::kDirectory) {
      return common::NotDir(path);
    }
    ASSIGN_OR_RETURN(cur, fs_->Lookup(cur, parts[i]));
  }
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(cur));
  if (st.type != FileType::kDirectory) {
    return common::NotDir(path);
  }
  ResolvedParent out;
  out.dir = cur;
  out.leaf = parts.back();
  return out;
}

StatusOr<int> Vfs::Open(const std::string& path, OpenFlags flags) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));
  InodeNum ino = kInvalidIno;
  auto lookup = fs_->Lookup(parent.dir, parent.leaf);
  if (lookup.ok()) {
    if (flags.create && flags.excl) {
      return common::AlreadyExists(path);
    }
    ino = lookup.value();
    ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
    if (st.type == FileType::kDirectory && (flags.trunc || flags.append)) {
      return common::IsDir(path);
    }
    if (flags.trunc && st.type == FileType::kRegular) {
      RETURN_IF_ERROR(fs_->Truncate(ino, 0));
    }
  } else if (lookup.status().code() == ErrorCode::kNotFound && flags.create) {
    ASSIGN_OR_RETURN(ino, fs_->Create(parent.dir, parent.leaf));
  } else {
    return lookup.status();
  }

  // Reuse the lowest free slot, as POSIX requires.
  size_t slot = fds_.size();
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].in_use) {
      slot = i;
      break;
    }
  }
  if (slot == fds_.size()) {
    fds_.emplace_back();
  }
  fds_[slot] = OpenFile{ino, 0, flags.append, true};
  fs_->OnOpen(ino);
  return static_cast<int>(slot);
}

Status Vfs::Close(int fd) {
  CHIPMUNK_COV();
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].in_use) {
    return common::BadFd("close(" + std::to_string(fd) + ")");
  }
  fds_[fd].in_use = false;
  fs_->OnClose(fds_[fd].ino);
  return common::OkStatus();
}

StatusOr<InodeNum> Vfs::CheckFd(int fd) {
  CHIPMUNK_COV();
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].in_use) {
    return common::BadFd("fd " + std::to_string(fd));
  }
  InodeNum ino = fds_[fd].ino;
  auto st = fs_->GetAttr(ino);
  if (!st.ok()) {
    // The inode was freed underneath the descriptor (see the POSIX deviation
    // note in filesystem.h).
    return common::BadFd("stale fd " + std::to_string(fd));
  }
  return ino;
}

StatusOr<InodeNum> Vfs::FdInode(int fd) const {
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[fd].in_use) {
    return common::BadFd("fd " + std::to_string(fd));
  }
  return fds_[fd].ino;
}

StatusOr<uint64_t> Vfs::Write(int fd, const uint8_t* data, uint64_t len) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, CheckFd(fd));
  OpenFile& of = fds_[fd];
  uint64_t off = of.offset;
  if (of.append) {
    ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
    off = st.size;
  }
  ASSIGN_OR_RETURN(uint64_t written, fs_->Write(ino, off, data, len));
  of.offset = off + written;
  return written;
}

StatusOr<uint64_t> Vfs::Pwrite(int fd, const uint8_t* data, uint64_t len,
                               uint64_t off) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, CheckFd(fd));
  return fs_->Write(ino, off, data, len);
}

StatusOr<uint64_t> Vfs::ReadFd(int fd, uint8_t* out, uint64_t len) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, CheckFd(fd));
  OpenFile& of = fds_[fd];
  ASSIGN_OR_RETURN(uint64_t n, fs_->Read(ino, of.offset, len, out));
  of.offset += n;
  return n;
}

StatusOr<uint64_t> Vfs::Pread(int fd, uint8_t* out, uint64_t len,
                              uint64_t off) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, CheckFd(fd));
  return fs_->Read(ino, off, len, out);
}

Status Vfs::Mkdir(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));
  return fs_->Mkdir(parent.dir, parent.leaf).status();
}

Status Vfs::Unlink(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));
  ASSIGN_OR_RETURN(InodeNum ino, fs_->Lookup(parent.dir, parent.leaf));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
  if (st.type == FileType::kDirectory) {
    return common::IsDir(path);
  }
  return fs_->Unlink(parent.dir, parent.leaf);
}

Status Vfs::Rmdir(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(path));
  ASSIGN_OR_RETURN(InodeNum ino, fs_->Lookup(parent.dir, parent.leaf));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
  if (st.type != FileType::kDirectory) {
    return common::NotDir(path);
  }
  return fs_->Rmdir(parent.dir, parent.leaf);
}

Status Vfs::Remove(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
  if (st.type == FileType::kDirectory) {
    return Rmdir(path);
  }
  return Unlink(path);
}

Status Vfs::Link(const std::string& oldpath, const std::string& newpath) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum target, Resolve(oldpath));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(target));
  if (st.type == FileType::kDirectory) {
    return common::IsDir(oldpath);
  }
  ASSIGN_OR_RETURN(ResolvedParent parent, ResolveParent(newpath));
  if (fs_->Lookup(parent.dir, parent.leaf).ok()) {
    return common::AlreadyExists(newpath);
  }
  return fs_->Link(target, parent.dir, parent.leaf);
}

Status Vfs::Rename(const std::string& oldpath, const std::string& newpath) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(ResolvedParent src, ResolveParent(oldpath));
  ASSIGN_OR_RETURN(ResolvedParent dst, ResolveParent(newpath));
  ASSIGN_OR_RETURN(InodeNum src_ino, fs_->Lookup(src.dir, src.leaf));
  auto dst_lookup = fs_->Lookup(dst.dir, dst.leaf);
  if (dst_lookup.ok()) {
    if (dst_lookup.value() == src_ino) {
      return common::OkStatus();  // rename to itself is a no-op
    }
    ASSIGN_OR_RETURN(FsStat src_st, fs_->GetAttr(src_ino));
    ASSIGN_OR_RETURN(FsStat dst_st, fs_->GetAttr(dst_lookup.value()));
    if (src_st.type == FileType::kDirectory &&
        dst_st.type != FileType::kDirectory) {
      return common::NotDir(newpath);
    }
    if (src_st.type != FileType::kDirectory &&
        dst_st.type == FileType::kDirectory) {
      return common::IsDir(newpath);
    }
    if (dst_st.type == FileType::kDirectory) {
      ASSIGN_OR_RETURN(auto entries, fs_->ReadDir(dst_lookup.value()));
      if (!entries.empty()) {
        return common::NotEmpty(newpath);
      }
    }
  } else if (dst_lookup.status().code() != ErrorCode::kNotFound) {
    return dst_lookup.status();
  }
  // Disallow moving a directory into itself.
  ASSIGN_OR_RETURN(FsStat src_st, fs_->GetAttr(src_ino));
  if (src_st.type == FileType::kDirectory && dst.dir == src_ino) {
    return common::Invalid("cannot move directory into itself");
  }
  return fs_->Rename(src.dir, src.leaf, dst.dir, dst.leaf);
}

Status Vfs::Truncate(const std::string& path, uint64_t size) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
  if (st.type == FileType::kDirectory) {
    return common::IsDir(path);
  }
  return fs_->Truncate(ino, size);
}

Status Vfs::FallocateFd(int fd, uint32_t mode, uint64_t off, uint64_t len) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, CheckFd(fd));
  if (len == 0) {
    return common::Invalid("fallocate len == 0");
  }
  return fs_->Fallocate(ino, mode, off, len);
}

Status Vfs::FsyncFd(int fd) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, CheckFd(fd));
  return fs_->Fsync(ino);
}

Status Vfs::FdatasyncFd(int fd) {
  CHIPMUNK_COV();
  // Our file systems make no distinction between fsync and fdatasync.
  return FsyncFd(fd);
}

Status Vfs::Sync() { return fs_->SyncAll(); }

Status Vfs::SetXattr(const std::string& path, const std::string& name,
                     const std::vector<uint8_t>& value) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->SetXattr(ino, name, value);
}

StatusOr<std::vector<uint8_t>> Vfs::GetXattr(const std::string& path,
                                             const std::string& name) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->GetXattr(ino, name);
}

Status Vfs::RemoveXattr(const std::string& path, const std::string& name) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->RemoveXattr(ino, name);
}

StatusOr<std::vector<std::string>> Vfs::ListXattrs(const std::string& path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListXattrs(ino));
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<FsStat> Vfs::Stat(const std::string& path) {
  CHIPMUNK_COV();
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  return fs_->GetAttr(ino);
}

StatusOr<std::vector<DirEntry>> Vfs::ReadDir(const std::string& path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
  if (st.type != FileType::kDirectory) {
    return common::NotDir(path);
  }
  ASSIGN_OR_RETURN(std::vector<DirEntry> entries, fs_->ReadDir(ino));
  std::sort(entries.begin(), entries.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return entries;
}

StatusOr<std::vector<uint8_t>> Vfs::ReadFile(const std::string& path) {
  ASSIGN_OR_RETURN(InodeNum ino, Resolve(path));
  ASSIGN_OR_RETURN(FsStat st, fs_->GetAttr(ino));
  if (st.type != FileType::kRegular) {
    return common::IsDir(path);
  }
  std::vector<uint8_t> out(st.size, 0);
  if (st.size > 0) {
    ASSIGN_OR_RETURN(uint64_t n, fs_->Read(ino, 0, st.size, out.data()));
    out.resize(n);
  }
  return out;
}

int Vfs::open_fd_count() const {
  int n = 0;
  for (const OpenFile& of : fds_) {
    if (of.in_use) {
      ++n;
    }
  }
  return n;
}

void Vfs::CloseAll() {
  CHIPMUNK_COV();
  for (OpenFile& of : fds_) {
    if (of.in_use) {
      of.in_use = false;
      fs_->OnClose(of.ino);
    }
  }
  fds_.clear();
}

}  // namespace vfs
