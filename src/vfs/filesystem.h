// FileSystem: the inode-level interface every file system in this repo
// implements (the five PM file systems, the weak-guarantee ext4dax, and the
// in-DRAM reference FS used as the checker oracle).
//
// The split mirrors the Linux VFS: path walking, fd tables, and open-flag
// handling live in vfs::Vfs (vfs.h); concrete file systems implement
// inode-granularity operations plus mkfs/mount/unmount. Mount() runs crash
// recovery — it must rebuild all volatile state from media alone.
//
// POSIX deviation (documented in DESIGN.md): when an inode's last link is
// removed it is freed immediately, even if file descriptors still reference
// it. The Vfs layer surfaces subsequent fd access as kBadFd. Orphan-inode
// retention is orthogonal to the crash-consistency mechanisms under test.
#ifndef CHIPMUNK_VFS_FILESYSTEM_H_
#define CHIPMUNK_VFS_FILESYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace vfs {

using InodeNum = uint64_t;
inline constexpr InodeNum kInvalidIno = 0;

enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
};

struct FsStat {
  InodeNum ino = kInvalidIno;
  FileType type = FileType::kNone;
  uint64_t size = 0;
  uint32_t nlink = 0;
};

struct DirEntry {
  std::string name;
  InodeNum ino = kInvalidIno;

  bool operator==(const DirEntry& other) const = default;
};

// fallocate(2) mode bits supported by the tested systems.
inline constexpr uint32_t kFallocKeepSize = 1u << 0;
inline constexpr uint32_t kFallocPunchHole = 1u << 1;
inline constexpr uint32_t kFallocZeroRange = 1u << 2;

// What the file system promises across a crash (§2, strong vs weak
// guarantees). The checker tests exactly these properties.
struct CrashGuarantees {
  // Every syscall's effects are durable by the time it returns (no fsync
  // needed). False for ext4dax/xfs-dax style systems.
  bool synchronous = true;
  // Metadata syscalls (creat/mkdir/link/unlink/rename/...) are atomic with
  // respect to a crash.
  bool atomic_metadata = true;
  // Data writes are atomic with respect to a crash (CoW or journaled data).
  bool atomic_write = false;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::string Name() const = 0;
  virtual CrashGuarantees Guarantees() const = 0;

  // Formats the media with a fresh, empty file system.
  virtual common::Status Mkfs() = 0;

  // Mounts the file system, running crash recovery: all volatile (DRAM)
  // state must be rebuilt from media alone.
  virtual common::Status Mount() = 0;

  virtual common::Status Unmount() = 0;
  virtual bool IsMounted() const = 0;

  virtual InodeNum RootIno() const { return 1; }

  // ---- Namespace operations. ----
  virtual common::StatusOr<InodeNum> Lookup(InodeNum dir,
                                            const std::string& name) = 0;
  virtual common::StatusOr<InodeNum> Create(InodeNum dir,
                                            const std::string& name) = 0;
  virtual common::StatusOr<InodeNum> Mkdir(InodeNum dir,
                                           const std::string& name) = 0;
  virtual common::Status Unlink(InodeNum dir, const std::string& name) = 0;
  virtual common::Status Rmdir(InodeNum dir, const std::string& name) = 0;
  // Hard link: target must be a regular file.
  virtual common::Status Link(InodeNum target, InodeNum dir,
                              const std::string& name) = 0;
  virtual common::Status Rename(InodeNum src_dir, const std::string& src_name,
                                InodeNum dst_dir,
                                const std::string& dst_name) = 0;

  // ---- File operations. ----
  virtual common::StatusOr<uint64_t> Read(InodeNum ino, uint64_t off,
                                          uint64_t len, uint8_t* out) = 0;
  virtual common::StatusOr<uint64_t> Write(InodeNum ino, uint64_t off,
                                           const uint8_t* data,
                                           uint64_t len) = 0;
  virtual common::Status Truncate(InodeNum ino, uint64_t new_size) = 0;
  virtual common::Status Fallocate(InodeNum ino, uint32_t mode, uint64_t off,
                                   uint64_t len) = 0;
  virtual common::StatusOr<FsStat> GetAttr(InodeNum ino) = 0;
  virtual common::StatusOr<std::vector<DirEntry>> ReadDir(InodeNum dir) = 0;

  // ---- Extended attributes (§4.1: tested on the weak-guarantee systems;
  // the PM-native systems do not support them). ----
  virtual common::Status SetXattr(InodeNum ino, const std::string& name,
                                  const std::vector<uint8_t>& value) {
    return common::NotSupported("xattrs");
  }
  virtual common::StatusOr<std::vector<uint8_t>> GetXattr(
      InodeNum ino, const std::string& name) {
    return common::NotSupported("xattrs");
  }
  virtual common::Status RemoveXattr(InodeNum ino, const std::string& name) {
    return common::NotSupported("xattrs");
  }
  virtual common::StatusOr<std::vector<std::string>> ListXattrs(InodeNum ino) {
    return common::NotSupported("xattrs");
  }

  // ---- Persistence operations (meaningful for weak-guarantee systems). ----
  virtual common::Status Fsync(InodeNum ino) = 0;
  virtual common::Status SyncAll() = 0;

  // ---- Optional context hooks. ----

  // CPU the next operation runs on (per-CPU journals/allocators in winefs).
  // The workload runner derives this from harness state, standing in for the
  // calling core of a multi-process workload.
  virtual void SetCpuHint(int cpu) {}

  // Logical thread issuing the next operation (`tid` in [0, nthreads)).
  // Called by the runner only for multi-threaded workloads, before each op;
  // per-thread file-system state (CPU affinity, owner tracking) keys off it.
  virtual void SetThreadHint(int tid, int nthreads) {}

  // Open-handle notifications from the Vfs layer (splitfs keeps per-handle
  // staging state in user space).
  virtual void OnOpen(InodeNum ino) {}
  virtual void OnClose(InodeNum ino) {}
};

}  // namespace vfs

#endif  // CHIPMUNK_VFS_FILESYSTEM_H_
