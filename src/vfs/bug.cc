#include "src/vfs/bug.h"

namespace vfs {

const std::vector<BugInfo>& AllBugs() {
  static const std::vector<BugInfo> kBugs = {
      {BugId::kNova1LogPageInitOrder, "novafs", "File system unmountable",
       "all", BugType::kLogic, false, 1},
      {BugId::kNova2InodeFlushMissing, "novafs",
       "File is unreadable and undeletable", "mkdir, creat", BugType::kPm,
       false, 2},
      {BugId::kNova3TailOverrun, "novafs", "File system unmountable",
       "write, pwrite, link, unlink, rename", BugType::kLogic, false, 3},
      {BugId::kNova4RenameInPlaceDelete, "novafs",
       "Rename atomicity broken (file disappears)", "rename", BugType::kLogic,
       false, 4},
      {BugId::kNova5RenameOverwriteInPlace, "novafs",
       "Rename atomicity broken (old file still present)", "rename",
       BugType::kLogic, false, 5},
      {BugId::kNova6LinkInPlaceCount, "novafs",
       "Link count incremented before new file appears", "link",
       BugType::kLogic, false, 6},
      {BugId::kNova7TruncateRebuildDrop, "novafs", "File data lost",
       "truncate", BugType::kLogic, false, 7},
      {BugId::kNova8FallocClobber, "novafs", "File data lost", "fallocate",
       BugType::kLogic, false, 8},
      {BugId::kFortis9CsumNotFlushed, "novafs-fortis",
       "Unreadable directory or file data loss", "unlink, rmdir, truncate",
       BugType::kPm, false, 9},
      {BugId::kFortis10ReplicaNotJournaled, "novafs-fortis",
       "File is undeletable", "write, pwrite, link, rename", BugType::kLogic,
       false, 10},
      {BugId::kFortis11TruncListReplay, "novafs-fortis",
       "FS attempts to deallocate free blocks", "truncate", BugType::kLogic,
       false, 11},
      {BugId::kFortis12TruncCsumStale, "novafs-fortis", "File is unreadable",
       "truncate", BugType::kLogic, false, 12},
      {BugId::kPmfs13TruncListBeforeAllocator, "pmfs",
       "File system unmountable", "truncate, unlink, rmdir, rename",
       BugType::kLogic, false, 13},
      {BugId::kPmfs14WriteNotSynchronous, "pmfs", "Write is not synchronous",
       "write, pwrite", BugType::kPm, false, 14},
      {BugId::kWinefs15WriteNotSynchronous, "winefs",
       "Write is not synchronous", "write, pwrite", BugType::kPm, false, 14},
      {BugId::kPmfs16JournalOobReplay, "pmfs", "Out-of-bounds memory access",
       "all", BugType::kLogic, false, 16},
      {BugId::kPmfs17NtWriteSizeRace, "pmfs", "File data lost",
       "write, pwrite", BugType::kPm, false, 17},
      {BugId::kWinefs18NtWriteSizeRace, "winefs", "File data lost",
       "write, pwrite", BugType::kPm, false, 17},
      {BugId::kWinefs19PerCpuJournalIndex, "winefs",
       "File is unreadable and undeletable", "all", BugType::kLogic, true,
       19},
      {BugId::kWinefs20UnalignedInPlace, "winefs",
       "Data write is not atomic in strict mode", "write, pwrite",
       BugType::kLogic, true, 20},
      {BugId::kSplitfs21MetaNotSynchronous, "splitfs",
       "Operation is not synchronous", "all metadata", BugType::kLogic, false,
       21},
      {BugId::kSplitfs22RelinkOffsetDrop, "splitfs", "File data lost",
       "write, pwrite", BugType::kLogic, true, 22},
      {BugId::kSplitfs23AppendCommitEarly, "splitfs", "File data lost",
       "write, pwrite", BugType::kLogic, true, 23},
      {BugId::kSplitfs24CommitByteNotFlushed, "splitfs",
       "Operation is not synchronous", "all", BugType::kLogic, false, 24},
      {BugId::kSplitfs25RenameSecondLine, "splitfs",
       "Rename atomicity broken (old file still present)", "rename",
       BugType::kLogic, false, 25},
      // Synthetic robustness seed (not from Table 1): exercises the recovery
      // sandbox. Recovery mounts spin on media reads forever; the op-budget
      // watchdog converts the hang into a recovery-failure report.
      {BugId::kNova26RecoveryLoop, "novafs",
       "Recovery hangs re-reading the superblock", "all", BugType::kLogic,
       false, 26},
      // Synthetic concurrency seeds (not from Table 1): armed only by
      // multi-threaded workloads, detected only by the isolation oracle.
      {BugId::kWinefs27TornHandoffCommit, "winefs",
       "Cross-CPU journal handoff commits without a fence (torn metadata)",
       "write, pwrite", BugType::kPm, true, 27},
      {BugId::kNova28DramMediaRace, "novafs",
       "Cross-thread write publishes the log tail without flushing "
       "(DRAM index diverges from media)",
       "write, pwrite", BugType::kPm, true, 28},
  };
  return kBugs;
}

const BugInfo* FindBug(BugId id) {
  for (const BugInfo& info : AllBugs()) {
    if (info.id == id) {
      return &info;
    }
  }
  return nullptr;
}

}  // namespace vfs
