// The injected bug corpus (Table 1 of the paper).
//
// Each of the paper's 23 unique bugs (25 rows counting the two PMFS/WineFS
// shared bugs once per system) is reimplemented as a toggleable defect in the
// corresponding file system. With a bug disabled the *fixed* code path runs;
// with it enabled, the analogous defective mechanism runs. DESIGN.md maps
// each id to the injected mechanism.
#ifndef CHIPMUNK_VFS_BUG_H_
#define CHIPMUNK_VFS_BUG_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace vfs {

enum class BugId : int {
  kNone = 0,
  // novafs
  kNova1LogPageInitOrder = 1,
  kNova2InodeFlushMissing = 2,
  kNova3TailOverrun = 3,
  kNova4RenameInPlaceDelete = 4,
  kNova5RenameOverwriteInPlace = 5,
  kNova6LinkInPlaceCount = 6,
  kNova7TruncateRebuildDrop = 7,
  kNova8FallocClobber = 8,
  // novafs fortis mode
  kFortis9CsumNotFlushed = 9,
  kFortis10ReplicaNotJournaled = 10,
  kFortis11TruncListReplay = 11,
  kFortis12TruncCsumStale = 12,
  // pmfs
  kPmfs13TruncListBeforeAllocator = 13,
  kPmfs14WriteNotSynchronous = 14,   // shared with winefs (15)
  kPmfs16JournalOobReplay = 16,
  kPmfs17NtWriteSizeRace = 17,       // shared with winefs (18)
  // winefs
  kWinefs15WriteNotSynchronous = 15,
  kWinefs18NtWriteSizeRace = 18,
  kWinefs19PerCpuJournalIndex = 19,
  kWinefs20UnalignedInPlace = 20,
  // splitfs
  kSplitfs21MetaNotSynchronous = 21,
  kSplitfs22RelinkOffsetDrop = 22,
  kSplitfs23AppendCommitEarly = 23,
  kSplitfs24CommitByteNotFlushed = 24,
  kSplitfs25RenameSecondLine = 25,
  // Synthetic robustness seed, NOT a Table 1 row: recovery of a crashed
  // novafs image livelocks re-polling the superblock instead of proceeding.
  // Exists to exercise the recovery sandbox (op-budget watchdog, quarantine,
  // `chipmunk repro`) end to end from the CLI; detected as a
  // recovery-failure report rather than a consistency divergence.
  kNova26RecoveryLoop = 26,
  // Synthetic concurrency seeds, NOT Table 1 rows: defects that only arm
  // under multi-threaded workloads (SetThreadHint with nthreads > 1) and
  // whose crash states pass mount/usability/fsck — only the
  // linearization-based isolation oracle flags them.
  //
  // 27: a cross-CPU handoff of a winefs per-CPU-journal commit omits the
  // fence between marking the journal valid and applying the in-place
  // updates, so a crash can leave partially-applied metadata with no valid
  // journal to roll it back.
  kWinefs27TornHandoffCommit = 27,
  // 28: a cross-thread handoff of a novafs write publishes the new log tail
  // with a temporal store on the previous owner's (never-drained) flush
  // queue; the DRAM index sees the write but no crash state does.
  kNova28DramMediaRace = 28,
};

// The bug's Table 1 classification.
enum class BugType { kLogic, kPm };

struct BugInfo {
  BugId id;
  const char* fs;           // file system the toggle lives in
  const char* consequence;  // Table 1 "Consequence" column
  const char* syscalls;     // Table 1 "Affected system calls" column
  BugType type;
  bool fuzzer_only;  // not reachable by ACE-shaped workloads (§4.3)
  int unique_bug;    // unique-fix number (14/15 and 17/18 share fixes)
};

// All 25 Table 1 rows in order, plus the synthetic robustness seed (26).
const std::vector<BugInfo>& AllBugs();

// Lookup; returns nullptr for kNone/unknown.
const BugInfo* FindBug(BugId id);

// A set of enabled bugs, passed to file-system constructors.
class BugSet {
 public:
  BugSet() = default;
  explicit BugSet(std::initializer_list<BugId> ids) : ids_(ids) {}

  static BugSet Single(BugId id) { return BugSet({id}); }

  void Enable(BugId id) { ids_.insert(id); }
  void Disable(BugId id) { ids_.erase(id); }
  bool Has(BugId id) const { return ids_.count(id) != 0; }
  bool empty() const { return ids_.empty(); }
  const std::set<BugId>& ids() const { return ids_; }

 private:
  std::set<BugId> ids_;
};

}  // namespace vfs

#endif  // CHIPMUNK_VFS_BUG_H_
