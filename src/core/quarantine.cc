#include "src/core/quarantine.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "src/common/parse.h"
#include "src/workload/serialize.h"

namespace chipmunk {

namespace fs = std::filesystem;

namespace {

std::string Sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += ok ? c : '_';
  }
  return out.empty() ? "entry" : out;
}

// meta.txt values are single-line; fold embedded newlines.
std::string OneLine(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

common::Status WriteFile(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::IoError("cannot open " + path.string() + " for writing");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return common::IoError("short write to " + path.string());
  }
  return common::OkStatus();
}

common::StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::NotFound("cannot open " + path.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::string QuarantineEntryName(const QuarantineEntry& e) {
  const char* tag = e.is_state() ? "-s" : "-w";
  return Sanitize(e.fs) + "-" + Sanitize(e.workload.name) + tag +
         std::to_string(e.ordinal);
}

common::StatusOr<std::string> WriteQuarantineEntry(const std::string& dir,
                                                   const QuarantineEntry& e) {
  std::error_code ec;
  const fs::path entry = fs::path(dir) / QuarantineEntryName(e);
  fs::create_directories(entry, ec);
  if (ec) {
    return common::IoError("cannot create quarantine dir " + entry.string() +
                           ": " + ec.message());
  }

  std::ostringstream meta;
  meta << "kind: " << e.kind << "\n";
  meta << "fs: " << e.fs << "\n";
  meta << "bugs: " << e.bugs << "\n";
  meta << "device_size: " << e.device_size << "\n";
  meta << "workload: " << OneLine(e.workload.name) << "\n";
  meta << "ordinal: " << e.ordinal << "\n";
  meta << "crash_point: " << e.crash_point << "\n";
  meta << "subset: " << OneLine(e.subset) << "\n";
  meta << "sandbox_budget: " << e.sandbox_budget << "\n";
  meta << "inject: " << (e.inject ? 1 : 0) << "\n";
  meta << "fault_seed: " << e.fault_seed << "\n";
  meta << "fault_detail: " << OneLine(e.fault_detail) << "\n";
  meta << "report_kind: " << e.report_kind << "\n";
  meta << "detail: " << OneLine(e.detail) << "\n";
  if (!e.lease.empty()) {
    meta << "lease: " << OneLine(e.lease) << "\n";
  }
  RETURN_IF_ERROR(WriteFile(entry / "meta.txt", meta.str()));
  RETURN_IF_ERROR(
      WriteFile(entry / "workload.txt", workload::Serialize(e.workload)));
  if (e.is_state()) {
    RETURN_IF_ERROR(WriteFile(
        entry / "image.bin",
        std::string(e.image.begin(), e.image.end())));
    RETURN_IF_ERROR(WriteFile(entry / "trace.txt", e.trace_window));
  }
  return entry.string();
}

common::StatusOr<QuarantineEntry> ReadQuarantineEntry(
    const std::string& entry_dir) {
  const fs::path entry(entry_dir);
  ASSIGN_OR_RETURN(std::string meta_text, ReadFile(entry / "meta.txt"));

  std::map<std::string, std::string> kv;
  std::istringstream lines(meta_text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t colon = line.find(": ");
    if (colon == std::string::npos) {
      continue;
    }
    kv[line.substr(0, colon)] = line.substr(colon + 2);
  }

  QuarantineEntry e;
  e.kind = kv["kind"];
  if (e.kind != "state" && e.kind != "workload") {
    return common::Invalid(entry_dir + "/meta.txt: bad kind '" + e.kind + "'");
  }
  e.fs = kv["fs"];
  e.bugs = kv["bugs"];
  e.subset = kv["subset"];
  e.fault_detail = kv["fault_detail"];
  e.report_kind = kv["report_kind"];
  e.detail = kv["detail"];
  e.lease = kv["lease"];
  // Strict parsing: std::stoull would throw on garbage and silently accept
  // signs — a hand-edited or corrupted meta.txt must surface as kInvalid.
  std::string bad_key;
  auto num = [&kv, &bad_key](const char* key) -> uint64_t {
    const std::string& v = kv[key];
    if (v.empty()) {
      return 0;
    }
    uint64_t parsed = 0;
    if (!common::ParseUint64(v, std::numeric_limits<uint64_t>::max(),
                             &parsed) &&
        bad_key.empty()) {
      bad_key = key;
    }
    return parsed;
  };
  e.device_size = num("device_size");
  e.ordinal = num("ordinal");
  e.crash_point = num("crash_point");
  e.sandbox_budget = num("sandbox_budget");
  e.inject = num("inject") != 0;
  e.fault_seed = num("fault_seed");
  if (!bad_key.empty()) {
    return common::Invalid(entry_dir + "/meta.txt: '" + bad_key +
                           "' is not a non-negative integer");
  }

  ASSIGN_OR_RETURN(std::string wl_text, ReadFile(entry / "workload.txt"));
  ASSIGN_OR_RETURN(e.workload,
                   workload::ParseWorkload(wl_text, kv["workload"]));
  e.workload.name = kv["workload"];

  if (e.is_state()) {
    ASSIGN_OR_RETURN(std::string image, ReadFile(entry / "image.bin"));
    e.image.assign(image.begin(), image.end());
    if (e.device_size != 0 && e.image.size() != e.device_size) {
      return common::Invalid(entry_dir + ": image.bin is " +
                             std::to_string(e.image.size()) +
                             " bytes, meta says " +
                             std::to_string(e.device_size));
    }
    auto trace = ReadFile(entry / "trace.txt");
    if (trace.ok()) {
      e.trace_window = std::move(trace).value();
    }
  }
  return e;
}

}  // namespace chipmunk
