// FsConfig: how the harness instantiates a file system under test — both the
// recorded instance and the fresh oracle/crash-state instances.
#ifndef CHIPMUNK_CORE_FS_CONFIG_H_
#define CHIPMUNK_CORE_FS_CONFIG_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "src/pmem/pm.h"
#include "src/vfs/filesystem.h"

namespace chipmunk {

struct FsConfig {
  std::string name;
  size_t device_size = 2 * 1024 * 1024;
  std::function<std::unique_ptr<vfs::FileSystem>(pmem::Pm*)> make;
  // Comma-separated injected-bug ids baked into `make` ("" = none). Recorded
  // in quarantine metadata so `chipmunk repro` can rebuild the same config.
  std::string bugs;
};

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_FS_CONFIG_H_
