// Options shared by the harness and the crash-state replay engine.
#ifndef CHIPMUNK_CORE_HARNESS_OPTIONS_H_
#define CHIPMUNK_CORE_HARNESS_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/pmem/fault.h"

namespace analysis {
struct InvariantSet;
}  // namespace analysis

namespace chipmunk {

// Read-only view of a crash-state equivalence index (campaign store). The
// replay engine asks Contains(hash) before mounting a crash state; a hit
// means a byte-identical state (image chain + check context) was already
// verified consistent, so the mount + checks are skipped and the state is
// counted as deduped instead.
class StateDedupIndex {
 public:
  virtual ~StateDedupIndex() = default;
  virtual bool Contains(uint64_t hash) const = 0;
};

struct HarnessOptions {
  // Maximum number of in-flight units replayed per crash state; 0 means
  // exhaustive (all subset sizes up to n-1, i.e. 2^n - 1 states per fence).
  size_t replay_cap = 0;
  // With replay_cap == 0, fences with more than `safety_limit` units fall
  // back to `safety_cap` (prevents a single outlier from exploding).
  size_t safety_limit = 10;
  size_t safety_cap = 2;
  bool check_mid_syscall = true;
  bool stop_at_first_report = false;
  size_t max_crash_states = 0;  // 0 = unlimited
  // Coalesce runs of large non-temporal stores (file data) into one unit,
  // and additionally test a small number of partial-data states per unit
  // (§3.2: "checks only a small subset of states with missing data").
  bool coalesce_data = true;
  size_t data_write_threshold = 256;
  // Ablation / alternative persistence model (§3.6): when true, in-flight
  // writes persist strictly in program order, so only prefixes of the
  // in-flight set are crash states (a "strict/ordered persistency" model,
  // and the behaviour of a generator that ignores store reordering).
  bool prefix_only = false;
  // Worker threads for crash-state construction and checking; 0 means one
  // per hardware thread. Results are bit-identical for every value.
  size_t jobs = 1;
  // Replay workers run against page-granular copy-on-write overlays of the
  // base snapshot instead of private deep copies. Purely a materialization
  // strategy: reports, counters, and quarantine artifacts are bit-identical
  // either way. Off only for A/B benchmarking (`--no-cow`).
  bool cow_images = true;
  // Representative-state pruning (Pathfinder-style): cluster the crash
  // states of each fence window by the set of device pages their applied
  // in-flight writes touch, mount only the first state of each class (the
  // representative, in canonical enumeration order), and let its verdict
  // stand for the class. Pruned members still count toward crash_states and
  // the max_crash_states budget — the visited ordinal space is unchanged —
  // but are never mounted and never enter the clean-state equivalence index
  // (their images were not verified). A heuristic: states in one class can
  // differ in bytes, so the default remains exhaustive. Ignored under fault
  // injection (fault decisions are keyed by state ordinal; skipping mounts
  // would silently drop fault coverage).
  bool representative = false;
  // Record temporal stores and run the static persistence linter over the
  // trace; findings merge into the run's reports as kLintFinding entries.
  bool lint = false;
  // Drop in-flight units whose writes match the durable image byte-for-byte
  // (the linter's no-op classification) from the replay enumeration. Reports
  // are unchanged; the crash-state count shrinks. With max_crash_states > 0
  // the budget may cut off at a different point than an unpruned run.
  bool prune_noop_fences = false;
  // Recovery sandbox: cooperative media-op budget for each guarded section
  // (one crash state's mount + checks; the record stage and live probe get a
  // multiple of it). 0 disables the watchdog — exceptions are still caught.
  uint64_t sandbox_op_budget = 1'000'000;
  // Seeded deterministic media fault injection applied to crash states
  // (torn stores, bit flips, read poison). When enabled the checker verdict
  // becomes robustness-only: fail cleanly or recover, never crash/hang.
  pmem::FaultPlan fault_plan;
  // When non-empty, recovery failures are serialized here (crash-state
  // image + trace window + workload) for `chipmunk repro`; at most
  // quarantine_max state entries per replayed workload.
  std::string quarantine_dir;
  size_t quarantine_max = 8;
  // Crash-state equivalence index (campaign store). When set (and fault
  // injection is off), crash states whose canonical hash is in the index are
  // skipped instead of mounted; see ReplayResult::states_deduped. The
  // pointee must outlive the replay run. nullptr disables dedup.
  const StateDedupIndex* dedup_index = nullptr;
  // Violation-targeted replay: order each fence window's crash states so
  // states that stage an implicated ordering violation — a finding's
  // outrunning write applied while its should-be-durable-first counterpart
  // is still in flight (analysis::SuspectPairs) — are mounted right after
  // the durable-prefix state. Pure visitation-order change: with no budget
  // or first-report cutoff the reports are bit-identical to an untargeted
  // run, and under cutoffs the budget buys the exposing states first.
  // Enables temporal-store trace logging (like lint) so the analyzer sees
  // issue points. Ignored with fault injection (fault decisions are keyed
  // by canonical state ordinal).
  bool targeted = false;
  // Mined persistence-ordering invariants consulted by targeted replay (and
  // by the harness's HB lint pass) to flag and prioritize violations. The
  // pointee must outlive the run. nullptr means HB-rule pairs only.
  const analysis::InvariantSet* invariants = nullptr;
  // Linearization oracle for multi-threaded workloads: crash states are
  // accepted if they match ANY linearization of completed + in-flight ops
  // (kIsolationViolation when none match). When off, multi-threaded runs
  // skip expected-state comparison entirely (mount/usability/fsck/OOB
  // checks still run). Irrelevant for single-threaded workloads.
  bool isolation_oracle = true;
  // How many realized-schedule ops back another thread's op may still be
  // treated as in flight. Bounds the linearization count per crash point at
  // 2^(threads-1); larger windows accept more states (more permissive,
  // never less sound) but cost more oracle images.
  size_t isolation_window = 4;
};

struct InflightSample {
  int syscall_index;
  size_t writes;  // raw in-flight write count at a fence (pre-coalescing)
};

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_HARNESS_OPTIONS_H_
