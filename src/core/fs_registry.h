// Registry of testable file-system configurations, keyed by the names used
// throughout the paper: novafs, novafs-fortis, pmfs, winefs, ext4dax,
// splitfs. Benches, examples, tests, and the fuzzer all build FsConfigs here.
#ifndef CHIPMUNK_CORE_FS_REGISTRY_H_
#define CHIPMUNK_CORE_FS_REGISTRY_H_

#include <string>
#include <vector>

#include "src/core/fs_config.h"
#include "src/vfs/bug.h"

namespace chipmunk {

// All registered file-system names.
std::vector<std::string> RegisteredFsNames();

// Builds a config for `name` with the given injected-bug set.
common::StatusOr<FsConfig> MakeFsConfig(const std::string& name,
                                        vfs::BugSet bugs = {},
                                        size_t device_size = 2 * 1024 * 1024);

// Convenience: the config hosting a specific Table 1 bug (per the catalog's
// `fs` field), with exactly that bug enabled.
common::StatusOr<FsConfig> MakeBugConfig(vfs::BugId bug,
                                         size_t device_size = 2 * 1024 * 1024);

// The in-DRAM reference file system as an FsConfig (ignores the Pm; it never
// touches media). Not part of RegisteredFsNames() — it is not a PM file
// system — but the linter uses it as the known-clean baseline.
FsConfig MakeReferenceConfig(size_t device_size = 2 * 1024 * 1024);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_FS_REGISTRY_H_
