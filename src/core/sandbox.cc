#include "src/core/sandbox.h"

#include <exception>
#include <string>

namespace chipmunk {

SandboxResult RunSandboxed(pmem::Pm* pm, const SandboxOptions& options,
                           const std::function<common::Status()>& body) {
  SandboxResult result;
  OpBudgetWatchdog watchdog(options.op_budget);
  // Budget 0 = watchdog off: skip the hook entirely so the unguarded path
  // pays nothing per media op (exception containment still applies).
  const bool watch = pm != nullptr && options.op_budget != 0;
  if (watch) {
    pm->AddHook(&watchdog);
  }
  try {
    result.status = body();
  } catch (const RecoveryBudgetExceeded& e) {
    result.outcome = SandboxOutcome::kTimeout;
    result.status = common::RecoveryTimeout(
        "recovery exceeded its media-op budget of " + std::to_string(e.budget));
  } catch (const std::exception& e) {
    result.outcome = SandboxOutcome::kException;
    result.status =
        common::Internal(std::string("recovery threw: ") + e.what());
  } catch (...) {
    result.outcome = SandboxOutcome::kException;
    result.status = common::Internal("recovery threw a non-standard exception");
  }
  if (watch) {
    pm->RemoveHook(&watchdog);
  }
  result.ops_used = watchdog.ops();
  return result;
}

}  // namespace chipmunk
