#include "src/core/oracle.h"

#include <algorithm>

#include "src/core/runner.h"
#include "src/pmem/pm_device.h"

namespace chipmunk {

using common::Status;
using common::StatusOr;

std::string FileVersion::ToString() const {
  if (unreadable) {
    return "<unreadable>";
  }
  if (!exists) {
    return "<absent>";
  }
  std::string s = type == vfs::FileType::kDirectory ? "dir" : "file";
  s += " size=" + std::to_string(size) + " nlink=" + std::to_string(nlink);
  if (type == vfs::FileType::kDirectory) {
    s += " entries=[";
    for (const auto& e : entries) {
      s += e + ",";
    }
    s += "]";
  } else if (!content.empty()) {
    uint32_t h = 0;
    for (uint8_t b : content) {
      h = h * 131 + b;
    }
    s += " content-hash=" + std::to_string(h);
  }
  return s;
}

StateSnapshot CaptureSnapshot(vfs::Vfs& vfs,
                              const std::vector<std::string>& universe) {
  StateSnapshot snap;
  for (const std::string& path : universe) {
    FileVersion v;
    auto st = vfs.Stat(path);
    if (!st.ok()) {
      if (st.status().code() == common::ErrorCode::kNotFound ||
          st.status().code() == common::ErrorCode::kNotDir) {
        v.exists = false;
      } else {
        v.unreadable = true;
      }
      snap[path] = std::move(v);
      continue;
    }
    v.exists = true;
    v.type = st->type;
    v.size = st->size;
    v.nlink = st->nlink;
    if (st->type == vfs::FileType::kRegular) {
      auto content = vfs.ReadFile(path);
      if (content.ok()) {
        v.content = std::move(*content);
      } else {
        v.unreadable = true;
      }
    } else if (st->type == vfs::FileType::kDirectory) {
      auto entries = vfs.ReadDir(path);
      if (entries.ok()) {
        for (const auto& e : *entries) {
          v.entries.push_back(e.name);
        }
        std::sort(v.entries.begin(), v.entries.end());
      } else {
        v.unreadable = true;
      }
    }
    auto names = vfs.ListXattrs(path);
    if (names.ok()) {
      for (const std::string& name : *names) {
        auto value = vfs.GetXattr(path, name);
        if (value.ok()) {
          v.xattrs[name] = std::move(*value);
        } else {
          v.unreadable = true;
        }
      }
    } else if (names.status().code() != common::ErrorCode::kNotSupported) {
      v.unreadable = true;
    }
    snap[path] = std::move(v);
  }
  return snap;
}

StatusOr<OracleTrace> BuildOracle(const FsConfig& config,
                                  const workload::Workload& w) {
  pmem::PmDevice dev(config.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config.make(&pm);
  RETURN_IF_ERROR(fs->Mkfs());
  RETURN_IF_ERROR(fs->Mount());

  OracleTrace oracle;
  oracle.universe = w.Universe();
  vfs::Vfs vfs(fs.get());
  WorkloadRunner runner(&w, &vfs, nullptr);
  for (size_t i = 0; i < w.ops.size(); ++i) {
    oracle.pre.push_back(CaptureSnapshot(vfs, oracle.universe));
    oracle.statuses.push_back(runner.Step(i));
    oracle.post.push_back(CaptureSnapshot(vfs, oracle.universe));
  }
  if (pm.faulted()) {
    return common::Status(pm.fault());
  }
  return oracle;
}

}  // namespace chipmunk
