// Linearization oracle for multi-threaded workloads (the isolation check).
//
// A multi-threaded workload has no single expected serial history: at a
// crash point inside syscall i, each *other* thread may have an op in
// flight whose effects legally either survive or vanish — the kernel made
// no promise about their order relative to the crashing op. The oracle
// therefore enumerates the valid linearizations of completed-plus-in-flight
// ops and accepts a crash state that matches ANY of them; a state matching
// none is an isolation violation (CheckKind::kIsolationViolation).
//
// Linearizations are modeled as exclusion subsets: for syscall i, the
// candidates are each other thread's most recent state-mutating op within
// `window` ops before i (the configurable in-flight window). Every subset S
// of candidates yields one linearization image pair:
//   pre  = run ops {j < i} \ S in realized order on a fresh file system
//   post = the same plus op i
// Crash states mid-syscall-i must match some (pre, post) pair under the
// classic atomicity rules; states at syscall boundaries must equal some
// post image (op i returned, so its effects are mandatory).
//
// Soundness: enumerating *more* images than the kernel could actually
// produce only makes the check more permissive — it can mask a bug behind
// an unreachable linearization, never report a correct state. The window
// bound works the same way in reverse: it limits how far back an op can be
// treated as in-flight, keeping the subset count (<= 2^(threads-1) per op)
// and the image count small at the cost of treating older ops as committed.
#ifndef CHIPMUNK_CORE_LINEARIZATION_H_
#define CHIPMUNK_CORE_LINEARIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/fs_config.h"
#include "src/core/oracle.h"
#include "src/workload/workload.h"

namespace chipmunk {

struct LinearizationOracle {
  // Snapshot universe — identical to OracleTrace::universe for the same
  // workload, so checker reports name the same paths.
  std::vector<std::string> universe;
  size_t window = 0;

  // Deduplicated linearization images, each the no-crash final state of one
  // op subset run in realized order on a fresh file system.
  std::vector<StateSnapshot> images;

  // pairs[i]: for syscall i, the (pre, post) image index pairs of every
  // linearization — one per exclusion subset of i's in-flight candidates.
  struct PairRef {
    size_t pre = 0;
    size_t post = 0;
  };
  std::vector<std::vector<PairRef>> pairs;

  // Fresh-FS executions performed while building (bench/overhead metric;
  // smaller than the naive count thanks to image memoization).
  size_t image_runs = 0;
};

// Builds the oracle by executing every distinct op subset once. Fails if
// any execution trips a media fault (mirrors BuildOracle). `window` == 0
// degenerates to a single linearization per op (serial order only).
common::StatusOr<LinearizationOracle> BuildLinearizationOracle(
    const FsConfig& config, const workload::Workload& w, size_t window);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_LINEARIZATION_H_
