#include "src/core/replay_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "src/analysis/invariants.h"
#include "src/analysis/lint.h"
#include "src/common/coverage.h"
#include "src/common/hash.h"
#include "src/core/quarantine.h"
#include "src/core/sandbox.h"
#include "src/pmem/fault.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"
#include "src/workload/serialize.h"

namespace chipmunk {

using pmem::PmOp;
using pmem::PmOpKind;
using workload::OpKind;

namespace {

// Saved pre-images for temporarily applied in-flight writes.
struct Applied {
  uint64_t off;
  std::vector<uint8_t> old_bytes;
};

void ApplyTraceOp(pmem::Pm& pm, const PmOp& op, std::vector<Applied>* saved) {
  if (!op.IsWrite()) {
    return;
  }
  if (saved != nullptr) {
    saved->push_back(Applied{op.off, pm.ReadVec(op.off, op.data.size())});
  }
  pm.RestoreRaw(op.off, op.data.data(), op.data.size());
}

void Revert(pmem::Pm& pm, std::vector<Applied>& saved) {
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    pm.RestoreRaw(it->off, it->old_bytes.data(), it->old_bytes.size());
  }
  saved.clear();
}

// Enumerates subsets of {0..k-1} of size `size` in lexicographic order,
// invoking fn for each; fn returns false to stop.
bool ForEachCombination(size_t k, size_t size,
                        const std::function<bool(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> idx(size);
  for (size_t i = 0; i < size; ++i) {
    idx[i] = i;
  }
  if (size > k) {
    return true;
  }
  while (true) {
    if (!fn(idx)) {
      return false;
    }
    // Advance to the next combination.
    size_t i = size;
    while (i > 0) {
      --i;
      if (idx[i] != i + k - size) {
        ++idx[i];
        for (size_t j = i + 1; j < size; ++j) {
          idx[j] = idx[j - 1] + 1;
        }
        break;
      }
      if (i == 0) {
        return true;
      }
    }
    if (size == 0) {
      return true;
    }
  }
}

bool IsSyncFamily(OpKind kind) {
  return kind == OpKind::kFsync || kind == OpKind::kFdatasync ||
         kind == OpKind::kSync;
}

// One crash point: either a fence whose in-flight subsets are enumerated, or
// a post-syscall synchrony check. Tasks carry a contiguous range of global
// crash-state ordinals [start, start + count) matching the order a
// sequential replay would visit them in.
struct Task {
  enum class Kind { kFence, kSyscallEnd };
  Kind kind = Kind::kFence;
  uint64_t crash_point = 0;  // fence ordinal recorded in reports
  size_t fences_before = 0;  // fence windows durable at this point
  int syscall_index = -1;
  size_t raw_inflight = 0;  // pre-coalescing write count (stats)
  std::vector<ReplayEngine::Unit> units;  // kFence only
  size_t max_size = 0;                    // kFence subset-size cap
  std::vector<std::string> sync_paths;    // kSyscallEnd, weak guarantees
  uint64_t start = 0;
  uint64_t count = 0;
  // Canonical equivalence hash of each crash state in this task, indexed by
  // local ordinal (ordinal - start). Populated only when Plan::dedup is set.
  std::vector<uint64_t> state_hashes;
  // Representative pruning: repr_of[j] is the local ordinal of state j's
  // class representative (repr_of[j] == j marks a representative). Classes
  // group states by the set of device pages their applied writes touch; the
  // representative is the first class member in canonical enumeration order,
  // so repr_of[j] <= j always. Populated only when Plan::representative.
  std::vector<uint32_t> repr_of;
  // Targeted visitation order: visit_order[v] is the *canonical* local
  // ordinal (position in the untargeted enumeration) of the v-th state to
  // visit. The durable-prefix state stays first, then states that apply a
  // suspect pair's outrunning write while its should-be-durable-first write
  // is still in flight, then the rest — canonical order within each group.
  // Empty means identity (untargeted, or the reorder would be a no-op).
  // repr_of and state_hashes stay indexed by canonical local ordinal; the
  // budget / first-report cutoffs key on the visitation ordinal
  // task.start + v.
  std::vector<uint32_t> visit_order;
};

struct Plan {
  std::vector<Task> tasks;
  // Trace indices made durable by each fence, in fence order (all fences,
  // including those with no crash point).
  std::vector<std::vector<size_t>> fence_windows;
  uint64_t total_states = 0;
  // Equivalence hashing active: a dedup index is installed and fault
  // injection is off (fault decisions are keyed by state ordinal and trace
  // shape, which the state hash deliberately does not cover).
  bool dedup = false;
  // Representative-state pruning active: requested and fault injection is
  // off (skipping member mounts would silently drop fault coverage).
  bool representative = false;
  // Violation-targeted visitation active: requested and fault injection is
  // off (fault decisions are keyed by canonical state ordinal).
  bool targeted = false;
};

struct OrdinalReport {
  uint64_t ordinal = 0;
  BugReport report;
};

constexpr uint64_t kNoReport = ~uint64_t{0};

// --- Crash-state equivalence hashing -----------------------------------
//
// A crash state's canonical hash must determine the checker's clean/buggy
// verdict: two states with equal hashes either both report or both pass.
// The verdict is a pure function of (mounted image bytes, check context),
// so the hash covers
//   * the durable image: base-image bytes chained with every fenced write
//     window in order (a superset of the final image bytes — two different
//     write histories hashing differently is a harmless false miss),
//   * the applied in-flight writes that complete the crash image,
//   * the check context: serialized workload, full oracle (universe, every
//     pre/post snapshot, syscall statuses), crash guarantees, the per-task
//     syscall index / mid-syscall flag / sync paths, and the sandbox budget
//     (the watchdog threshold changes the verdict for livelocking mounts).
// Report-only metadata (crash_point, subset) is deliberately excluded: only
// *clean* states enter the index, and those fields cannot flip a verdict.
// FS name / bug set / fault plan are excluded here because the campaign
// store only exposes an index to runs with identical campaign metadata.

void HashString(common::Fnv64& h, std::string_view s) {
  h.Update(static_cast<uint64_t>(s.size()));
  h.Update(s);
}

void HashWrite(common::Fnv64& h, const PmOp& op) {
  h.Update(op.off);
  h.Update(static_cast<uint64_t>(op.data.size()));
  h.Update(op.data.data(), op.data.size());
}

void HashSnapshot(common::Fnv64& h, const StateSnapshot& snap) {
  h.Update(static_cast<uint64_t>(snap.size()));
  for (const auto& [path, version] : snap) {
    HashString(h, path);
    HashString(h, version.ToString());
  }
}

// The per-workload part of the context hash, shared by every state.
uint64_t HashWorkloadContext(const workload::Workload& w,
                             const OracleTrace& oracle,
                             vfs::CrashGuarantees guarantees,
                             const HarnessOptions& options) {
  common::Fnv64 h;
  HashString(h, workload::Serialize(w));
  h.Update(static_cast<uint64_t>(oracle.universe.size()));
  for (const std::string& path : oracle.universe) {
    HashString(h, path);
  }
  h.Update(static_cast<uint64_t>(oracle.pre.size()));
  for (size_t i = 0; i < oracle.pre.size(); ++i) {
    HashSnapshot(h, oracle.pre[i]);
    HashSnapshot(h, oracle.post[i]);
  }
  h.Update(static_cast<uint64_t>(oracle.statuses.size()));
  for (const common::Status& s : oracle.statuses) {
    HashString(h, s.ToString());
  }
  h.Update(static_cast<uint64_t>(guarantees.synchronous) |
           static_cast<uint64_t>(guarantees.atomic_metadata) << 1 |
           static_cast<uint64_t>(guarantees.atomic_write) << 2);
  h.Update(options.sandbox_op_budget);
  if (w.threads > 1) {
    // Multi-threaded verdicts depend on the isolation-oracle configuration;
    // folding it in only for threads > 1 keeps every existing
    // single-threaded dedup key stable.
    h.Update(0x69736f6cULL);  // "isol"
    h.Update(static_cast<uint64_t>(options.isolation_oracle));
    h.Update(static_cast<uint64_t>(options.isolation_window));
  }
  return h.digest();
}

// The per-task part: everything in CheckContext that varies between tasks
// and can change the verdict.
common::Fnv64 HashTaskContext(uint64_t workload_ctx, uint64_t durable_digest,
                              const Task& task) {
  common::Fnv64 h;
  h.Update(workload_ctx);
  h.Update(durable_digest);
  h.Update(static_cast<uint64_t>(task.kind == Task::Kind::kFence ? 1 : 2));
  h.Update(static_cast<uint64_t>(task.syscall_index));
  h.Update(static_cast<uint64_t>(task.sync_paths.size()));
  for (const std::string& path : task.sync_paths) {
    HashString(h, path);
  }
  return h;
}

// Page-set signature for representative clustering: the sorted set of device
// pages the state's applied in-flight writes touch. Within one fence task the
// rest of the check context (durable image chain, oracle window, syscall
// index) is constant, so the page set alone names the update-behavior class.
uint64_t PageSignature(const pmem::Trace& trace,
                       const std::vector<size_t>& applied) {
  std::vector<uint64_t> pages;
  for (size_t idx : applied) {
    const PmOp& op = trace[idx];
    if (op.data.empty()) {
      continue;
    }
    const uint64_t first = op.off / pmem::PmDevice::kPageSize;
    const uint64_t last =
        (op.off + op.data.size() - 1) / pmem::PmDevice::kPageSize;
    for (uint64_t p = first; p <= last; ++p) {
      pages.push_back(p);
    }
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  common::Fnv64 h;
  h.Update(static_cast<uint64_t>(pages.size()));
  for (uint64_t p : pages) {
    h.Update(p);
  }
  return h.digest();
}

Plan BuildPlan(const pmem::Trace& trace, const std::vector<uint8_t>& base,
               const workload::Workload& w, const OracleTrace& oracle,
               vfs::CrashGuarantees guarantees, const HarnessOptions& options) {
  Plan plan;
  plan.dedup = options.dedup_index != nullptr && !options.fault_plan.enabled();
  plan.representative =
      options.representative && !options.fault_plan.enabled();
  plan.targeted = options.targeted && !options.fault_plan.enabled();
  // Directed ordering suspects from happens-before findings and
  // mined-invariant violations: (first, outran) means `first` should have
  // been durable before `outran` was issued, so the crash state applying
  // `outran` while `first` is still in flight is the one that exposes the
  // violation. Each fence window visits those states right after the
  // durable-prefix state (which stays first: it is where missing-durability
  // bugs surface, and it needs no steering).
  std::vector<std::pair<size_t, size_t>> suspects;
  if (plan.targeted) {
    suspects = analysis::SuspectPairs(trace, options.invariants);
  }
  int cur_syscall = -1;
  uint64_t fence_seq = 0;
  size_t writes_since_check = 0;
  std::vector<size_t> inflight;

  // Running hash of the durable image: base bytes, then each fenced write
  // window in order. Snapshotting digest() at a crash point captures exactly
  // the durable state the in-flight subsets are applied on top of.
  common::Fnv64 durable;
  uint64_t workload_ctx = 0;
  if (plan.dedup) {
    durable.Update(base.data(), base.size());
    workload_ctx = HashWorkloadContext(w, oracle, guarantees, options);
  }

  // No-op-fence pruning: drop units whose every write already matches the
  // durable image (and overlaps no differing write) from the enumeration
  // universe. Disabled under prefix_only: removing a middle unit would turn
  // non-prefix unpruned states into prefixes of the pruned universe.
  const bool prune = options.prune_noop_fences && !options.prefix_only;
  std::vector<analysis::FencePruneInfo> prune_info;
  if (prune) {
    prune_info = analysis::AnalyzeNoopFences(trace, base);
  }

  for (size_t t = 0; t < trace.size(); ++t) {
    const PmOp& op = trace[t];
    if (op.IsWrite()) {
      inflight.push_back(t);
      ++writes_since_check;
      continue;
    }
    if (op.kind == PmOpKind::kFence) {
      ++fence_seq;
      const bool enumerate = guarantees.synchronous &&
                             options.check_mid_syscall && cur_syscall >= 0 &&
                             !inflight.empty();
      if (enumerate) {
        Task task;
        task.kind = Task::Kind::kFence;
        task.crash_point = fence_seq;
        task.fences_before = plan.fence_windows.size();
        task.syscall_index = cur_syscall;
        task.raw_inflight = inflight.size();
        task.units = ReplayEngine::BuildUnits(trace, inflight, options);
        const size_t k = task.units.size();
        size_t max_size = k == 0 ? 0 : k - 1;
        if (options.replay_cap > 0) {
          max_size = std::min(max_size, options.replay_cap);
        } else if (k > options.safety_limit) {
          max_size = std::min(max_size, options.safety_cap);
        }
        if (prune) {
          const auto& noop = prune_info[plan.fence_windows.size()].noop_writes;
          if (!noop.empty()) {
            auto is_noop = [&noop](size_t idx) {
              return std::binary_search(noop.begin(), noop.end(), idx);
            };
            task.units.erase(
                std::remove_if(task.units.begin(), task.units.end(),
                               [&is_noop](const ReplayEngine::Unit& u) {
                                 return std::all_of(u.op_indices.begin(),
                                                    u.op_indices.end(),
                                                    is_noop);
                               }),
                task.units.end());
          }
        }
        // max_size stays derived from the unpruned unit count: an unpruned
        // run enumerates subset sizes 0..max_size, so the pruned run must
        // visit exactly the surviving subsets of those sizes (sizes beyond
        // the surviving unit count are vacuous in the enumerator). Deriving
        // it from the pruned count could enumerate the full surviving set —
        // an image the unpruned run never checks.
        task.max_size = max_size;
        common::Fnv64 task_ctx;
        if (plan.dedup) {
          task_ctx = HashTaskContext(workload_ctx, durable.digest(), task);
        }
        // Suspect pairs whose both ends are in this window's (pruned) unit
        // universe. A pair with `first` in an earlier window is inert here:
        // `first` is already durable, so no state of this window can apply
        // `outran` without it. Like the class table below, this runs in the
        // sequential planning pass so the visitation order is identical for
        // every --jobs.
        std::vector<std::pair<size_t, size_t>> task_suspects;
        if (plan.targeted && !suspects.empty()) {
          std::vector<size_t> window_ops;
          for (const ReplayEngine::Unit& u : task.units) {
            window_ops.insert(window_ops.end(), u.op_indices.begin(),
                              u.op_indices.end());
          }
          std::sort(window_ops.begin(), window_ops.end());
          auto in_window = [&window_ops](size_t idx) {
            return std::binary_search(window_ops.begin(), window_ops.end(),
                                      idx);
          };
          for (const auto& pair : suspects) {
            if (in_window(pair.first) && in_window(pair.second)) {
              task_suspects.push_back(pair);
            }
          }
        }
        std::vector<bool> hot;  // per canonical local: exposes a pair?
        // Class table for representative pruning: first local ordinal seen
        // per page signature. Built here, in the sequential planning pass,
        // so the representative assignment is identical for every --jobs.
        std::map<uint64_t, uint32_t> classes;
        ForEachFenceState(task.units, task.max_size, options.prefix_only,
                          [&](const std::vector<size_t>& applied,
                              const std::vector<size_t>&) {
                            const auto local =
                                static_cast<uint32_t>(task.count);
                            ++task.count;
                            if (plan.dedup) {
                              common::Fnv64 h = task_ctx;
                              h.Update(static_cast<uint64_t>(applied.size()));
                              for (size_t idx : applied) {
                                HashWrite(h, trace[idx]);
                              }
                              task.state_hashes.push_back(h.digest());
                            }
                            if (plan.representative) {
                              const uint64_t sig = PageSignature(trace, applied);
                              const auto it =
                                  classes.try_emplace(sig, local).first;
                              task.repr_of.push_back(it->second);
                            }
                            if (!task_suspects.empty()) {
                              // `applied` is ascending in every enumeration
                              // branch (units and combinations are ordered;
                              // partial-data variants sort or take a prefix).
                              auto applied_has = [&applied](size_t idx) {
                                return std::binary_search(applied.begin(),
                                                          applied.end(), idx);
                              };
                              bool exposing = false;
                              for (const auto& pair : task_suspects) {
                                if (applied_has(pair.second) &&
                                    !applied_has(pair.first)) {
                                  exposing = true;
                                  break;
                                }
                              }
                              hot.push_back(exposing);
                            }
                            return true;
                          });
        if (!task_suspects.empty() && !hot.empty()) {
          // Stable partition of canonical locals: the durable-prefix state
          // (local 0, the empty subset) stays first, then every exposing
          // state, then the rest. An identity permutation stays empty.
          std::vector<uint32_t> order;
          order.reserve(hot.size());
          order.push_back(0);
          for (uint32_t j = 1; j < hot.size(); ++j) {
            if (hot[j]) {
              order.push_back(j);
            }
          }
          for (uint32_t j = 1; j < hot.size(); ++j) {
            if (!hot[j]) {
              order.push_back(j);
            }
          }
          bool identity = true;
          for (uint32_t j = 0; j < order.size(); ++j) {
            if (order[j] != j) {
              identity = false;
              break;
            }
          }
          if (!identity) {
            task.visit_order = std::move(order);
          }
        }
        task.start = plan.total_states;
        plan.total_states += task.count;
        plan.tasks.push_back(std::move(task));
      }
      // The fence makes everything in flight persistent.
      if (plan.dedup) {
        for (size_t idx : inflight) {
          HashWrite(durable, trace[idx]);
        }
      }
      plan.fence_windows.push_back(std::move(inflight));
      inflight.clear();
      continue;
    }
    if (op.kind == PmOpKind::kMarker) {
      if (op.marker == pmem::MarkerKind::kSyscallBegin) {
        cur_syscall = op.syscall_index;
      } else if (op.marker == pmem::MarkerKind::kSyscallEnd) {
        const int i = op.syscall_index;
        const OpKind kind = w.ops[i].kind;
        const bool strong_check = guarantees.synchronous;
        const bool weak_check = !guarantees.synchronous && IsSyncFamily(kind);
        // Check when media changed — or when the oracle says the op changed
        // visible state, which catches ops that (buggily) wrote nothing.
        const bool op_had_effect =
            oracle.pre[i] != oracle.post[i] || writes_since_check > 0;
        if ((strong_check || weak_check) && op_had_effect) {
          Task task;
          task.kind = Task::Kind::kSyscallEnd;
          task.crash_point = fence_seq;
          task.fences_before = plan.fence_windows.size();
          task.syscall_index = i;
          if (weak_check) {
            if (kind == OpKind::kSync) {
              task.sync_paths = oracle.universe;
            } else if (!w.ops[i].path.empty()) {
              task.sync_paths = {w.ops[i].path};
            }
          }
          task.start = plan.total_states;
          task.count = 1;
          if (plan.dedup) {
            // Same framing as a fence state with zero applied writes.
            task.state_hashes.push_back(
                HashTaskContext(workload_ctx, durable.digest(), task)
                    .Update(uint64_t{0})
                    .digest());
          }
          plan.total_states += 1;
          plan.tasks.push_back(std::move(task));
        }
        // Forget the media activity this syscall produced whether or not a
        // check ran: a skipped check must not make a later op's
        // `op_had_effect` spuriously true. Writes still in flight carry
        // over — they have not been covered by any check yet.
        writes_since_check = inflight.size();
        cur_syscall = -1;
      }
      continue;
    }
  }
  return plan;
}

// The per-worker replay loop. Workers claim tasks from the shared counter
// (each worker therefore sees a monotonically increasing subsequence and can
// advance its private image by applying only the fence windows between its
// previous task and the next), check every crash state not excluded by the
// budget/first-report cutoffs, and record reports with their global ordinal.
class Worker {
 public:
  Worker(const FsConfig* config, const HarnessOptions* options,
         const pmem::Trace* trace, const Plan* plan,
         const std::vector<uint8_t>* base, const workload::Workload* w,
         const OracleTrace* oracle, const LinearizationOracle* lin,
         vfs::CrashGuarantees guarantees, std::atomic<size_t>* next_task,
         std::atomic<uint64_t>* min_report)
      : options_(options),
        trace_(trace),
        plan_(plan),
        w_(w),
        oracle_(oracle),
        lin_(lin),
        guarantees_(guarantees),
        next_task_(next_task),
        min_report_(min_report),
        // CoW: the worker's private image is a page-granular overlay of the
        // shared base snapshot — construction is O(pages) bookkeeping, and
        // only pages the fence windows / in-flight subsets touch are copied.
        dev_(options->cow_images ? pmem::PmDevice(base)
                                 : pmem::PmDevice(*base)),
        pm_(&dev_),
        checker_(config),
        sandbox_{options->sandbox_op_budget} {}

  std::vector<OrdinalReport> TakeReports() { return std::move(reports_); }

  void Run() {
    const uint64_t budget = options_->max_crash_states;
    while (true) {
      const size_t ti = next_task_->fetch_add(1, std::memory_order_relaxed);
      if (ti >= plan_->tasks.size()) {
        return;
      }
      const Task& task = plan_->tasks[ti];
      // Task starts are monotonically increasing, so once one task lies
      // wholly beyond a cutoff every later task does too. min_report only
      // ever decreases, which keeps the early exit safe.
      if (budget != 0 && task.start >= budget) {
        return;
      }
      if (options_->stop_at_first_report &&
          task.start > min_report_->load(std::memory_order_relaxed)) {
        return;
      }
      SyncTo(task.fences_before);
      if (task.kind == Task::Kind::kSyscallEnd) {
        CheckSyscallEnd(task);
      } else {
        CheckFence(task);
      }
    }
  }

 private:
  // Advances the private durable image to "all writes fenced by the first
  // `fences` fences applied".
  void SyncTo(size_t fences) {
    for (; fences_applied_ < fences; ++fences_applied_) {
      for (size_t idx : plan_->fence_windows[fences_applied_]) {
        ApplyTraceOp(pm_, (*trace_)[idx], nullptr);
      }
    }
  }

  // A state is skipped (not checked, not counted) when the deterministic
  // merge can never visit it: past the crash-state budget, or past an
  // already-found report under stop_at_first_report.
  bool Skip(uint64_t ordinal) const {
    if (options_->max_crash_states != 0 &&
        ordinal >= options_->max_crash_states) {
      return true;
    }
    return options_->stop_at_first_report &&
           ordinal > min_report_->load(std::memory_order_relaxed);
  }

  void Record(uint64_t ordinal, BugReport report) {
    if (options_->stop_at_first_report) {
      uint64_t prev = min_report_->load(std::memory_order_relaxed);
      while (ordinal < prev &&
             !min_report_->compare_exchange_weak(prev, ordinal)) {
      }
    }
    reports_.push_back(OrdinalReport{ordinal, std::move(report)});
  }

  // Mutates the private image according to the fault decisions, pushing undo
  // entries into `saved` so the existing Revert handles rollback. The tear
  // restores the pre-image captured when the torn op was applied (the store
  // tore at the crash boundary: one half old, one half new).
  void InjectFaults(const pmem::FaultDecisions& d, std::vector<Applied>& saved) {
    if (d.tear && d.tear_index < saved.size()) {
      const std::vector<uint8_t> pre(
          saved[d.tear_index].old_bytes.begin() + d.tear_rel,
          saved[d.tear_index].old_bytes.begin() + d.tear_rel + d.tear_len);
      saved.push_back(Applied{d.tear_off, pm_.ReadVec(d.tear_off, d.tear_len)});
      pm_.RestoreRaw(d.tear_off, pre.data(), pre.size());
    }
    if (d.flip) {
      std::vector<uint8_t> cur = pm_.ReadVec(d.flip_off, 1);
      saved.push_back(Applied{d.flip_off, cur});
      const uint8_t flipped = cur[0] ^ d.flip_mask;
      pm_.RestoreRaw(d.flip_off, &flipped, 1);
    }
    if (d.poison) {
      dev_.Poison(d.poison_off, d.poison_len);
    }
  }

  void CheckFence(const Task& task) {
    const bool inject = options_->fault_plan.enabled();
    // `ordinal` is the visitation ordinal (cutoffs, report keys, fault
    // seeds); `local` is the canonical local ordinal (repr_of, state_hashes).
    // They coincide except under targeted visitation, which never runs with
    // fault injection (Plan::targeted excludes it).
    auto check = [&](uint64_t ordinal, uint64_t local,
                     const std::vector<size_t>& applied,
                     const std::vector<size_t>& subset) {
      if (Skip(ordinal)) {
        // Ordinals only grow within a task, so the rest is skippable too.
        return false;
      }
      if (plan_->representative && task.repr_of[local] != local) {
        // Non-representative class member: its representative (an earlier
        // canonical ordinal in this task) is mounted instead and its
        // verdict stands for the class. The merge re-derives this
        // decision for the states_pruned counter.
        return true;
      }
      if (plan_->dedup &&
          options_->dedup_index->Contains(task.state_hashes[local])) {
        // Verified clean in an earlier run with identical campaign
        // metadata: skip the mount + checks. The merge re-derives this
        // decision for the states_deduped counter.
        return true;
      }
      std::vector<Applied> saved;
      for (size_t idx : applied) {
        ApplyTraceOp(pm_, (*trace_)[idx], &saved);
      }
      CheckContext ctx;
      ctx.w = w_;
      ctx.oracle = oracle_;
      ctx.lin = lin_;
      ctx.guarantees = guarantees_;
      ctx.syscall_index = task.syscall_index;
      ctx.mid_syscall = true;
      ctx.crash_point = task.crash_point;
      ctx.subset = subset;
      ctx.sandbox = &sandbox_;
      if (inject) {
        const pmem::FaultDecisions d = pmem::PlanStateFaults(
            options_->fault_plan, ordinal, *trace_, applied, dev_.size());
        InjectFaults(d, saved);
        ctx.fault_injected = true;
        ctx.fault_note = pmem::DescribeFaults(d);
      }
      auto report = checker_.CheckCrashState(pm_, ctx);
      if (inject) {
        dev_.ClearPoison();
      }
      Revert(pm_, saved);
      if (report.has_value()) {
        Record(ordinal, std::move(*report));
      }
      return true;
    };
    if (task.visit_order.empty()) {
      uint64_t local = 0;
      ForEachFenceState(task.units, task.max_size, options_->prefix_only,
                        [&](const std::vector<size_t>& applied,
                            const std::vector<size_t>& subset) {
                          const uint64_t cur = local++;
                          return check(task.start + cur, cur, applied, subset);
                        });
      return;
    }
    // Targeted visitation: materialize the canonical enumeration once, then
    // visit in the planned order.
    std::vector<std::pair<std::vector<size_t>, std::vector<size_t>>> states;
    states.reserve(task.visit_order.size());
    ForEachFenceState(task.units, task.max_size, options_->prefix_only,
                      [&states](const std::vector<size_t>& applied,
                                const std::vector<size_t>& subset) {
                        states.emplace_back(applied, subset);
                        return true;
                      });
    for (uint64_t v = 0; v < task.visit_order.size(); ++v) {
      const uint32_t local = task.visit_order[v];
      if (!check(task.start + v, local, states[local].first,
                 states[local].second)) {
        return;
      }
    }
  }

  void CheckSyscallEnd(const Task& task) {
    if (Skip(task.start)) {
      return;
    }
    if (plan_->dedup &&
        options_->dedup_index->Contains(task.state_hashes[0])) {
      return;
    }
    const bool inject = options_->fault_plan.enabled();
    CheckContext ctx;
    ctx.w = w_;
    ctx.oracle = oracle_;
    ctx.lin = lin_;
    ctx.guarantees = guarantees_;
    ctx.syscall_index = task.syscall_index;
    ctx.mid_syscall = false;
    ctx.crash_point = task.crash_point;
    ctx.sync_paths = task.sync_paths;
    ctx.sandbox = &sandbox_;
    std::vector<Applied> saved;
    if (inject) {
      // No applied ops at a syscall-end state: only read poison can fire.
      const pmem::FaultDecisions d = pmem::PlanStateFaults(
          options_->fault_plan, task.start, *trace_, {}, dev_.size());
      InjectFaults(d, saved);
      ctx.fault_injected = true;
      ctx.fault_note = pmem::DescribeFaults(d);
    }
    auto report = checker_.CheckCrashState(pm_, ctx);
    if (inject) {
      dev_.ClearPoison();
    }
    Revert(pm_, saved);
    if (report.has_value()) {
      Record(task.start, std::move(*report));
    }
  }

  const HarnessOptions* options_;
  const pmem::Trace* trace_;
  const Plan* plan_;
  const workload::Workload* w_;
  const OracleTrace* oracle_;
  const LinearizationOracle* lin_ = nullptr;
  vfs::CrashGuarantees guarantees_;
  std::atomic<size_t>* next_task_;
  std::atomic<uint64_t>* min_report_;

  pmem::PmDevice dev_;
  pmem::Pm pm_;
  Checker checker_;
  SandboxOptions sandbox_;
  size_t fences_applied_ = 0;
  std::vector<OrdinalReport> reports_;
};

// Replays the sequential engine's control flow over the ordinal space to
// decide which crash states were "reached" (for the stats counters and the
// inflight samples) and in what order reports surface. This is what makes
// the parallel output bit-identical to a sequential replay: the workers only
// answer "does state N report, and what?", while reached-ness, ordering, and
// the budget/stop cutoffs are decided here, single-threaded.
ReplayResult MergeDeterministic(
    const Plan& plan, const HarnessOptions& options,
    std::map<uint64_t, BugReport>& by_ordinal,
    std::vector<std::pair<uint64_t, size_t>>* quarantine) {
  ReplayResult result;
  uint64_t states = 0;
  bool stop = false;
  auto budget_left = [&]() {
    return options.max_crash_states == 0 || states < options.max_crash_states;
  };
  // The walk proceeds in *visitation* order — the order workers mount states
  // and the order the budget / first-report cutoffs key on — but reports and
  // clean-state hashes are collected with their *canonical* ordinal (the
  // position an untargeted enumeration assigns the state) and emitted
  // canonically sorted after the walk. A targeted run with no cutoffs is
  // therefore bit-identical to an untargeted one; for untargeted runs the
  // walk already is canonical and the sort is a no-op.
  std::vector<OrdinalReport> collected;
  std::vector<std::pair<uint64_t, uint64_t>> clean;  // (canonical, hash)
  for (const Task& task : plan.tasks) {
    if (stop) {
      break;
    }
    if (task.kind == Task::Kind::kFence) {
      result.inflight.push_back(
          InflightSample{task.syscall_index, task.raw_inflight});
      ++result.crash_points;
      for (uint64_t j = 0; j < task.count && !stop; ++j) {
        if (!budget_left()) {
          stop = true;
          break;
        }
        ++states;
        const uint64_t local =
            task.visit_order.empty() ? j : task.visit_order[j];
        // A pruned class member was never mounted: it is neither deduped
        // nor clean-verified, and can carry no report.
        const bool pruned = plan.representative && task.repr_of[local] != local;
        if (pruned) {
          ++result.states_pruned;
          continue;
        }
        const bool deduped = plan.dedup &&
                             options.dedup_index->Contains(
                                 task.state_hashes[local]);
        if (deduped) {
          ++result.states_deduped;
        }
        auto it = by_ordinal.find(task.start + j);
        if (it != by_ordinal.end()) {
          collected.push_back(
              OrdinalReport{task.start + local, std::move(it->second)});
          if (options.stop_at_first_report) {
            stop = true;
          }
        } else if (plan.dedup && !deduped) {
          clean.emplace_back(task.start + local, task.state_hashes[local]);
        }
      }
      if (!budget_left()) {
        stop = true;
      }
    } else {
      if (!budget_left()) {
        continue;  // a skipped post-syscall check does not stop the replay
      }
      ++states;
      const bool deduped =
          plan.dedup && options.dedup_index->Contains(task.state_hashes[0]);
      if (deduped) {
        ++result.states_deduped;
      }
      auto it = by_ordinal.find(task.start);
      if (it != by_ordinal.end()) {
        collected.push_back(OrdinalReport{task.start, std::move(it->second)});
        if (options.stop_at_first_report) {
          stop = true;
        }
      } else if (plan.dedup && !deduped) {
        clean.emplace_back(task.start, task.state_hashes[0]);
      }
    }
  }
  result.crash_states = states;
  std::sort(collected.begin(), collected.end(),
            [](const OrdinalReport& a, const OrdinalReport& b) {
              return a.ordinal < b.ordinal;
            });
  std::sort(clean.begin(), clean.end());
  // Quarantine selection — the first quarantine_max surviving recovery
  // failures in canonical order — runs after the sort so the (ordinal,
  // report index) pairs arrive ascending, as WriteStateQuarantine's single
  // task cursor requires, for targeted and untargeted runs alike.
  for (OrdinalReport& r : collected) {
    if (quarantine != nullptr && r.report.kind == CheckKind::kRecoveryFailure &&
        !options.quarantine_dir.empty() &&
        quarantine->size() < options.quarantine_max) {
      quarantine->emplace_back(r.ordinal, result.reports.size());
    }
    result.reports.push_back(std::move(r.report));
  }
  result.clean_state_hashes.reserve(clean.size());
  for (const auto& p : clean) {
    result.clean_state_hashes.push_back(p.second);
  }
  return result;
}

std::string FormatTraceWindow(const pmem::Trace& trace,
                              const std::vector<size_t>& applied) {
  std::string out = "# applied in-flight ops (trace-index kind offset size)\n";
  for (size_t idx : applied) {
    const PmOp& op = trace[idx];
    const char* kind = "?";
    switch (op.kind) {
      case PmOpKind::kNtStore:
        kind = "nt-store";
        break;
      case PmOpKind::kNtSet:
        kind = "nt-set";
        break;
      case PmOpKind::kFlush:
        kind = "flush";
        break;
      default:
        break;
    }
    out += std::to_string(idx) + " " + kind + " " + std::to_string(op.off) +
           " " + std::to_string(op.data.size()) + "\n";
  }
  return out;
}

// Rebuilds each quarantined crash state's image — durable fence windows over
// the base image + the state's applied ops + re-derived fault decisions —
// and writes the quarantine entries. Runs on the merging thread after
// workers have finished; never captures images inside workers, so the
// contents are deterministic by construction and memory stays bounded.
//
// `qstates` arrives sorted by ordinal (the deterministic merge emits it in
// sequential visitation order), so one pass suffices: a single task cursor,
// a single durable image advanced fence window by fence window, and one
// state enumeration per task that collects every wanted applied-op set —
// instead of rescanning plan.tasks and re-enumerating from local ordinal 0
// for every quarantined state.
void WriteStateQuarantine(
    const FsConfig& config, const HarnessOptions& options, const Plan& plan,
    const pmem::Trace& trace, const std::vector<uint8_t>& base,
    const workload::Workload& w,
    const std::vector<std::pair<uint64_t, size_t>>& qstates,
    ReplayResult& result) {
  std::vector<uint8_t> durable = base;
  size_t fences_applied = 0;
  size_t ti = 0;
  size_t qi = 0;
  while (qi < qstates.size() && ti < plan.tasks.size()) {
    // Advance the shared task cursor to the task containing this ordinal;
    // task ordinal ranges are contiguous and ascending.
    const uint64_t ordinal = qstates[qi].first;
    while (ti < plan.tasks.size() &&
           ordinal >= plan.tasks[ti].start + plan.tasks[ti].count) {
      ++ti;
    }
    if (ti == plan.tasks.size()) {
      break;
    }
    const Task& task = plan.tasks[ti];
    size_t qend = qi;
    while (qend < qstates.size() &&
           qstates[qend].first < task.start + task.count) {
      ++qend;
    }
    // Advance the shared durable image (task.fences_before never decreases
    // across tasks).
    for (; fences_applied < task.fences_before; ++fences_applied) {
      for (size_t idx : plan.fence_windows[fences_applied]) {
        pmem::ApplyOp(durable, trace[idx]);
      }
    }
    // One enumeration pass collects the applied-op set of every quarantined
    // state in this task, stopping at the last one wanted.
    std::vector<std::vector<size_t>> applied_sets(qend - qi);
    if (task.kind == Task::Kind::kFence) {
      uint64_t local = 0;
      size_t next = qi;
      ForEachFenceState(task.units, task.max_size, options.prefix_only,
                        [&](const std::vector<size_t>& applied,
                            const std::vector<size_t>&) {
                          if (qstates[next].first - task.start == local) {
                            applied_sets[next - qi] = applied;
                            ++next;
                          }
                          ++local;
                          return next < qend;
                        });
    }
    const size_t group_start = qi;
    for (; qi < qend; ++qi) {
      const auto& [state_ordinal, ridx] = qstates[qi];
      const std::vector<size_t>& applied_ops = applied_sets[qi - group_start];
      std::vector<uint8_t> image = durable;
      pmem::FaultDecisions d;
      if (options.fault_plan.enabled()) {
        d = pmem::PlanStateFaults(options.fault_plan, state_ordinal, trace,
                                  applied_ops, base.size());
      }
      std::vector<uint8_t> tear_pre;
      for (size_t i = 0; i < applied_ops.size(); ++i) {
        const PmOp& op = trace[applied_ops[i]];
        if (d.tear && i == d.tear_index &&
            op.off + d.tear_rel + d.tear_len <= image.size()) {
          tear_pre.assign(image.begin() + op.off + d.tear_rel,
                          image.begin() + op.off + d.tear_rel + d.tear_len);
        }
        pmem::ApplyOp(image, op);
      }
      if (d.tear && tear_pre.size() == d.tear_len &&
          d.tear_off + d.tear_len <= image.size()) {
        std::memcpy(image.data() + d.tear_off, tear_pre.data(), d.tear_len);
      }
      if (d.flip && d.flip_off < image.size()) {
        image[d.flip_off] ^= d.flip_mask;
      }

      const BugReport& r = result.reports[ridx];
      QuarantineEntry e;
      e.kind = "state";
      e.fs = config.name;
      e.bugs = config.bugs;
      e.device_size = base.size();
      e.workload = w;
      e.ordinal = state_ordinal;
      e.crash_point = r.crash_point;
      for (size_t u : r.subset) {
        e.subset += std::to_string(u) + ",";
      }
      e.sandbox_budget = options.sandbox_op_budget;
      e.inject = options.fault_plan.enabled();
      e.fault_seed = options.fault_plan.seed;
      e.fault_detail = e.inject ? pmem::DescribeFaults(d) : "";
      e.report_kind = CheckKindName(r.kind);
      e.detail = r.detail;
      e.image = std::move(image);
      e.trace_window = FormatTraceWindow(trace, applied_ops);
      auto written = WriteQuarantineEntry(options.quarantine_dir, e);
      if (written.ok()) {
        result.quarantined.push_back(std::move(written).value());
      }
    }
  }
}

}  // namespace

std::vector<ReplayEngine::Unit> ReplayEngine::BuildUnits(
    const pmem::Trace& trace, const std::vector<size_t>& inflight,
    const HarnessOptions& options) {
  std::vector<Unit> units;
  for (size_t idx : inflight) {
    const PmOp& op = trace[idx];
    const bool big = options.coalesce_data &&
                     op.kind == PmOpKind::kNtStore &&
                     op.data.size() >= options.data_write_threshold;
    if (big && !units.empty() && units.back().data) {
      // The previous unit always ends at the previous in-flight write, so
      // in-flight adjacency holds by construction; coalesce when the stores
      // are also contiguous on media. Trace adjacency is deliberately not
      // required: an interleaved flush or marker op must not split one
      // logical data write into separate units.
      const PmOp& prev = trace[units.back().op_indices.back()];
      if (prev.off + prev.data.size() == op.off) {
        units.back().op_indices.push_back(idx);
        continue;
      }
    }
    Unit unit;
    unit.op_indices.push_back(idx);
    unit.data = big;
    units.push_back(std::move(unit));
  }
  return units;
}

void ForEachFenceState(
    const std::vector<ReplayEngine::Unit>& units, size_t max_size,
    bool prefix_only,
    const std::function<bool(const std::vector<size_t>& applied,
                             const std::vector<size_t>& subset)>& fn) {
  const size_t k = units.size();
  std::vector<size_t> applied;
  auto emit = [&](const std::vector<size_t>& chosen) {
    applied.clear();
    for (size_t u : chosen) {
      applied.insert(applied.end(), units[u].op_indices.begin(),
                     units[u].op_indices.end());
    }
    return fn(applied, chosen);
  };
  for (size_t size = 0; size <= max_size; ++size) {
    bool keep_going;
    if (!prefix_only) {
      keep_going = ForEachCombination(k, size, emit);
    } else if (size > k) {
      // Ordered persistency: the only size-`size` crash state is the
      // program-order prefix of that length.
      keep_going = true;
    } else {
      std::vector<size_t> prefix(size);
      for (size_t i = 0; i < size; ++i) {
        prefix[i] = i;
      }
      keep_going = emit(prefix);
    }
    if (!keep_going) {
      return;
    }
  }
  // Partial-data states: for each coalesced data unit, a crash that persists
  // only part of the unit (alone, and together with all the other in-flight
  // writes). The recorded subset is the applied trace indices — a unit index
  // here would collide with genuine single-unit subsets in the report.
  for (size_t u = 0; u < k; ++u) {
    if (!units[u].data || units[u].op_indices.size() < 2) {
      continue;
    }
    const size_t half = (units[u].op_indices.size() + 1) / 2;
    for (int variant = 0; variant < 2; ++variant) {
      std::vector<size_t> indices(units[u].op_indices.begin(),
                                  units[u].op_indices.begin() + half);
      if (variant == 1) {
        for (size_t other = 0; other < units.size(); ++other) {
          if (other != u) {
            indices.insert(indices.end(), units[other].op_indices.begin(),
                           units[other].op_indices.end());
          }
        }
        std::sort(indices.begin(), indices.end());
      }
      if (!fn(indices, indices)) {
        return;
      }
    }
  }
}

ReplayResult ReplayEngine::Run(const pmem::Trace& trace,
                               const std::vector<uint8_t>& base,
                               const workload::Workload& w,
                               const OracleTrace& oracle,
                               vfs::CrashGuarantees guarantees,
                               const LinearizationOracle* lin) const {
  Plan plan = BuildPlan(trace, base, w, oracle, guarantees, *options_);

  std::atomic<size_t> next_task{0};
  std::atomic<uint64_t> min_report{kNoReport};

  size_t jobs = options_->jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  jobs = std::min(jobs, std::max<size_t>(1, plan.tasks.size()));
  // Tiny plans don't amortize thread spawns and per-worker image copies.
  if (plan.total_states < 64) {
    jobs = 1;
  }

  std::map<uint64_t, BugReport> by_ordinal;
  auto collect = [&by_ordinal](std::vector<OrdinalReport> reports) {
    for (OrdinalReport& r : reports) {
      by_ordinal.emplace(r.ordinal, std::move(r.report));
    }
  };

  if (jobs <= 1) {
    // Inline on the calling thread: no pool, and CHIPMUNK_COV keeps feeding
    // whatever coverage map the caller installed.
    Worker worker(config_, options_, &trace, &plan, &base, &w, &oracle, lin,
                  guarantees, &next_task, &min_report);
    worker.Run();
    collect(worker.TakeReports());
  } else {
    common::CoverageMap* parent_cov = common::CoverageMap::Current();
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<common::CoverageMap> worker_cov(jobs);
    for (size_t i = 0; i < jobs; ++i) {
      workers.push_back(std::make_unique<Worker>(
          config_, options_, &trace, &plan, &base, &w, &oracle, lin,
          guarantees, &next_task, &min_report));
    }
    std::vector<std::thread> threads;
    for (size_t i = 0; i < jobs; ++i) {
      threads.emplace_back([&, i]() {
        if (parent_cov != nullptr) {
          common::CoverageMap::Current() = &worker_cov[i];
        }
        workers[i]->Run();
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    if (parent_cov != nullptr) {
      for (const common::CoverageMap& cov : worker_cov) {
        parent_cov->MergeFrom(cov);
      }
    }
    for (auto& worker : workers) {
      collect(worker->TakeReports());
    }
  }

  std::vector<std::pair<uint64_t, size_t>> qstates;
  ReplayResult result =
      MergeDeterministic(plan, *options_, by_ordinal, &qstates);
  if (!qstates.empty()) {
    WriteStateQuarantine(*config_, *options_, plan, trace, base, w, qstates,
                         result);
  }
  return result;
}

}  // namespace chipmunk
