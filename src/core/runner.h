// WorkloadRunner: executes a workload against a file system through the Vfs
// layer, inserting syscall begin/end markers into the persistence-op stream
// (§3.3, "Logging writes") and maintaining the fd-slot table and the CPU hint
// used by per-CPU file systems.
#ifndef CHIPMUNK_CORE_RUNNER_H_
#define CHIPMUNK_CORE_RUNNER_H_

#include <vector>

#include "src/common/status.h"
#include "src/pmem/pm.h"
#include "src/vfs/vfs.h"
#include "src/workload/workload.h"

namespace chipmunk {

class WorkloadRunner {
 public:
  // `marker_pm` may be null (oracle runs need no markers).
  WorkloadRunner(const workload::Workload* w, vfs::Vfs* vfs,
                 pmem::Pm* marker_pm)
      : w_(w), vfs_(vfs), pm_(marker_pm) {}

  // Executes op `i`; returns its syscall status.
  common::Status Step(size_t i);

  // Executes the whole workload; returns per-op statuses.
  std::vector<common::Status> RunAll();

 private:
  int SlotFd(int slot) const;

  const workload::Workload* w_;
  vfs::Vfs* vfs_;
  pmem::Pm* pm_;
  std::vector<int> slots_;  // fd_slot -> fd (-1 when closed)
};

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_RUNNER_H_
