// Bug reports produced by the consistency checker, with enough detail to
// reproduce the crash state (workload, syscall, crash point, replayed
// subset), mirroring Figure 1's "bug reports with enough detail to reproduce
// the bug".
#ifndef CHIPMUNK_CORE_REPORT_H_
#define CHIPMUNK_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chipmunk {

// Broad classes of consistency violations.
enum class CheckKind {
  kMountFailure,   // crash state cannot be mounted
  kAtomicity,      // mid-syscall state matches neither pre nor post
  kSynchrony,      // post-syscall state does not match the oracle
  kUnreadable,     // stat/read/readdir failed on the crash state
  kUsability,      // create/delete probes failed on the crash state
  kOutOfBounds,    // media access outside the device (KASAN analogue)
  kLiveDivergence, // target and oracle disagreed while running (no crash)
  kLintFinding,    // static persistence-pattern violation in the trace
  kRecoveryFailure, // recovery threw, hung, or crashed instead of failing
                    // cleanly (sandbox / fault-injection verdict)
  kIsolationViolation, // multi-threaded crash state matches no linearization
                       // of completed + in-flight ops
};

const char* CheckKindName(CheckKind kind);

struct BugReport {
  std::string fs;
  std::string workload_name;
  CheckKind kind = CheckKind::kAtomicity;
  std::string detail;
  int syscall_index = -1;
  std::string syscall;     // textual form of the affected op
  bool mid_syscall = false;
  uint64_t crash_point = 0;          // fence ordinal within the trace
  std::vector<size_t> subset;        // in-flight units replayed
  std::string lint_rule;             // kLintFinding only: the rule id

  // Stable identity used for deduplication within a run: same file system,
  // same violation class, same syscall shape.
  std::string Signature() const;

  std::string ToString() const;
};

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_REPORT_H_
