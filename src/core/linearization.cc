#include "src/core/linearization.h"

#include <map>
#include <memory>
#include <utility>

#include "src/core/runner.h"
#include "src/pmem/pm_device.h"
#include "src/vfs/vfs.h"

namespace chipmunk {

using common::Status;
using common::StatusOr;
using workload::Op;
using workload::OpKind;

namespace {

// Ops whose inclusion changes the final no-crash state. Excluding a read,
// readdir, or durability barrier from an image run produces a byte-identical
// image, so they are never linearization candidates (the image memo would
// just dedupe them anyway — cheaper not to enumerate them at all).
bool MutatesState(OpKind kind) {
  switch (kind) {
    case OpKind::kRead:
    case OpKind::kReaddir:
    case OpKind::kFsync:
    case OpKind::kFdatasync:
    case OpKind::kSync:
    case OpKind::kNone:
      return false;
    default:
      return true;
  }
}

// Runs the selected ops (by ascending index) in realized order on a fresh
// file system and snapshots the universe.
StatusOr<StateSnapshot> RunSubset(const FsConfig& config,
                                  const workload::Workload& w,
                                  const std::vector<uint32_t>& included,
                                  const std::vector<std::string>& universe) {
  pmem::PmDevice dev(config.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config.make(&pm);
  RETURN_IF_ERROR(fs->Mkfs());
  RETURN_IF_ERROR(fs->Mount());

  workload::Workload sub;
  sub.name = w.name;
  sub.threads = w.threads;
  sub.schedule_seed = w.schedule_seed;
  sub.ops.reserve(included.size());
  for (uint32_t idx : included) {
    sub.ops.push_back(w.ops[idx]);
  }
  vfs::Vfs vfs(fs.get());
  WorkloadRunner runner(&sub, &vfs, nullptr);
  // Statuses are intentionally discarded: excluding an op a later op
  // depended on just makes that later op fail, which is the correct
  // semantics for "the excluded op has not happened in this linearization".
  runner.RunAll();
  if (pm.faulted()) {
    return Status(pm.fault());
  }
  return CaptureSnapshot(vfs, universe);
}

}  // namespace

StatusOr<LinearizationOracle> BuildLinearizationOracle(
    const FsConfig& config, const workload::Workload& w, size_t window) {
  LinearizationOracle lin;
  lin.universe = w.Universe();
  lin.window = window;
  lin.pairs.resize(w.ops.size());

  // Image memo: included-index list -> index into lin.images.
  std::map<std::vector<uint32_t>, size_t> memo;
  auto image_of = [&](const std::vector<uint32_t>& included) -> StatusOr<size_t> {
    auto it = memo.find(included);
    if (it != memo.end()) {
      return it->second;
    }
    ASSIGN_OR_RETURN(StateSnapshot snap,
                     RunSubset(config, w, included, lin.universe));
    ++lin.image_runs;
    size_t idx = lin.images.size();
    lin.images.push_back(std::move(snap));
    memo.emplace(included, idx);
    return idx;
  };

  for (size_t i = 0; i < w.ops.size(); ++i) {
    // In-flight candidates: each other thread's most recent state-mutating
    // op within the window. Setup-prologue ops ran before any thread
    // started and are always committed.
    std::map<int, uint32_t> latest;  // tid -> op index
    for (size_t j = i; j-- > 0;) {
      if (i - j > window) {
        break;
      }
      const Op& op = w.ops[j];
      if (op.setup || op.tid == w.ops[i].tid || !MutatesState(op.kind)) {
        continue;
      }
      latest.emplace(op.tid, static_cast<uint32_t>(j));  // keeps the latest
    }
    std::vector<uint32_t> candidates;
    candidates.reserve(latest.size());
    for (const auto& [tid, j] : latest) {
      candidates.push_back(j);
    }

    for (uint64_t mask = 0; mask < (uint64_t{1} << candidates.size());
         ++mask) {
      std::vector<uint32_t> included;
      included.reserve(i);
      for (size_t j = 0; j < i; ++j) {
        bool excluded = false;
        for (size_t c = 0; c < candidates.size(); ++c) {
          if ((mask >> c & 1) != 0 && candidates[c] == j) {
            excluded = true;
            break;
          }
        }
        if (!excluded) {
          included.push_back(static_cast<uint32_t>(j));
        }
      }
      ASSIGN_OR_RETURN(size_t pre_idx, image_of(included));
      included.push_back(static_cast<uint32_t>(i));
      ASSIGN_OR_RETURN(size_t post_idx, image_of(included));
      lin.pairs[i].push_back({pre_idx, post_idx});
    }
  }
  return lin;
}

}  // namespace chipmunk
