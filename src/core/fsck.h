// Fsck: an oracle-independent consistency validator for a mounted file
// system. Where the Chipmunk checker compares a crash state against the
// oracle's file versions, Fsck validates *internal* invariants only — every
// reachable node must stat/read/readdir cleanly, link counts must equal the
// number of reachable names, directory link counts must match their
// subdirectory counts, and the namespace must be acyclic. Useful on its own
// (a lightweight fsck for the bundled file systems) and as an extra check in
// property tests.
#ifndef CHIPMUNK_CORE_FSCK_H_
#define CHIPMUNK_CORE_FSCK_H_

#include <string>
#include <vector>

#include "src/vfs/filesystem.h"

namespace chipmunk {

struct FsckIssue {
  std::string path;
  std::string problem;

  std::string ToString() const { return path + ": " + problem; }
};

// Walks the namespace of a mounted file system and returns every invariant
// violation found (empty = consistent). Read-only.
std::vector<FsckIssue> Fsck(vfs::FileSystem* fs);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_FSCK_H_
