#include "src/core/checker.h"

#include <algorithm>

#include "src/core/fsck.h"

namespace chipmunk {

using common::Status;
using workload::Op;
using workload::OpKind;

namespace {

uint8_t ByteAt(const FileVersion& v, uint64_t i) {
  return i < v.content.size() ? v.content[i] : 0;
}

// Ops whose torn states are acceptable on file systems without atomic data
// writes: write/pwrite, and fallocate (in-place zeroing of file contents).
bool IsWriteKind(OpKind kind) {
  return kind == OpKind::kWrite || kind == OpKind::kPwrite ||
         kind == OpKind::kFalloc;
}

// Whether `cur` is consistent with one linearization, given its (pre, post)
// images — the same rules Compare applies against the serial oracle, minus
// the unreadable sweep (linearization-independent, handled by the caller).
// Returns a mismatch description, or nullopt on a match.
std::optional<std::string> LinearizationMismatch(
    const StateSnapshot& cur, const StateSnapshot& pre,
    const StateSnapshot& post, const CheckContext& ctx,
    const std::vector<std::string>& universe) {
  if (!ctx.guarantees.synchronous) {
    for (const std::string& path : ctx.sync_paths) {
      auto pit = post.find(path);
      if (pit == post.end()) {
        continue;
      }
      const FileVersion& want = pit->second;
      const FileVersion& have = cur.at(path);
      if (!(have == want)) {
        return "synced path " + path + " is " + have.ToString() +
               ", expected " + want.ToString();
      }
    }
    return std::nullopt;
  }

  if (!ctx.mid_syscall) {
    for (const std::string& path : universe) {
      const FileVersion& have = cur.at(path);
      const FileVersion& want = post.at(path);
      if (!(have == want)) {
        return path + " is " + have.ToString() + ", expected " +
               want.ToString();
      }
    }
    return std::nullopt;
  }

  const Op& op = ctx.w->ops[static_cast<size_t>(ctx.syscall_index)];
  const bool allow_intermediate =
      IsWriteKind(op.kind) && !ctx.guarantees.atomic_write;
  bool saw_pre = false;
  bool saw_post = false;
  for (const std::string& path : universe) {
    const FileVersion& have = cur.at(path);
    const FileVersion& was = pre.at(path);
    const FileVersion& now = post.at(path);
    if (was == now) {
      if (!(have == was)) {
        return "path untouched by this syscall changed: " + path + " is " +
               have.ToString() + ", expected " + was.ToString();
      }
      continue;
    }
    if (have == was) {
      saw_pre = true;
      continue;
    }
    if (have == now) {
      saw_post = true;
      continue;
    }
    if (allow_intermediate && IntermediateWriteOk(have, was, now, op)) {
      continue;
    }
    return path + " matches neither version: is " + have.ToString() +
           ", pre " + was.ToString() + ", post " + now.ToString();
  }
  const bool must_be_atomic =
      IsWriteKind(op.kind) ? ctx.guarantees.atomic_write
                           : ctx.guarantees.atomic_metadata;
  if (saw_pre && saw_post && must_be_atomic) {
    return std::string(
        "crash state mixes old and new versions of the files modified by "
        "this syscall");
  }
  return std::nullopt;
}

}  // namespace

bool IntermediateWriteOk(const FileVersion& cur, const FileVersion& pre,
                         const FileVersion& post, const workload::Op& op) {
  if (!cur.exists || cur.unreadable || cur.type != vfs::FileType::kRegular) {
    return false;
  }
  if (!pre.exists || !post.exists) {
    return false;
  }
  if (cur.nlink != post.nlink) {
    return false;
  }
  if (cur.size != pre.size && cur.size != post.size) {
    return false;
  }
  // Every byte must come from the old version, the new version, or be zero
  // (a freshly allocated, not-yet-written block).
  for (uint64_t i = 0; i < cur.size; ++i) {
    uint8_t b = ByteAt(cur, i);
    if (b != ByteAt(pre, i) && b != ByteAt(post, i) && b != 0) {
      return false;
    }
  }
  return true;
}

BugReport Checker::MakeReport(const CheckContext& ctx, CheckKind kind,
                              std::string detail) {
  BugReport report;
  report.fs = config_->name;
  report.workload_name = ctx.w != nullptr ? ctx.w->name : "";
  report.kind = kind;
  report.detail = std::move(detail);
  report.syscall_index = ctx.syscall_index;
  if (ctx.w != nullptr && ctx.syscall_index >= 0 &&
      static_cast<size_t>(ctx.syscall_index) < ctx.w->ops.size()) {
    report.syscall = ctx.w->ops[ctx.syscall_index].ToString();
  }
  report.mid_syscall = ctx.mid_syscall;
  report.crash_point = ctx.crash_point;
  report.subset = ctx.subset;
  return report;
}

std::optional<BugReport> Checker::Compare(vfs::Vfs& vfs,
                                          const CheckContext& ctx) {
  if (ctx.syscall_index < 0) {
    return std::nullopt;
  }
  if (ctx.w != nullptr && ctx.w->threads > 1) {
    if (ctx.lin == nullptr) {
      return std::nullopt;
    }
    return CompareLinearized(vfs, ctx);
  }
  const auto& universe = ctx.oracle->universe;
  StateSnapshot cur = CaptureSnapshot(vfs, universe);
  size_t i = static_cast<size_t>(ctx.syscall_index);
  const StateSnapshot& pre = ctx.oracle->pre[i];
  const StateSnapshot& post = ctx.oracle->post[i];

  if (!ctx.guarantees.synchronous) {
    // Weak guarantees: only the explicitly synced paths have defined
    // post-crash state (ext4-DAX/XFS-DAX, §3.3).
    for (const std::string& path : ctx.sync_paths) {
      auto pit = post.find(path);
      if (pit == post.end()) {
        continue;
      }
      const FileVersion& want = pit->second;
      const FileVersion& have = cur[path];
      if (have.unreadable) {
        return MakeReport(ctx, CheckKind::kUnreadable, path + " unreadable");
      }
      if (!(have == want)) {
        return MakeReport(ctx, CheckKind::kSynchrony,
                          "synced path " + path + " is " + have.ToString() +
                              ", expected " + want.ToString());
      }
    }
    for (const std::string& path : universe) {
      if (cur[path].unreadable) {
        return MakeReport(ctx, CheckKind::kUnreadable, path + " unreadable");
      }
    }
    return std::nullopt;
  }

  if (!ctx.mid_syscall) {
    // Synchrony: by the time the syscall returned, its effects must be
    // durable — the crash state must equal the post-oracle exactly.
    for (const std::string& path : universe) {
      const FileVersion& have = cur[path];
      const FileVersion& want = post.at(path);
      if (have.unreadable) {
        return MakeReport(ctx, CheckKind::kUnreadable, path + " unreadable");
      }
      if (!(have == want)) {
        return MakeReport(ctx, CheckKind::kSynchrony,
                          path + " is " + have.ToString() + ", expected " +
                              want.ToString());
      }
    }
    return std::nullopt;
  }

  // Atomicity: every path must match the pre or the post version, all
  // modified paths must agree on the same version, and untouched paths must
  // be intact.
  const Op& op = ctx.w->ops[i];
  const bool allow_intermediate =
      IsWriteKind(op.kind) && !ctx.guarantees.atomic_write;
  bool saw_pre = false;
  bool saw_post = false;
  for (const std::string& path : universe) {
    const FileVersion& have = cur[path];
    const FileVersion& was = pre.at(path);
    const FileVersion& now = post.at(path);
    if (have.unreadable) {
      return MakeReport(ctx, CheckKind::kUnreadable, path + " unreadable");
    }
    if (was == now) {
      if (!(have == was)) {
        return MakeReport(ctx, CheckKind::kAtomicity,
                          "path untouched by this syscall changed: " + path +
                              " is " + have.ToString() + ", expected " +
                              was.ToString());
      }
      continue;
    }
    if (have == was) {
      saw_pre = true;
      continue;
    }
    if (have == now) {
      saw_post = true;
      continue;
    }
    // Torn-write allowance: a write/fallocate syscall can only modify the
    // target file, so on a non-atomic-write file system every path the
    // oracle reports as changed by this op — including hard-link aliases
    // and fd-addressed targets — may be torn.
    if (allow_intermediate && IntermediateWriteOk(have, was, now, op)) {
      continue;
    }
    return MakeReport(ctx, CheckKind::kAtomicity,
                      path + " matches neither version: is " +
                          have.ToString() + ", pre " + was.ToString() +
                          ", post " + now.ToString());
  }
  const bool must_be_atomic =
      IsWriteKind(op.kind) ? ctx.guarantees.atomic_write
                           : ctx.guarantees.atomic_metadata;
  if (saw_pre && saw_post && must_be_atomic) {
    return MakeReport(ctx, CheckKind::kAtomicity,
                      "crash state mixes old and new versions of the files "
                      "modified by this syscall");
  }
  return std::nullopt;
}

std::optional<BugReport> Checker::CompareLinearized(vfs::Vfs& vfs,
                                                    const CheckContext& ctx) {
  const LinearizationOracle& lin = *ctx.lin;
  const auto& universe = lin.universe;
  StateSnapshot cur = CaptureSnapshot(vfs, universe);
  // Unreadable paths are a bug under every linearization.
  for (const std::string& path : universe) {
    if (cur[path].unreadable) {
      return MakeReport(ctx, CheckKind::kUnreadable, path + " unreadable");
    }
  }
  const size_t i = static_cast<size_t>(ctx.syscall_index);
  if (i >= lin.pairs.size() || lin.pairs[i].empty()) {
    return std::nullopt;
  }
  // The crash state passes if ANY linearization explains it; the report for
  // an all-miss quotes the serial-order mismatch (the first pair is the
  // empty exclusion subset, i.e. the realized order itself).
  std::string first_mismatch;
  for (const LinearizationOracle::PairRef& pr : lin.pairs[i]) {
    std::optional<std::string> mismatch = LinearizationMismatch(
        cur, lin.images[pr.pre], lin.images[pr.post], ctx, universe);
    if (!mismatch.has_value()) {
      return std::nullopt;
    }
    if (first_mismatch.empty()) {
      first_mismatch = *mismatch;
    }
  }
  return MakeReport(
      ctx, CheckKind::kIsolationViolation,
      "crash state matches no linearization of completed + in-flight ops (" +
          std::to_string(lin.pairs[i].size()) + " linearizations, window " +
          std::to_string(lin.window) + "): " + first_mismatch);
}

std::optional<BugReport> Checker::Usability(vfs::Vfs& vfs,
                                            const CheckContext& ctx) {
  // "Chipmunk creates files in all directories, then deletes all files."
  const auto& universe = ctx.oracle->universe;
  for (const std::string& path : universe) {
    auto st = vfs.Stat(path);
    if (!st.ok() || st->type != vfs::FileType::kDirectory) {
      continue;
    }
    std::string probe = path == "/" ? "/.probe" : path + "/.probe";
    auto fd = vfs.Open(probe, vfs::OpenFlags{.create = true});
    if (!fd.ok() && fd.status().code() != common::ErrorCode::kExists) {
      return MakeReport(ctx, CheckKind::kUsability,
                        "cannot create a file in " + path + ": " +
                            fd.status().ToString());
    }
    if (fd.ok()) {
      vfs.Close(*fd);
    }
    common::Status un = vfs.Unlink(probe);
    if (!un.ok()) {
      return MakeReport(ctx, CheckKind::kUsability,
                        "cannot delete probe file in " + path + ": " +
                            un.ToString());
    }
  }
  for (const std::string& path : universe) {
    auto st = vfs.Stat(path);
    if (!st.ok() || st->type != vfs::FileType::kRegular) {
      continue;
    }
    common::Status un = vfs.Unlink(path);
    if (!un.ok()) {
      return MakeReport(ctx, CheckKind::kUsability,
                        "cannot delete " + path + ": " + un.ToString());
    }
  }
  return std::nullopt;
}

std::optional<BugReport> Checker::CheckCrashState(pmem::Pm& pm,
                                                  const CheckContext& ctx) {
  pmem::UndoRecorder undo;
  pm.ClearFault();
  pm.AddHook(&undo);
  std::unique_ptr<vfs::FileSystem> fs = config_->make(&pm);
  std::optional<BugReport> report;

  const std::string note =
      ctx.fault_note.empty() ? "" : " [injected: " + ctx.fault_note + "]";
  auto body = [&]() -> Status {
    Status mount = fs->Mount();
    if (ctx.fault_injected) {
      // Robustness verdict only: a clean mount failure and a successful
      // recovery both pass. A recovery that scribbles outside the device
      // while digesting injected corruption fails; crashes and hangs are
      // converted by the sandbox below.
      if (mount.ok()) {
        // Drive the recovered instance the same way the checker probes crash
        // states — errors are tolerated (media is genuinely corrupt), but
        // the probes must not crash or hang.
        vfs::Vfs vfs(fs.get());
        (void)Usability(vfs, ctx);
        (void)Fsck(fs.get());
      }
      if (pm.faulted()) {
        report = MakeReport(
            ctx, CheckKind::kRecoveryFailure,
            "recovery scribbled outside the device under injected faults: " +
                pm.fault().ToString() + note);
      }
      return common::OkStatus();
    }
    if (pm.faulted()) {
      report = MakeReport(ctx, CheckKind::kOutOfBounds, pm.fault().ToString());
    } else if (!mount.ok()) {
      report =
          MakeReport(ctx, CheckKind::kMountFailure,
                     "file system failed to mount: " + mount.ToString());
    } else {
      vfs::Vfs vfs(fs.get());
      report = Compare(vfs, ctx);
      if (!report.has_value()) {
        report = Usability(vfs, ctx);
      }
      if (!report.has_value()) {
        // Internal-invariant sweep: even a state that matches an oracle
        // version must be structurally sound (nlink counts, lookup/readdir
        // agreement, acyclic namespace).
        std::vector<FsckIssue> issues = Fsck(fs.get());
        if (!issues.empty()) {
          report = MakeReport(ctx, CheckKind::kUsability,
                              "fsck: " + issues[0].ToString());
        }
      }
      if (!report.has_value() && pm.faulted()) {
        report =
            MakeReport(ctx, CheckKind::kOutOfBounds, pm.fault().ToString());
      }
    }
    return common::OkStatus();
  };

  if (ctx.sandbox != nullptr) {
    SandboxResult guarded = RunSandboxed(&pm, *ctx.sandbox, body);
    if (guarded.tripped()) {
      // Whatever partial classification the body reached before dying is
      // superseded: the recovery failure *is* the bug.
      report = MakeReport(ctx, CheckKind::kRecoveryFailure,
                          guarded.status.ToString() + note);
    }
  } else {
    (void)body();
  }

  // In-bounds media damage during the injected-fault probes is tolerated
  // (the media is corrupt by construction); out-of-bounds is not, but that
  // case already produced a report inside the body.
  pm.RemoveHook(&undo);
  undo.Rollback(pm);
  pm.ClearFault();
  return report;
}

}  // namespace chipmunk
