#include "src/core/runner.h"

namespace chipmunk {

using common::Status;
using workload::Op;
using workload::OpKind;

int WorkloadRunner::SlotFd(int slot) const {
  if (slot < 0 || static_cast<size_t>(slot) >= slots_.size()) {
    return -1;
  }
  return slots_[slot];
}

Status WorkloadRunner::Step(size_t i) {
  const Op& op = w_->ops[i];
  // The CPU a syscall runs on, derived from harness state the way a
  // multi-process workload would spread across cores (winefs per-CPU paths).
  vfs_->fs()->SetCpuHint(vfs_->open_fd_count());
  if (w_->threads > 1) {
    // Multi-threaded schedules pin each logical thread to a CPU; the hint
    // lets per-CPU / per-thread file-system paths observe cross-thread
    // handoffs the way a real kernel would.
    vfs_->fs()->SetThreadHint(op.tid, w_->threads);
  }
  if (pm_ != nullptr) {
    pm_->Marker(pmem::MarkerKind::kSyscallBegin, static_cast<int32_t>(i),
                op.ToString());
  }
  Status status = common::OkStatus();
  switch (op.kind) {
    case OpKind::kCreat: {
      auto fd = vfs_->Open(op.path, vfs::OpenFlags{.create = true});
      status = fd.ok() ? vfs_->Close(*fd) : fd.status();
      break;
    }
    case OpKind::kMkdir:
      status = vfs_->Mkdir(op.path);
      break;
    case OpKind::kFalloc:
      status = vfs_->FallocateFd(SlotFd(op.fd_slot), op.falloc_mode, op.off,
                                 op.len);
      break;
    case OpKind::kWrite:
    case OpKind::kPwrite: {
      std::vector<uint8_t> data = workload::MakeData(op.fill, op.off, op.len);
      auto n = op.kind == OpKind::kWrite
                   ? vfs_->Write(SlotFd(op.fd_slot), data.data(), data.size())
                   : vfs_->Pwrite(SlotFd(op.fd_slot), data.data(), data.size(),
                                  op.off);
      status = n.status();
      break;
    }
    case OpKind::kLink:
      status = vfs_->Link(op.path, op.path2);
      break;
    case OpKind::kUnlink:
      status = vfs_->Unlink(op.path);
      break;
    case OpKind::kRemove:
      status = vfs_->Remove(op.path);
      break;
    case OpKind::kRename:
      status = vfs_->Rename(op.path, op.path2);
      break;
    case OpKind::kTruncate:
      status = vfs_->Truncate(op.path, op.len);
      break;
    case OpKind::kRmdir:
      status = vfs_->Rmdir(op.path);
      break;
    case OpKind::kOpen: {
      vfs::OpenFlags flags;
      flags.create = op.oflag_create;
      flags.trunc = op.oflag_trunc;
      flags.append = op.oflag_append;
      flags.excl = op.oflag_excl;
      auto fd = vfs_->Open(op.path, flags);
      if (fd.ok() && op.fd_slot >= 0) {
        if (static_cast<size_t>(op.fd_slot) >= slots_.size()) {
          slots_.resize(op.fd_slot + 1, -1);
        }
        slots_[op.fd_slot] = *fd;
      }
      status = fd.status();
      break;
    }
    case OpKind::kClose: {
      int fd = SlotFd(op.fd_slot);
      status = vfs_->Close(fd);
      if (op.fd_slot >= 0 && static_cast<size_t>(op.fd_slot) < slots_.size()) {
        slots_[op.fd_slot] = -1;
      }
      break;
    }
    case OpKind::kFsync:
      status = vfs_->FsyncFd(SlotFd(op.fd_slot));
      break;
    case OpKind::kFdatasync:
      status = vfs_->FdatasyncFd(SlotFd(op.fd_slot));
      break;
    case OpKind::kSync:
      status = vfs_->Sync();
      break;
    case OpKind::kRead: {
      std::vector<uint8_t> buf(op.len);
      status = vfs_->ReadFd(SlotFd(op.fd_slot), buf.data(), buf.size()).status();
      break;
    }
    case OpKind::kSetxattr: {
      auto ino = vfs_->Resolve(op.path);
      if (!ino.ok()) {
        status = ino.status();
        break;
      }
      std::vector<uint8_t> value = workload::MakeData(op.fill, 0, op.len);
      status = vfs_->fs()->SetXattr(*ino, op.path2, value);
      break;
    }
    case OpKind::kRemovexattr: {
      auto ino = vfs_->Resolve(op.path);
      if (!ino.ok()) {
        status = ino.status();
        break;
      }
      status = vfs_->fs()->RemoveXattr(*ino, op.path2);
      break;
    }
    case OpKind::kReaddir:
      status = vfs_->ReadDir(op.path).status();
      break;
    case OpKind::kNone:
      break;
  }
  if (pm_ != nullptr) {
    pm_->Marker(pmem::MarkerKind::kSyscallEnd, static_cast<int32_t>(i));
  }
  return status;
}

std::vector<Status> WorkloadRunner::RunAll() {
  std::vector<Status> out;
  out.reserve(w_->ops.size());
  for (size_t i = 0; i < w_->ops.size(); ++i) {
    out.push_back(Step(i));
  }
  return out;
}

}  // namespace chipmunk
