// Harness: the record-and-replay loop (§3.3).
//
// For one workload: (1) run it on the target file system, logging every
// persistence operation; (2) build the oracle on a fresh instance; (3) walk
// the log, and at every store fence construct crash states from subsets of
// the in-flight writes (exhaustively up to a configurable cap, ascending by
// subset size, with logically-related data writes coalesced into single
// units); (4) mount + check each crash state and emit deduplicated bug
// reports. Syscall-end markers provide the synchrony checkpoints; weak
// (fsync-based) file systems are only checked at fsync/fdatasync/sync.
#ifndef CHIPMUNK_CORE_HARNESS_H_
#define CHIPMUNK_CORE_HARNESS_H_

#include <map>
#include <vector>

#include "src/core/checker.h"
#include "src/core/fs_config.h"
#include "src/core/oracle.h"
#include "src/core/report.h"
#include "src/pmem/trace.h"
#include "src/workload/workload.h"

namespace chipmunk {

struct HarnessOptions {
  // Maximum number of in-flight units replayed per crash state; 0 means
  // exhaustive (all subset sizes up to n-1, i.e. 2^n - 1 states per fence).
  size_t replay_cap = 0;
  // With replay_cap == 0, fences with more than `safety_limit` units fall
  // back to `safety_cap` (prevents a single outlier from exploding).
  size_t safety_limit = 10;
  size_t safety_cap = 2;
  bool check_mid_syscall = true;
  bool stop_at_first_report = false;
  size_t max_crash_states = 0;  // 0 = unlimited
  // Coalesce runs of large non-temporal stores (file data) into one unit,
  // and additionally test a small number of partial-data states per unit
  // (§3.2: "checks only a small subset of states with missing data").
  bool coalesce_data = true;
  size_t data_write_threshold = 256;
  // Ablation / alternative persistence model (§3.6): when true, in-flight
  // writes persist strictly in program order, so only prefixes of the
  // in-flight set are crash states (a "strict/ordered persistency" model,
  // and the behaviour of a generator that ignores store reordering).
  bool prefix_only = false;
};

struct InflightSample {
  int syscall_index;
  size_t writes;  // raw in-flight write count at a fence (pre-coalescing)
};

struct RunStats {
  size_t crash_points = 0;  // fences where subsets were enumerated
  size_t crash_states = 0;  // states mounted + checked
  size_t raw_reports = 0;   // before deduplication
  std::vector<BugReport> reports;  // deduplicated by signature
  std::vector<InflightSample> inflight;
  std::vector<common::Status> target_statuses;
  std::vector<common::Status> oracle_statuses;

  bool clean() const { return reports.empty(); }
};

class Harness {
 public:
  explicit Harness(FsConfig config, HarnessOptions options = {})
      : config_(std::move(config)), options_(options) {}

  const FsConfig& config() const { return config_; }
  const HarnessOptions& options() const { return options_; }

  // Runs the full record/replay/check pipeline for one workload.
  common::StatusOr<RunStats> TestWorkload(const workload::Workload& w);

 private:
  struct Unit {
    std::vector<size_t> op_indices;  // trace indices, program order
    bool data = false;               // coalesced data-write unit
  };

  std::vector<Unit> BuildUnits(const pmem::Trace& trace,
                               const std::vector<size_t>& inflight) const;

  FsConfig config_;
  HarnessOptions options_;
};

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_HARNESS_H_
