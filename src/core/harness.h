// Harness: the record-and-replay loop (§3.3).
//
// For one workload: (1) run it on the target file system, logging every
// persistence operation; (2) build the oracle on a fresh instance; (3) hand
// the log to the ReplayEngine, which at every store fence constructs crash
// states from subsets of the in-flight writes (exhaustively up to a
// configurable cap, ascending by subset size, with logically-related data
// writes coalesced into single units), sharded across a worker pool; (4)
// mount + check each crash state and emit deduplicated bug reports.
// Syscall-end markers provide the synchrony checkpoints; weak (fsync-based)
// file systems are only checked at fsync/fdatasync/sync.
#ifndef CHIPMUNK_CORE_HARNESS_H_
#define CHIPMUNK_CORE_HARNESS_H_

#include <map>
#include <vector>

#include "src/analysis/lint.h"
#include "src/core/checker.h"
#include "src/core/fs_config.h"
#include "src/core/harness_options.h"
#include "src/core/oracle.h"
#include "src/core/report.h"
#include "src/pmem/trace.h"
#include "src/workload/workload.h"

namespace chipmunk {

struct RunStats {
  size_t crash_points = 0;  // fences where subsets were enumerated
  size_t crash_states = 0;  // states visited (mounted + checked, or deduped)
  // States skipped via the campaign store's crash-state equivalence index
  // (HarnessOptions::dedup_index); included in crash_states.
  size_t states_deduped = 0;
  // States skipped as non-representative members of a page-signature class
  // (HarnessOptions::representative); included in crash_states.
  size_t states_pruned = 0;
  // Canonical hashes of this run's clean crash states, for insertion into
  // the equivalence index once the workload commits.
  std::vector<uint64_t> clean_state_hashes;
  size_t raw_reports = 0;   // before deduplication
  std::vector<BugReport> reports;  // deduplicated by signature
  // With HarnessOptions::lint, the raw linter findings for this run (their
  // deduplicated BugReport forms are also merged into `reports`).
  std::vector<analysis::LintFinding> lint_findings;
  // With HarnessOptions::lint, the happens-before analyzer's findings
  // (cross-syscall durability races, commit-before-payload inversions, and —
  // when HarnessOptions::invariants is set — mined ordering-invariant
  // violations). Kept separate from lint_findings so callers can weight or
  // report them independently; also merged into `reports` as kLintFinding.
  std::vector<analysis::LintFinding> hb_findings;
  std::vector<InflightSample> inflight;
  std::vector<common::Status> target_statuses;
  std::vector<common::Status> oracle_statuses;
  // Multi-threaded runs with the isolation oracle: how many distinct
  // linearization images were built, and how many fresh-FS executions that
  // took (the oracle's overhead driver; memoization keeps runs <= images
  // enumerated). Both 0 for single-threaded runs.
  size_t lin_images = 0;
  size_t lin_image_runs = 0;
  // Quarantine entry paths written during replay (recovery failures), in
  // deterministic order.
  std::vector<std::string> quarantined;

  bool clean() const { return reports.empty(); }
};

class Harness {
 public:
  explicit Harness(FsConfig config, HarnessOptions options = {})
      : config_(std::move(config)), options_(options) {}

  const FsConfig& config() const { return config_; }
  const HarnessOptions& options() const { return options_; }

  // Runs the full record/replay/check pipeline for one workload. Const — and
  // safe to call concurrently from several threads — because every run builds
  // its media, file-system, and checker state from scratch; the harness holds
  // only the immutable config and options. The pipelined fuzzer relies on
  // this to share one harness across its worker pool.
  common::StatusOr<RunStats> TestWorkload(const workload::Workload& w) const;

 private:
  FsConfig config_;
  HarnessOptions options_;
};

// A workload's recorded persistence trace plus the crash guarantees of the
// file system that produced it (the linter keys unfenced-flush on them).
struct RecordedTrace {
  pmem::Trace trace;
  vfs::CrashGuarantees guarantees;
};

// Records one workload's persistence trace (mkfs + mount + run) without
// building an oracle or replaying crash states — the `chipmunk lint` path.
// With log_temporal, temporal stores are recorded as kStore ops so the
// linter can check flush coverage.
common::StatusOr<RecordedTrace> RecordTrace(const FsConfig& config,
                                            const workload::Workload& w,
                                            bool log_temporal = true);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_HARNESS_H_
