// The consistency checker (§3.3, "Testing crash states").
//
// Given a crash image, the checker mounts a fresh file-system instance on it
// (itself a useful check), compares every universe path against the oracle's
// pre/post versions — atomicity for mid-syscall crashes, synchrony for
// post-syscall crashes — verifies files untouched by the current syscall,
// and probes usability (create a file in every directory, delete every
// file). All mutations the checker makes (including mount-time recovery
// writes) are captured by an undo recorder and rolled back before the next
// crash state is built.
#ifndef CHIPMUNK_CORE_CHECKER_H_
#define CHIPMUNK_CORE_CHECKER_H_

#include <optional>
#include <string>

#include "src/core/fs_config.h"
#include "src/core/linearization.h"
#include "src/core/oracle.h"
#include "src/core/report.h"
#include "src/core/sandbox.h"
#include "src/workload/workload.h"

namespace chipmunk {

struct CheckContext {
  const workload::Workload* w = nullptr;
  const OracleTrace* oracle = nullptr;
  // Multi-threaded workloads only: the linearization oracle the crash state
  // is matched against. When a workload has threads > 1 and this is null
  // (isolation oracle disabled), expected-state comparison is skipped
  // entirely — there is no single serial history to compare to — and only
  // mount/usability/fsck/out-of-bounds checks run.
  const LinearizationOracle* lin = nullptr;
  vfs::CrashGuarantees guarantees;
  int syscall_index = -1;
  bool mid_syscall = false;
  // Weak-guarantee systems: only these paths are compared (the fsynced file,
  // or everything for sync). Empty means "all universe paths".
  std::vector<std::string> sync_paths;
  // Reproduction info copied into reports.
  uint64_t crash_point = 0;
  std::vector<size_t> subset;
  // Recovery sandbox: when set, Mount() + checks run inside the guarded
  // context — a thrown exception or an exhausted op budget becomes a
  // kRecoveryFailure report instead of aborting the process. When the body
  // completes normally the legacy classification is unchanged.
  const SandboxOptions* sandbox = nullptr;
  // Injected-media-fault mode: the verdict is robustness-only ("fail cleanly
  // or recover — never crash/hang/scribble"); oracle comparison is skipped
  // because injected corruption makes it meaningless.
  bool fault_injected = false;
  std::string fault_note;  // human-readable injected-fault description
};

class Checker {
 public:
  explicit Checker(const FsConfig* config) : config_(config) {}

  // Mounts `config_`'s file system on the image behind `pm`, runs all
  // checks, rolls its own writes back, and returns a report if any check
  // failed. `pm` must wrap the crash image device.
  std::optional<BugReport> CheckCrashState(pmem::Pm& pm,
                                           const CheckContext& ctx);

 private:
  std::optional<BugReport> Compare(vfs::Vfs& vfs, const CheckContext& ctx);
  // The multi-threaded variant of Compare: passes if the crash state
  // matches ANY linearization image pair; reports kIsolationViolation when
  // none match.
  std::optional<BugReport> CompareLinearized(vfs::Vfs& vfs,
                                             const CheckContext& ctx);
  std::optional<BugReport> Usability(vfs::Vfs& vfs, const CheckContext& ctx);
  BugReport MakeReport(const CheckContext& ctx, CheckKind kind,
                       std::string detail);

  const FsConfig* config_;
};

// True when `cur` is an acceptable torn state of a non-atomic write: the
// metadata matches pre or post and every byte in the written range is the
// old byte, the new byte, or zero (freshly allocated block).
bool IntermediateWriteOk(const FileVersion& cur, const FileVersion& pre,
                         const FileVersion& post, const workload::Op& op);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_CHECKER_H_
