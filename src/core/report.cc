#include "src/core/report.h"

namespace chipmunk {

const char* CheckKindName(CheckKind kind) {
  switch (kind) {
    case CheckKind::kMountFailure:
      return "mount-failure";
    case CheckKind::kAtomicity:
      return "atomicity";
    case CheckKind::kSynchrony:
      return "synchrony";
    case CheckKind::kUnreadable:
      return "unreadable";
    case CheckKind::kUsability:
      return "usability";
    case CheckKind::kOutOfBounds:
      return "out-of-bounds";
    case CheckKind::kLiveDivergence:
      return "live-divergence";
    case CheckKind::kLintFinding:
      return "lint";
    case CheckKind::kRecoveryFailure:
      return "recovery-failure";
    case CheckKind::kIsolationViolation:
      return "isolation-violation";
  }
  return "?";
}

std::string BugReport::Signature() const {
  // The syscall's first token (its kind) identifies the operation shape
  // without binding the signature to concrete paths.
  std::string op = syscall.substr(0, syscall.find(' '));
  std::string sig = fs + "|" + CheckKindName(kind) + "|" + op;
  if (!lint_rule.empty()) {
    sig += "|" + lint_rule;
  }
  return sig;
}

std::string BugReport::ToString() const {
  std::string s = "[" + fs + "] " + CheckKindName(kind);
  if (syscall_index >= 0) {
    s += " at op " + std::to_string(syscall_index) + " (" + syscall + ")";
    s += mid_syscall ? " mid-syscall" : " post-syscall";
  }
  s += "\n  workload: " + workload_name;
  s += "\n  crash point " + std::to_string(crash_point) + ", subset {";
  for (size_t u : subset) {
    s += std::to_string(u) + ",";
  }
  s += "}";
  s += "\n  " + detail;
  return s;
}

}  // namespace chipmunk
