// Quarantine: on-disk triage artifacts for recovery failures.
//
// When a crash state's recovery trips the sandbox (throws, exhausts its op
// budget, or scribbles out of bounds), the state is serialized to a
// quarantine directory so it can be triaged offline with
// `chipmunk repro <entry-dir>` — without re-running the whole campaign. The
// fuzzer also quarantines whole workloads whose replay keeps dying.
//
// Entry layout (one directory per entry):
//   meta.txt      key: value lines (fs, bugs, ordinal, budget, faults, ...)
//   workload.txt  the workload in src/workload/serialize text format
//   image.bin     the crash-state PM image (state entries only)
//   trace.txt     human-readable applied-op window (state entries only)
//
// State entries are rebuilt deterministically by the replay engine after the
// merge (never captured inside workers), so quarantine contents are
// bit-identical for every --jobs value.
#ifndef CHIPMUNK_CORE_QUARANTINE_H_
#define CHIPMUNK_CORE_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workload/workload.h"

namespace chipmunk {

struct QuarantineEntry {
  std::string kind;  // "state" (crash state) or "workload" (fuzzer casualty)
  std::string fs;
  std::string bugs;  // comma-separated injected-bug ids, "" = none
  size_t device_size = 0;
  workload::Workload workload;
  uint64_t ordinal = 0;  // crash-state ordinal, or workload ordinal (fuzzer)
  uint64_t crash_point = 0;
  std::string subset;  // textual unit subset, state entries only
  uint64_t sandbox_budget = 0;
  bool inject = false;  // the run injected media faults
  uint64_t fault_seed = 0;
  std::string fault_detail;  // DescribeFaults of the injected decisions
  std::string report_kind;   // CheckKindName of the committed report
  std::string detail;        // the report's detail line
  std::string lease;         // provenance: poisoned lease id ("" = none)
  std::vector<uint8_t> image;   // state entries only
  std::string trace_window;     // preformatted trace.txt body, state only

  bool is_state() const { return kind == "state"; }
};

// Directory name for the entry: "<fs>-<workload>-{s|w}<ordinal>",
// filesystem-hostile characters replaced.
std::string QuarantineEntryName(const QuarantineEntry& e);

// Writes the entry under dir/<QuarantineEntryName>; creates directories as
// needed and overwrites a stale entry of the same name. Returns the entry
// path.
common::StatusOr<std::string> WriteQuarantineEntry(const std::string& dir,
                                                   const QuarantineEntry& e);

// Reads an entry directory written by WriteQuarantineEntry.
common::StatusOr<QuarantineEntry> ReadQuarantineEntry(
    const std::string& entry_dir);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_QUARANTINE_H_
