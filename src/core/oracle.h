// The oracle (§3.3, "Testing crash states"): runs the workload on a fresh
// instance of the *same* file system and records, for every path in the
// workload's universe, the legal state before and after each syscall. Crash
// states are compared against these versions.
#ifndef CHIPMUNK_CORE_ORACLE_H_
#define CHIPMUNK_CORE_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/fs_config.h"
#include "src/vfs/vfs.h"
#include "src/workload/workload.h"

namespace chipmunk {

// The observable state of one path: what stat/read/readdir say.
struct FileVersion {
  bool exists = false;
  bool unreadable = false;  // non-ENOENT error from stat/read/readdir
  vfs::FileType type = vfs::FileType::kNone;
  uint64_t size = 0;
  uint32_t nlink = 0;
  std::vector<uint8_t> content;       // regular files
  std::vector<std::string> entries;   // directories, sorted names
  // Extended attributes (empty when the FS does not support them).
  std::map<std::string, std::vector<uint8_t>> xattrs;

  bool operator==(const FileVersion&) const = default;

  std::string ToString() const;
};

using StateSnapshot = std::map<std::string, FileVersion>;

// Captures the observable version of each universe path through `vfs`.
StateSnapshot CaptureSnapshot(vfs::Vfs& vfs,
                              const std::vector<std::string>& universe);

struct OracleTrace {
  std::vector<std::string> universe;
  std::vector<StateSnapshot> pre;   // indexed by op
  std::vector<StateSnapshot> post;
  std::vector<common::Status> statuses;  // oracle syscall results
};

// Runs `w` on a fresh instance built from `config`, snapshotting the
// universe around every syscall.
common::StatusOr<OracleTrace> BuildOracle(const FsConfig& config,
                                          const workload::Workload& w);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_ORACLE_H_
