#include "src/core/harness.h"

#include "src/analysis/hb.h"
#include "src/analysis/invariants.h"
#include "src/core/replay_engine.h"
#include "src/core/runner.h"
#include "src/core/sandbox.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"

namespace chipmunk {

using common::Status;
using common::StatusOr;

StatusOr<RunStats> Harness::TestWorkload(const workload::Workload& w) const {
  RunStats stats;

  // The record stage and oracle run a whole workload, not one recovery, so
  // they get a generous multiple of the per-state budget.
  const SandboxOptions record_sandbox{
      options_.sandbox_op_budget == 0 ? 0 : options_.sandbox_op_budget * 16};
  const SandboxOptions probe_sandbox{options_.sandbox_op_budget};

  // ---- 1. Record: run the workload, logging persistence operations. ----
  // Sandboxed: a hostile Mkfs/Mount/workload path (throwing or looping on
  // media) surfaces as an error Status instead of taking the process down.
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config_.make(&pm);
  vfs::CrashGuarantees guarantees{};
  std::vector<uint8_t> base;
  pmem::TraceLogger logger;
  // Targeted replay needs the same temporal-store visibility as the linter:
  // the analyzer derives issue points from kStore ops.
  logger.set_log_temporal(options_.lint || options_.targeted);
  SandboxResult record = RunSandboxed(&pm, record_sandbox, [&]() -> Status {
    RETURN_IF_ERROR(fs->Mkfs());
    RETURN_IF_ERROR(fs->Mount());
    guarantees = fs->Guarantees();
    base = dev.Snapshot();
    pm.AddHook(&logger);
    vfs::Vfs vfs_layer(fs.get());
    WorkloadRunner runner(&w, &vfs_layer, &pm);
    stats.target_statuses = runner.RunAll();
    return common::OkStatus();
  });
  pm.RemoveHook(&logger);
  RETURN_IF_ERROR(record.status);
  const bool live_fault = pm.faulted();
  const std::string live_fault_detail =
      live_fault ? pm.fault().ToString() : "";

  // Live usability probe: the §4.4 class of non-crash-consistency bugs
  // (greedy allocation, KASAN-style faults) breaks the *running* instance
  // rather than any crash state. Probe it the same way the checker probes
  // crash states. The probe is not part of the recorded trace. Sandboxed: a
  // post-workload hang or throw in the live instance yields a report below
  // instead of wedging the pipeline.
  common::Status live_probe = common::OkStatus();
  SandboxResult probe = RunSandboxed(&pm, probe_sandbox, [&]() -> Status {
    vfs::Vfs vfs_layer(fs.get());
    auto fd = vfs_layer.Open("/.live_probe", vfs::OpenFlags{.create = true});
    if (!fd.ok()) {
      live_probe = fd.status();
    } else {
      uint8_t byte = 0x5a;
      auto n = vfs_layer.Write(*fd, &byte, 1);
      if (!n.ok()) {
        live_probe = n.status();
      }
      (void)vfs_layer.Close(*fd);
      common::Status unlink = vfs_layer.Unlink("/.live_probe");
      if (live_probe.ok()) {
        live_probe = unlink;
      }
    }
    return common::OkStatus();
  });

  // ---- 2. Oracle: fresh instance, snapshots around every syscall. ----
  // Exception containment only: BuildOracle owns its Pm internally, so the
  // watchdog cannot attach — but a mount-looping FS already died in the
  // (watchdogged) record stage above, which runs the same config first.
  OracleTrace oracle;
  SandboxResult oracle_guard =
      RunSandboxed(nullptr, record_sandbox, [&]() -> Status {
        auto built = BuildOracle(config_, w);
        if (!built.ok()) {
          return built.status();
        }
        oracle = std::move(built).value();
        return common::OkStatus();
      });
  RETURN_IF_ERROR(oracle_guard.status);
  stats.oracle_statuses = oracle.statuses;

  std::map<std::string, BugReport> dedup;
  auto add_report = [&](BugReport r) {
    ++stats.raw_reports;
    dedup.emplace(r.Signature(), std::move(r));
  };

  if (live_fault) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kOutOfBounds;
    r.detail = "media fault while running the workload: " + live_fault_detail;
    add_report(std::move(r));
  }
  if (probe.tripped()) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kRecoveryFailure;
    r.detail = "live instance crashed or hung during the post-workload "
               "probe: " +
               probe.status.ToString();
    add_report(std::move(r));
  } else if (!live_probe.ok() &&
             live_probe.code() != common::ErrorCode::kExists) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kUsability;
    r.detail =
        "live instance unusable after the workload: " + live_probe.ToString();
    add_report(std::move(r));
  }
  for (size_t i = 0; i < w.ops.size(); ++i) {
    if (stats.target_statuses[i].code() != oracle.statuses[i].code()) {
      BugReport r;
      r.fs = config_.name;
      r.workload_name = w.name;
      r.kind = CheckKind::kLiveDivergence;
      r.syscall_index = static_cast<int>(i);
      r.syscall = w.ops[i].ToString();
      r.detail = "target returned " + stats.target_statuses[i].ToString() +
                 ", oracle returned " + oracle.statuses[i].ToString();
      add_report(std::move(r));
    }
  }

  // ---- 3+4. Replay the trace, construct and check crash states. ----
  pmem::Trace trace = logger.TakeTrace();
  if (options_.lint) {
    analysis::LintOptions lint_options;
    lint_options.synchronous = guarantees.synchronous;
    stats.lint_findings = analysis::LintTrace(trace, lint_options);
    // Happens-before pass: durability intervals + ordering rules, plus mined
    // ordering invariants when a set is installed.
    const analysis::HbAnalysis hb = analysis::BuildHb(trace, lint_options);
    stats.hb_findings = analysis::HbLint(hb, lint_options);
    if (options_.invariants != nullptr) {
      std::vector<analysis::LintFinding> violations =
          analysis::CheckInvariants(hb, *options_.invariants);
      stats.hb_findings.insert(stats.hb_findings.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
    }
    auto add_finding = [&](const analysis::LintFinding& f) {
      BugReport r;
      r.fs = config_.name;
      r.workload_name = w.name;
      r.kind = CheckKind::kLintFinding;
      r.lint_rule = analysis::LintRuleId(f.rule);
      r.syscall_index = f.syscall_index;
      if (f.syscall_index >= 0 &&
          static_cast<size_t>(f.syscall_index) < w.ops.size()) {
        r.syscall = w.ops[f.syscall_index].ToString();
      }
      r.detail = f.ToString();
      add_report(std::move(r));
    };
    for (const analysis::LintFinding& f : stats.lint_findings) {
      add_finding(f);
    }
    for (const analysis::LintFinding& f : stats.hb_findings) {
      add_finding(f);
    }
  }
  // Linearization oracle for multi-threaded workloads: one image per
  // distinct completed-op subset, built on fresh instances like BuildOracle
  // (same sandboxing rationale).
  LinearizationOracle lin;
  bool have_lin = false;
  if (w.threads > 1 && options_.isolation_oracle) {
    SandboxResult lin_guard =
        RunSandboxed(nullptr, record_sandbox, [&]() -> Status {
          auto built =
              BuildLinearizationOracle(config_, w, options_.isolation_window);
          if (!built.ok()) {
            return built.status();
          }
          lin = std::move(built).value();
          return common::OkStatus();
        });
    RETURN_IF_ERROR(lin_guard.status);
    have_lin = true;
    stats.lin_images = lin.images.size();
    stats.lin_image_runs = lin.image_runs;
  }
  ReplayEngine engine(&config_, &options_);
  ReplayResult replay = engine.Run(trace, base, w, oracle, guarantees,
                                   have_lin ? &lin : nullptr);
  stats.crash_points = replay.crash_points;
  stats.crash_states = replay.crash_states;
  stats.states_deduped = replay.states_deduped;
  stats.states_pruned = replay.states_pruned;
  stats.clean_state_hashes = std::move(replay.clean_state_hashes);
  stats.inflight = std::move(replay.inflight);
  stats.quarantined = std::move(replay.quarantined);
  for (BugReport& r : replay.reports) {
    add_report(std::move(r));
  }

  for (auto& [sig, report] : dedup) {
    stats.reports.push_back(std::move(report));
  }
  return stats;
}

StatusOr<RecordedTrace> RecordTrace(const FsConfig& config,
                                    const workload::Workload& w,
                                    bool log_temporal) {
  pmem::PmDevice dev(config.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config.make(&pm);
  RETURN_IF_ERROR(fs->Mkfs());
  RETURN_IF_ERROR(fs->Mount());
  RecordedTrace out;
  out.guarantees = fs->Guarantees();
  pmem::TraceLogger logger;
  logger.set_log_temporal(log_temporal);
  pm.AddHook(&logger);
  vfs::Vfs vfs_layer(fs.get());
  WorkloadRunner runner(&w, &vfs_layer, &pm);
  runner.RunAll();
  pm.RemoveHook(&logger);
  out.trace = logger.TakeTrace();
  return out;
}

}  // namespace chipmunk
