#include "src/core/harness.h"

#include "src/core/replay_engine.h"
#include "src/core/runner.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"

namespace chipmunk {

using common::Status;
using common::StatusOr;

StatusOr<RunStats> Harness::TestWorkload(const workload::Workload& w) const {
  RunStats stats;

  // ---- 1. Record: run the workload, logging persistence operations. ----
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config_.make(&pm);
  RETURN_IF_ERROR(fs->Mkfs());
  RETURN_IF_ERROR(fs->Mount());
  const vfs::CrashGuarantees guarantees = fs->Guarantees();
  std::vector<uint8_t> base = dev.Snapshot();
  pmem::TraceLogger logger;
  logger.set_log_temporal(options_.lint);
  pm.AddHook(&logger);
  vfs::Vfs vfs_layer(fs.get());
  WorkloadRunner runner(&w, &vfs_layer, &pm);
  stats.target_statuses = runner.RunAll();
  pm.RemoveHook(&logger);
  const bool live_fault = pm.faulted();
  const std::string live_fault_detail =
      live_fault ? pm.fault().ToString() : "";

  // Live usability probe: the §4.4 class of non-crash-consistency bugs
  // (greedy allocation, KASAN-style faults) breaks the *running* instance
  // rather than any crash state. Probe it the same way the checker probes
  // crash states. The probe is not part of the recorded trace.
  common::Status live_probe = common::OkStatus();
  {
    auto fd = vfs_layer.Open("/.live_probe", vfs::OpenFlags{.create = true});
    if (!fd.ok()) {
      live_probe = fd.status();
    } else {
      uint8_t byte = 0x5a;
      auto n = vfs_layer.Write(*fd, &byte, 1);
      if (!n.ok()) {
        live_probe = n.status();
      }
      (void)vfs_layer.Close(*fd);
      common::Status unlink = vfs_layer.Unlink("/.live_probe");
      if (live_probe.ok()) {
        live_probe = unlink;
      }
    }
  }

  // ---- 2. Oracle: fresh instance, snapshots around every syscall. ----
  ASSIGN_OR_RETURN(OracleTrace oracle, BuildOracle(config_, w));
  stats.oracle_statuses = oracle.statuses;

  std::map<std::string, BugReport> dedup;
  auto add_report = [&](BugReport r) {
    ++stats.raw_reports;
    dedup.emplace(r.Signature(), std::move(r));
  };

  if (live_fault) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kOutOfBounds;
    r.detail = "media fault while running the workload: " + live_fault_detail;
    add_report(std::move(r));
  }
  if (!live_probe.ok() &&
      live_probe.code() != common::ErrorCode::kExists) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kUsability;
    r.detail =
        "live instance unusable after the workload: " + live_probe.ToString();
    add_report(std::move(r));
  }
  for (size_t i = 0; i < w.ops.size(); ++i) {
    if (stats.target_statuses[i].code() != oracle.statuses[i].code()) {
      BugReport r;
      r.fs = config_.name;
      r.workload_name = w.name;
      r.kind = CheckKind::kLiveDivergence;
      r.syscall_index = static_cast<int>(i);
      r.syscall = w.ops[i].ToString();
      r.detail = "target returned " + stats.target_statuses[i].ToString() +
                 ", oracle returned " + oracle.statuses[i].ToString();
      add_report(std::move(r));
    }
  }

  // ---- 3+4. Replay the trace, construct and check crash states. ----
  pmem::Trace trace = logger.TakeTrace();
  if (options_.lint) {
    analysis::LintOptions lint_options;
    lint_options.synchronous = guarantees.synchronous;
    stats.lint_findings = analysis::LintTrace(trace, lint_options);
    for (const analysis::LintFinding& f : stats.lint_findings) {
      BugReport r;
      r.fs = config_.name;
      r.workload_name = w.name;
      r.kind = CheckKind::kLintFinding;
      r.lint_rule = analysis::LintRuleId(f.rule);
      r.syscall_index = f.syscall_index;
      if (f.syscall_index >= 0 &&
          static_cast<size_t>(f.syscall_index) < w.ops.size()) {
        r.syscall = w.ops[f.syscall_index].ToString();
      }
      r.detail = f.ToString();
      add_report(std::move(r));
    }
  }
  ReplayEngine engine(&config_, &options_);
  ReplayResult replay = engine.Run(trace, base, w, oracle, guarantees);
  stats.crash_points = replay.crash_points;
  stats.crash_states = replay.crash_states;
  stats.inflight = std::move(replay.inflight);
  for (BugReport& r : replay.reports) {
    add_report(std::move(r));
  }

  for (auto& [sig, report] : dedup) {
    stats.reports.push_back(std::move(report));
  }
  return stats;
}

StatusOr<RecordedTrace> RecordTrace(const FsConfig& config,
                                    const workload::Workload& w,
                                    bool log_temporal) {
  pmem::PmDevice dev(config.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config.make(&pm);
  RETURN_IF_ERROR(fs->Mkfs());
  RETURN_IF_ERROR(fs->Mount());
  RecordedTrace out;
  out.guarantees = fs->Guarantees();
  pmem::TraceLogger logger;
  logger.set_log_temporal(log_temporal);
  pm.AddHook(&logger);
  vfs::Vfs vfs_layer(fs.get());
  WorkloadRunner runner(&w, &vfs_layer, &pm);
  runner.RunAll();
  pm.RemoveHook(&logger);
  out.trace = logger.TakeTrace();
  return out;
}

}  // namespace chipmunk
