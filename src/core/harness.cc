#include "src/core/harness.h"

#include <algorithm>

#include "src/core/runner.h"
#include "src/pmem/pm.h"
#include "src/pmem/pm_device.h"

namespace chipmunk {

using common::Status;
using common::StatusOr;
using pmem::PmOp;
using pmem::PmOpKind;
using workload::OpKind;

namespace {

// Saved pre-images for temporarily applied in-flight writes.
struct Applied {
  uint64_t off;
  std::vector<uint8_t> old_bytes;
};

void ApplyTraceOp(pmem::Pm& pm, const PmOp& op, std::vector<Applied>* saved) {
  if (!op.IsWrite()) {
    return;
  }
  if (saved != nullptr) {
    saved->push_back(Applied{op.off, pm.ReadVec(op.off, op.data.size())});
  }
  pm.RestoreRaw(op.off, op.data.data(), op.data.size());
}

void Revert(pmem::Pm& pm, std::vector<Applied>& saved) {
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    pm.RestoreRaw(it->off, it->old_bytes.data(), it->old_bytes.size());
  }
  saved.clear();
}

// Enumerates subsets of {0..k-1} of size `size` in lexicographic order,
// invoking fn for each; fn returns false to stop.
bool ForEachCombination(size_t k, size_t size,
                        const std::function<bool(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> idx(size);
  for (size_t i = 0; i < size; ++i) {
    idx[i] = i;
  }
  if (size > k) {
    return true;
  }
  while (true) {
    if (!fn(idx)) {
      return false;
    }
    // Advance to the next combination.
    size_t i = size;
    while (i > 0) {
      --i;
      if (idx[i] != i + k - size) {
        ++idx[i];
        for (size_t j = i + 1; j < size; ++j) {
          idx[j] = idx[j - 1] + 1;
        }
        break;
      }
      if (i == 0) {
        return true;
      }
    }
    if (size == 0) {
      return true;
    }
  }
}

bool IsSyncFamily(OpKind kind) {
  return kind == OpKind::kFsync || kind == OpKind::kFdatasync ||
         kind == OpKind::kSync;
}

}  // namespace

std::vector<Harness::Unit> Harness::BuildUnits(
    const pmem::Trace& trace, const std::vector<size_t>& inflight) const {
  std::vector<Unit> units;
  for (size_t idx : inflight) {
    const PmOp& op = trace[idx];
    const bool big = options_.coalesce_data &&
                     op.kind == PmOpKind::kNtStore &&
                     op.data.size() >= options_.data_write_threshold;
    if (big && !units.empty() && units.back().data &&
        units.back().op_indices.back() + 1 == idx) {
      units.back().op_indices.push_back(idx);
      continue;
    }
    Unit unit;
    unit.op_indices.push_back(idx);
    unit.data = big;
    units.push_back(std::move(unit));
  }
  return units;
}

StatusOr<RunStats> Harness::TestWorkload(const workload::Workload& w) {
  RunStats stats;

  // ---- 1. Record: run the workload, logging persistence operations. ----
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  std::unique_ptr<vfs::FileSystem> fs = config_.make(&pm);
  RETURN_IF_ERROR(fs->Mkfs());
  RETURN_IF_ERROR(fs->Mount());
  const vfs::CrashGuarantees guarantees = fs->Guarantees();
  std::vector<uint8_t> base = dev.Snapshot();
  pmem::TraceLogger logger;
  pm.AddHook(&logger);
  vfs::Vfs vfs_layer(fs.get());
  WorkloadRunner runner(&w, &vfs_layer, &pm);
  stats.target_statuses = runner.RunAll();
  pm.RemoveHook(&logger);
  const bool live_fault = pm.faulted();
  const std::string live_fault_detail =
      live_fault ? pm.fault().ToString() : "";

  // Live usability probe: the §4.4 class of non-crash-consistency bugs
  // (greedy allocation, KASAN-style faults) breaks the *running* instance
  // rather than any crash state. Probe it the same way the checker probes
  // crash states. The probe is not part of the recorded trace.
  common::Status live_probe = common::OkStatus();
  {
    auto fd = vfs_layer.Open("/.live_probe", vfs::OpenFlags{.create = true});
    if (!fd.ok()) {
      live_probe = fd.status();
    } else {
      uint8_t byte = 0x5a;
      auto n = vfs_layer.Write(*fd, &byte, 1);
      if (!n.ok()) {
        live_probe = n.status();
      }
      (void)vfs_layer.Close(*fd);
      common::Status unlink = vfs_layer.Unlink("/.live_probe");
      if (live_probe.ok()) {
        live_probe = unlink;
      }
    }
  }

  // ---- 2. Oracle: fresh instance, snapshots around every syscall. ----
  ASSIGN_OR_RETURN(OracleTrace oracle, BuildOracle(config_, w));
  stats.oracle_statuses = oracle.statuses;

  std::map<std::string, BugReport> dedup;
  auto add_report = [&](BugReport r) {
    ++stats.raw_reports;
    dedup.emplace(r.Signature(), std::move(r));
  };

  if (live_fault) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kOutOfBounds;
    r.detail = "media fault while running the workload: " + live_fault_detail;
    add_report(std::move(r));
  }
  if (!live_probe.ok() &&
      live_probe.code() != common::ErrorCode::kExists) {
    BugReport r;
    r.fs = config_.name;
    r.workload_name = w.name;
    r.kind = CheckKind::kUsability;
    r.detail =
        "live instance unusable after the workload: " + live_probe.ToString();
    add_report(std::move(r));
  }
  for (size_t i = 0; i < w.ops.size(); ++i) {
    if (stats.target_statuses[i].code() != oracle.statuses[i].code()) {
      BugReport r;
      r.fs = config_.name;
      r.workload_name = w.name;
      r.kind = CheckKind::kLiveDivergence;
      r.syscall_index = static_cast<int>(i);
      r.syscall = w.ops[i].ToString();
      r.detail = "target returned " + stats.target_statuses[i].ToString() +
                 ", oracle returned " + oracle.statuses[i].ToString();
      add_report(std::move(r));
    }
  }

  // ---- 3+4. Replay the trace, construct and check crash states. ----
  pmem::Trace trace = logger.TakeTrace();
  pmem::PmDevice work(std::move(base));
  pmem::Pm wpm(&work);
  Checker checker(&config_);

  int cur_syscall = -1;
  uint64_t fence_seq = 0;
  size_t writes_since_check = 0;
  std::vector<size_t> inflight;
  bool stop = false;

  auto budget_left = [&]() {
    return options_.max_crash_states == 0 ||
           stats.crash_states < options_.max_crash_states;
  };

  for (size_t t = 0; t < trace.size() && !stop; ++t) {
    const PmOp& op = trace[t];
    if (op.IsWrite()) {
      inflight.push_back(t);
      ++writes_since_check;
      continue;
    }
    if (op.kind == PmOpKind::kFence) {
      ++fence_seq;
      const bool enumerate = guarantees.synchronous &&
                             options_.check_mid_syscall && cur_syscall >= 0 &&
                             !inflight.empty();
      if (enumerate) {
        stats.inflight.push_back(InflightSample{cur_syscall, inflight.size()});
        std::vector<Unit> units = BuildUnits(trace, inflight);
        const size_t k = units.size();
        size_t max_size = k == 0 ? 0 : k - 1;
        if (options_.replay_cap > 0) {
          max_size = std::min(max_size, options_.replay_cap);
        } else if (k > options_.safety_limit) {
          max_size = std::min(max_size, options_.safety_cap);
        }
        ++stats.crash_points;
        auto subset_source = [&](size_t size,
                                 const std::function<bool(const std::vector<size_t>&)>& fn) {
          if (!options_.prefix_only) {
            return ForEachCombination(k, size, fn);
          }
          // Ordered persistency: the only size-`size` crash state is the
          // program-order prefix of that length.
          if (size > k) {
            return true;
          }
          std::vector<size_t> prefix(size);
          for (size_t i = 0; i < size; ++i) {
            prefix[i] = i;
          }
          return fn(prefix);
        };
        for (size_t size = 0; size <= max_size && !stop; ++size) {
          bool keep_going = subset_source(
              size, [&](const std::vector<size_t>& chosen) {
                if (!budget_left()) {
                  return false;
                }
                std::vector<Applied> saved;
                for (size_t u : chosen) {
                  for (size_t idx : units[u].op_indices) {
                    ApplyTraceOp(wpm, trace[idx], &saved);
                  }
                }
                ++stats.crash_states;
                CheckContext ctx;
                ctx.w = &w;
                ctx.oracle = &oracle;
                ctx.guarantees = guarantees;
                ctx.syscall_index = cur_syscall;
                ctx.mid_syscall = true;
                ctx.crash_point = fence_seq;
                ctx.subset = chosen;
                auto report = checker.CheckCrashState(wpm, ctx);
                Revert(wpm, saved);
                if (report.has_value()) {
                  add_report(std::move(*report));
                  if (options_.stop_at_first_report) {
                    return false;
                  }
                }
                return true;
              });
          if (!keep_going) {
            stop = !budget_left() ? true : options_.stop_at_first_report;
          }
        }
        // Partial-data states: for each coalesced data unit, a crash that
        // persists only part of the unit (alone, and together with all the
        // other in-flight writes).
        for (size_t u = 0; u < units.size() && !stop; ++u) {
          if (!units[u].data || units[u].op_indices.size() < 2) {
            continue;
          }
          const size_t half = (units[u].op_indices.size() + 1) / 2;
          for (int variant = 0; variant < 2 && !stop; ++variant) {
            if (!budget_left()) {
              stop = true;
              break;
            }
            std::vector<size_t> indices(units[u].op_indices.begin(),
                                        units[u].op_indices.begin() + half);
            if (variant == 1) {
              for (size_t other = 0; other < units.size(); ++other) {
                if (other != u) {
                  indices.insert(indices.end(),
                                 units[other].op_indices.begin(),
                                 units[other].op_indices.end());
                }
              }
              std::sort(indices.begin(), indices.end());
            }
            std::vector<Applied> saved;
            for (size_t idx : indices) {
              ApplyTraceOp(wpm, trace[idx], &saved);
            }
            ++stats.crash_states;
            CheckContext ctx;
            ctx.w = &w;
            ctx.oracle = &oracle;
            ctx.guarantees = guarantees;
            ctx.syscall_index = cur_syscall;
            ctx.mid_syscall = true;
            ctx.crash_point = fence_seq;
            ctx.subset = {u};
            auto report = checker.CheckCrashState(wpm, ctx);
            Revert(wpm, saved);
            if (report.has_value()) {
              add_report(std::move(*report));
              if (options_.stop_at_first_report) {
                stop = true;
              }
            }
          }
        }
        if (!budget_left()) {
          stop = true;
        }
      }
      // The fence makes everything in flight persistent.
      for (size_t idx : inflight) {
        ApplyTraceOp(wpm, trace[idx], nullptr);
      }
      inflight.clear();
      continue;
    }
    if (op.kind == PmOpKind::kMarker) {
      if (op.marker == pmem::MarkerKind::kSyscallBegin) {
        cur_syscall = op.syscall_index;
      } else if (op.marker == pmem::MarkerKind::kSyscallEnd) {
        const int i = op.syscall_index;
        const OpKind kind = w.ops[i].kind;
        const bool strong_check = guarantees.synchronous;
        const bool weak_check = !guarantees.synchronous && IsSyncFamily(kind);
        // Check when media changed — or when the oracle says the op changed
        // visible state, which catches ops that (buggily) wrote nothing.
        const bool op_had_effect =
            oracle.pre[i] != oracle.post[i] || writes_since_check > 0;
        if ((strong_check || weak_check) && op_had_effect && budget_left() &&
            !stop) {
          ++stats.crash_states;
          CheckContext ctx;
          ctx.w = &w;
          ctx.oracle = &oracle;
          ctx.guarantees = guarantees;
          ctx.syscall_index = i;
          ctx.mid_syscall = false;
          ctx.crash_point = fence_seq;
          if (weak_check) {
            if (kind == OpKind::kSync) {
              ctx.sync_paths = oracle.universe;
            } else if (!w.ops[i].path.empty()) {
              ctx.sync_paths = {w.ops[i].path};
            }
          }
          auto report = checker.CheckCrashState(wpm, ctx);
          if (report.has_value()) {
            add_report(std::move(*report));
            if (options_.stop_at_first_report) {
              stop = true;
            }
          }
          writes_since_check = inflight.size();
        }
        cur_syscall = -1;
      }
      continue;
    }
  }

  for (auto& [sig, report] : dedup) {
    stats.reports.push_back(std::move(report));
  }
  return stats;
}

}  // namespace chipmunk
