#include "src/core/fs_registry.h"

#include "src/fs/ext4dax/ext4dax.h"
#include "src/fs/reference/reference_fs.h"
#include "src/fs/novafs/nova_fs.h"
#include "src/fs/pmfs/pmfs.h"
#include "src/fs/splitfs/splitfs.h"
#include "src/fs/winefs/winefs.h"
#include "src/fs/xfsdax/xfsdax.h"

namespace chipmunk {

std::vector<std::string> RegisteredFsNames() {
  return {"novafs", "novafs-fortis", "pmfs", "winefs", "ext4dax",
          "xfsdax", "splitfs"};
}

common::StatusOr<FsConfig> MakeFsConfig(const std::string& name,
                                        vfs::BugSet bugs,
                                        size_t device_size) {
  FsConfig config;
  config.name = name;
  config.device_size = device_size;
  for (vfs::BugId id : bugs.ids()) {
    if (!config.bugs.empty()) {
      config.bugs += ",";
    }
    config.bugs += std::to_string(static_cast<int>(id));
  }
  if (name == "novafs" || name == "novafs-fortis") {
    novafs::NovaOptions options;
    options.fortis = name == "novafs-fortis";
    options.bugs = std::move(bugs);
    config.make = [options](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
      return std::make_unique<novafs::NovaFs>(pm, options);
    };
    return config;
  }
  if (name == "pmfs") {
    pmfs::PmfsOptions options{std::move(bugs)};
    config.make = [options](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
      return std::make_unique<pmfs::PmfsFs>(pm, options);
    };
    return config;
  }
  if (name == "winefs") {
    winefs::WinefsOptions options;
    options.bugs = std::move(bugs);
    config.make = [options](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
      return std::make_unique<winefs::WinefsFs>(pm, options);
    };
    return config;
  }
  if (name == "ext4dax") {
    config.make = [](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
      return std::make_unique<ext4dax::Ext4DaxFs>(pm, ext4dax::Ext4Options{});
    };
    return config;
  }
  if (name == "xfsdax") {
    config.make = [](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
      return std::make_unique<xfsdax::XfsDaxFs>(pm, xfsdax::XfsOptions{});
    };
    return config;
  }
  if (name == "splitfs") {
    splitfs::SplitOptions options{std::move(bugs)};
    config.make = [options](pmem::Pm* pm) -> std::unique_ptr<vfs::FileSystem> {
      return std::make_unique<splitfs::SplitFs>(pm, options);
    };
    return config;
  }
  return common::Invalid("unknown file system: " + name);
}

FsConfig MakeReferenceConfig(size_t device_size) {
  FsConfig config;
  config.name = "reference";
  config.device_size = device_size;
  config.make = [](pmem::Pm*) -> std::unique_ptr<vfs::FileSystem> {
    return std::make_unique<reffs::ReferenceFs>();
  };
  return config;
}

common::StatusOr<FsConfig> MakeBugConfig(vfs::BugId bug, size_t device_size) {
  const vfs::BugInfo* info = vfs::FindBug(bug);
  if (info == nullptr) {
    return common::Invalid("unknown bug id");
  }
  return MakeFsConfig(info->fs, vfs::BugSet::Single(bug), device_size);
}

}  // namespace chipmunk
