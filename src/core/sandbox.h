// Recovery sandbox: a guarded execution context for mounting and checking
// crash states (and for any other code that runs a file system's recovery
// path in-process).
//
// The real Chipmunk runs recovery inside a VM so a panicking or hanging
// kernel cannot take down the test campaign; this repo's file systems run
// in-process, so a hostile recovery path (throwing, infinite-looping, or
// scribbling) would otherwise abort the whole fuzz run. RunSandboxed gives
// the equivalent armor:
//
//   - Exceptions escaping the body are caught and converted into a
//     SandboxOutcome::kException result.
//   - A cooperative op budget is enforced by a watchdog PmHook counting
//     every media operation (reads included): recovery that loops forever
//     necessarily keeps touching media, so the budget bounds it
//     *deterministically* — no wall-clock timers, no flakiness, identical
//     behaviour for every --jobs value. Exhaustion surfaces as
//     SandboxOutcome::kTimeout / ErrorCode::kRecoveryTimeout.
//
// Pure-CPU infinite loops that never touch media are out of scope (they do
// not occur in media-driven recovery; bounding them would need preemption).
#ifndef CHIPMUNK_CORE_SANDBOX_H_
#define CHIPMUNK_CORE_SANDBOX_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"
#include "src/pmem/pm.h"

namespace chipmunk {

struct SandboxOptions {
  // Media operations (reads, writes, flushes, fences) allowed per guarded
  // section. 0 disables the watchdog (exceptions are still caught).
  uint64_t op_budget = 1'000'000;
};

enum class SandboxOutcome {
  kCompleted,  // the body ran to completion (its Status may still be an error)
  kTimeout,    // the op budget was exhausted (runaway recovery loop)
  kException,  // the body threw
};

struct SandboxResult {
  SandboxOutcome outcome = SandboxOutcome::kCompleted;
  // kCompleted: the body's return value. kTimeout/kException: a synthesized
  // error describing the failure.
  common::Status status;
  uint64_t ops_used = 0;

  bool tripped() const { return outcome != SandboxOutcome::kCompleted; }
};

// Thrown by the watchdog when the budget runs out. Deliberately NOT derived
// from std::exception: file-system code under test must not be able to
// swallow the abort with a catch (const std::exception&).
struct RecoveryBudgetExceeded {
  uint64_t budget = 0;
};

// Counts every media operation seen through a Pm facade and throws
// RecoveryBudgetExceeded once the budget is exceeded.
class OpBudgetWatchdog : public pmem::PmHook {
 public:
  explicit OpBudgetWatchdog(uint64_t budget) : budget_(budget) {}

  void OnWrite(uint64_t off, const uint8_t* old_data, const uint8_t* new_data,
               size_t n, bool temporal) override {
    Tick();
  }
  void OnFlush(uint64_t off, const uint8_t* contents, size_t n) override {
    Tick();
  }
  void OnFence() override { Tick(); }
  void OnRead(uint64_t off, size_t n) override { Tick(); }

  uint64_t ops() const { return ops_; }

 private:
  void Tick() {
    ++ops_;
    if (budget_ != 0 && ops_ > budget_) {
      throw RecoveryBudgetExceeded{budget_};
    }
  }

  uint64_t budget_;
  uint64_t ops_ = 0;
};

// Runs `body` under the sandbox. When `pm` is non-null a watchdog hook is
// attached to it for the duration of the call (and removed on every exit
// path); when null only exception containment applies — used for sections
// like oracle construction that build their own Pm internally.
SandboxResult RunSandboxed(pmem::Pm* pm, const SandboxOptions& options,
                           const std::function<common::Status()>& body);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_SANDBOX_H_
