// ReplayEngine: the crash-state construction and checking stage of the
// harness (§3.3), extracted from Harness::TestWorkload and parallelised.
//
// A sequential planning pass walks the persistence trace and turns every
// fence / syscall-end crash point into a task carrying a precomputed global
// ordinal range of crash states. Tasks are then drained from a shared queue
// by a pool of workers; each worker owns a private PmDevice image (a
// page-granular copy-on-write overlay of the base snapshot — or a deep copy
// with cow_images off — advanced lazily by applying the per-fence write
// windows it has not yet reached), its own Pm facade and Checker, and mounts
// its own file-system instances, so no mutable media state is shared between
// threads.
// Reports are collected per worker together with the global ordinal of the
// crash state that produced them, and a deterministic merge re-runs the
// sequential engine's control flow (crash-state budget, stop-at-first-report)
// over the ordinal space — so the output is bit-identical to a sequential
// replay for every jobs value and independent of thread scheduling.
#ifndef CHIPMUNK_CORE_REPLAY_ENGINE_H_
#define CHIPMUNK_CORE_REPLAY_ENGINE_H_

#include <functional>
#include <vector>

#include "src/core/checker.h"
#include "src/core/fs_config.h"
#include "src/core/harness_options.h"
#include "src/core/oracle.h"
#include "src/core/report.h"
#include "src/pmem/trace.h"
#include "src/workload/workload.h"

namespace chipmunk {

struct ReplayResult {
  size_t crash_points = 0;  // fences where subsets were enumerated
  size_t crash_states = 0;  // states visited (mounted + checked, or deduped)
  // States skipped via HarnessOptions::dedup_index: their canonical hash was
  // already verified consistent, so the mount + checks were elided. Deduped
  // states still count toward crash_states and the max_crash_states budget,
  // which keeps the visited ordinal space identical with and without a warm
  // index.
  size_t states_deduped = 0;
  // States skipped as non-representative members of a page-signature
  // equivalence class (HarnessOptions::representative): never mounted, the
  // class representative's verdict stands for them. Included in
  // crash_states, like deduped states.
  size_t states_pruned = 0;
  // Canonical hashes of visited clean states (checked, no report, not
  // deduped), in sequential visitation order. Empty unless dedup is active.
  std::vector<uint64_t> clean_state_hashes;
  // Crash-state reports in sequential visitation order, before dedup.
  std::vector<BugReport> reports;
  std::vector<InflightSample> inflight;
  // Quarantine entry paths written for this run's recovery failures (the
  // first HarnessOptions::quarantine_max surviving kRecoveryFailure states,
  // rebuilt deterministically after the merge — identical for every jobs
  // value).
  std::vector<std::string> quarantined;
};

class ReplayEngine {
 public:
  // One replay unit: either a single in-flight write, or a run of large
  // non-temporal data stores coalesced into one logical write.
  struct Unit {
    std::vector<size_t> op_indices;  // trace indices, program order
    bool data = false;               // coalesced data-write unit
  };

  ReplayEngine(const FsConfig* config, const HarnessOptions* options)
      : config_(config), options_(options) {}

  // Replays `trace` over the `base` image, constructing and checking crash
  // states at every fence / syscall-end crash point, sharded across
  // options->jobs workers. `lin` is the linearization oracle for
  // multi-threaded workloads (null for single-threaded runs or when the
  // isolation oracle is disabled).
  ReplayResult Run(const pmem::Trace& trace, const std::vector<uint8_t>& base,
                   const workload::Workload& w, const OracleTrace& oracle,
                   vfs::CrashGuarantees guarantees,
                   const LinearizationOracle* lin = nullptr) const;

  // Coalesces the in-flight writes at a fence into replay units: a large NT
  // store joins the preceding unit when that unit is itself coalesced data
  // and ends exactly where the new store begins (adjacency in the in-flight
  // list plus offset contiguity — an interleaved flush or marker must not
  // split one logical write). Exposed for tests.
  static std::vector<Unit> BuildUnits(const pmem::Trace& trace,
                                      const std::vector<size_t>& inflight,
                                      const HarnessOptions& options);

 private:
  const FsConfig* config_;
  const HarnessOptions* options_;
};

// Enumerates the crash states of one fence crash point in the engine's
// canonical order: subset states ascending by size (lexicographic within a
// size, or program-order prefixes under prefix_only), then the partial-data
// variants of each coalesced unit (the first half alone, and the first half
// together with every other in-flight unit). `fn(applied, subset)` receives
// the trace indices applied for the state and the value recorded in the
// report's `subset` field (unit indices for subset states, applied trace
// indices for partial-data states); returning false stops the enumeration.
// Exposed for tests.
void ForEachFenceState(
    const std::vector<ReplayEngine::Unit>& units, size_t max_size,
    bool prefix_only,
    const std::function<bool(const std::vector<size_t>& applied,
                             const std::vector<size_t>& subset)>& fn);

}  // namespace chipmunk

#endif  // CHIPMUNK_CORE_REPLAY_ENGINE_H_
