#include "src/core/fsck.h"

#include <map>
#include <set>
#include <vector>

namespace chipmunk {

namespace {

struct WalkState {
  std::vector<FsckIssue> issues;
  // ino -> number of names that reach it (regular files).
  std::map<vfs::InodeNum, uint32_t> file_name_counts;
  std::map<vfs::InodeNum, uint32_t> file_nlink_claims;
  std::map<vfs::InodeNum, std::string> file_example_path;
};

void Walk(vfs::FileSystem* fs, const std::string& path, vfs::InodeNum ino,
          std::set<vfs::InodeNum>& dir_stack, WalkState& state) {
  auto st = fs->GetAttr(ino);
  if (!st.ok()) {
    state.issues.push_back(
        FsckIssue{path, "stat failed: " + st.status().ToString()});
    return;
  }
  if (st->type == vfs::FileType::kRegular) {
    state.file_name_counts[ino] += 1;
    state.file_nlink_claims[ino] = st->nlink;
    state.file_example_path.emplace(ino, path);
    if (st->size > 0) {
      std::vector<uint8_t> buf(st->size);
      auto n = fs->Read(ino, 0, st->size, buf.data());
      if (!n.ok()) {
        state.issues.push_back(
            FsckIssue{path, "read failed: " + n.status().ToString()});
      } else if (*n != st->size) {
        state.issues.push_back(FsckIssue{
            path, "short read: " + std::to_string(*n) + " of " +
                      std::to_string(st->size) + " bytes"});
      }
    }
    return;
  }
  if (st->type != vfs::FileType::kDirectory) {
    state.issues.push_back(FsckIssue{path, "node with invalid type"});
    return;
  }
  if (!dir_stack.insert(ino).second) {
    state.issues.push_back(FsckIssue{path, "directory cycle"});
    return;
  }
  auto entries = fs->ReadDir(ino);
  if (!entries.ok()) {
    state.issues.push_back(
        FsckIssue{path, "readdir failed: " + entries.status().ToString()});
    dir_stack.erase(ino);
    return;
  }
  uint32_t subdirs = 0;
  std::set<std::string> seen_names;
  for (const vfs::DirEntry& entry : *entries) {
    std::string child_path =
        path == "/" ? "/" + entry.name : path + "/" + entry.name;
    if (entry.name.empty()) {
      state.issues.push_back(FsckIssue{child_path, "empty entry name"});
      continue;
    }
    if (!seen_names.insert(entry.name).second) {
      state.issues.push_back(FsckIssue{child_path, "duplicate entry name"});
      continue;
    }
    auto looked_up = fs->Lookup(ino, entry.name);
    if (!looked_up.ok() || *looked_up != entry.ino) {
      state.issues.push_back(FsckIssue{
          child_path, "lookup disagrees with readdir"});
      continue;
    }
    auto child_st = fs->GetAttr(entry.ino);
    if (child_st.ok() && child_st->type == vfs::FileType::kDirectory) {
      ++subdirs;
    }
    Walk(fs, child_path, entry.ino, dir_stack, state);
  }
  if (st->nlink != 2 + subdirs) {
    state.issues.push_back(FsckIssue{
        path, "directory nlink " + std::to_string(st->nlink) +
                  " but has " + std::to_string(subdirs) + " subdirectories"});
  }
  dir_stack.erase(ino);
}

}  // namespace

std::vector<FsckIssue> Fsck(vfs::FileSystem* fs) {
  WalkState state;
  if (!fs->IsMounted()) {
    state.issues.push_back(FsckIssue{"/", "file system is not mounted"});
    return state.issues;
  }
  std::set<vfs::InodeNum> dir_stack;
  Walk(fs, "/", fs->RootIno(), dir_stack, state);
  for (const auto& [ino, names] : state.file_name_counts) {
    uint32_t claimed = state.file_nlink_claims[ino];
    if (claimed != names) {
      state.issues.push_back(FsckIssue{
          state.file_example_path[ino],
          "file claims nlink " + std::to_string(claimed) + " but " +
              std::to_string(names) + " name(s) reach it"});
    }
  }
  return state.issues;
}

}  // namespace chipmunk
