#include "src/concurrency/schedule.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/common/rng.h"

namespace concurrency {

using workload::Op;
using workload::OpKind;
using workload::Workload;

namespace {

// A workload dissected into the parts with fixed schedule positions: the
// setup prologue runs sequentially first (dependency-satisfaction ops must
// precede every racing body op), the weak-FS trailing sync runs last (it is
// the durability barrier the synchrony checker keys on), and only the body
// in between is interleaved.
struct Parts {
  std::vector<Op> prologue;
  std::vector<Op> body;
  std::vector<Op> trailer;
};

Parts Dissect(const std::vector<Op>& ops) {
  Parts parts;
  size_t begin = 0;
  while (begin < ops.size() && ops[begin].setup) {
    parts.prologue.push_back(ops[begin]);
    ++begin;
  }
  size_t end = ops.size();
  if (end > begin && ops[end - 1].kind == OpKind::kSync &&
      ops[end - 1].fd_slot < 0 && !ops[end - 1].setup) {
    parts.trailer.push_back(ops[end - 1]);
    --end;
  }
  parts.body.insert(parts.body.end(), ops.begin() + begin, ops.begin() + end);
  return parts;
}

// Weighted merge: repeatedly pick a body op uniformly among all remaining
// ops, which selects each thread proportionally to how much program it has
// left — long programs neither starve nor flood the schedule tail.
std::vector<Op> Merge(std::vector<std::deque<Op>> queues, common::Rng& rng) {
  size_t remaining = 0;
  for (const auto& q : queues) {
    remaining += q.size();
  }
  std::vector<Op> out;
  out.reserve(remaining);
  while (remaining > 0) {
    uint64_t r = rng.Below(remaining);
    for (auto& q : queues) {
      if (r < q.size()) {
        out.push_back(std::move(q.front()));
        q.pop_front();
        break;
      }
      r -= q.size();
    }
    --remaining;
  }
  return out;
}

Workload Assemble(std::string name, Parts parts,
                  std::vector<std::deque<Op>> queues, int threads,
                  uint64_t schedule_seed, common::Rng& rng) {
  Workload w;
  w.name = std::move(name);
  w.threads = std::max(1, threads);
  w.schedule_seed = schedule_seed;
  w.ops = std::move(parts.prologue);
  std::vector<Op> merged = Merge(std::move(queues), rng);
  w.ops.insert(w.ops.end(), std::make_move_iterator(merged.begin()),
               std::make_move_iterator(merged.end()));
  w.ops.insert(w.ops.end(), std::make_move_iterator(parts.trailer.begin()),
               std::make_move_iterator(parts.trailer.end()));
  return w;
}

}  // namespace

Workload Interleave(std::string name,
                    const std::vector<ThreadProgram>& programs,
                    uint64_t schedule_seed, uint64_t ordinal) {
  common::Rng rng = common::Rng::Stream(schedule_seed, ordinal);
  Parts parts;
  std::vector<std::deque<Op>> queues;
  int max_tid = 0;
  for (const ThreadProgram& prog : programs) {
    max_tid = std::max(max_tid, prog.tid);
    Parts p = Dissect(prog.ops);
    for (Op& op : p.prologue) {
      op.tid = prog.tid;
      parts.prologue.push_back(std::move(op));
    }
    for (Op& op : p.trailer) {
      op.tid = prog.tid;
      parts.trailer.push_back(std::move(op));
    }
    std::deque<Op> q;
    for (Op& op : p.body) {
      op.tid = prog.tid;
      q.push_back(std::move(op));
    }
    queues.push_back(std::move(q));
  }
  return Assemble(std::move(name), std::move(parts), std::move(queues),
                  max_tid + 1, schedule_seed, rng);
}

std::vector<ThreadProgram> SplitThreads(const Workload& w) {
  std::map<int, ThreadProgram> by_tid;
  for (const Op& op : w.ops) {
    ThreadProgram& prog = by_tid[op.tid];
    prog.tid = op.tid;
    prog.ops.push_back(op);
  }
  std::vector<ThreadProgram> out;
  out.reserve(by_tid.size());
  for (auto& [tid, prog] : by_tid) {
    out.push_back(std::move(prog));
  }
  return out;
}

Workload Reschedule(const Workload& w, uint64_t schedule_seed,
                    uint64_t ordinal) {
  if (w.threads <= 1) {
    return w;
  }
  common::Rng rng = common::Rng::Stream(schedule_seed, ordinal);
  Parts parts = Dissect(w.ops);
  std::map<int, std::deque<Op>> by_tid;
  for (Op& op : parts.body) {
    by_tid[op.tid].push_back(std::move(op));
  }
  parts.body.clear();
  std::vector<std::deque<Op>> queues;
  for (auto& [tid, q] : by_tid) {
    queues.push_back(std::move(q));
  }
  Workload out = Assemble(w.name, std::move(parts), std::move(queues),
                          w.threads, schedule_seed, rng);
  return out;
}

Workload Concurrentize(const Workload& w, int threads, uint64_t schedule_seed,
                       uint64_t ordinal) {
  if (threads <= 1) {
    return w;
  }
  Parts parts = Dissect(w.ops);
  if (parts.body.size() < 2) {
    return w;
  }
  common::Rng rng = common::Rng::Stream(schedule_seed, ordinal);
  // Thread assignment with fd-slot affinity: the thread that opens a slot
  // owns every later op on that slot (until the slot is reopened), so
  // open-before-use holds under any interleaving of distinct threads.
  std::map<int, int> slot_tid;
  for (Op& op : parts.body) {
    int tid;
    if (op.fd_slot >= 0 && op.kind != OpKind::kOpen &&
        slot_tid.count(op.fd_slot) != 0) {
      tid = slot_tid[op.fd_slot];
    } else {
      tid = static_cast<int>(rng.Below(static_cast<uint64_t>(threads)));
      if (op.fd_slot >= 0) {
        slot_tid[op.fd_slot] = tid;
      }
    }
    op.tid = tid;
  }
  std::vector<std::deque<Op>> queues(static_cast<size_t>(threads));
  for (Op& op : parts.body) {
    queues[static_cast<size_t>(op.tid)].push_back(std::move(op));
  }
  parts.body.clear();
  return Assemble(w.name, std::move(parts), std::move(queues), threads,
                  schedule_seed, rng);
}

}  // namespace concurrency
