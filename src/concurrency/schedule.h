// Deterministic schedule construction for multi-threaded workloads.
//
// A multi-threaded workload is N per-thread syscall programs interleaved at
// syscall granularity into one realized order. The interleaving is decided
// here, at generation time, by a seeded RNG — the realized order is stored
// in Workload::ops (each op tagged with its logical thread id), so replay
// needs no scheduler: the runner executes ops in sequence and
// (workload, schedule_seed) replays bit-identically by construction.
//
// Two entry points matter to the fuzzer:
//   - Concurrentize: partition a single-threaded workload body across N
//     logical threads (slot-affinity keeps every fd-based op with the thread
//     that opened its slot) and interleave from Rng::Stream(seed, ordinal).
//   - Reschedule: re-interleave an existing multi-threaded workload under a
//     new seed — the schedule knob mutated like any other.
#ifndef CHIPMUNK_CONCURRENCY_SCHEDULE_H_
#define CHIPMUNK_CONCURRENCY_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/workload.h"

namespace concurrency {

// One logical thread's syscall program, in program order.
struct ThreadProgram {
  int tid = 0;
  std::vector<workload::Op> ops;
};

// Interleaves per-thread programs into one realized schedule. Each op keeps
// its program's tid; per-thread program order is preserved; the merge order
// is drawn from Rng(schedule_seed) mixed with `ordinal` (so campaigns give
// every workload ordinal a distinct schedule from one seed). `setup` ops at
// the head of any program are hoisted into a sequential prologue, and a
// trailing kSync (the weak-FS finalizer) stays last.
workload::Workload Interleave(std::string name,
                              const std::vector<ThreadProgram>& programs,
                              uint64_t schedule_seed, uint64_t ordinal);

// Splits a realized workload back into per-thread programs, ordered by tid.
// Setup-prologue ops are returned with their recorded tid (0 by default).
std::vector<ThreadProgram> SplitThreads(const workload::Workload& w);

// Re-interleaves `w` under a new schedule seed; per-thread program order,
// the setup prologue, and a trailing sync are preserved. Single-threaded
// workloads are returned unchanged.
workload::Workload Reschedule(const workload::Workload& w,
                              uint64_t schedule_seed, uint64_t ordinal);

// Partitions a single-threaded workload body across `threads` logical
// threads and interleaves it from (schedule_seed, ordinal). fd-slot
// affinity: every fd-based op runs on the thread that opened its slot, so
// open-before-use survives any interleaving. Path-only ops are spread by
// the same RNG stream. Returns `w` unchanged when threads <= 1 or the body
// is too small to split.
workload::Workload Concurrentize(const workload::Workload& w, int threads,
                                 uint64_t schedule_seed, uint64_t ordinal);

}  // namespace concurrency

#endif  // CHIPMUNK_CONCURRENCY_SCHEDULE_H_
