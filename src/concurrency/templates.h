// Conflict-shape templates for multi-threaded workloads: the classic
// two-thread races (write/write on one file, rename-vs-write,
// create-vs-readdir, append-vs-truncate, link-vs-unlink, fsync-vs-write)
// ported from the multithread conflict catalogs of transactional-FS
// benchmarks. Each template is a fixed pair of per-thread programs; a
// schedule seed realizes it into a concrete interleaving, and the fuzzer
// seeds its corpus from these shapes when running with --threads.
#ifndef CHIPMUNK_CONCURRENCY_TEMPLATES_H_
#define CHIPMUNK_CONCURRENCY_TEMPLATES_H_

#include <cstdint>
#include <vector>

#include "src/concurrency/schedule.h"
#include "src/workload/workload.h"

namespace concurrency {

struct ConflictTemplate {
  const char* name;
  std::vector<ThreadProgram> (*make)();
};

// The six shapes, in a stable order (fuzzer selection indexes into this).
const std::vector<ConflictTemplate>& ConflictTemplates();

// Realizes `t` into a workload named after the template, interleaved from
// Rng::Stream(schedule_seed, ordinal).
workload::Workload RealizeTemplate(const ConflictTemplate& t,
                                   uint64_t schedule_seed, uint64_t ordinal);

}  // namespace concurrency

#endif  // CHIPMUNK_CONCURRENCY_TEMPLATES_H_
