#include "src/concurrency/templates.h"

namespace concurrency {

using workload::Op;
using workload::OpKind;

namespace {

Op PathOp(OpKind kind, const char* path, bool setup = false) {
  Op op;
  op.kind = kind;
  op.path = path;
  op.setup = setup;
  return op;
}

Op Open(const char* path, int slot, bool create, bool append = false) {
  Op op;
  op.kind = OpKind::kOpen;
  op.path = path;
  op.fd_slot = slot;
  op.oflag_create = create;
  op.oflag_append = append;
  return op;
}

Op Write(const char* path, int slot, uint64_t len, uint8_t fill) {
  Op op;
  op.kind = OpKind::kWrite;
  op.path = path;
  op.fd_slot = slot;
  op.len = len;
  op.fill = fill;
  return op;
}

Op Pwrite(const char* path, int slot, uint64_t off, uint64_t len,
          uint8_t fill) {
  Op op;
  op.kind = OpKind::kPwrite;
  op.path = path;
  op.fd_slot = slot;
  op.off = off;
  op.len = len;
  op.fill = fill;
  return op;
}

Op Truncate(const char* path, uint64_t size) {
  Op op;
  op.kind = OpKind::kTruncate;
  op.path = path;
  op.len = size;
  return op;
}

Op Fsync(const char* path, int slot) {
  Op op;
  op.kind = OpKind::kFsync;
  op.path = path;
  op.fd_slot = slot;
  return op;
}

Op TwoPathOp(OpKind kind, const char* path, const char* path2) {
  Op op;
  op.kind = kind;
  op.path = path;
  op.path2 = path2;
  return op;
}

// Both threads write the same byte range of one file through their own
// descriptors — the canonical lost-update / torn-metadata race.
std::vector<ThreadProgram> WriteWrite() {
  return {
      {0, {Open("/f0", 0, true), Write("/f0", 0, 700, 'a'),
           Write("/f0", 0, 700, 'b')}},
      {1, {Open("/f0", 1, true), Pwrite("/f0", 1, 0, 700, 'c'),
           Pwrite("/f0", 1, 256, 700, 'd')}},
  };
}

// One thread keeps writing through an open descriptor while the other
// renames the file out from under it.
std::vector<ThreadProgram> RenameWrite() {
  return {
      {0, {PathOp(OpKind::kCreat, "/f0", true), Open("/f0", 0, false),
           Write("/f0", 0, 500, 'a'), Write("/f0", 0, 500, 'b')}},
      {1, {TwoPathOp(OpKind::kRename, "/f0", "/f1")}},
  };
}

// Directory-entry insertion racing directory iteration.
std::vector<ThreadProgram> CreateReaddir() {
  return {
      {0, {PathOp(OpKind::kMkdir, "/d0", true),
           PathOp(OpKind::kCreat, "/d0/f1"), PathOp(OpKind::kCreat, "/d0/f2")}},
      {1, {PathOp(OpKind::kReaddir, "/d0"), PathOp(OpKind::kReaddir, "/d0")}},
  };
}

// Appending writer vs a concurrent truncate that shrinks the file.
std::vector<ThreadProgram> AppendTruncate() {
  return {
      {0, {PathOp(OpKind::kCreat, "/f0", true),
           Open("/f0", 0, false, /*append=*/true), Write("/f0", 0, 300, 'a'),
           Write("/f0", 0, 300, 'b')}},
      {1, {Truncate("/f0", 64)}},
  };
}

// Hard-link creation racing removal of the link source.
std::vector<ThreadProgram> LinkUnlink() {
  return {
      {0, {PathOp(OpKind::kCreat, "/f0", true),
           TwoPathOp(OpKind::kLink, "/f0", "/f1")}},
      {1, {PathOp(OpKind::kUnlink, "/f0")}},
  };
}

// One thread fsyncs while the other has a write in flight — the shape that
// probes what a durability barrier covers on a racing descriptor.
std::vector<ThreadProgram> FsyncWrite() {
  return {
      {0, {PathOp(OpKind::kCreat, "/f0", true), Open("/f0", 0, false),
           Write("/f0", 0, 256, 'a'), Fsync("/f0", 0)}},
      {1, {Open("/f0", 1, false), Pwrite("/f0", 1, 128, 256, 'b')}},
  };
}

}  // namespace

const std::vector<ConflictTemplate>& ConflictTemplates() {
  static const std::vector<ConflictTemplate> kTemplates = {
      {"conflict-write-write", WriteWrite},
      {"conflict-rename-write", RenameWrite},
      {"conflict-create-readdir", CreateReaddir},
      {"conflict-append-truncate", AppendTruncate},
      {"conflict-link-unlink", LinkUnlink},
      {"conflict-fsync-write", FsyncWrite},
  };
  return kTemplates;
}

workload::Workload RealizeTemplate(const ConflictTemplate& t,
                                   uint64_t schedule_seed, uint64_t ordinal) {
  return Interleave(t.name, t.make(), schedule_seed, ordinal);
}

}  // namespace concurrency
