// The ordinal-committed campaign driver shared by every workload generator
// (the coverage-guided fuzzer and the bounded-exhaustive ACE sweep).
//
// A campaign is a deterministic schedule over a global workload-ordinal
// space. The driver pipelines record → oracle → replay across workloads: the
// driver thread builds workloads in ordinal order and commits their results
// in ordinal order, while a bounded pool of `jobs` workers runs the
// expensive Harness::TestWorkload stage in between. Determinism is by
// construction:
//   - workload N is built by the generator subclass from the ordinal alone
//     (plus, for the fuzzer, a corpus snapshot pinned at exactly
//     max(0, N - lookahead + 1) commits) — execution order cannot leak in;
//   - corpus admission, report dedup, and timeline entries happen only at
//     the ordinal-order commit barrier on the driver thread;
//   - with a campaign store open, each workload's crash-state dedup view is
//     the equivalence index capped at its pin — a function of the ordinal.
// Together these make the result identical for every `jobs` value (only the
// wall/CPU time fields vary run to run), and identical across interrupted +
// resumed, sharded + merged, and uninterrupted runs.
//
// Subclasses supply the workload stream (BuildWorkload), the campaign
// identity (FillGeneratorMeta), and optional corpus feedback hooks; the base
// class owns execution, retry/quarantine, committing, persistence
// (log/checkpoint/index), resume, warm start, and sharding.
#ifndef CHIPMUNK_FUZZ_CAMPAIGN_DRIVER_H_
#define CHIPMUNK_FUZZ_CAMPAIGN_DRIVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/coverage.h"
#include "src/core/harness.h"
#include "src/fuzz/triage.h"
#include "src/store/campaign_store.h"

namespace fuzz {

struct CampaignOptions {
  uint64_t seed = 1;
  // Cap on syscalls per fuzz workload body, for generated and mutated
  // workloads alike (clamped to 2, the smallest useful workload; the CLI
  // additionally rejects 0). Weak-guarantee targets get one extra trailing
  // sync on top (§3.4.2), so the on-wire size is at most max_ops + 1.
  // Ignored by the ACE generator (the vocabulary fixes workload shape).
  size_t max_ops = 10;
  size_t iterations = 500;    // workloads per Run()
  size_t corpus_max = 128;    // fuzz only; the ACE driver keeps no corpus
  // Worker threads for the Run() pipeline; 0 = one per hardware thread.
  // The result is identical for every value.
  size_t jobs = 1;
  // Maximum workloads in flight: workload N is generated against the corpus
  // committed through workload N - lookahead. Part of the deterministic
  // schedule — results depend on this value, never on `jobs` — so it is a
  // fixed default rather than something derived from the worker count.
  size_t lookahead = 16;
  // Concurrent workloads: every generated workload is concurrentized onto
  // `threads` threads with a deterministic seeded interleaving (the realized
  // op order IS the schedule), and crash states are checked with the
  // linearization-based isolation oracle. 1 = classic single-threaded
  // campaign, byte-identical to the pre-concurrency engine. Part of the
  // campaign identity.
  size_t threads = 1;
  // Stream seed for the per-ordinal interleavings; only meaningful with
  // threads > 1. Mutated like any other knob: a different schedule seed is a
  // different campaign over the same per-thread programs.
  uint64_t schedule_seed = 0;
  chipmunk::HarnessOptions harness{.replay_cap = 2};  // §4.2: cap of two
  // Run the static persistence linter on every executed workload's trace.
  // Lint findings are a side channel: they never enter unique_reports (the
  // crash-consistency verdict), but they are counted, summarized per rule,
  // and used to weight corpus selection — a statically-dirty workload is
  // closer to a persistence bug and gets mutated more often.
  bool lint = true;
  // Path of the mined invariant set driving harness.invariants (the pointer
  // itself lives in harness). Recorded in the campaign meta: a different set
  // steers targeting and invariant findings differently, so campaigns with
  // different sets are incompatible.
  std::string invariants_path;
  // Persistent campaign store (see src/store/): when non-empty, every
  // committed ordinal is appended to <campaign_dir>/log.bin at the commit
  // barrier, crash states proven clean feed the cross-run equivalence
  // index, and periodic checkpoints compact the log. Empty = ephemeral run,
  // byte-identical to the pre-store engine.
  std::string campaign_dir;
  // Resume an interrupted campaign: replay checkpoint + log, then continue
  // at the next ordinal. Without it, an existing *compatible* campaign in
  // campaign_dir warm-starts a fresh run: its equivalence index skips
  // already-verified crash states and its recorded corpus admissions are
  // replayed verbatim (dedup-skipped states contribute no coverage, so the
  // admission decisions must come from the record to keep corpus evolution
  // — and therefore reports — identical).
  bool resume = false;
  // Shard `shard_index` of `shard_count`: this run owns the contiguous
  // global ordinal range [iterations*i/n, iterations*(i+1)/n). Shard
  // stores are independent and merged offline by `chipmunk campaign merge`.
  size_t shard_index = 0;
  size_t shard_count = 1;
  // Explicit ordinal lease [range_begin, range_begin + range_count): the run
  // owns exactly this contiguous slice of the global enumeration instead of
  // the shard-math slice. range_count == 0 disables it (whole campaign /
  // shard math). Used by coordinator-issued leases and `--lease-size` local
  // runs; mutually exclusive with shard_count > 1.
  uint64_t range_begin = 0;
  uint64_t range_count = 0;
  // Graceful-stop flag polled at the generation loop (nullptr = never stop):
  // when it flips true the driver stops building new workloads, drains every
  // in-flight workload through the ordinal-order commit barrier, and Run()
  // returns with CampaignResult::interrupted set. Committed state is exactly
  // a prefix of the uninterrupted schedule, so a later --resume continues
  // byte-identically.
  const std::atomic<bool>* stop = nullptr;
  // Observer invoked on the driver thread after every commit barrier with
  // (local ordinals committed, cumulative crash states, cumulative deduped
  // states). Lease workers use it to stream heartbeat progress; tests use it
  // to trip `stop` at a precise commit count.
  std::function<void(uint64_t, uint64_t, uint64_t)> on_commit;
  // Commits between compacting checkpoints (0 = only the final one).
  size_t checkpoint_interval = 64;
  // Write the final compacting checkpoint when Run() finishes. Always on in
  // real campaigns; tests disable it to leave the post-checkpoint log tail
  // in place and pin the log-replay recovery path.
  bool final_checkpoint = true;
};

struct TimelineEntry {
  uint64_t ordinal = 0;    // workload ordinal whose commit surfaced the report
  double wall_seconds = 0;  // cumulative wall-clock campaign time at discovery
  // Cumulative campaign CPU time at discovery, aggregated across all worker
  // threads (pipeline workers and replay workers alike, via the process CPU
  // clock). Unlike wall time this stays comparable across --fuzz-jobs and
  // --jobs values.
  double cpu_seconds = 0;
  std::string signature;   // report signature discovered
};

struct CampaignResult {
  size_t executed = 0;
  size_t corpus_size = 0;       // fuzz only; 0 for ACE sweeps
  size_t coverage_points = 0;   // fuzz only; 0 for ACE sweeps
  size_t crash_states = 0;
  // Graceful degradation: a workload whose replay dies (throws, loops past
  // the sandbox budget, or errors out) is retried once at jobs=1; a second
  // failure quarantines the workload, commits a kRecoveryFailure report, and
  // the pipeline continues. All three counters are deterministic for every
  // jobs value.
  size_t replay_failures = 0;       // failed replay attempts (incl. retries)
  size_t replay_retries = 0;        // retries performed at jobs=1
  size_t workloads_quarantined = 0; // workloads that failed twice
  size_t states_quarantined = 0;    // crash-state quarantine entries written
  // Crash states skipped because the campaign store's equivalence index had
  // already proven an identical state clean (within-run or cross-run).
  // Included in crash_states. Always 0 without a campaign store.
  size_t states_deduped = 0;
  // Crash states skipped as non-representative members of a page-signature
  // class (HarnessOptions::representative). Included in crash_states.
  // Always 0 in exhaustive (default) mode.
  size_t states_pruned = 0;
  size_t lint_findings = 0;  // total across executed workloads
  // Happens-before analyzer findings (durability races, commit inversions,
  // invariant violations) across executed workloads. Like lint findings they
  // are a side channel: never in unique_reports, but counted, summarized per
  // rule, and folded into corpus selection weight.
  size_t hb_findings = 0;
  double wall_seconds = 0;   // wall-clock time spent running the campaign
  double cpu_seconds = 0;    // aggregated CPU time across all worker threads
  std::map<std::string, size_t> lint_rule_counts;  // rule id -> findings
  std::map<std::string, size_t> hb_rule_counts;    // rule id -> hb findings
  std::vector<chipmunk::BugReport> unique_reports;
  // Total occurrences per report signature: the first hit lands a report in
  // unique_reports, every hit (first included) bumps its counter here — so
  // "how often" survives the first-wins dedup.
  std::map<std::string, uint64_t> report_hits;
  std::vector<TimelineEntry> timeline;
  std::vector<ReportCluster> clusters;
  // Run() stopped early on CampaignOptions::stop: every in-flight ordinal
  // was drained through the commit barrier and a final checkpoint was
  // written, but the schedule did not reach its end. The store is resumable.
  bool interrupted = false;
};

class CampaignDriver {
 public:
  CampaignDriver(chipmunk::FsConfig config, CampaignOptions options);
  virtual ~CampaignDriver() = default;

  // Executes one workload inline and commits it immediately — the serial
  // loop, with no generation lookahead. Returns the number of
  // previously-unseen unique reports it produced.
  size_t Step();

  // Runs this shard's slice of options.iterations workloads through the
  // pipelined schedule and returns the accumulated result. The deterministic
  // fields of the result depend only on the schedule (seed, iterations,
  // lookahead, shard, campaign state) — not on jobs or thread scheduling.
  CampaignResult Run();

  // Opens the campaign store named by options.campaign_dir; a no-op when it
  // is empty. Must be called before Step()/Run(). Three paths:
  //   - fresh directory: creates a new store;
  //   - options.resume: recovers checkpoint + log, replays the log through
  //     the same commit path as a live run, and positions the schedule at
  //     the next uncommitted ordinal;
  //   - existing compatible campaign without resume: warm rerun — inherits
  //     the crash-state equivalence index and the recorded admission
  //     decisions, then starts a fresh log.
  // An existing *incompatible* campaign is an error, never overwritten.
  common::Status OpenCampaign();
  bool campaign_open() const { return store_ != nullptr; }
  // Local ordinals committed so far (nonzero only after a resume).
  uint64_t committed() const { return committed_; }

  const CampaignResult& result() const { return result_; }
  // Aggregated CPU seconds across all worker threads (process CPU clock).
  double cpu_seconds() const { return cpu_seconds_; }
  double wall_seconds() const { return wall_seconds_; }
  bool weak_fs() const { return weak_fs_; }

 protected:
  // One workload moving through the pipeline: built by the driver, executed
  // by a worker, committed by the driver.
  struct Pending {
    uint64_t ordinal = 0;
    // Commit count this workload was generated against — the deterministic
    // snapshot pin, and the version cap for its equivalence-index view.
    uint64_t pin = 0;
    workload::Workload w;
    // Version-capped dedup view handed to this workload's harness; engaged
    // only when a campaign store is open.
    std::optional<store::StateIndexSnapshot> snapshot;
    std::optional<common::StatusOr<chipmunk::RunStats>> stats;
    common::CoverageMap cov;
    // Graceful degradation: the first attempt's error when the replay died
    // and was retried at jobs=1 (empty = first attempt succeeded).
    std::string first_error;
  };

  // --- generator hooks ---------------------------------------------------

  // The workload stream: builds the workload for global ordinal `ordinal`.
  // `pin` is the commit count the workload is generated against; stateless
  // generators (ACE) ignore it, the fuzzer resolves it to a corpus snapshot.
  // Must be a deterministic function of (ordinal, pin).
  virtual workload::Workload BuildWorkload(uint64_t ordinal, uint64_t pin) = 0;
  // Stamps the generator's identity (generator name + shape parameters)
  // onto the campaign meta, and zeroes meta fields the generator ignores so
  // they cannot make equal campaigns look different.
  virtual void FillGeneratorMeta(store::CampaignMeta& meta) const = 0;
  // Whether this executed workload should join the corpus. Decided at the
  // commit barrier and recorded; the default (no corpus) admits nothing.
  virtual bool DecideAdmission(const Pending& p) const { return false; }
  // Folds an admitted commit into the generator's corpus. `live_w` is the
  // in-memory workload for live commits, null during log replay (the record
  // carries the serialized form).
  virtual void ApplyAdmitted(const store::CommitRecord& rec,
                             const workload::Workload* live_w) {}
  // Adds generator-owned state (corpus, coverage, RNG positions) to a
  // checkpoint / restores it on resume. The generic fields are handled by
  // the base class.
  virtual void SnapshotExtra(store::CampaignState& st) const {}
  virtual common::Status RestoreExtra(const store::CampaignState& st) {
    return common::OkStatus();
  }
  // Called at the commit barrier after committed() advanced (live and
  // replayed commits alike).
  virtual void OnCommitted() {}
  // Fills generator-owned CampaignResult fields when a run finishes.
  virtual void FinalizeExtra() {}

  // --- shared machinery (driver thread unless noted) ----------------------

  // BuildWorkload plus the concurrency stage: with threads > 1, a workload
  // the generator left single-threaded is concurrentized onto the configured
  // thread count under the per-ordinal schedule stream. Every pipeline path
  // builds through this wrapper, so the MT schedule is part of the
  // deterministic (ordinal, pin) mapping for any generator.
  workload::Workload MakeWorkload(uint64_t ordinal, uint64_t pin);
  // Runs the harness with a private coverage map. Thread-safe: touches only
  // `p` and the const harness/config.
  void Execute(Pending& p) const;
  // Folds one result into the report map / timeline / corpus hooks and
  // appends it to the campaign log. Strictly in ordinal order. Returns the
  // fresh-report count.
  size_t Commit(Pending& p);
  // The serializable image of a commit: Commit = MakeRecord + quarantine
  // side effect + ApplyRecord + AppendCommit, and a resume replays the
  // logged records through the same ApplyRecord — one code path decides
  // campaign evolution for live and replayed commits alike.
  store::CommitRecord MakeRecord(const Pending& p) const;
  size_t ApplyRecord(const store::CommitRecord& rec,
                     const workload::Workload* live_w);
  store::CampaignState SnapshotState(double wall, double cpu) const;
  common::Status CheckpointNow(double wall, double cpu);
  common::Status RestoreFrom(const store::LoadedCampaign& loaded);
  void RunPool(uint64_t begin, uint64_t end, size_t jobs, uint64_t lookahead);
  void RunSerial(uint64_t begin, uint64_t end, uint64_t lookahead);
  void FinalizeResult();

  void BeginClock();
  void EndClock();
  double WallNow() const;
  double CpuNow() const;

  chipmunk::FsConfig config_;
  CampaignOptions options_;
  chipmunk::Harness harness_;
  bool weak_fs_ = false;

  std::map<std::string, chipmunk::BugReport> unique_;
  CampaignResult result_;
  uint64_t next_ordinal_ = 0;

  // Campaign state (inert without OpenCampaign). `committed_` counts local
  // ordinals applied; the global ordinal space is offset by shard_start_.
  std::unique_ptr<store::CampaignStore> store_;
  store::StateIndex state_index_;
  bool store_writes_ok_ = true;  // cleared after the first store I/O error
  uint64_t committed_ = 0;
  uint64_t shard_start_ = 0;       // first global ordinal of this shard
  uint64_t shard_local_count_ = 0; // ordinals owned by this shard
  std::vector<uint8_t> admitted_;       // per-local-ordinal admissions
  std::vector<uint8_t> warm_admitted_;  // forced admissions (warm rerun)

  double wall_seconds_ = 0;
  double cpu_seconds_ = 0;
  std::chrono::steady_clock::time_point run_wall_start_;
  double run_cpu_start_ = 0;
};

// --- ordinal scheduling --------------------------------------------------
//
// A lease is a disjoint contiguous slice [begin, end) of a campaign's
// deterministic global ordinal enumeration, granted to exactly one live
// runner at a time. Each lease is run as its own mini-campaign store (fresh
// corpus, fresh dedup index, meta stamped with range_begin/range_count), so
// a lease's on-disk result is a pure function of (campaign identity, range)
// — which is what lets a coordinator revoke a half-done lease, reissue it to
// another worker, and still fold a byte-identical final campaign.

struct OrdinalLease {
  uint64_t id = 0;     // dense lease index; range = [begin, end)
  uint64_t epoch = 0;  // grant generation: bumped on every (re)issue, echoed
                       // back by completions so a revoked worker's late
                       // result is recognized as stale and discarded
  uint64_t begin = 0;  // first global ordinal of the lease
  uint64_t end = 0;    // one past the last global ordinal
};

struct LeaseProgress {
  uint64_t committed = 0;       // local ordinals committed within the lease
  uint64_t crash_states = 0;    // cumulative crash states for the lease
  uint64_t states_deduped = 0;  // cumulative dedup hits for the lease
};

// Where a campaign runner gets its ordinal ranges. LocalScheduler is the
// in-process sequential partition (single-process `--lease-size` runs and
// the determinism baseline); LeaseScheduler (src/coord/lease_client.h) asks
// a coordinator over a Unix-domain socket.
class OrdinalScheduler {
 public:
  virtual ~OrdinalScheduler() = default;
  // Blocks until a lease is available; nullopt = no work left (or the
  // scheduler is shutting down) — the runner exits its loop.
  virtual std::optional<OrdinalLease> Acquire() = 0;
  // Progress report for a held lease; fire-and-forget.
  virtual void Heartbeat(const OrdinalLease& lease,
                         const LeaseProgress& progress) = 0;
  // Reports the lease fully committed. Returns false when the completion was
  // rejected as stale (the lease was revoked and reissued meanwhile).
  virtual bool Complete(const OrdinalLease& lease,
                        const LeaseProgress& progress) = 0;
};

// Sequential in-process partition of [0, total) into lease_size chunks.
class LocalScheduler : public OrdinalScheduler {
 public:
  LocalScheduler(uint64_t total, uint64_t lease_size);
  std::optional<OrdinalLease> Acquire() override;
  void Heartbeat(const OrdinalLease& lease,
                 const LeaseProgress& progress) override {}
  bool Complete(const OrdinalLease& lease,
                const LeaseProgress& progress) override;

 private:
  uint64_t total_ = 0;
  uint64_t lease_size_ = 0;
  uint64_t next_ = 0;  // next unleased ordinal
};

// Folds a loaded store (checkpoint + valid log suffix) into the final
// campaign state, without an engine: counters, admissions, deduplicated
// reports, per-signature hit counts, and timeline are exact. Corpus
// *contents* past the checkpoint are approximate once eviction has begun
// (the eviction slot draws from the live RNG stream), but the corpus size
// and coverage-slot union are exact — this is the read side used by
// `campaign stats`, `campaign merge`, and warm reruns (which need only the
// admission array and the clean-state hashes).
store::CampaignState FoldCampaign(const store::LoadedCampaign& loaded);

// The output of `campaign merge`: a folded meta + state + equivalence index
// ready to be written into a fresh store with WriteCheckpoint.
struct CampaignMergeResult {
  store::CampaignMeta meta;
  store::CampaignState state;
  std::vector<std::pair<uint64_t, uint64_t>> index;  // version 0 = inherited
  // True when the sources were shards (or reruns) of one campaign; false for
  // a cross-campaign fold (e.g. an ace sweep + a fuzz campaign against the
  // same target).
  bool same_campaign = false;
};

// Merges campaign stores. Two modes, decided from the metas:
//   - shards of one campaign (metas equal modulo shard index and merge
//     provenance, same iterations): the classic shard merge; the result
//     keeps the campaign's identity;
//   - different campaigns against the same target (fs, bugs, device_size
//     equal): a cross-campaign fold — reports dedup by signature across
//     generators, hit counts sum, the equivalence indexes union, and the
//     meta records generator "mixed" when the generators differ.
// Sources targeting different systems are an error. Either way the result
// is marked merged (not resumable, never a warm-start source) and reports
// are deduplicated by signature with per-signature hit counts summed.
common::StatusOr<CampaignMergeResult> MergeCampaigns(
    const std::vector<std::string>& srcs);

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_CAMPAIGN_DRIVER_H_
