// Gray-box workload fuzzer (§3.4.2), modeled on the paper's Syzkaller
// integration:
//   - workloads are random syscall sequences built from templates with
//     qualified argument types (descriptors from the live slot pool, paths
//     from a small hierarchy, arbitrary — including unaligned — sizes);
//   - each workload runs through the full Chipmunk harness (the custom
//     executor), with crash points between and inside syscalls and a
//     two-write replay cap, exactly like the paper's fuzzing setup (§4.2);
//   - coverage is collected from the file-system code (CHIPMUNK_COV sites),
//     both while running the workload and while recovering crash states;
//     workloads that reach new coverage join the corpus and are mutated;
//   - reports are deduplicated by signature and clustered by lexical
//     similarity (triage.h).
#ifndef CHIPMUNK_FUZZ_FUZZER_H_
#define CHIPMUNK_FUZZ_FUZZER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/coverage.h"
#include "src/common/rng.h"
#include "src/core/harness.h"
#include "src/fuzz/triage.h"

namespace fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  size_t max_ops = 10;        // syscalls per generated workload
  size_t iterations = 500;    // workloads per Run()
  size_t corpus_max = 128;
  chipmunk::HarnessOptions harness{.replay_cap = 2};  // §4.2: cap of two
  // Run the static persistence linter on every executed workload's trace.
  // Lint findings are a side channel: they never enter unique_reports (the
  // crash-consistency verdict), but they are counted, summarized per rule,
  // and used to weight corpus selection — a statically-dirty workload is
  // closer to a persistence bug and gets mutated more often.
  bool lint = true;
};

struct TimelineEntry {
  double cpu_seconds;      // cumulative fuzzing CPU time at discovery
  std::string signature;   // report signature discovered
};

struct FuzzResult {
  size_t executed = 0;
  size_t corpus_size = 0;
  size_t coverage_points = 0;
  size_t crash_states = 0;
  size_t lint_findings = 0;  // total across executed workloads
  std::map<std::string, size_t> lint_rule_counts;  // rule id -> findings
  std::vector<chipmunk::BugReport> unique_reports;
  std::vector<TimelineEntry> timeline;
  std::vector<ReportCluster> clusters;
};

class Fuzzer {
 public:
  Fuzzer(chipmunk::FsConfig config, FuzzOptions options);

  // Executes one workload (fresh or mutated from the corpus); returns the
  // number of previously-unseen unique reports it produced.
  size_t Step();

  // Runs options.iterations steps and returns the accumulated result.
  FuzzResult Run();

  const FuzzResult& result() const { return result_; }
  double cpu_seconds() const { return cpu_seconds_; }

 private:
  // A corpus entry remembers how statically dirty its trace was; the count
  // weights corpus selection.
  struct CorpusEntry {
    workload::Workload w;
    size_t lint_findings = 0;
  };

  std::string PickPath();
  workload::Op RandomOp();
  workload::Workload Generate();
  workload::Workload Mutate(const workload::Workload& base);
  void FinalizeWorkload(workload::Workload& w);
  const workload::Workload& PickCorpus();

  chipmunk::FsConfig config_;
  FuzzOptions options_;
  common::Rng rng_;
  chipmunk::Harness harness_;
  bool weak_fs_ = false;

  std::vector<std::string> last_paths_;
  std::vector<CorpusEntry> corpus_;
  common::CoverageMap corpus_cov_;
  std::map<std::string, chipmunk::BugReport> unique_;
  FuzzResult result_;
  double cpu_seconds_ = 0;
  uint64_t workload_counter_ = 0;
};

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_FUZZER_H_
