// Compatibility header: the gray-box fuzzer now lives in fuzz_engine.h as
// the pipelined FuzzEngine (per-workload RNG streams, ordinal-order commit,
// --fuzz-jobs worker pool). `Fuzzer` remains the name the CLI, benches,
// examples, and tests use for the engine.
#ifndef CHIPMUNK_FUZZ_FUZZER_H_
#define CHIPMUNK_FUZZ_FUZZER_H_

#include "src/fuzz/fuzz_engine.h"

namespace fuzz {

using Fuzzer = FuzzEngine;

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_FUZZER_H_
