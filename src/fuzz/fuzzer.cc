#include "src/fuzz/fuzzer.h"

#include <chrono>

#include "src/pmem/pm_device.h"

namespace fuzz {

using workload::Op;
using workload::OpKind;
using workload::Workload;

namespace {

const std::vector<std::string>& PathPool() {
  static const std::vector<std::string> kPaths = {
      "/f0", "/f1", "/f2", "/d0", "/d1", "/d0/f3", "/d0/f4", "/d1/f5",
      "/d0/d2", "/d0/d2/f6"};
  return kPaths;
}

constexpr int kSlots = 4;

chipmunk::HarnessOptions HarnessFor(const FuzzOptions& options) {
  chipmunk::HarnessOptions h = options.harness;
  h.lint = options.lint;
  return h;
}

}  // namespace

Fuzzer::Fuzzer(chipmunk::FsConfig config, FuzzOptions options)
    : config_(config),
      options_(options),
      rng_(options.seed),
      harness_(config, HarnessFor(options)) {
  // Query the target's guarantees once, on a scratch device.
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  weak_fs_ = !config_.make(&pm)->Guarantees().synchronous;
}

std::string Fuzzer::PickPath() {
  // Path locality: favour recently-touched paths, the way Syzkaller's
  // resource-typed templates thread one file through several calls. The
  // multi-op-same-file bug patterns (overwrite-then-truncate, double link,
  // two descriptors) are unreachable without it.
  if (!last_paths_.empty() && rng_.Chance(3, 5)) {
    return rng_.Pick(last_paths_);
  }
  std::string path = rng_.Pick(PathPool());
  last_paths_.push_back(path);
  if (last_paths_.size() > 3) {
    last_paths_.erase(last_paths_.begin());
  }
  return path;
}

Op Fuzzer::RandomOp() {
  Op op;
  // Weighted kind selection: data ops and namespace ops dominate, with
  // opens/closes keeping the descriptor pool alive.
  uint64_t roll = rng_.Below(100);
  if (roll < 22) {
    op.kind = OpKind::kOpen;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_.Below(kSlots));
    op.oflag_create = rng_.Chance(3, 4);
    op.oflag_trunc = rng_.Chance(1, 8);
    op.oflag_append = rng_.Chance(1, 6);
    op.oflag_excl = rng_.Chance(1, 10);
  } else if (roll < 30) {
    op.kind = OpKind::kClose;
    op.fd_slot = static_cast<int>(rng_.Below(kSlots));
  } else if (roll < 46) {
    op.kind = rng_.Chance(1, 2) ? OpKind::kPwrite : OpKind::kWrite;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_.Below(kSlots));
    // Arbitrary, frequently unaligned sizes and offsets — one of the
    // complexities ACE omits (§4.3).
    op.off = rng_.Below(12000);
    op.len = 1 + rng_.Below(6000);
    op.fill = static_cast<uint8_t>('a' + rng_.Below(26));
  } else if (roll < 52) {
    op.kind = OpKind::kRead;
    op.fd_slot = static_cast<int>(rng_.Below(kSlots));
    op.len = 1 + rng_.Below(4000);
  } else if (roll < 58) {
    op.kind = OpKind::kCreat;
    op.path = PickPath();
  } else if (roll < 63) {
    op.kind = OpKind::kMkdir;
    op.path = PickPath();
  } else if (roll < 69) {
    op.kind = OpKind::kUnlink;
    op.path = PickPath();
  } else if (roll < 73) {
    op.kind = OpKind::kRmdir;
    op.path = PickPath();
  } else if (roll < 79) {
    op.kind = OpKind::kLink;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 86) {
    op.kind = OpKind::kRename;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 91) {
    op.kind = OpKind::kTruncate;
    op.path = PickPath();
    op.len = rng_.Below(14000);
  } else if (roll < 96) {
    op.kind = OpKind::kFalloc;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_.Below(kSlots));
    uint32_t modes[] = {0, vfs::kFallocKeepSize, vfs::kFallocZeroRange,
                        vfs::kFallocZeroRange | vfs::kFallocKeepSize,
                        vfs::kFallocPunchHole | vfs::kFallocKeepSize};
    op.falloc_mode = modes[rng_.Below(5)];
    op.off = rng_.Below(10000);
    op.len = 1 + rng_.Below(6000);
  } else if (!weak_fs_ || roll < 97) {
    op.kind = OpKind::kSync;
  } else if (roll < 99) {
    op.kind = rng_.Chance(1, 2) ? OpKind::kFsync : OpKind::kFdatasync;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_.Below(kSlots));
  } else {
    op.kind = rng_.Chance(2, 3) ? OpKind::kSetxattr : OpKind::kRemovexattr;
    op.path = PickPath();
    op.path2 = rng_.Chance(1, 2) ? "user.a" : "user.b";
    op.len = 1 + rng_.Below(64);
    op.fill = static_cast<uint8_t>('a' + rng_.Below(26));
  }
  return op;
}

void Fuzzer::FinalizeWorkload(Workload& w) {
  w.name = "fuzz-" + std::to_string(workload_counter_++);
  if (weak_fs_) {
    // §3.4.2: a sync at the end of each workload guarantees at least one
    // crash state is checked on weak-guarantee systems.
    Op sync;
    sync.kind = OpKind::kSync;
    w.ops.push_back(sync);
  }
}

Workload Fuzzer::Generate() {
  Workload w;
  size_t n = 2 + rng_.Below(options_.max_ops - 1);
  for (size_t i = 0; i < n; ++i) {
    w.ops.push_back(RandomOp());
  }
  FinalizeWorkload(w);
  return w;
}

Workload Fuzzer::Mutate(const Workload& base) {
  Workload w = base;
  if (weak_fs_ && !w.ops.empty()) {
    w.ops.pop_back();  // drop the trailing sync; FinalizeWorkload re-adds it
  }
  size_t mutations = 1 + rng_.Below(3);
  for (size_t m = 0; m < mutations; ++m) {
    uint64_t choice = rng_.Below(4);
    if (choice == 0 || w.ops.empty()) {
      // Insert a random op at a random position.
      size_t pos = rng_.Below(w.ops.size() + 1);
      w.ops.insert(w.ops.begin() + pos, RandomOp());
    } else if (choice == 1) {
      // Replace an op.
      w.ops[rng_.Below(w.ops.size())] = RandomOp();
    } else if (choice == 2 && w.ops.size() > 2) {
      // Delete an op.
      w.ops.erase(w.ops.begin() + rng_.Below(w.ops.size()));
    } else if (!corpus_.empty()) {
      // Splice with another corpus entry.
      const Workload& other = PickCorpus();
      size_t cut = rng_.Below(w.ops.size());
      size_t take = rng_.Below(other.ops.size() + 1);
      w.ops.resize(cut);
      w.ops.insert(w.ops.end(), other.ops.begin(), other.ops.begin() + take);
    }
  }
  while (w.ops.size() > options_.max_ops + 2) {
    w.ops.pop_back();
  }
  FinalizeWorkload(w);
  return w;
}

const Workload& Fuzzer::PickCorpus() {
  // Selection weighted by static dirtiness: each entry's weight is
  // 1 + its lint-finding count.
  uint64_t total = 0;
  for (const CorpusEntry& entry : corpus_) {
    total += 1 + entry.lint_findings;
  }
  uint64_t roll = rng_.Below(total);
  for (const CorpusEntry& entry : corpus_) {
    const uint64_t weight = 1 + entry.lint_findings;
    if (roll < weight) {
      return entry.w;
    }
    roll -= weight;
  }
  return corpus_.back().w;
}

size_t Fuzzer::Step() {
  Workload w = corpus_.empty() || rng_.Chance(1, 4) ? Generate()
                                                    : Mutate(PickCorpus());

  common::CoverageMap cov;
  common::CoverageMap::Current() = &cov;
  auto start = std::chrono::steady_clock::now();
  auto stats = harness_.TestWorkload(w);
  auto end = std::chrono::steady_clock::now();
  common::CoverageMap::Current() = nullptr;
  cpu_seconds_ +=
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  ++result_.executed;
  if (!stats.ok()) {
    return 0;
  }
  result_.crash_states += stats->crash_states;
  result_.lint_findings += stats->lint_findings.size();
  for (const analysis::LintFinding& f : stats->lint_findings) {
    ++result_.lint_rule_counts[analysis::LintRuleId(f.rule)];
  }

  // Coverage feedback: workloads reaching new file-system code join the
  // corpus (including coverage reached during crash-state recovery).
  if (cov.CountNewAgainst(corpus_cov_) > 0) {
    corpus_cov_.MergeFrom(cov);
    CorpusEntry entry{w, stats->lint_findings.size()};
    if (corpus_.size() >= options_.corpus_max) {
      corpus_[rng_.Below(corpus_.size())] = std::move(entry);
    } else {
      corpus_.push_back(std::move(entry));
    }
  }

  // Lint findings are a side channel (see FuzzOptions::lint): the fuzzing
  // verdict counts only replay/live reports.
  size_t fresh = 0;
  for (chipmunk::BugReport& report : stats->reports) {
    if (report.kind == chipmunk::CheckKind::kLintFinding) {
      continue;
    }
    std::string sig = report.Signature();
    if (unique_.emplace(sig, report).second) {
      ++fresh;
      result_.timeline.push_back(TimelineEntry{cpu_seconds_, sig});
    }
  }
  return fresh;
}

FuzzResult Fuzzer::Run() {
  for (size_t i = 0; i < options_.iterations; ++i) {
    Step();
  }
  result_.corpus_size = corpus_.size();
  result_.coverage_points = corpus_cov_.CountSet();
  result_.unique_reports.clear();
  for (auto& [sig, report] : unique_) {
    result_.unique_reports.push_back(report);
  }
  result_.clusters = ClusterReports(result_.unique_reports);
  return result_;
}

}  // namespace fuzz
