// The bounded-exhaustive ACE sweep (§4.3) as a campaign: the canonical ACE
// workload enumeration driven through the shared CampaignDriver, so an ace
// sweep gets the same resume, sharding, warm-rerun crash-state dedup, and
// store interoperability as a fuzz campaign.
//
// Workload ordinal g maps to exactly one ACE workload (AceEnumerator::At),
// with no corpus, no mutation, and no RNG — BuildWorkload is a pure function
// of the ordinal, which makes every driver determinism guarantee (identical
// results across --jobs values, kill + --resume, shard + merge) hold
// trivially for the sweep. That includes the driver's service behaviors: a
// graceful stop (SIGTERM/SIGINT) drains to the commit barrier and leaves
// the store resumable, and a coordinated sweep (`chipmunk coordinate
// --generator ace`) runs the same enumeration as revocable leases handed
// out by src/coord/.
#ifndef CHIPMUNK_FUZZ_ACE_ENGINE_H_
#define CHIPMUNK_FUZZ_ACE_ENGINE_H_

#include <cstdint>

#include "src/fuzz/campaign_driver.h"
#include "src/workload/ace.h"

namespace fuzz {

class AceEngine : public CampaignDriver {
 public:
  // `options.iterations` caps the sweep (a CLI --limit); 0 or anything past
  // the enumeration size means the full sweep. Fuzz-only knobs (seed,
  // max_ops, corpus_max) are ignored.
  AceEngine(chipmunk::FsConfig config, CampaignOptions options,
            const workload::AceOptions& ace);

 protected:
  workload::Workload BuildWorkload(uint64_t ordinal, uint64_t pin) override;
  void FillGeneratorMeta(store::CampaignMeta& meta) const override;

 private:
  // Resolves iterations to the actual sweep length before the base class
  // derives the shard ordinal ranges from it.
  static CampaignOptions Clamp(CampaignOptions options,
                               const workload::AceOptions& ace);

  workload::AceOptions ace_;
  workload::AceEnumerator enumerator_;
};

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_ACE_ENGINE_H_
