#include "src/fuzz/fuzz_engine.h"

#include <algorithm>
#include <utility>

#include "src/concurrency/schedule.h"
#include "src/concurrency/templates.h"
#include "src/workload/serialize.h"

namespace fuzz {

using workload::Op;
using workload::OpKind;
using workload::Workload;

namespace {

const std::vector<std::string>& PathPool() {
  static const std::vector<std::string> kPaths = {
      "/f0", "/f1", "/f2", "/d0", "/d1", "/d0/f3", "/d0/f4", "/d1/f5",
      "/d0/d2", "/d0/d2/f6"};
  return kPaths;
}

constexpr int kSlots = 4;

// Reserved RNG stream for driver-side corpus eviction; workload streams use
// their (small) ordinals, so the two can never collide.
constexpr uint64_t kCommitStream = ~uint64_t{0};

}  // namespace

// ---------------------------------------------------------------------------
// WorkloadGenerator
// ---------------------------------------------------------------------------

WorkloadGenerator::WorkloadGenerator(const FuzzOptions* options, bool weak_fs,
                                     common::Rng* rng)
    : options_(options), weak_fs_(weak_fs), rng_(rng) {}

size_t WorkloadGenerator::max_body_ops() const {
  // max_ops = 0 used to underflow into Below(~0) and try to build a ~2^64-op
  // workload; the smallest workload the templates can express is 2 ops.
  return std::max<size_t>(2, options_->max_ops);
}

std::string WorkloadGenerator::PickPath() {
  // Path locality: favour recently-touched paths, the way Syzkaller's
  // resource-typed templates thread one file through several calls. The
  // multi-op-same-file bug patterns (overwrite-then-truncate, double link,
  // two descriptors) are unreachable without it.
  if (!last_paths_.empty() && rng_->Chance(3, 5)) {
    return rng_->Pick(last_paths_);
  }
  std::string path = rng_->Pick(PathPool());
  last_paths_.push_back(path);
  if (last_paths_.size() > 3) {
    last_paths_.erase(last_paths_.begin());
  }
  return path;
}

Op WorkloadGenerator::RandomOp() {
  Op op;
  // Weighted kind selection: data ops and namespace ops dominate, with
  // opens/closes keeping the descriptor pool alive.
  uint64_t roll = rng_->Below(100);
  if (roll < 22) {
    op.kind = OpKind::kOpen;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    op.oflag_create = rng_->Chance(3, 4);
    op.oflag_trunc = rng_->Chance(1, 8);
    op.oflag_append = rng_->Chance(1, 6);
    op.oflag_excl = rng_->Chance(1, 10);
  } else if (roll < 30) {
    op.kind = OpKind::kClose;
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
  } else if (roll < 46) {
    op.kind = rng_->Chance(1, 2) ? OpKind::kPwrite : OpKind::kWrite;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    // Arbitrary, frequently unaligned sizes and offsets — one of the
    // complexities ACE omits (§4.3).
    op.off = rng_->Below(12000);
    op.len = 1 + rng_->Below(6000);
    op.fill = static_cast<uint8_t>('a' + rng_->Below(26));
  } else if (roll < 52) {
    op.kind = OpKind::kRead;
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    op.len = 1 + rng_->Below(4000);
  } else if (roll < 58) {
    op.kind = OpKind::kCreat;
    op.path = PickPath();
  } else if (roll < 63) {
    op.kind = OpKind::kMkdir;
    op.path = PickPath();
  } else if (roll < 69) {
    op.kind = OpKind::kUnlink;
    op.path = PickPath();
  } else if (roll < 73) {
    op.kind = OpKind::kRmdir;
    op.path = PickPath();
  } else if (roll < 79) {
    op.kind = OpKind::kLink;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 86) {
    op.kind = OpKind::kRename;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 91) {
    op.kind = OpKind::kTruncate;
    op.path = PickPath();
    op.len = rng_->Below(14000);
  } else if (roll < 96) {
    op.kind = OpKind::kFalloc;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    uint32_t modes[] = {0, vfs::kFallocKeepSize, vfs::kFallocZeroRange,
                        vfs::kFallocZeroRange | vfs::kFallocKeepSize,
                        vfs::kFallocPunchHole | vfs::kFallocKeepSize};
    op.falloc_mode = modes[rng_->Below(5)];
    op.off = rng_->Below(10000);
    op.len = 1 + rng_->Below(6000);
  } else if (!weak_fs_ || roll < 97) {
    op.kind = OpKind::kSync;
  } else if (roll < 99) {
    op.kind = rng_->Chance(1, 2) ? OpKind::kFsync : OpKind::kFdatasync;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
  } else {
    op.kind = rng_->Chance(2, 3) ? OpKind::kSetxattr : OpKind::kRemovexattr;
    op.path = PickPath();
    op.path2 = rng_->Chance(1, 2) ? "user.a" : "user.b";
    op.len = 1 + rng_->Below(64);
    op.fill = static_cast<uint8_t>('a' + rng_->Below(26));
  }
  return op;
}

void WorkloadGenerator::Finalize(Workload& w) {
  if (weak_fs_) {
    // §3.4.2: a sync at the end of each workload guarantees at least one
    // crash state is checked on weak-guarantee systems.
    Op sync;
    sync.kind = OpKind::kSync;
    w.ops.push_back(sync);
  }
}

Workload WorkloadGenerator::Generate() {
  Workload w;
  const size_t cap = max_body_ops();
  size_t n = 2 + rng_->Below(cap - 1);  // in [2, cap]
  for (size_t i = 0; i < n; ++i) {
    w.ops.push_back(RandomOp());
  }
  Finalize(w);
  return w;
}

size_t WorkloadGenerator::SpliceLimit(const Workload& other) const {
  if (weak_fs_ && !other.ops.empty() &&
      other.ops.back().kind == OpKind::kSync) {
    return other.ops.size() - 1;
  }
  return other.ops.size();
}

Workload WorkloadGenerator::Mutate(const Workload& base,
                                   const std::vector<CorpusEntry>& corpus) {
  if (base.threads > 1 && rng_->Chance(1, 3)) {
    // Schedule mutation: keep the per-thread programs, draw a fresh
    // interleaving from this workload's RNG stream. The schedule is a fuzz
    // knob like any other — two interleavings of the same programs can
    // stage different in-flight windows.
    return concurrency::Reschedule(base, options_->schedule_seed,
                                   rng_->Next());
  }
  Workload w = base;
  if (w.threads > 1) {
    // Op-level mutations treat the realized order as a single-threaded
    // program again; the campaign driver re-concurrentizes the result.
    w.threads = 1;
    w.schedule_seed = 0;
    for (Op& op : w.ops) {
      op.tid = 0;
    }
  }
  if (weak_fs_ && !w.ops.empty() && w.ops.back().kind == OpKind::kSync) {
    w.ops.pop_back();  // drop the trailing sync; Finalize re-adds it
  }
  size_t mutations = 1 + rng_->Below(3);
  for (size_t m = 0; m < mutations; ++m) {
    uint64_t choice = rng_->Below(4);
    if (choice == 0 || w.ops.empty()) {
      // Insert a random op at a random position.
      size_t pos = rng_->Below(w.ops.size() + 1);
      w.ops.insert(w.ops.begin() + pos, RandomOp());
    } else if (choice == 1) {
      // Replace an op.
      w.ops[rng_->Below(w.ops.size())] = RandomOp();
    } else if (choice == 2 && w.ops.size() > 2) {
      // Delete an op.
      w.ops.erase(w.ops.begin() + rng_->Below(w.ops.size()));
    } else if (!corpus.empty()) {
      // Splice with a prefix of another corpus entry — minus its trailing
      // sync (SpliceLimit), which must not land mid-sequence.
      const Workload& other = PickCorpus(corpus, *rng_);
      size_t cut = rng_->Below(w.ops.size());
      size_t take = rng_->Below(SpliceLimit(other) + 1);
      w.ops.resize(cut);
      w.ops.insert(w.ops.end(), other.ops.begin(), other.ops.begin() + take);
    }
  }
  // Enforce the documented cap on the finalized workload: trimming after
  // Finalize would first eat the trailing sync, trimming to a looser bound
  // before it (the old max_ops + 2) let mutated weak-FS workloads exceed the
  // cap by three.
  if (w.ops.size() > max_body_ops()) {
    w.ops.resize(max_body_ops());
  }
  Finalize(w);
  return w;
}

const Workload& WorkloadGenerator::PickCorpus(
    const std::vector<CorpusEntry>& corpus, common::Rng& rng) {
  uint64_t total = 0;
  for (const CorpusEntry& entry : corpus) {
    total += 1 + entry.lint_findings + entry.hb_findings;
  }
  uint64_t roll = rng.Below(total);
  for (const CorpusEntry& entry : corpus) {
    const uint64_t weight = 1 + entry.lint_findings + entry.hb_findings;
    if (roll < weight) {
      return entry.w;
    }
    roll -= weight;
  }
  return corpus.back().w;
}

Workload WorkloadGenerator::Build(uint64_t ordinal,
                                  const std::vector<CorpusEntry>& corpus) {
  Workload w;
  if (options_->threads > 1 && rng_->Chance(1, 8)) {
    // Concurrency-template seeding: start from a curated two-thread
    // conflict shape (write/write, rename-vs-write, ...) realized under
    // this ordinal's schedule stream, instead of a random program. Only an
    // MT campaign draws this — single-threaded streams stay byte-identical
    // to the pre-concurrency engine.
    const auto& templates = concurrency::ConflictTemplates();
    const concurrency::ConflictTemplate& t =
        templates[rng_->Below(templates.size())];
    w = concurrency::RealizeTemplate(t, options_->schedule_seed, ordinal);
    Finalize(w);
  } else {
    w = corpus.empty() || rng_->Chance(1, 4)
            ? Generate()
            : Mutate(PickCorpus(corpus, *rng_), corpus);
  }
  w.name = "fuzz-" + std::to_string(ordinal);
  return w;
}

// ---------------------------------------------------------------------------
// FuzzEngine: the coverage-guided hooks on the shared driver
// ---------------------------------------------------------------------------

FuzzEngine::FuzzEngine(chipmunk::FsConfig config, FuzzOptions options)
    : CampaignDriver(std::move(config), std::move(options)),
      commit_rng_(common::Rng::Stream(options_.seed, kCommitStream)) {
  // The pin-0 snapshot is the empty corpus; pre-seeding it keeps the
  // history lookup total for every pin a resume can ask for.
  corpus_history_[0] = {};
}

workload::Workload FuzzEngine::BuildWorkload(uint64_t ordinal, uint64_t pin) {
  common::Rng rng = common::Rng::Stream(options_.seed, ordinal);
  WorkloadGenerator gen(&options_, weak_fs_, &rng);
  const std::vector<CorpusEntry>* corpus = &corpus_;
  if (pin != committed_) {
    // Only a resume builds against a pin older than the live corpus: the
    // in-flight window lost to the kill re-builds against the checkpointed
    // corpus history. By construction the history covers every such pin; a
    // miss cannot happen, and the live corpus is the safe fallback.
    auto it = corpus_history_.find(pin);
    if (it != corpus_history_.end()) {
      corpus = &it->second;
    }
  }
  return gen.Build(ordinal, *corpus);
}

void FuzzEngine::FillGeneratorMeta(store::CampaignMeta& meta) const {
  meta.generator = "fuzz";
}

bool FuzzEngine::DecideAdmission(const Pending& p) const {
  return p.cov.CountNewAgainst(corpus_cov_) > 0;
}

void FuzzEngine::ApplyAdmitted(const store::CommitRecord& rec,
                               const workload::Workload* live_w) {
  // The coverage map is rebuilt from the recorded slots in the live path
  // too, so live and replayed commits share one code path.
  common::CoverageMap cov;
  for (uint32_t slot : rec.cov_slots) {
    cov.Hit(slot);
  }
  corpus_cov_.MergeFrom(cov);
  CorpusEntry entry;
  if (live_w != nullptr) {
    entry.w = *live_w;
  } else {
    auto parsed =
        workload::ParseWorkload(rec.workload_text, rec.workload_name);
    // The text round-trips by construction; a parse failure would mean
    // a corrupt-but-CRC-valid record. Skip the entry rather than die.
    if (parsed.ok()) {
      entry.w = std::move(*parsed);
    } else {
      entry.w.name = rec.workload_name;
    }
  }
  entry.lint_findings = rec.lint_findings;
  entry.hb_findings = rec.hb_findings;
  if (corpus_.size() >= options_.corpus_max) {
    if (!corpus_.empty()) {
      corpus_[commit_rng_.Below(corpus_.size())] = std::move(entry);
      ++eviction_draws_;
    }
  } else {
    corpus_.push_back(std::move(entry));
  }
}

void FuzzEngine::OnCommitted() {
  if (store_ != nullptr) {
    corpus_history_[committed_] = corpus_;
    const uint64_t keep = std::max<uint64_t>(1, options_.lookahead) + 1;
    while (corpus_history_.size() > keep) {
      corpus_history_.erase(corpus_history_.begin());
    }
  }
}

void FuzzEngine::SnapshotExtra(store::CampaignState& st) const {
  st.eviction_draws = eviction_draws_;
  for (const CorpusEntry& entry : corpus_) {
    st.corpus.push_back(store::CorpusSnapshotEntry{
        entry.w.name, workload::Serialize(entry.w), entry.lint_findings,
        entry.hb_findings});
  }
  for (uint32_t slot = 0; slot < common::CoverageMap::kSlots; ++slot) {
    if (corpus_cov_.Test(slot)) {
      st.corpus_cov_slots.push_back(slot);
    }
  }
  for (const auto& [commits, corpus] : corpus_history_) {
    std::vector<store::CorpusSnapshotEntry> entries;
    for (const CorpusEntry& entry : corpus) {
      entries.push_back(store::CorpusSnapshotEntry{
          entry.w.name, workload::Serialize(entry.w), entry.lint_findings,
          entry.hb_findings});
    }
    st.corpus_history.emplace_back(commits, std::move(entries));
  }
}

common::Status FuzzEngine::RestoreExtra(const store::CampaignState& st) {
  eviction_draws_ = st.eviction_draws;
  corpus_.clear();
  for (const store::CorpusSnapshotEntry& e : st.corpus) {
    auto parsed = workload::ParseWorkload(e.text, e.name);
    if (!parsed.ok()) {
      return parsed.status();
    }
    corpus_.push_back(
        CorpusEntry{std::move(*parsed), e.lint_findings, e.hb_findings});
  }
  corpus_cov_ = common::CoverageMap();
  for (uint32_t slot : st.corpus_cov_slots) {
    corpus_cov_.Hit(slot);
  }
  corpus_history_.clear();
  for (const auto& [commits, entries] : st.corpus_history) {
    std::vector<CorpusEntry> corpus;
    for (const store::CorpusSnapshotEntry& e : entries) {
      auto parsed = workload::ParseWorkload(e.text, e.name);
      if (!parsed.ok()) {
        return parsed.status();
      }
      corpus.push_back(
          CorpusEntry{std::move(*parsed), e.lint_findings, e.hb_findings});
    }
    corpus_history_[commits] = std::move(corpus);
  }
  if (committed_ == 0) {
    corpus_history_[0] = {};
  }
  // Replay the eviction stream to its recorded position: Below(n > 0)
  // consumes exactly one Next() draw.
  commit_rng_ = common::Rng::Stream(options_.seed, kCommitStream);
  for (uint64_t i = 0; i < eviction_draws_; ++i) {
    commit_rng_.Next();
  }
  return common::OkStatus();
}

void FuzzEngine::FinalizeExtra() {
  result_.corpus_size = corpus_.size();
  result_.coverage_points = corpus_cov_.CountSet();
}

}  // namespace fuzz
