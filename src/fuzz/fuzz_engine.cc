#include "src/fuzz/fuzz_engine.h"

#include <stdio.h>
#include <time.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "src/core/quarantine.h"
#include "src/pmem/pm_device.h"
#include "src/workload/serialize.h"

namespace fuzz {

using workload::Op;
using workload::OpKind;
using workload::Workload;

namespace {

const std::vector<std::string>& PathPool() {
  static const std::vector<std::string> kPaths = {
      "/f0", "/f1", "/f2", "/d0", "/d1", "/d0/f3", "/d0/f4", "/d1/f5",
      "/d0/d2", "/d0/d2/f6"};
  return kPaths;
}

constexpr int kSlots = 4;

// Reserved RNG stream for driver-side corpus eviction; workload streams use
// their (small) ordinals, so the two can never collide.
constexpr uint64_t kCommitStream = ~uint64_t{0};

chipmunk::HarnessOptions HarnessFor(const FuzzOptions& options) {
  chipmunk::HarnessOptions h = options.harness;
  h.lint = options.lint;
  return h;
}

// CPU time consumed by the whole process — every thread, including the
// replay engine's workers. This is what "fuzzing CPU time" must mean for
// timelines to stay comparable across --fuzz-jobs / --jobs values; the
// calling thread's clock alone under-counts as soon as any stage is
// parallel.
double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkloadGenerator
// ---------------------------------------------------------------------------

WorkloadGenerator::WorkloadGenerator(const FuzzOptions* options, bool weak_fs,
                                     common::Rng* rng)
    : options_(options), weak_fs_(weak_fs), rng_(rng) {}

size_t WorkloadGenerator::max_body_ops() const {
  // max_ops = 0 used to underflow into Below(~0) and try to build a ~2^64-op
  // workload; the smallest workload the templates can express is 2 ops.
  return std::max<size_t>(2, options_->max_ops);
}

std::string WorkloadGenerator::PickPath() {
  // Path locality: favour recently-touched paths, the way Syzkaller's
  // resource-typed templates thread one file through several calls. The
  // multi-op-same-file bug patterns (overwrite-then-truncate, double link,
  // two descriptors) are unreachable without it.
  if (!last_paths_.empty() && rng_->Chance(3, 5)) {
    return rng_->Pick(last_paths_);
  }
  std::string path = rng_->Pick(PathPool());
  last_paths_.push_back(path);
  if (last_paths_.size() > 3) {
    last_paths_.erase(last_paths_.begin());
  }
  return path;
}

Op WorkloadGenerator::RandomOp() {
  Op op;
  // Weighted kind selection: data ops and namespace ops dominate, with
  // opens/closes keeping the descriptor pool alive.
  uint64_t roll = rng_->Below(100);
  if (roll < 22) {
    op.kind = OpKind::kOpen;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    op.oflag_create = rng_->Chance(3, 4);
    op.oflag_trunc = rng_->Chance(1, 8);
    op.oflag_append = rng_->Chance(1, 6);
    op.oflag_excl = rng_->Chance(1, 10);
  } else if (roll < 30) {
    op.kind = OpKind::kClose;
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
  } else if (roll < 46) {
    op.kind = rng_->Chance(1, 2) ? OpKind::kPwrite : OpKind::kWrite;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    // Arbitrary, frequently unaligned sizes and offsets — one of the
    // complexities ACE omits (§4.3).
    op.off = rng_->Below(12000);
    op.len = 1 + rng_->Below(6000);
    op.fill = static_cast<uint8_t>('a' + rng_->Below(26));
  } else if (roll < 52) {
    op.kind = OpKind::kRead;
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    op.len = 1 + rng_->Below(4000);
  } else if (roll < 58) {
    op.kind = OpKind::kCreat;
    op.path = PickPath();
  } else if (roll < 63) {
    op.kind = OpKind::kMkdir;
    op.path = PickPath();
  } else if (roll < 69) {
    op.kind = OpKind::kUnlink;
    op.path = PickPath();
  } else if (roll < 73) {
    op.kind = OpKind::kRmdir;
    op.path = PickPath();
  } else if (roll < 79) {
    op.kind = OpKind::kLink;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 86) {
    op.kind = OpKind::kRename;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 91) {
    op.kind = OpKind::kTruncate;
    op.path = PickPath();
    op.len = rng_->Below(14000);
  } else if (roll < 96) {
    op.kind = OpKind::kFalloc;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    uint32_t modes[] = {0, vfs::kFallocKeepSize, vfs::kFallocZeroRange,
                        vfs::kFallocZeroRange | vfs::kFallocKeepSize,
                        vfs::kFallocPunchHole | vfs::kFallocKeepSize};
    op.falloc_mode = modes[rng_->Below(5)];
    op.off = rng_->Below(10000);
    op.len = 1 + rng_->Below(6000);
  } else if (!weak_fs_ || roll < 97) {
    op.kind = OpKind::kSync;
  } else if (roll < 99) {
    op.kind = rng_->Chance(1, 2) ? OpKind::kFsync : OpKind::kFdatasync;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
  } else {
    op.kind = rng_->Chance(2, 3) ? OpKind::kSetxattr : OpKind::kRemovexattr;
    op.path = PickPath();
    op.path2 = rng_->Chance(1, 2) ? "user.a" : "user.b";
    op.len = 1 + rng_->Below(64);
    op.fill = static_cast<uint8_t>('a' + rng_->Below(26));
  }
  return op;
}

void WorkloadGenerator::Finalize(Workload& w) {
  if (weak_fs_) {
    // §3.4.2: a sync at the end of each workload guarantees at least one
    // crash state is checked on weak-guarantee systems.
    Op sync;
    sync.kind = OpKind::kSync;
    w.ops.push_back(sync);
  }
}

Workload WorkloadGenerator::Generate() {
  Workload w;
  const size_t cap = max_body_ops();
  size_t n = 2 + rng_->Below(cap - 1);  // in [2, cap]
  for (size_t i = 0; i < n; ++i) {
    w.ops.push_back(RandomOp());
  }
  Finalize(w);
  return w;
}

size_t WorkloadGenerator::SpliceLimit(const Workload& other) const {
  if (weak_fs_ && !other.ops.empty() &&
      other.ops.back().kind == OpKind::kSync) {
    return other.ops.size() - 1;
  }
  return other.ops.size();
}

Workload WorkloadGenerator::Mutate(const Workload& base,
                                   const std::vector<CorpusEntry>& corpus) {
  Workload w = base;
  if (weak_fs_ && !w.ops.empty() && w.ops.back().kind == OpKind::kSync) {
    w.ops.pop_back();  // drop the trailing sync; Finalize re-adds it
  }
  size_t mutations = 1 + rng_->Below(3);
  for (size_t m = 0; m < mutations; ++m) {
    uint64_t choice = rng_->Below(4);
    if (choice == 0 || w.ops.empty()) {
      // Insert a random op at a random position.
      size_t pos = rng_->Below(w.ops.size() + 1);
      w.ops.insert(w.ops.begin() + pos, RandomOp());
    } else if (choice == 1) {
      // Replace an op.
      w.ops[rng_->Below(w.ops.size())] = RandomOp();
    } else if (choice == 2 && w.ops.size() > 2) {
      // Delete an op.
      w.ops.erase(w.ops.begin() + rng_->Below(w.ops.size()));
    } else if (!corpus.empty()) {
      // Splice with a prefix of another corpus entry — minus its trailing
      // sync (SpliceLimit), which must not land mid-sequence.
      const Workload& other = PickCorpus(corpus, *rng_);
      size_t cut = rng_->Below(w.ops.size());
      size_t take = rng_->Below(SpliceLimit(other) + 1);
      w.ops.resize(cut);
      w.ops.insert(w.ops.end(), other.ops.begin(), other.ops.begin() + take);
    }
  }
  // Enforce the documented cap on the finalized workload: trimming after
  // Finalize would first eat the trailing sync, trimming to a looser bound
  // before it (the old max_ops + 2) let mutated weak-FS workloads exceed the
  // cap by three.
  if (w.ops.size() > max_body_ops()) {
    w.ops.resize(max_body_ops());
  }
  Finalize(w);
  return w;
}

const Workload& WorkloadGenerator::PickCorpus(
    const std::vector<CorpusEntry>& corpus, common::Rng& rng) {
  uint64_t total = 0;
  for (const CorpusEntry& entry : corpus) {
    total += 1 + entry.lint_findings + entry.hb_findings;
  }
  uint64_t roll = rng.Below(total);
  for (const CorpusEntry& entry : corpus) {
    const uint64_t weight = 1 + entry.lint_findings + entry.hb_findings;
    if (roll < weight) {
      return entry.w;
    }
    roll -= weight;
  }
  return corpus.back().w;
}

Workload WorkloadGenerator::Build(uint64_t ordinal,
                                  const std::vector<CorpusEntry>& corpus) {
  Workload w = corpus.empty() || rng_->Chance(1, 4)
                   ? Generate()
                   : Mutate(PickCorpus(corpus, *rng_), corpus);
  w.name = "fuzz-" + std::to_string(ordinal);
  return w;
}

// ---------------------------------------------------------------------------
// FuzzEngine
// ---------------------------------------------------------------------------

FuzzEngine::FuzzEngine(chipmunk::FsConfig config, FuzzOptions options)
    : config_(std::move(config)),
      options_(options),
      harness_(config_, HarnessFor(options_)),
      commit_rng_(common::Rng::Stream(options_.seed, kCommitStream)) {
  // Query the target's guarantees once, on a scratch device.
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  weak_fs_ = !config_.make(&pm)->Guarantees().synchronous;
  // This shard's slice of the global ordinal space. Ordinals stay global —
  // RNG streams and workload names derive from them — so disjoint shards
  // never generate the same workload. OpenCampaign validates the spec; a
  // degenerate one here just collapses to shard 0/1.
  const uint64_t n = std::max<size_t>(1, options_.shard_count);
  const uint64_t i = std::min<uint64_t>(options_.shard_index, n - 1);
  shard_start_ = options_.iterations * i / n;
  shard_local_count_ = options_.iterations * (i + 1) / n - shard_start_;
  next_ordinal_ = shard_start_;
}

void FuzzEngine::BeginClock() {
  run_wall_start_ = std::chrono::steady_clock::now();
  run_cpu_start_ = ProcessCpuSeconds();
}

double FuzzEngine::WallNow() const {
  return wall_seconds_ +
         std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - run_wall_start_)
             .count();
}

double FuzzEngine::CpuNow() const {
  return cpu_seconds_ + ProcessCpuSeconds() - run_cpu_start_;
}

void FuzzEngine::EndClock() {
  wall_seconds_ = WallNow();
  cpu_seconds_ = CpuNow();
}

workload::Workload FuzzEngine::BuildWorkload(uint64_t ordinal, uint64_t pin) {
  common::Rng rng = common::Rng::Stream(options_.seed, ordinal);
  WorkloadGenerator gen(&options_, weak_fs_, &rng);
  const std::vector<CorpusEntry>* corpus = &corpus_;
  if (pin != committed_) {
    // Only a resume builds against a pin older than the live corpus: the
    // in-flight window lost to the kill re-builds against the checkpointed
    // corpus history. By construction the history covers every such pin; a
    // miss cannot happen, and the live corpus is the safe fallback.
    auto it = corpus_history_.find(pin);
    if (it != corpus_history_.end()) {
      corpus = &it->second;
    }
  }
  return gen.Build(ordinal, *corpus);
}

void FuzzEngine::Execute(Pending& p) const {
  common::CoverageMap* prev = common::CoverageMap::Current();
  common::CoverageMap::Current() = &p.cov;
  if (p.snapshot) {
    // Campaign run: this workload's harness reads the equivalence index
    // through a snapshot capped at its pin, so the skip decisions are a
    // function of the ordinal alone — identical across jobs values and
    // across interrupted/resumed/uninterrupted runs.
    chipmunk::HarnessOptions snap_options = HarnessFor(options_);
    snap_options.dedup_index = &*p.snapshot;
    chipmunk::Harness snap_harness(config_, snap_options);
    p.stats = snap_harness.TestWorkload(p.w);
  } else {
    p.stats = harness_.TestWorkload(p.w);
  }
  if (!p.stats->ok()) {
    // Graceful degradation, attempt 2 of 2: retry once with a serial replay
    // (jobs=1) — the smallest configuration — before giving up on the
    // workload. The harness is deterministic, so a sticky failure fails
    // identically here and Commit quarantines it.
    p.first_error = p.stats->status().ToString();
    chipmunk::HarnessOptions retry_options = HarnessFor(options_);
    retry_options.jobs = 1;
    if (p.snapshot) {
      retry_options.dedup_index = &*p.snapshot;
    }
    chipmunk::Harness retry(config_, retry_options);
    p.stats = retry.TestWorkload(p.w);
  }
  common::CoverageMap::Current() = prev;
}

store::CommitRecord FuzzEngine::MakeRecord(const Pending& p) const {
  store::CommitRecord rec;
  rec.ordinal = p.ordinal;
  rec.workload_name = p.w.name;
  rec.workload_text = workload::Serialize(p.w);
  rec.ran = p.stats.has_value();
  rec.wall_seconds = WallNow();
  rec.cpu_seconds = CpuNow();
  if (!rec.ran) {
    return rec;
  }
  rec.retried = !p.first_error.empty();
  rec.first_error = p.first_error;
  rec.ok = p.stats->ok();
  if (!rec.ok) {
    rec.error = p.stats->status().ToString();
    return rec;
  }
  const chipmunk::RunStats& stats = **p.stats;
  rec.crash_states = stats.crash_states;
  rec.states_deduped = stats.states_deduped;
  rec.states_pruned = stats.states_pruned;
  rec.states_quarantined = stats.quarantined.size();
  rec.lint_findings = stats.lint_findings.size();
  for (const analysis::LintFinding& f : stats.lint_findings) {
    rec.lint_rules.push_back(analysis::LintRuleId(f.rule));
  }
  rec.hb_findings = stats.hb_findings.size();
  for (const analysis::LintFinding& f : stats.hb_findings) {
    rec.hb_rules.push_back(analysis::LintRuleId(f.rule));
  }
  for (const chipmunk::BugReport& r : stats.reports) {
    if (r.kind != chipmunk::CheckKind::kLintFinding) {
      rec.reports.push_back(r);
    }
  }
  for (uint32_t slot = 0; slot < common::CoverageMap::kSlots; ++slot) {
    if (p.cov.Test(slot)) {
      rec.cov_slots.push_back(slot);
    }
  }
  rec.clean_hashes = stats.clean_state_hashes;
  // The admission decision is made here, against the corpus coverage at the
  // commit barrier, and *recorded*. A warm rerun forces the prior run's
  // decision instead: its dedup-skipped states contribute no recovery
  // coverage, so re-deciding from the (smaller) observed coverage could
  // diverge the corpus — and with it every later workload.
  const uint64_t local = committed_;
  if (local < warm_admitted_.size()) {
    rec.admitted = warm_admitted_[local] != 0;
  } else {
    rec.admitted = p.cov.CountNewAgainst(corpus_cov_) > 0;
  }
  return rec;
}

size_t FuzzEngine::ApplyRecord(const store::CommitRecord& rec,
                               const workload::Workload* live_w) {
  ++result_.executed;
  const uint64_t local = committed_;
  size_t fresh = 0;
  auto note = [&](chipmunk::BugReport r) {
    std::string sig = r.Signature();
    if (unique_.emplace(sig, std::move(r)).second) {
      ++fresh;
      result_.timeline.push_back(
          TimelineEntry{rec.ordinal, rec.wall_seconds, rec.cpu_seconds, sig});
    }
  };
  if (rec.ran) {
    if (rec.retried) {
      ++result_.replay_failures;  // first attempt died
      ++result_.replay_retries;
    }
    if (!rec.ok) {
      // Second failure: the workload was quarantined (side effect in
      // Commit, live runs only); account it and commit the report.
      ++result_.replay_failures;
      ++result_.workloads_quarantined;
      chipmunk::BugReport r;
      r.fs = config_.name;
      r.workload_name = rec.workload_name;
      r.kind = chipmunk::CheckKind::kRecoveryFailure;
      r.detail = "workload replay died twice: " + rec.error +
                 " (first attempt: " + rec.first_error + ")";
      note(std::move(r));
    } else {
      result_.states_quarantined += rec.states_quarantined;
      result_.crash_states += rec.crash_states;
      result_.states_deduped += rec.states_deduped;
      result_.states_pruned += rec.states_pruned;
      result_.lint_findings += rec.lint_findings;
      for (const std::string& rule : rec.lint_rules) {
        ++result_.lint_rule_counts[rule];
      }
      result_.hb_findings += rec.hb_findings;
      for (const std::string& rule : rec.hb_rules) {
        ++result_.hb_rule_counts[rule];
      }

      // Coverage feedback: workloads reaching new file-system code join the
      // corpus (including coverage reached during crash-state recovery).
      // The coverage map is rebuilt from the recorded slots in the live
      // path too, so live and replayed commits share one code path.
      if (rec.admitted) {
        common::CoverageMap cov;
        for (uint32_t slot : rec.cov_slots) {
          cov.Hit(slot);
        }
        corpus_cov_.MergeFrom(cov);
        CorpusEntry entry;
        if (live_w != nullptr) {
          entry.w = *live_w;
        } else {
          auto parsed = workload::ParseWorkload(rec.workload_text,
                                                rec.workload_name);
          // The text round-trips by construction; a parse failure would mean
          // a corrupt-but-CRC-valid record. Skip the entry rather than die.
          if (parsed.ok()) {
            entry.w = std::move(*parsed);
          } else {
            entry.w.name = rec.workload_name;
          }
        }
        entry.lint_findings = rec.lint_findings;
        entry.hb_findings = rec.hb_findings;
        if (corpus_.size() >= options_.corpus_max) {
          if (!corpus_.empty()) {
            corpus_[commit_rng_.Below(corpus_.size())] = std::move(entry);
            ++eviction_draws_;
          }
        } else {
          corpus_.push_back(std::move(entry));
        }
      }

      // Lint findings are a side channel (see FuzzOptions::lint): the
      // fuzzing verdict counts only replay/live reports (rec.reports is
      // already filtered).
      for (const chipmunk::BugReport& report : rec.reports) {
        note(report);
      }
    }
  }
  admitted_.push_back(rec.admitted ? 1 : 0);
  if (store_ != nullptr) {
    // States proven clean by this commit become skippable for every
    // workload pinned at or after commit local+1 (1-based commit count).
    for (uint64_t h : rec.clean_hashes) {
      state_index_.Insert(h, local + 1);
    }
  }
  ++committed_;
  if (store_ != nullptr) {
    corpus_history_[committed_] = corpus_;
    const uint64_t keep = std::max<uint64_t>(1, options_.lookahead) + 1;
    while (corpus_history_.size() > keep) {
      corpus_history_.erase(corpus_history_.begin());
    }
  }
  if (live_w == nullptr) {
    // Replay: the clocks advance to the recorded cumulative times instead
    // of accruing fresh run time.
    wall_seconds_ = rec.wall_seconds;
    cpu_seconds_ = rec.cpu_seconds;
  }
  return fresh;
}

size_t FuzzEngine::Commit(Pending& p) {
  store::CommitRecord rec = MakeRecord(p);
  if (rec.ran && !rec.ok && !options_.harness.quarantine_dir.empty()) {
    // Quarantine side effect, live commits only — a resume replaying the
    // log does not re-write entries.
    chipmunk::QuarantineEntry e;
    e.kind = "workload";
    e.fs = config_.name;
    e.bugs = config_.bugs;
    e.device_size = config_.device_size;
    e.workload = p.w;
    e.ordinal = p.ordinal;
    e.sandbox_budget = options_.harness.sandbox_op_budget;
    e.inject = options_.harness.fault_plan.enabled();
    e.fault_seed = options_.harness.fault_plan.seed;
    e.report_kind =
        chipmunk::CheckKindName(chipmunk::CheckKind::kRecoveryFailure);
    e.detail = "workload replay died twice: " + rec.error +
               " (first attempt: " + rec.first_error + ")";
    (void)chipmunk::WriteQuarantineEntry(options_.harness.quarantine_dir, e);
  }
  size_t fresh = ApplyRecord(rec, &p.w);
  if (store_ != nullptr && store_writes_ok_) {
    common::Status s = store_->AppendCommit(rec);
    if (s.ok() && options_.checkpoint_interval > 0 &&
        committed_ % options_.checkpoint_interval == 0) {
      s = CheckpointNow(WallNow(), CpuNow());
    }
    if (!s.ok()) {
      fprintf(stderr,
              "chipmunk: campaign store write failed (%s); continuing "
              "without persistence\n",
              s.ToString().c_str());
      store_writes_ok_ = false;
    }
  }
  return fresh;
}

size_t FuzzEngine::Step() {
  BeginClock();
  Pending p;
  p.ordinal = next_ordinal_++;
  p.pin = committed_;
  p.w = BuildWorkload(p.ordinal, p.pin);
  if (store_ != nullptr) {
    p.snapshot.emplace(&state_index_, p.pin);
  }
  Execute(p);
  size_t fresh = Commit(p);
  EndClock();
  return fresh;
}

// The serial pipeline: same lagged-commit schedule as the pool (so jobs = 1
// is bit-identical to jobs = N), executed inline on the driver thread.
// `begin`/`end` are local ordinal indices; begin > 0 only on a resume, where
// the committed prefix was replayed from the log and the loop re-builds the
// lost in-flight window against its original (historical) pins.
void FuzzEngine::RunSerial(uint64_t begin, uint64_t end, uint64_t lookahead) {
  std::deque<Pending> done;
  uint64_t committed = begin;
  for (uint64_t k = begin; k < end; ++k) {
    const uint64_t required = k < lookahead ? 0 : k - lookahead + 1;
    while (committed < required) {
      Commit(done.front());
      done.pop_front();
      ++committed;
    }
    Pending p;
    p.ordinal = next_ordinal_++;
    p.pin = required;
    p.w = BuildWorkload(p.ordinal, p.pin);
    if (store_ != nullptr) {
      p.snapshot.emplace(&state_index_, p.pin);
    }
    Execute(p);
    done.push_back(std::move(p));
  }
  while (!done.empty()) {
    Commit(done.front());
    done.pop_front();
  }
}

void FuzzEngine::RunPool(uint64_t begin, uint64_t end, size_t jobs,
                         uint64_t lookahead) {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::deque<Pending> work;
  std::map<uint64_t, Pending> done;
  bool closed = false;

  auto worker = [&]() {
    while (true) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&]() { return !work.empty() || closed; });
        if (work.empty()) {
          return;
        }
        p = std::move(work.front());
        work.pop_front();
      }
      Execute(p);
      {
        std::lock_guard<std::mutex> lock(mu);
        done.emplace(p.ordinal, std::move(p));
      }
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    threads.emplace_back(worker);
  }

  const uint64_t first = next_ordinal_;
  uint64_t committed = begin;
  auto commit_next = [&]() {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&]() {
        return done.count(first + (committed - begin)) != 0;
      });
      auto it = done.find(first + (committed - begin));
      p = std::move(it->second);
      done.erase(it);
    }
    Commit(p);
    ++committed;
  };

  for (uint64_t k = begin; k < end; ++k) {
    // The snapshot pin: workload k is generated only once exactly
    // max(0, k - lookahead + 1) results are committed, never more — the
    // driver deliberately delays commits it could already apply, so the
    // corpus state feeding workload k does not depend on worker timing.
    // On a resume, pins below `begin` resolve through the corpus history.
    const uint64_t required = k < lookahead ? 0 : k - lookahead + 1;
    while (committed < required) {
      commit_next();
    }
    Pending p;
    p.ordinal = next_ordinal_++;
    p.pin = required;
    p.w = BuildWorkload(p.ordinal, p.pin);
    if (store_ != nullptr) {
      p.snapshot.emplace(&state_index_, p.pin);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      work.push_back(std::move(p));
    }
    work_cv.notify_one();
  }
  while (committed < end) {
    commit_next();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
  }
  work_cv.notify_all();
  for (std::thread& t : threads) {
    t.join();
  }
}

void FuzzEngine::FinalizeResult() {
  result_.corpus_size = corpus_.size();
  result_.coverage_points = corpus_cov_.CountSet();
  result_.wall_seconds = wall_seconds_;
  result_.cpu_seconds = cpu_seconds_;
  result_.unique_reports.clear();
  for (auto& [sig, report] : unique_) {
    result_.unique_reports.push_back(report);
  }
  result_.clusters = ClusterReports(result_.unique_reports);
}

FuzzResult FuzzEngine::Run() {
  BeginClock();
  const uint64_t lookahead = std::max<size_t>(1, options_.lookahead);
  size_t jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  // More workers than in-flight slots can never run; a one-deep pipeline is
  // the serial loop.
  jobs = std::min<size_t>(jobs, lookahead);
  // Local ordinal range: this shard owns [0, shard_local_count_); a resume
  // starts after the recovered prefix. A campaign already committed past the
  // requested iteration count just finalizes the recovered result.
  const uint64_t begin = committed_;
  const uint64_t end = std::max<uint64_t>(begin, shard_local_count_);
  if (begin < end) {
    if (jobs <= 1) {
      RunSerial(begin, end, lookahead);
    } else {
      RunPool(begin, end, jobs, lookahead);
    }
  }
  EndClock();
  if (store_ != nullptr && store_writes_ok_ && options_.final_checkpoint) {
    // Final compacting checkpoint: stats/merge read the exact final state
    // and a subsequent resume replays nothing.
    common::Status s = CheckpointNow(wall_seconds_, cpu_seconds_);
    if (!s.ok()) {
      fprintf(stderr, "chipmunk: final campaign checkpoint failed: %s\n",
              s.ToString().c_str());
    }
  }
  FinalizeResult();
  return result_;
}

// ---------------------------------------------------------------------------
// Campaign persistence
// ---------------------------------------------------------------------------

store::CampaignState FuzzEngine::SnapshotState(double wall, double cpu) const {
  store::CampaignState st;
  st.committed = committed_;
  st.executed = result_.executed;
  st.crash_states = result_.crash_states;
  st.states_deduped = result_.states_deduped;
  st.states_pruned = result_.states_pruned;
  st.replay_failures = result_.replay_failures;
  st.replay_retries = result_.replay_retries;
  st.workloads_quarantined = result_.workloads_quarantined;
  st.states_quarantined = result_.states_quarantined;
  st.lint_findings = result_.lint_findings;
  st.hb_findings = result_.hb_findings;
  st.eviction_draws = eviction_draws_;
  st.wall_seconds = wall;
  st.cpu_seconds = cpu;
  for (const auto& [rule, count] : result_.lint_rule_counts) {
    st.lint_rule_counts[rule] = count;
  }
  for (const auto& [rule, count] : result_.hb_rule_counts) {
    st.hb_rule_counts[rule] = count;
  }
  for (const CorpusEntry& entry : corpus_) {
    st.corpus.push_back(store::CorpusSnapshotEntry{
        entry.w.name, workload::Serialize(entry.w), entry.lint_findings,
        entry.hb_findings});
  }
  for (uint32_t slot = 0; slot < common::CoverageMap::kSlots; ++slot) {
    if (corpus_cov_.Test(slot)) {
      st.corpus_cov_slots.push_back(slot);
    }
  }
  for (const auto& [sig, report] : unique_) {
    st.unique_reports.push_back(report);
  }
  for (const TimelineEntry& t : result_.timeline) {
    st.timeline.push_back(store::TimelinePoint{t.ordinal, t.wall_seconds,
                                               t.cpu_seconds, t.signature});
  }
  st.admitted = admitted_;
  st.warm_admitted = warm_admitted_;
  for (const auto& [commits, corpus] : corpus_history_) {
    std::vector<store::CorpusSnapshotEntry> entries;
    for (const CorpusEntry& entry : corpus) {
      entries.push_back(store::CorpusSnapshotEntry{
          entry.w.name, workload::Serialize(entry.w), entry.lint_findings,
          entry.hb_findings});
    }
    st.corpus_history.emplace_back(commits, std::move(entries));
  }
  return st;
}

common::Status FuzzEngine::CheckpointNow(double wall, double cpu) {
  return store_->WriteCheckpoint(SnapshotState(wall, cpu),
                                 state_index_.Entries());
}

common::Status FuzzEngine::RestoreFrom(const store::LoadedCampaign& loaded) {
  const store::CampaignState& st = loaded.checkpoint;
  committed_ = st.committed;
  result_.executed = st.executed;
  result_.crash_states = st.crash_states;
  result_.states_deduped = st.states_deduped;
  result_.states_pruned = st.states_pruned;
  result_.replay_failures = st.replay_failures;
  result_.replay_retries = st.replay_retries;
  result_.workloads_quarantined = st.workloads_quarantined;
  result_.states_quarantined = st.states_quarantined;
  result_.lint_findings = st.lint_findings;
  result_.hb_findings = st.hb_findings;
  eviction_draws_ = st.eviction_draws;
  wall_seconds_ = st.wall_seconds;
  cpu_seconds_ = st.cpu_seconds;
  for (const auto& [rule, count] : st.lint_rule_counts) {
    result_.lint_rule_counts[rule] = count;
  }
  for (const auto& [rule, count] : st.hb_rule_counts) {
    result_.hb_rule_counts[rule] = count;
  }
  corpus_.clear();
  for (const store::CorpusSnapshotEntry& e : st.corpus) {
    auto parsed = workload::ParseWorkload(e.text, e.name);
    if (!parsed.ok()) {
      return parsed.status();
    }
    corpus_.push_back(
        CorpusEntry{std::move(*parsed), e.lint_findings, e.hb_findings});
  }
  corpus_cov_ = common::CoverageMap();
  for (uint32_t slot : st.corpus_cov_slots) {
    corpus_cov_.Hit(slot);
  }
  unique_.clear();
  for (const chipmunk::BugReport& r : st.unique_reports) {
    unique_.emplace(r.Signature(), r);
  }
  result_.timeline.clear();
  for (const store::TimelinePoint& t : st.timeline) {
    result_.timeline.push_back(
        TimelineEntry{t.ordinal, t.wall_seconds, t.cpu_seconds, t.signature});
  }
  admitted_ = st.admitted;
  warm_admitted_ = st.warm_admitted;
  corpus_history_.clear();
  for (const auto& [commits, entries] : st.corpus_history) {
    std::vector<CorpusEntry> corpus;
    for (const store::CorpusSnapshotEntry& e : entries) {
      auto parsed = workload::ParseWorkload(e.text, e.name);
      if (!parsed.ok()) {
        return parsed.status();
      }
      corpus.push_back(
          CorpusEntry{std::move(*parsed), e.lint_findings, e.hb_findings});
    }
    corpus_history_[commits] = std::move(corpus);
  }
  if (committed_ == 0) {
    corpus_history_[0] = {};
  }
  for (const auto& [hash, version] : loaded.index) {
    state_index_.Insert(hash, version);
  }
  // Replay the eviction stream to its recorded position: Below(n > 0)
  // consumes exactly one Next() draw.
  commit_rng_ = common::Rng::Stream(options_.seed, kCommitStream);
  for (uint64_t i = 0; i < eviction_draws_; ++i) {
    commit_rng_.Next();
  }
  // Re-apply the log records past the checkpoint through the same commit
  // path a live run uses. Records *below* it are stale leftovers of a crash
  // between checkpoint rename and log truncation.
  for (const store::CommitRecord& rec : loaded.log) {
    const uint64_t local = rec.ordinal - shard_start_;
    if (local < st.committed) {
      continue;
    }
    if (local != committed_) {
      return common::Corruption("campaign log skips local ordinal " +
                                std::to_string(committed_));
    }
    ApplyRecord(rec, nullptr);
  }
  next_ordinal_ = shard_start_ + committed_;
  return common::OkStatus();
}

common::Status FuzzEngine::OpenCampaign() {
  if (options_.campaign_dir.empty()) {
    return common::OkStatus();
  }
  if (store_ != nullptr) {
    return common::Invalid("campaign already open");
  }
  if (options_.shard_count == 0 ||
      options_.shard_index >= options_.shard_count) {
    return common::Invalid("shard index must be below the shard count");
  }

  store::CampaignMeta want;
  want.fs = config_.name;
  want.bugs = config_.bugs;
  want.device_size = config_.device_size;
  want.seed = options_.seed;
  want.max_ops = options_.max_ops;
  want.iterations = options_.iterations;
  want.corpus_max = options_.corpus_max;
  want.lookahead = options_.lookahead;
  want.shard_index = options_.shard_index;
  want.shard_count = options_.shard_count;
  want.lint = options_.lint;
  want.inject_faults = options_.harness.fault_plan.enabled();
  want.fault_seed = options_.harness.fault_plan.seed;
  want.representative = options_.harness.representative;
  want.targeted = options_.harness.targeted;
  want.invariants = options_.invariants_path;

  if (options_.resume) {
    store::LoadedCampaign loaded;
    auto opened =
        store::CampaignStore::OpenForResume(options_.campaign_dir, &loaded);
    if (!opened.ok()) {
      return opened.status();
    }
    std::string why;
    if (!loaded.meta.CompatibleWith(want, &why)) {
      return common::Invalid("cannot resume: campaign mismatch on " + why);
    }
    if (want.shard_count > 1 && loaded.meta.iterations != want.iterations) {
      // Shard ordinal ranges derive from the global iteration count, so
      // extending a sharded campaign would shift every shard's range.
      return common::Invalid(
          "cannot resume a shard with a different --iterations");
    }
    store_ = std::move(*opened);
    common::Status restored = RestoreFrom(loaded);
    if (!restored.ok()) {
      store_.reset();
      return restored;
    }
    if (loaded.log_truncated) {
      fprintf(stderr,
              "chipmunk: campaign log had a torn or corrupt tail; recovered "
              "to the last valid record\n");
    }
    fprintf(stderr,
            "chipmunk: resuming campaign %s at ordinal %llu (%llu of %llu "
            "committed)\n",
            options_.campaign_dir.c_str(),
            static_cast<unsigned long long>(next_ordinal_),
            static_cast<unsigned long long>(committed_),
            static_cast<unsigned long long>(shard_local_count_));
    return common::OkStatus();
  }

  std::error_code ec;
  if (std::filesystem::exists(
          std::filesystem::path(options_.campaign_dir) / "meta.txt", ec)) {
    // The directory already holds a campaign. Same campaign: warm rerun.
    // Different campaign: refuse — never silently clobber a store.
    auto prior = store::CampaignStore::Load(options_.campaign_dir);
    if (!prior.ok()) {
      return prior.status();
    }
    std::string why;
    if (!prior->meta.CompatibleWith(want, &why)) {
      return common::Invalid(
          "campaign dir holds a different campaign (mismatch on " + why +
          "); use a fresh directory, --resume, or matching flags");
    }
    store::CampaignState fold = FoldCampaign(*prior);
    warm_admitted_ = fold.admitted;
    // Version 0 = inherited: visible through every snapshot cap.
    for (const auto& [hash, version] : prior->index) {
      state_index_.Insert(hash, 0);
    }
    for (const store::CommitRecord& rec : prior->log) {
      if (rec.ordinal - shard_start_ < prior->checkpoint.committed) {
        continue;
      }
      for (uint64_t h : rec.clean_hashes) {
        state_index_.Insert(h, 0);
      }
    }
    fprintf(stderr,
            "chipmunk: warm start from %s (%zu indexed crash states, %zu "
            "recorded admissions)\n",
            options_.campaign_dir.c_str(), state_index_.size(),
            warm_admitted_.size());
  }
  auto created = store::CampaignStore::Create(options_.campaign_dir, want);
  if (!created.ok()) {
    return created.status();
  }
  store_ = std::move(*created);
  corpus_history_[0] = {};
  return common::OkStatus();
}

store::CampaignState FoldCampaign(const store::LoadedCampaign& loaded) {
  store::CampaignState st = loaded.checkpoint;
  const uint64_t n = std::max<uint64_t>(1, loaded.meta.shard_count);
  const uint64_t shard_start =
      loaded.meta.iterations * loaded.meta.shard_index / n;
  std::map<std::string, chipmunk::BugReport> unique;
  for (const chipmunk::BugReport& r : st.unique_reports) {
    unique.emplace(r.Signature(), r);
  }
  std::set<uint32_t> cov(st.corpus_cov_slots.begin(),
                         st.corpus_cov_slots.end());
  for (const store::CommitRecord& rec : loaded.log) {
    const uint64_t local = rec.ordinal - shard_start;
    if (local < loaded.checkpoint.committed) {
      continue;  // stale pre-compaction leftover
    }
    ++st.executed;
    auto note = [&](const chipmunk::BugReport& r) {
      std::string sig = r.Signature();
      if (unique.emplace(sig, r).second) {
        st.timeline.push_back(store::TimelinePoint{
            rec.ordinal, rec.wall_seconds, rec.cpu_seconds, sig});
      }
    };
    if (rec.ran) {
      if (rec.retried) {
        ++st.replay_failures;
        ++st.replay_retries;
      }
      if (!rec.ok) {
        ++st.replay_failures;
        ++st.workloads_quarantined;
        chipmunk::BugReport r;
        r.fs = loaded.meta.fs;
        r.workload_name = rec.workload_name;
        r.kind = chipmunk::CheckKind::kRecoveryFailure;
        r.detail = "workload replay died twice: " + rec.error +
                   " (first attempt: " + rec.first_error + ")";
        note(r);
      } else {
        st.states_quarantined += rec.states_quarantined;
        st.crash_states += rec.crash_states;
        st.states_deduped += rec.states_deduped;
        st.states_pruned += rec.states_pruned;
        st.lint_findings += rec.lint_findings;
        for (const std::string& rule : rec.lint_rules) {
          ++st.lint_rule_counts[rule];
        }
        st.hb_findings += rec.hb_findings;
        for (const std::string& rule : rec.hb_rules) {
          ++st.hb_rule_counts[rule];
        }
        if (rec.admitted) {
          for (uint32_t slot : rec.cov_slots) {
            cov.insert(slot);
          }
          store::CorpusSnapshotEntry entry{rec.workload_name,
                                           rec.workload_text,
                                           rec.lint_findings,
                                           rec.hb_findings};
          if (loaded.meta.corpus_max == 0 ||
              st.corpus.size() < loaded.meta.corpus_max) {
            st.corpus.push_back(std::move(entry));
          } else {
            // The true eviction slot draws from the engine's RNG stream;
            // size and membership-by-count stay exact, contents approximate.
            st.corpus[local % st.corpus.size()] = std::move(entry);
          }
        }
        for (const chipmunk::BugReport& r : rec.reports) {
          note(r);
        }
      }
    }
    st.admitted.push_back(rec.admitted ? 1 : 0);
    st.wall_seconds = rec.wall_seconds;
    st.cpu_seconds = rec.cpu_seconds;
    ++st.committed;
  }
  st.corpus_cov_slots.assign(cov.begin(), cov.end());
  st.unique_reports.clear();
  for (auto& [sig, r] : unique) {
    st.unique_reports.push_back(r);
  }
  return st;
}

}  // namespace fuzz
