#include "src/fuzz/fuzz_engine.h"

#include <time.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/core/quarantine.h"
#include "src/pmem/pm_device.h"

namespace fuzz {

using workload::Op;
using workload::OpKind;
using workload::Workload;

namespace {

const std::vector<std::string>& PathPool() {
  static const std::vector<std::string> kPaths = {
      "/f0", "/f1", "/f2", "/d0", "/d1", "/d0/f3", "/d0/f4", "/d1/f5",
      "/d0/d2", "/d0/d2/f6"};
  return kPaths;
}

constexpr int kSlots = 4;

// Reserved RNG stream for driver-side corpus eviction; workload streams use
// their (small) ordinals, so the two can never collide.
constexpr uint64_t kCommitStream = ~uint64_t{0};

chipmunk::HarnessOptions HarnessFor(const FuzzOptions& options) {
  chipmunk::HarnessOptions h = options.harness;
  h.lint = options.lint;
  return h;
}

// CPU time consumed by the whole process — every thread, including the
// replay engine's workers. This is what "fuzzing CPU time" must mean for
// timelines to stay comparable across --fuzz-jobs / --jobs values; the
// calling thread's clock alone under-counts as soon as any stage is
// parallel.
double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkloadGenerator
// ---------------------------------------------------------------------------

WorkloadGenerator::WorkloadGenerator(const FuzzOptions* options, bool weak_fs,
                                     common::Rng* rng)
    : options_(options), weak_fs_(weak_fs), rng_(rng) {}

size_t WorkloadGenerator::max_body_ops() const {
  // max_ops = 0 used to underflow into Below(~0) and try to build a ~2^64-op
  // workload; the smallest workload the templates can express is 2 ops.
  return std::max<size_t>(2, options_->max_ops);
}

std::string WorkloadGenerator::PickPath() {
  // Path locality: favour recently-touched paths, the way Syzkaller's
  // resource-typed templates thread one file through several calls. The
  // multi-op-same-file bug patterns (overwrite-then-truncate, double link,
  // two descriptors) are unreachable without it.
  if (!last_paths_.empty() && rng_->Chance(3, 5)) {
    return rng_->Pick(last_paths_);
  }
  std::string path = rng_->Pick(PathPool());
  last_paths_.push_back(path);
  if (last_paths_.size() > 3) {
    last_paths_.erase(last_paths_.begin());
  }
  return path;
}

Op WorkloadGenerator::RandomOp() {
  Op op;
  // Weighted kind selection: data ops and namespace ops dominate, with
  // opens/closes keeping the descriptor pool alive.
  uint64_t roll = rng_->Below(100);
  if (roll < 22) {
    op.kind = OpKind::kOpen;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    op.oflag_create = rng_->Chance(3, 4);
    op.oflag_trunc = rng_->Chance(1, 8);
    op.oflag_append = rng_->Chance(1, 6);
    op.oflag_excl = rng_->Chance(1, 10);
  } else if (roll < 30) {
    op.kind = OpKind::kClose;
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
  } else if (roll < 46) {
    op.kind = rng_->Chance(1, 2) ? OpKind::kPwrite : OpKind::kWrite;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    // Arbitrary, frequently unaligned sizes and offsets — one of the
    // complexities ACE omits (§4.3).
    op.off = rng_->Below(12000);
    op.len = 1 + rng_->Below(6000);
    op.fill = static_cast<uint8_t>('a' + rng_->Below(26));
  } else if (roll < 52) {
    op.kind = OpKind::kRead;
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    op.len = 1 + rng_->Below(4000);
  } else if (roll < 58) {
    op.kind = OpKind::kCreat;
    op.path = PickPath();
  } else if (roll < 63) {
    op.kind = OpKind::kMkdir;
    op.path = PickPath();
  } else if (roll < 69) {
    op.kind = OpKind::kUnlink;
    op.path = PickPath();
  } else if (roll < 73) {
    op.kind = OpKind::kRmdir;
    op.path = PickPath();
  } else if (roll < 79) {
    op.kind = OpKind::kLink;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 86) {
    op.kind = OpKind::kRename;
    op.path = PickPath();
    op.path2 = PickPath();
  } else if (roll < 91) {
    op.kind = OpKind::kTruncate;
    op.path = PickPath();
    op.len = rng_->Below(14000);
  } else if (roll < 96) {
    op.kind = OpKind::kFalloc;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
    uint32_t modes[] = {0, vfs::kFallocKeepSize, vfs::kFallocZeroRange,
                        vfs::kFallocZeroRange | vfs::kFallocKeepSize,
                        vfs::kFallocPunchHole | vfs::kFallocKeepSize};
    op.falloc_mode = modes[rng_->Below(5)];
    op.off = rng_->Below(10000);
    op.len = 1 + rng_->Below(6000);
  } else if (!weak_fs_ || roll < 97) {
    op.kind = OpKind::kSync;
  } else if (roll < 99) {
    op.kind = rng_->Chance(1, 2) ? OpKind::kFsync : OpKind::kFdatasync;
    op.path = PickPath();
    op.fd_slot = static_cast<int>(rng_->Below(kSlots));
  } else {
    op.kind = rng_->Chance(2, 3) ? OpKind::kSetxattr : OpKind::kRemovexattr;
    op.path = PickPath();
    op.path2 = rng_->Chance(1, 2) ? "user.a" : "user.b";
    op.len = 1 + rng_->Below(64);
    op.fill = static_cast<uint8_t>('a' + rng_->Below(26));
  }
  return op;
}

void WorkloadGenerator::Finalize(Workload& w) {
  if (weak_fs_) {
    // §3.4.2: a sync at the end of each workload guarantees at least one
    // crash state is checked on weak-guarantee systems.
    Op sync;
    sync.kind = OpKind::kSync;
    w.ops.push_back(sync);
  }
}

Workload WorkloadGenerator::Generate() {
  Workload w;
  const size_t cap = max_body_ops();
  size_t n = 2 + rng_->Below(cap - 1);  // in [2, cap]
  for (size_t i = 0; i < n; ++i) {
    w.ops.push_back(RandomOp());
  }
  Finalize(w);
  return w;
}

size_t WorkloadGenerator::SpliceLimit(const Workload& other) const {
  if (weak_fs_ && !other.ops.empty() &&
      other.ops.back().kind == OpKind::kSync) {
    return other.ops.size() - 1;
  }
  return other.ops.size();
}

Workload WorkloadGenerator::Mutate(const Workload& base,
                                   const std::vector<CorpusEntry>& corpus) {
  Workload w = base;
  if (weak_fs_ && !w.ops.empty() && w.ops.back().kind == OpKind::kSync) {
    w.ops.pop_back();  // drop the trailing sync; Finalize re-adds it
  }
  size_t mutations = 1 + rng_->Below(3);
  for (size_t m = 0; m < mutations; ++m) {
    uint64_t choice = rng_->Below(4);
    if (choice == 0 || w.ops.empty()) {
      // Insert a random op at a random position.
      size_t pos = rng_->Below(w.ops.size() + 1);
      w.ops.insert(w.ops.begin() + pos, RandomOp());
    } else if (choice == 1) {
      // Replace an op.
      w.ops[rng_->Below(w.ops.size())] = RandomOp();
    } else if (choice == 2 && w.ops.size() > 2) {
      // Delete an op.
      w.ops.erase(w.ops.begin() + rng_->Below(w.ops.size()));
    } else if (!corpus.empty()) {
      // Splice with a prefix of another corpus entry — minus its trailing
      // sync (SpliceLimit), which must not land mid-sequence.
      const Workload& other = PickCorpus(corpus, *rng_);
      size_t cut = rng_->Below(w.ops.size());
      size_t take = rng_->Below(SpliceLimit(other) + 1);
      w.ops.resize(cut);
      w.ops.insert(w.ops.end(), other.ops.begin(), other.ops.begin() + take);
    }
  }
  // Enforce the documented cap on the finalized workload: trimming after
  // Finalize would first eat the trailing sync, trimming to a looser bound
  // before it (the old max_ops + 2) let mutated weak-FS workloads exceed the
  // cap by three.
  if (w.ops.size() > max_body_ops()) {
    w.ops.resize(max_body_ops());
  }
  Finalize(w);
  return w;
}

const Workload& WorkloadGenerator::PickCorpus(
    const std::vector<CorpusEntry>& corpus, common::Rng& rng) {
  uint64_t total = 0;
  for (const CorpusEntry& entry : corpus) {
    total += 1 + entry.lint_findings;
  }
  uint64_t roll = rng.Below(total);
  for (const CorpusEntry& entry : corpus) {
    const uint64_t weight = 1 + entry.lint_findings;
    if (roll < weight) {
      return entry.w;
    }
    roll -= weight;
  }
  return corpus.back().w;
}

Workload WorkloadGenerator::Build(uint64_t ordinal,
                                  const std::vector<CorpusEntry>& corpus) {
  Workload w = corpus.empty() || rng_->Chance(1, 4)
                   ? Generate()
                   : Mutate(PickCorpus(corpus, *rng_), corpus);
  w.name = "fuzz-" + std::to_string(ordinal);
  return w;
}

// ---------------------------------------------------------------------------
// FuzzEngine
// ---------------------------------------------------------------------------

FuzzEngine::FuzzEngine(chipmunk::FsConfig config, FuzzOptions options)
    : config_(std::move(config)),
      options_(options),
      harness_(config_, HarnessFor(options_)),
      commit_rng_(common::Rng::Stream(options_.seed, kCommitStream)) {
  // Query the target's guarantees once, on a scratch device.
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  weak_fs_ = !config_.make(&pm)->Guarantees().synchronous;
}

void FuzzEngine::BeginClock() {
  run_wall_start_ = std::chrono::steady_clock::now();
  run_cpu_start_ = ProcessCpuSeconds();
}

double FuzzEngine::WallNow() const {
  return wall_seconds_ +
         std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - run_wall_start_)
             .count();
}

double FuzzEngine::CpuNow() const {
  return cpu_seconds_ + ProcessCpuSeconds() - run_cpu_start_;
}

void FuzzEngine::EndClock() {
  wall_seconds_ = WallNow();
  cpu_seconds_ = CpuNow();
}

workload::Workload FuzzEngine::BuildWorkload(uint64_t ordinal) {
  common::Rng rng = common::Rng::Stream(options_.seed, ordinal);
  WorkloadGenerator gen(&options_, weak_fs_, &rng);
  return gen.Build(ordinal, corpus_);
}

void FuzzEngine::Execute(Pending& p) const {
  common::CoverageMap* prev = common::CoverageMap::Current();
  common::CoverageMap::Current() = &p.cov;
  p.stats = harness_.TestWorkload(p.w);
  if (!p.stats->ok()) {
    // Graceful degradation, attempt 2 of 2: retry once with a serial replay
    // (jobs=1) — the smallest configuration — before giving up on the
    // workload. The harness is deterministic, so a sticky failure fails
    // identically here and Commit quarantines it.
    p.first_error = p.stats->status().ToString();
    chipmunk::HarnessOptions retry_options = HarnessFor(options_);
    retry_options.jobs = 1;
    chipmunk::Harness retry(config_, retry_options);
    p.stats = retry.TestWorkload(p.w);
  }
  common::CoverageMap::Current() = prev;
}

size_t FuzzEngine::Commit(Pending& p) {
  ++result_.executed;
  if (!p.stats.has_value()) {
    return 0;
  }
  if (!p.first_error.empty()) {
    ++result_.replay_failures;  // first attempt died
    ++result_.replay_retries;
  }
  if (!p.stats->ok()) {
    // Second failure: quarantine the workload, commit a kRecoveryFailure
    // report, and keep fuzzing. All decisions are per-workload and applied
    // at the ordinal-order barrier, so the result stays deterministic.
    ++result_.replay_failures;
    ++result_.workloads_quarantined;
    chipmunk::BugReport r;
    r.fs = config_.name;
    r.workload_name = p.w.name;
    r.kind = chipmunk::CheckKind::kRecoveryFailure;
    r.detail = "workload replay died twice: " + p.stats->status().ToString() +
               " (first attempt: " + p.first_error + ")";
    if (!options_.harness.quarantine_dir.empty()) {
      chipmunk::QuarantineEntry e;
      e.kind = "workload";
      e.fs = config_.name;
      e.bugs = config_.bugs;
      e.device_size = config_.device_size;
      e.workload = p.w;
      e.ordinal = p.ordinal;
      e.sandbox_budget = options_.harness.sandbox_op_budget;
      e.inject = options_.harness.fault_plan.enabled();
      e.fault_seed = options_.harness.fault_plan.seed;
      e.report_kind = chipmunk::CheckKindName(r.kind);
      e.detail = r.detail;
      (void)chipmunk::WriteQuarantineEntry(options_.harness.quarantine_dir, e);
    }
    size_t fresh = 0;
    std::string sig = r.Signature();
    if (unique_.emplace(sig, std::move(r)).second) {
      fresh = 1;
      result_.timeline.push_back(
          TimelineEntry{p.ordinal, WallNow(), CpuNow(), sig});
    }
    return fresh;
  }
  chipmunk::RunStats& stats = **p.stats;
  result_.states_quarantined += stats.quarantined.size();
  result_.crash_states += stats.crash_states;
  result_.lint_findings += stats.lint_findings.size();
  for (const analysis::LintFinding& f : stats.lint_findings) {
    ++result_.lint_rule_counts[analysis::LintRuleId(f.rule)];
  }

  // Coverage feedback: workloads reaching new file-system code join the
  // corpus (including coverage reached during crash-state recovery).
  if (p.cov.CountNewAgainst(corpus_cov_) > 0) {
    corpus_cov_.MergeFrom(p.cov);
    CorpusEntry entry{p.w, stats.lint_findings.size()};
    if (corpus_.size() >= options_.corpus_max) {
      corpus_[commit_rng_.Below(corpus_.size())] = std::move(entry);
    } else {
      corpus_.push_back(std::move(entry));
    }
  }

  // Lint findings are a side channel (see FuzzOptions::lint): the fuzzing
  // verdict counts only replay/live reports.
  size_t fresh = 0;
  for (chipmunk::BugReport& report : stats.reports) {
    if (report.kind == chipmunk::CheckKind::kLintFinding) {
      continue;
    }
    std::string sig = report.Signature();
    if (unique_.emplace(sig, report).second) {
      ++fresh;
      result_.timeline.push_back(
          TimelineEntry{p.ordinal, WallNow(), CpuNow(), sig});
    }
  }
  return fresh;
}

size_t FuzzEngine::Step() {
  BeginClock();
  Pending p;
  p.ordinal = next_ordinal_++;
  p.w = BuildWorkload(p.ordinal);
  Execute(p);
  size_t fresh = Commit(p);
  EndClock();
  return fresh;
}

// The serial pipeline: same lagged-commit schedule as the pool (so jobs = 1
// is bit-identical to jobs = N), executed inline on the driver thread.
void FuzzEngine::RunSerial(uint64_t count, uint64_t lookahead) {
  std::deque<Pending> done;
  uint64_t committed = 0;
  for (uint64_t k = 0; k < count; ++k) {
    const uint64_t required = k < lookahead ? 0 : k - lookahead + 1;
    while (committed < required) {
      Commit(done.front());
      done.pop_front();
      ++committed;
    }
    Pending p;
    p.ordinal = next_ordinal_++;
    p.w = BuildWorkload(p.ordinal);
    Execute(p);
    done.push_back(std::move(p));
  }
  while (!done.empty()) {
    Commit(done.front());
    done.pop_front();
  }
}

void FuzzEngine::RunPool(uint64_t count, size_t jobs, uint64_t lookahead) {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::deque<Pending> work;
  std::map<uint64_t, Pending> done;
  bool closed = false;

  auto worker = [&]() {
    while (true) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&]() { return !work.empty() || closed; });
        if (work.empty()) {
          return;
        }
        p = std::move(work.front());
        work.pop_front();
      }
      Execute(p);
      {
        std::lock_guard<std::mutex> lock(mu);
        done.emplace(p.ordinal, std::move(p));
      }
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    threads.emplace_back(worker);
  }

  const uint64_t first = next_ordinal_;
  uint64_t committed = 0;
  auto commit_next = [&]() {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock,
                   [&]() { return done.count(first + committed) != 0; });
      auto it = done.find(first + committed);
      p = std::move(it->second);
      done.erase(it);
    }
    Commit(p);
    ++committed;
  };

  for (uint64_t k = 0; k < count; ++k) {
    // The snapshot pin: workload k is generated only once exactly
    // max(0, k - lookahead + 1) results are committed, never more — the
    // driver deliberately delays commits it could already apply, so the
    // corpus state feeding workload k does not depend on worker timing.
    const uint64_t required = k < lookahead ? 0 : k - lookahead + 1;
    while (committed < required) {
      commit_next();
    }
    Pending p;
    p.ordinal = next_ordinal_++;
    p.w = BuildWorkload(p.ordinal);
    {
      std::lock_guard<std::mutex> lock(mu);
      work.push_back(std::move(p));
    }
    work_cv.notify_one();
  }
  while (committed < count) {
    commit_next();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
  }
  work_cv.notify_all();
  for (std::thread& t : threads) {
    t.join();
  }
}

void FuzzEngine::FinalizeResult() {
  result_.corpus_size = corpus_.size();
  result_.coverage_points = corpus_cov_.CountSet();
  result_.wall_seconds = wall_seconds_;
  result_.cpu_seconds = cpu_seconds_;
  result_.unique_reports.clear();
  for (auto& [sig, report] : unique_) {
    result_.unique_reports.push_back(report);
  }
  result_.clusters = ClusterReports(result_.unique_reports);
}

FuzzResult FuzzEngine::Run() {
  BeginClock();
  const uint64_t lookahead = std::max<size_t>(1, options_.lookahead);
  size_t jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  // More workers than in-flight slots can never run; a one-deep pipeline is
  // the serial loop.
  jobs = std::min<size_t>(jobs, lookahead);
  if (jobs <= 1) {
    RunSerial(options_.iterations, lookahead);
  } else {
    RunPool(options_.iterations, jobs, lookahead);
  }
  EndClock();
  FinalizeResult();
  return result_;
}

}  // namespace fuzz
