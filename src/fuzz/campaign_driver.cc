#include "src/fuzz/campaign_driver.h"

#include <stdio.h>
#include <time.h>

#include "src/concurrency/schedule.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "src/core/quarantine.h"
#include "src/pmem/pm_device.h"
#include "src/workload/serialize.h"

namespace fuzz {

namespace {

chipmunk::HarnessOptions HarnessFor(const CampaignOptions& options) {
  chipmunk::HarnessOptions h = options.harness;
  h.lint = options.lint;
  return h;
}

// CPU time consumed by the whole process — every thread, including the
// replay engine's workers. This is what "campaign CPU time" must mean for
// timelines to stay comparable across --fuzz-jobs / --jobs values; the
// calling thread's clock alone under-counts as soon as any stage is
// parallel.
double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool StopRequested(const CampaignOptions& options) {
  return options.stop != nullptr &&
         options.stop->load(std::memory_order_relaxed);
}

}  // namespace

CampaignDriver::CampaignDriver(chipmunk::FsConfig config,
                               CampaignOptions options)
    : config_(std::move(config)),
      options_(std::move(options)),
      harness_(config_, HarnessFor(options_)) {
  // Query the target's guarantees once, on a scratch device.
  pmem::PmDevice dev(config_.device_size);
  pmem::Pm pm(&dev);
  weak_fs_ = !config_.make(&pm)->Guarantees().synchronous;
  // This shard's slice of the global ordinal space. Ordinals stay global —
  // RNG streams, workload names, and the ACE enumeration derive from them —
  // so disjoint shards never run the same workload. OpenCampaign validates
  // the spec; a degenerate one here just collapses to shard 0/1.
  const uint64_t n = std::max<size_t>(1, options_.shard_count);
  const uint64_t i = std::min<uint64_t>(options_.shard_index, n - 1);
  shard_start_ = options_.iterations * i / n;
  shard_local_count_ = options_.iterations * (i + 1) / n - shard_start_;
  if (options_.range_count > 0) {
    // Explicit ordinal lease: the slice is given outright instead of derived
    // from shard math. OpenCampaign validates it against iterations and
    // shard_count; a storeless run just trusts the caller.
    shard_start_ = options_.range_begin;
    shard_local_count_ = options_.range_count;
  }
  next_ordinal_ = shard_start_;
}

void CampaignDriver::BeginClock() {
  run_wall_start_ = std::chrono::steady_clock::now();
  run_cpu_start_ = ProcessCpuSeconds();
}

double CampaignDriver::WallNow() const {
  return wall_seconds_ +
         std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - run_wall_start_)
             .count();
}

double CampaignDriver::CpuNow() const {
  return cpu_seconds_ + ProcessCpuSeconds() - run_cpu_start_;
}

void CampaignDriver::EndClock() {
  wall_seconds_ = WallNow();
  cpu_seconds_ = CpuNow();
}

workload::Workload CampaignDriver::MakeWorkload(uint64_t ordinal,
                                                uint64_t pin) {
  workload::Workload w = BuildWorkload(ordinal, pin);
  if (options_.threads > 1 && w.threads <= 1) {
    // The generator produced a single-threaded program: assign its body ops
    // to threads and realize one interleaving, both drawn from the schedule
    // stream for this ordinal. Workloads the generator already realized
    // (conflict-template seeds, rescheduled corpus entries) pass through.
    w = concurrency::Concurrentize(w, options_.threads,
                                   options_.schedule_seed, ordinal);
  }
  return w;
}

void CampaignDriver::Execute(Pending& p) const {
  common::CoverageMap* prev = common::CoverageMap::Current();
  common::CoverageMap::Current() = &p.cov;
  if (p.snapshot) {
    // Campaign run: this workload's harness reads the equivalence index
    // through a snapshot capped at its pin, so the skip decisions are a
    // function of the ordinal alone — identical across jobs values and
    // across interrupted/resumed/uninterrupted runs.
    chipmunk::HarnessOptions snap_options = HarnessFor(options_);
    snap_options.dedup_index = &*p.snapshot;
    chipmunk::Harness snap_harness(config_, snap_options);
    p.stats = snap_harness.TestWorkload(p.w);
  } else {
    p.stats = harness_.TestWorkload(p.w);
  }
  if (!p.stats->ok()) {
    // Graceful degradation, attempt 2 of 2: retry once with a serial replay
    // (jobs=1) — the smallest configuration — before giving up on the
    // workload. The harness is deterministic, so a sticky failure fails
    // identically here and Commit quarantines it.
    p.first_error = p.stats->status().ToString();
    chipmunk::HarnessOptions retry_options = HarnessFor(options_);
    retry_options.jobs = 1;
    if (p.snapshot) {
      retry_options.dedup_index = &*p.snapshot;
    }
    chipmunk::Harness retry(config_, retry_options);
    p.stats = retry.TestWorkload(p.w);
  }
  common::CoverageMap::Current() = prev;
}

store::CommitRecord CampaignDriver::MakeRecord(const Pending& p) const {
  store::CommitRecord rec;
  rec.ordinal = p.ordinal;
  rec.workload_name = p.w.name;
  rec.workload_text = workload::Serialize(p.w);
  rec.ran = p.stats.has_value();
  rec.wall_seconds = WallNow();
  rec.cpu_seconds = CpuNow();
  if (!rec.ran) {
    return rec;
  }
  rec.retried = !p.first_error.empty();
  rec.first_error = p.first_error;
  rec.ok = p.stats->ok();
  if (!rec.ok) {
    rec.error = p.stats->status().ToString();
    return rec;
  }
  const chipmunk::RunStats& stats = **p.stats;
  rec.crash_states = stats.crash_states;
  rec.states_deduped = stats.states_deduped;
  rec.states_pruned = stats.states_pruned;
  rec.states_quarantined = stats.quarantined.size();
  rec.lint_findings = stats.lint_findings.size();
  for (const analysis::LintFinding& f : stats.lint_findings) {
    rec.lint_rules.push_back(analysis::LintRuleId(f.rule));
  }
  rec.hb_findings = stats.hb_findings.size();
  for (const analysis::LintFinding& f : stats.hb_findings) {
    rec.hb_rules.push_back(analysis::LintRuleId(f.rule));
  }
  for (const chipmunk::BugReport& r : stats.reports) {
    if (r.kind != chipmunk::CheckKind::kLintFinding) {
      rec.reports.push_back(r);
    }
  }
  for (uint32_t slot = 0; slot < common::CoverageMap::kSlots; ++slot) {
    if (p.cov.Test(slot)) {
      rec.cov_slots.push_back(slot);
    }
  }
  rec.clean_hashes = stats.clean_state_hashes;
  // The admission decision is made here, at the commit barrier, and
  // *recorded*. A warm rerun forces the prior run's decision instead: its
  // dedup-skipped states contribute no recovery coverage, so re-deciding
  // from the (smaller) observed coverage could diverge the corpus — and
  // with it every later workload.
  const uint64_t local = committed_;
  if (local < warm_admitted_.size()) {
    rec.admitted = warm_admitted_[local] != 0;
  } else {
    rec.admitted = DecideAdmission(p);
  }
  return rec;
}

size_t CampaignDriver::ApplyRecord(const store::CommitRecord& rec,
                                   const workload::Workload* live_w) {
  ++result_.executed;
  const uint64_t local = committed_;
  size_t fresh = 0;
  auto note = [&](chipmunk::BugReport r) {
    std::string sig = r.Signature();
    ++result_.report_hits[sig];
    if (unique_.emplace(sig, std::move(r)).second) {
      ++fresh;
      result_.timeline.push_back(
          TimelineEntry{rec.ordinal, rec.wall_seconds, rec.cpu_seconds, sig});
    }
  };
  if (rec.ran) {
    if (rec.retried) {
      ++result_.replay_failures;  // first attempt died
      ++result_.replay_retries;
    }
    if (!rec.ok) {
      // Second failure: the workload was quarantined (side effect in
      // Commit, live runs only); account it and commit the report.
      ++result_.replay_failures;
      ++result_.workloads_quarantined;
      chipmunk::BugReport r;
      r.fs = config_.name;
      r.workload_name = rec.workload_name;
      r.kind = chipmunk::CheckKind::kRecoveryFailure;
      r.detail = "workload replay died twice: " + rec.error +
                 " (first attempt: " + rec.first_error + ")";
      note(std::move(r));
    } else {
      result_.states_quarantined += rec.states_quarantined;
      result_.crash_states += rec.crash_states;
      result_.states_deduped += rec.states_deduped;
      result_.states_pruned += rec.states_pruned;
      result_.lint_findings += rec.lint_findings;
      for (const std::string& rule : rec.lint_rules) {
        ++result_.lint_rule_counts[rule];
      }
      result_.hb_findings += rec.hb_findings;
      for (const std::string& rule : rec.hb_rules) {
        ++result_.hb_rule_counts[rule];
      }

      // Generator feedback: the fuzzer folds admitted workloads into its
      // corpus; the live and replayed paths share this one hook.
      if (rec.admitted) {
        ApplyAdmitted(rec, live_w);
      }

      // Lint findings are a side channel (see CampaignOptions::lint): the
      // campaign verdict counts only replay/live reports (rec.reports is
      // already filtered).
      for (const chipmunk::BugReport& report : rec.reports) {
        note(report);
      }
    }
  }
  admitted_.push_back(rec.admitted ? 1 : 0);
  if (store_ != nullptr) {
    // States proven clean by this commit become skippable for every
    // workload pinned at or after commit local+1 (1-based commit count).
    for (uint64_t h : rec.clean_hashes) {
      state_index_.Insert(h, local + 1);
    }
  }
  ++committed_;
  OnCommitted();
  if (live_w == nullptr) {
    // Replay: the clocks advance to the recorded cumulative times instead
    // of accruing fresh run time.
    wall_seconds_ = rec.wall_seconds;
    cpu_seconds_ = rec.cpu_seconds;
  }
  return fresh;
}

size_t CampaignDriver::Commit(Pending& p) {
  store::CommitRecord rec = MakeRecord(p);
  if (rec.ran && !rec.ok && !options_.harness.quarantine_dir.empty()) {
    // Quarantine side effect, live commits only — a resume replaying the
    // log does not re-write entries.
    chipmunk::QuarantineEntry e;
    e.kind = "workload";
    e.fs = config_.name;
    e.bugs = config_.bugs;
    e.device_size = config_.device_size;
    e.workload = p.w;
    e.ordinal = p.ordinal;
    e.sandbox_budget = options_.harness.sandbox_op_budget;
    e.inject = options_.harness.fault_plan.enabled();
    e.fault_seed = options_.harness.fault_plan.seed;
    e.report_kind =
        chipmunk::CheckKindName(chipmunk::CheckKind::kRecoveryFailure);
    e.detail = "workload replay died twice: " + rec.error +
               " (first attempt: " + rec.first_error + ")";
    (void)chipmunk::WriteQuarantineEntry(options_.harness.quarantine_dir, e);
  }
  size_t fresh = ApplyRecord(rec, &p.w);
  if (store_ != nullptr && store_writes_ok_) {
    common::Status s = store_->AppendCommit(rec);
    if (s.ok() && options_.checkpoint_interval > 0 &&
        committed_ % options_.checkpoint_interval == 0) {
      s = CheckpointNow(WallNow(), CpuNow());
    }
    if (!s.ok()) {
      fprintf(stderr,
              "chipmunk: campaign store write failed (%s); continuing "
              "without persistence\n",
              s.ToString().c_str());
      store_writes_ok_ = false;
    }
  }
  if (options_.on_commit) {
    options_.on_commit(committed_, result_.crash_states,
                       result_.states_deduped);
  }
  return fresh;
}

size_t CampaignDriver::Step() {
  BeginClock();
  Pending p;
  p.ordinal = next_ordinal_++;
  p.pin = committed_;
  p.w = MakeWorkload(p.ordinal, p.pin);
  if (store_ != nullptr) {
    p.snapshot.emplace(&state_index_, p.pin);
  }
  Execute(p);
  size_t fresh = Commit(p);
  EndClock();
  return fresh;
}

// The serial pipeline: same lagged-commit schedule as the pool (so jobs = 1
// is bit-identical to jobs = N), executed inline on the driver thread.
// `begin`/`end` are local ordinal indices; begin > 0 only on a resume, where
// the committed prefix was replayed from the log and the loop re-builds the
// lost in-flight window against its original (historical) pins.
void CampaignDriver::RunSerial(uint64_t begin, uint64_t end,
                               uint64_t lookahead) {
  std::deque<Pending> done;
  uint64_t committed = begin;
  for (uint64_t k = begin; k < end; ++k) {
    if (StopRequested(options_)) {
      // Graceful stop: build nothing new, drain what is already executed
      // through the commit barrier below. The committed state is a prefix of
      // the uninterrupted schedule.
      result_.interrupted = true;
      break;
    }
    const uint64_t required = k < lookahead ? 0 : k - lookahead + 1;
    while (committed < required) {
      Commit(done.front());
      done.pop_front();
      ++committed;
    }
    Pending p;
    p.ordinal = next_ordinal_++;
    p.pin = required;
    p.w = MakeWorkload(p.ordinal, p.pin);
    if (store_ != nullptr) {
      p.snapshot.emplace(&state_index_, p.pin);
    }
    Execute(p);
    done.push_back(std::move(p));
  }
  while (!done.empty()) {
    Commit(done.front());
    done.pop_front();
  }
}

void CampaignDriver::RunPool(uint64_t begin, uint64_t end, size_t jobs,
                             uint64_t lookahead) {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::deque<Pending> work;
  std::map<uint64_t, Pending> done;
  bool closed = false;

  auto worker = [&]() {
    while (true) {
      Pending p;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&]() { return !work.empty() || closed; });
        if (work.empty()) {
          return;
        }
        p = std::move(work.front());
        work.pop_front();
      }
      Execute(p);
      {
        std::lock_guard<std::mutex> lock(mu);
        done.emplace(p.ordinal, std::move(p));
      }
      done_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (size_t i = 0; i < jobs; ++i) {
    threads.emplace_back(worker);
  }

  const uint64_t first = next_ordinal_;
  uint64_t committed = begin;
  uint64_t generated = begin;  // local index one past the last built workload
  auto commit_next = [&]() {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu);
      done_cv.wait(lock, [&]() {
        return done.count(first + (committed - begin)) != 0;
      });
      auto it = done.find(first + (committed - begin));
      p = std::move(it->second);
      done.erase(it);
    }
    Commit(p);
    ++committed;
  };

  for (uint64_t k = begin; k < end; ++k) {
    if (StopRequested(options_)) {
      // Graceful stop: stop feeding the pool; every workload already built
      // still drains through the ordinal-order commit barrier below.
      result_.interrupted = true;
      break;
    }
    // The snapshot pin: workload k is generated only once exactly
    // max(0, k - lookahead + 1) results are committed, never more — the
    // driver deliberately delays commits it could already apply, so the
    // corpus state feeding workload k does not depend on worker timing.
    // On a resume, pins below `begin` resolve through the corpus history.
    const uint64_t required = k < lookahead ? 0 : k - lookahead + 1;
    while (committed < required) {
      commit_next();
    }
    Pending p;
    p.ordinal = next_ordinal_++;
    p.pin = required;
    p.w = MakeWorkload(p.ordinal, p.pin);
    if (store_ != nullptr) {
      p.snapshot.emplace(&state_index_, p.pin);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      work.push_back(std::move(p));
    }
    ++generated;
    work_cv.notify_one();
  }
  while (committed < generated) {
    commit_next();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
  }
  work_cv.notify_all();
  for (std::thread& t : threads) {
    t.join();
  }
}

void CampaignDriver::FinalizeResult() {
  result_.wall_seconds = wall_seconds_;
  result_.cpu_seconds = cpu_seconds_;
  result_.unique_reports.clear();
  for (auto& [sig, report] : unique_) {
    result_.unique_reports.push_back(report);
  }
  result_.clusters = ClusterReports(result_.unique_reports);
  FinalizeExtra();
}

CampaignResult CampaignDriver::Run() {
  BeginClock();
  const uint64_t lookahead = std::max<size_t>(1, options_.lookahead);
  size_t jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  // More workers than in-flight slots can never run; a one-deep pipeline is
  // the serial loop.
  jobs = std::min<size_t>(jobs, lookahead);
  // Local ordinal range: this shard owns [0, shard_local_count_); a resume
  // starts after the recovered prefix. A campaign already committed past the
  // requested iteration count just finalizes the recovered result.
  const uint64_t begin = committed_;
  const uint64_t end = std::max<uint64_t>(begin, shard_local_count_);
  if (begin < end) {
    if (jobs <= 1) {
      RunSerial(begin, end, lookahead);
    } else {
      RunPool(begin, end, jobs, lookahead);
    }
  }
  EndClock();
  if (store_ != nullptr && store_writes_ok_ && options_.final_checkpoint) {
    // Final compacting checkpoint: stats/merge read the exact final state
    // and a subsequent resume replays nothing.
    common::Status s = CheckpointNow(wall_seconds_, cpu_seconds_);
    if (!s.ok()) {
      fprintf(stderr, "chipmunk: final campaign checkpoint failed: %s\n",
              s.ToString().c_str());
    }
  }
  FinalizeResult();
  return result_;
}

// ---------------------------------------------------------------------------
// Campaign persistence
// ---------------------------------------------------------------------------

store::CampaignState CampaignDriver::SnapshotState(double wall,
                                                   double cpu) const {
  store::CampaignState st;
  st.committed = committed_;
  st.executed = result_.executed;
  st.crash_states = result_.crash_states;
  st.states_deduped = result_.states_deduped;
  st.states_pruned = result_.states_pruned;
  st.replay_failures = result_.replay_failures;
  st.replay_retries = result_.replay_retries;
  st.workloads_quarantined = result_.workloads_quarantined;
  st.states_quarantined = result_.states_quarantined;
  st.lint_findings = result_.lint_findings;
  st.hb_findings = result_.hb_findings;
  st.wall_seconds = wall;
  st.cpu_seconds = cpu;
  for (const auto& [rule, count] : result_.lint_rule_counts) {
    st.lint_rule_counts[rule] = count;
  }
  for (const auto& [rule, count] : result_.hb_rule_counts) {
    st.hb_rule_counts[rule] = count;
  }
  for (const auto& [sig, report] : unique_) {
    st.unique_reports.push_back(report);
  }
  st.report_hits = result_.report_hits;
  for (const TimelineEntry& t : result_.timeline) {
    st.timeline.push_back(store::TimelinePoint{t.ordinal, t.wall_seconds,
                                               t.cpu_seconds, t.signature});
  }
  st.admitted = admitted_;
  st.warm_admitted = warm_admitted_;
  SnapshotExtra(st);
  return st;
}

common::Status CampaignDriver::CheckpointNow(double wall, double cpu) {
  return store_->WriteCheckpoint(SnapshotState(wall, cpu),
                                 state_index_.Entries());
}

common::Status CampaignDriver::RestoreFrom(
    const store::LoadedCampaign& loaded) {
  const store::CampaignState& st = loaded.checkpoint;
  committed_ = st.committed;
  result_.executed = st.executed;
  result_.crash_states = st.crash_states;
  result_.states_deduped = st.states_deduped;
  result_.states_pruned = st.states_pruned;
  result_.replay_failures = st.replay_failures;
  result_.replay_retries = st.replay_retries;
  result_.workloads_quarantined = st.workloads_quarantined;
  result_.states_quarantined = st.states_quarantined;
  result_.lint_findings = st.lint_findings;
  result_.hb_findings = st.hb_findings;
  wall_seconds_ = st.wall_seconds;
  cpu_seconds_ = st.cpu_seconds;
  for (const auto& [rule, count] : st.lint_rule_counts) {
    result_.lint_rule_counts[rule] = count;
  }
  for (const auto& [rule, count] : st.hb_rule_counts) {
    result_.hb_rule_counts[rule] = count;
  }
  unique_.clear();
  for (const chipmunk::BugReport& r : st.unique_reports) {
    unique_.emplace(r.Signature(), r);
  }
  result_.report_hits = st.report_hits;
  result_.timeline.clear();
  for (const store::TimelinePoint& t : st.timeline) {
    result_.timeline.push_back(
        TimelineEntry{t.ordinal, t.wall_seconds, t.cpu_seconds, t.signature});
  }
  admitted_ = st.admitted;
  warm_admitted_ = st.warm_admitted;
  for (const auto& [hash, version] : loaded.index) {
    state_index_.Insert(hash, version);
  }
  RETURN_IF_ERROR(RestoreExtra(st));
  // Re-apply the log records past the checkpoint through the same commit
  // path a live run uses. Records *below* it are stale leftovers of a crash
  // between checkpoint rename and log truncation.
  for (const store::CommitRecord& rec : loaded.log) {
    const uint64_t local = rec.ordinal - shard_start_;
    if (local < st.committed) {
      continue;
    }
    if (local != committed_) {
      return common::Corruption("campaign log skips local ordinal " +
                                std::to_string(committed_));
    }
    ApplyRecord(rec, nullptr);
  }
  next_ordinal_ = shard_start_ + committed_;
  return common::OkStatus();
}

common::Status CampaignDriver::OpenCampaign() {
  if (options_.campaign_dir.empty()) {
    return common::OkStatus();
  }
  if (store_ != nullptr) {
    return common::Invalid("campaign already open");
  }
  if (options_.shard_count == 0 ||
      options_.shard_index >= options_.shard_count) {
    return common::Invalid("shard index must be below the shard count");
  }
  if (options_.range_count > 0) {
    if (options_.shard_count > 1) {
      return common::Invalid(
          "an ordinal lease range and --shard are mutually exclusive");
    }
    if (options_.range_count > options_.iterations ||
        options_.range_begin > options_.iterations - options_.range_count) {
      return common::Invalid(
          "lease range exceeds the campaign iteration count");
    }
  }

  store::CampaignMeta want;
  want.fs = config_.name;
  want.bugs = config_.bugs;
  want.device_size = config_.device_size;
  want.seed = options_.seed;
  want.max_ops = options_.max_ops;
  want.iterations = options_.iterations;
  want.corpus_max = options_.corpus_max;
  want.lookahead = options_.lookahead;
  want.shard_index = options_.shard_index;
  want.shard_count = options_.shard_count;
  want.range_begin = options_.range_begin;
  want.range_count = options_.range_count;
  want.lint = options_.lint;
  want.inject_faults = options_.harness.fault_plan.enabled();
  want.fault_seed = options_.harness.fault_plan.seed;
  want.representative = options_.harness.representative;
  want.targeted = options_.harness.targeted;
  want.invariants = options_.invariants_path;
  want.threads = std::max<uint64_t>(1, options_.threads);
  want.schedule_seed = options_.threads > 1 ? options_.schedule_seed : 0;
  FillGeneratorMeta(want);

  if (options_.resume) {
    store::LoadedCampaign loaded;
    auto opened =
        store::CampaignStore::OpenForResume(options_.campaign_dir, &loaded);
    if (!opened.ok()) {
      return opened.status();
    }
    std::string why;
    if (!loaded.meta.CompatibleWith(want, &why)) {
      return common::Invalid("cannot resume: campaign mismatch on " + why);
    }
    if (want.shard_count > 1 && loaded.meta.iterations != want.iterations) {
      // Shard ordinal ranges derive from the global iteration count, so
      // extending a sharded campaign would shift every shard's range.
      return common::Invalid(
          "cannot resume a shard with a different --iterations");
    }
    store_ = std::move(*opened);
    common::Status restored = RestoreFrom(loaded);
    if (!restored.ok()) {
      store_.reset();
      return restored;
    }
    if (loaded.log_truncated) {
      fprintf(stderr,
              "chipmunk: campaign log had a torn or corrupt tail; recovered "
              "to the last valid record\n");
    }
    fprintf(stderr,
            "chipmunk: resuming campaign %s at ordinal %llu (%llu of %llu "
            "committed)\n",
            options_.campaign_dir.c_str(),
            static_cast<unsigned long long>(next_ordinal_),
            static_cast<unsigned long long>(committed_),
            static_cast<unsigned long long>(shard_local_count_));
    return common::OkStatus();
  }

  std::error_code ec;
  if (std::filesystem::exists(
          std::filesystem::path(options_.campaign_dir) / "meta.txt", ec)) {
    // The directory already holds a campaign. Same campaign: warm rerun.
    // Different campaign: refuse — never silently clobber a store.
    auto prior = store::CampaignStore::Load(options_.campaign_dir);
    if (!prior.ok()) {
      return prior.status();
    }
    std::string why;
    if (!prior->meta.CompatibleWith(want, &why)) {
      return common::Invalid(
          "campaign dir holds a different campaign (mismatch on " + why +
          "); use a fresh directory, --resume, or matching flags");
    }
    store::CampaignState fold = FoldCampaign(*prior);
    warm_admitted_ = fold.admitted;
    // Version 0 = inherited: visible through every snapshot cap.
    for (const auto& [hash, version] : prior->index) {
      state_index_.Insert(hash, 0);
    }
    for (const store::CommitRecord& rec : prior->log) {
      if (rec.ordinal - shard_start_ < prior->checkpoint.committed) {
        continue;
      }
      for (uint64_t h : rec.clean_hashes) {
        state_index_.Insert(h, 0);
      }
    }
    fprintf(stderr,
            "chipmunk: warm start from %s (%zu indexed crash states, %zu "
            "recorded admissions)\n",
            options_.campaign_dir.c_str(), state_index_.size(),
            warm_admitted_.size());
  }
  auto created = store::CampaignStore::Create(options_.campaign_dir, want);
  if (!created.ok()) {
    return created.status();
  }
  store_ = std::move(*created);
  return common::OkStatus();
}

store::CampaignState FoldCampaign(const store::LoadedCampaign& loaded) {
  store::CampaignState st = loaded.checkpoint;
  const uint64_t n = std::max<uint64_t>(1, loaded.meta.shard_count);
  const uint64_t shard_start =
      loaded.meta.range_count > 0
          ? loaded.meta.range_begin
          : loaded.meta.iterations * loaded.meta.shard_index / n;
  std::map<std::string, chipmunk::BugReport> unique;
  for (const chipmunk::BugReport& r : st.unique_reports) {
    unique.emplace(r.Signature(), r);
  }
  std::set<uint32_t> cov(st.corpus_cov_slots.begin(),
                         st.corpus_cov_slots.end());
  for (const store::CommitRecord& rec : loaded.log) {
    const uint64_t local = rec.ordinal - shard_start;
    if (local < loaded.checkpoint.committed) {
      continue;  // stale pre-compaction leftover
    }
    ++st.executed;
    auto note = [&](const chipmunk::BugReport& r) {
      std::string sig = r.Signature();
      ++st.report_hits[sig];
      if (unique.emplace(sig, r).second) {
        st.timeline.push_back(store::TimelinePoint{
            rec.ordinal, rec.wall_seconds, rec.cpu_seconds, sig});
      }
    };
    if (rec.ran) {
      if (rec.retried) {
        ++st.replay_failures;
        ++st.replay_retries;
      }
      if (!rec.ok) {
        ++st.replay_failures;
        ++st.workloads_quarantined;
        chipmunk::BugReport r;
        r.fs = loaded.meta.fs;
        r.workload_name = rec.workload_name;
        r.kind = chipmunk::CheckKind::kRecoveryFailure;
        r.detail = "workload replay died twice: " + rec.error +
                   " (first attempt: " + rec.first_error + ")";
        note(r);
      } else {
        st.states_quarantined += rec.states_quarantined;
        st.crash_states += rec.crash_states;
        st.states_deduped += rec.states_deduped;
        st.states_pruned += rec.states_pruned;
        st.lint_findings += rec.lint_findings;
        for (const std::string& rule : rec.lint_rules) {
          ++st.lint_rule_counts[rule];
        }
        st.hb_findings += rec.hb_findings;
        for (const std::string& rule : rec.hb_rules) {
          ++st.hb_rule_counts[rule];
        }
        if (rec.admitted) {
          for (uint32_t slot : rec.cov_slots) {
            cov.insert(slot);
          }
          store::CorpusSnapshotEntry entry{rec.workload_name,
                                           rec.workload_text,
                                           rec.lint_findings,
                                           rec.hb_findings};
          if (loaded.meta.corpus_max == 0 ||
              st.corpus.size() < loaded.meta.corpus_max) {
            st.corpus.push_back(std::move(entry));
          } else {
            // The true eviction slot draws from the engine's RNG stream;
            // size and membership-by-count stay exact, contents approximate.
            st.corpus[local % st.corpus.size()] = std::move(entry);
          }
        }
        for (const chipmunk::BugReport& r : rec.reports) {
          note(r);
        }
      }
    }
    st.admitted.push_back(rec.admitted ? 1 : 0);
    st.wall_seconds = rec.wall_seconds;
    st.cpu_seconds = rec.cpu_seconds;
    ++st.committed;
  }
  st.corpus_cov_slots.assign(cov.begin(), cov.end());
  st.unique_reports.clear();
  for (auto& [sig, r] : unique) {
    st.unique_reports.push_back(r);
  }
  return st;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

common::StatusOr<CampaignMergeResult> MergeCampaigns(
    const std::vector<std::string>& srcs) {
  if (srcs.empty()) {
    return common::Invalid("campaign merge needs at least one source");
  }
  std::vector<store::LoadedCampaign> loaded;
  loaded.reserve(srcs.size());
  for (const std::string& src : srcs) {
    auto l = store::CampaignStore::Load(src);
    if (!l.ok()) {
      return common::Status(l.status().code(),
                            src + ": " + l.status().message());
    }
    loaded.push_back(std::move(*l));
  }

  // Shards of one campaign differ only in their shard index (and merge
  // provenance); a cross-campaign fold additionally tolerates different
  // generators and schedules, but never a different target system.
  auto normalized = [](const store::CampaignMeta& m) {
    store::CampaignMeta n = m;
    n.shard_index = 0;
    n.shard_count = 1;
    n.range_begin = 0;
    n.range_count = 0;
    n.merged = false;
    return n;
  };
  const store::CampaignMeta base = normalized(loaded.front().meta);
  bool same_campaign = true;
  for (const store::LoadedCampaign& l : loaded) {
    std::string why;
    if (!base.CompatibleWith(normalized(l.meta), &why) ||
        base.iterations != l.meta.iterations) {
      same_campaign = false;
      break;
    }
  }
  if (!same_campaign) {
    for (size_t i = 0; i < loaded.size(); ++i) {
      const store::CampaignMeta& m = loaded[i].meta;
      const char* mismatch = m.fs != base.fs                    ? "fs"
                             : m.bugs != base.bugs              ? "bugs"
                             : m.device_size != base.device_size
                                 ? "device_size"
                                 : nullptr;
      if (mismatch != nullptr) {
        return common::Invalid(srcs[i] + " targets a different system "
                               "(mismatch on " + mismatch + ")");
      }
    }
  }

  CampaignMergeResult out;
  out.same_campaign = same_campaign;
  std::map<std::string, chipmunk::BugReport> unique;
  std::vector<store::TimelinePoint> all_points;
  std::set<uint32_t> cov;
  std::map<uint64_t, uint64_t> index;  // hash -> version 0 (inherited)
  store::CampaignState& merged = out.state;
  uint64_t total_iterations = 0;
  for (const store::LoadedCampaign& l : loaded) {
    // This source's share of its own campaign's ordinal space: an explicit
    // lease range when present, the shard-math slice otherwise.
    const uint64_t n = std::max<uint64_t>(1, l.meta.shard_count);
    const uint64_t shard_start =
        l.meta.range_count > 0 ? l.meta.range_begin
                               : l.meta.iterations * l.meta.shard_index / n;
    total_iterations +=
        l.meta.merged ? l.meta.iterations
        : l.meta.range_count > 0
            ? l.meta.range_count
            : l.meta.iterations * (l.meta.shard_index + 1) / n - shard_start;
    store::CampaignState st = FoldCampaign(l);
    merged.committed += st.committed;
    merged.executed += st.executed;
    merged.crash_states += st.crash_states;
    merged.states_deduped += st.states_deduped;
    merged.states_pruned += st.states_pruned;
    merged.replay_failures += st.replay_failures;
    merged.replay_retries += st.replay_retries;
    merged.workloads_quarantined += st.workloads_quarantined;
    merged.states_quarantined += st.states_quarantined;
    merged.lint_findings += st.lint_findings;
    merged.hb_findings += st.hb_findings;
    merged.wall_seconds += st.wall_seconds;
    merged.cpu_seconds += st.cpu_seconds;
    for (const auto& [rule, count] : st.lint_rule_counts) {
      merged.lint_rule_counts[rule] += count;
    }
    for (const auto& [rule, count] : st.hb_rule_counts) {
      merged.hb_rule_counts[rule] += count;
    }
    for (const chipmunk::BugReport& r : st.unique_reports) {
      unique.emplace(r.Signature(), r);
    }
    for (const auto& [sig, hits] : st.report_hits) {
      merged.report_hits[sig] += hits;
    }
    for (const store::TimelinePoint& t : st.timeline) {
      all_points.push_back(t);
    }
    cov.insert(st.corpus_cov_slots.begin(), st.corpus_cov_slots.end());
    for (store::CorpusSnapshotEntry& e : st.corpus) {
      if (base.corpus_max == 0 || merged.corpus.size() < base.corpus_max) {
        merged.corpus.push_back(std::move(e));
      }
    }
    for (const auto& [hash, version] : l.index) {
      index.emplace(hash, 0);
    }
    for (const store::CommitRecord& rec : l.log) {
      if (rec.ordinal - shard_start < l.checkpoint.committed) {
        continue;
      }
      for (uint64_t h : rec.clean_hashes) {
        index.emplace(h, 0);
      }
    }
  }
  merged.corpus_cov_slots.assign(cov.begin(), cov.end());
  for (auto& [sig, r] : unique) {
    merged.unique_reports.push_back(r);
  }
  // One timeline point per surviving signature, earliest ordinal wins.
  std::sort(all_points.begin(), all_points.end(),
            [](const store::TimelinePoint& a, const store::TimelinePoint& b) {
              return a.ordinal != b.ordinal ? a.ordinal < b.ordinal
                                            : a.signature < b.signature;
            });
  std::set<std::string> seen_sigs;
  for (store::TimelinePoint& t : all_points) {
    if (seen_sigs.insert(t.signature).second) {
      merged.timeline.push_back(std::move(t));
    }
  }

  out.meta = base;
  out.meta.merged = true;
  if (!same_campaign) {
    // Cross-campaign fold: the schedule fields of any one source no longer
    // describe the whole, so iterations becomes the total ordinal count
    // actually owned by the sources, and a generator disagreement is
    // recorded as "mixed" (with the ace shape cleared — it only describes a
    // single sweep).
    out.meta.iterations = total_iterations;
    for (const store::LoadedCampaign& l : loaded) {
      if (l.meta.generator != base.generator) {
        out.meta.generator = "mixed";
        out.meta.ace_seq = 0;
        out.meta.ace_metadata = false;
        out.meta.ace_weak = false;
        break;
      }
    }
  }
  out.index.assign(index.begin(), index.end());
  return out;
}

// ---------------------------------------------------------------------------
// Ordinal scheduling
// ---------------------------------------------------------------------------

LocalScheduler::LocalScheduler(uint64_t total, uint64_t lease_size)
    : total_(total),
      lease_size_(std::max<uint64_t>(
          1, lease_size == 0 ? total : lease_size)) {}

std::optional<OrdinalLease> LocalScheduler::Acquire() {
  if (next_ >= total_) {
    return std::nullopt;
  }
  OrdinalLease lease;
  lease.id = next_ / lease_size_;
  lease.epoch = 1;
  lease.begin = next_;
  lease.end = std::min(total_, next_ + lease_size_);
  next_ = lease.end;
  return lease;
}

bool LocalScheduler::Complete(const OrdinalLease& lease,
                              const LeaseProgress& progress) {
  return true;
}

}  // namespace fuzz
