#include "src/fuzz/ace_engine.h"

#include <utility>

namespace fuzz {

CampaignOptions AceEngine::Clamp(CampaignOptions options,
                                 const workload::AceOptions& ace) {
  const uint64_t total = workload::AceEnumerator(ace).count();
  if (options.iterations == 0 || options.iterations > total) {
    options.iterations = total;
  }
  return options;
}

AceEngine::AceEngine(chipmunk::FsConfig config, CampaignOptions options,
                     const workload::AceOptions& ace)
    : CampaignDriver(std::move(config), Clamp(std::move(options), ace)),
      ace_(ace),
      enumerator_(ace) {}

workload::Workload AceEngine::BuildWorkload(uint64_t ordinal,
                                            uint64_t /*pin*/) {
  return enumerator_.At(ordinal);
}

void AceEngine::FillGeneratorMeta(store::CampaignMeta& meta) const {
  meta.generator = "ace";
  meta.ace_seq = static_cast<uint64_t>(ace_.seq);
  meta.ace_metadata = ace_.metadata_only;
  meta.ace_weak = ace_.weak_mode;
  // The sweep ignores the fuzz-only knobs (and draws no random numbers), so
  // they must not make otherwise-identical ace campaigns look different.
  meta.seed = 0;
  meta.max_ops = 0;
  meta.corpus_max = 0;
}

}  // namespace fuzz
