#include "src/fuzz/triage.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace fuzz {

std::vector<std::string> TokenizeReport(const chipmunk::BugReport& report) {
  std::string text = std::string(chipmunk::CheckKindName(report.kind)) + " " +
                     report.syscall + " " + report.detail;
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) {
    tokens.push_back(cur);
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

double TokenSimilarity(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  std::set<std::string> sa(a.begin(), a.end());
  size_t common = 0;
  for (const std::string& t : b) {
    common += sa.count(t);
  }
  size_t total = sa.size() + b.size() - common;
  return total == 0 ? 1.0 : static_cast<double>(common) / total;
}

std::vector<ReportCluster> ClusterReports(
    const std::vector<chipmunk::BugReport>& reports, double threshold) {
  std::vector<ReportCluster> clusters;
  std::vector<std::vector<std::string>> rep_tokens;
  for (const chipmunk::BugReport& report : reports) {
    std::vector<std::string> tokens = TokenizeReport(report);
    bool placed = false;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (TokenSimilarity(rep_tokens[i], tokens) >= threshold) {
        clusters[i].members.push_back(report);
        placed = true;
        break;
      }
    }
    if (!placed) {
      ReportCluster cluster;
      cluster.representative = report;
      cluster.members.push_back(report);
      clusters.push_back(std::move(cluster));
      rep_tokens.push_back(std::move(tokens));
    }
  }
  return clusters;
}

}  // namespace fuzz
