// Report triage (§3.4.2): like the paper's extension to Syzkaller, bug
// reports are clustered by lexical similarity so that the many crash states
// triggering one underlying bug collapse into a single cluster for the user.
#ifndef CHIPMUNK_FUZZ_TRIAGE_H_
#define CHIPMUNK_FUZZ_TRIAGE_H_

#include <string>
#include <vector>

#include "src/core/report.h"

namespace fuzz {

struct ReportCluster {
  chipmunk::BugReport representative;
  std::vector<chipmunk::BugReport> members;
};

// Lowercased alphanumeric tokens of a report's salient text, with numbers
// dropped (offsets and sizes vary across instances of the same bug).
std::vector<std::string> TokenizeReport(const chipmunk::BugReport& report);

// Jaccard similarity of two token sets, in [0, 1].
double TokenSimilarity(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

// Greedy clustering: each report joins the first cluster whose
// representative is at least `threshold` similar, else starts a new one.
std::vector<ReportCluster> ClusterReports(
    const std::vector<chipmunk::BugReport>& reports, double threshold = 0.6);

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_TRIAGE_H_
