// Pipelined gray-box workload fuzzer (§3.4.2), modeled on the paper's
// Syzkaller integration:
//   - workloads are random syscall sequences built from templates with
//     qualified argument types (descriptors from the live slot pool, paths
//     from a small hierarchy, arbitrary — including unaligned — sizes);
//   - each workload runs through the full Chipmunk harness (the custom
//     executor), with crash points between and inside syscalls and a
//     two-write replay cap, exactly like the paper's fuzzing setup (§4.2);
//   - coverage is collected from the file-system code (CHIPMUNK_COV sites),
//     both while running the workload and while recovering crash states;
//     workloads that reach new coverage join the corpus and are mutated;
//   - reports are deduplicated by signature and clustered by lexical
//     similarity (triage.h).
//
// The pipeline, commit barrier, persistence, resume, warm start, and
// sharding all live in the CampaignDriver base (campaign_driver.h); this
// file adds the fuzzer's workload stream and its coverage-guided corpus.
// The fuzzer-specific determinism ingredient: every random decision for
// workload N draws from a private RNG stream derived as
// Rng::Stream(seed, N) — no stream is shared across workloads, so execution
// order cannot leak into generation.
//
// The driver also supplies the service behaviors the coordinator builds on:
// a graceful stop (SIGTERM/SIGINT in the CLI) halts generation, finishes
// in-flight ordinals to the commit barrier, writes a final checkpoint, and
// leaves the store resumable; and the ordinal range can come from an
// OrdinalScheduler (campaign_driver.h) instead of a fixed shard, which is
// how `chipmunk coordinate` partitions a fuzz campaign into revocable
// leases (src/coord/).
#ifndef CHIPMUNK_FUZZ_FUZZ_ENGINE_H_
#define CHIPMUNK_FUZZ_FUZZ_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/coverage.h"
#include "src/common/rng.h"
#include "src/fuzz/campaign_driver.h"

namespace fuzz {

// The fuzzer predates the shared campaign driver; its option/result names
// remain the public spelling used by the CLI, tests, and benches.
using FuzzOptions = CampaignOptions;
using FuzzResult = CampaignResult;

// A corpus entry remembers how statically dirty its trace was; the counts
// weight corpus selection.
struct CorpusEntry {
  workload::Workload w;
  size_t lint_findings = 0;
  size_t hb_findings = 0;
};

// Builds one workload from one RNG stream. Constructed per workload ordinal
// so that no generation state (path locality, draw position) leaks between
// workloads; all inputs are the stream, the options, and an immutable corpus
// snapshot.
class WorkloadGenerator {
 public:
  // `options` and `rng` must outlive the generator. `weak_fs` marks targets
  // without synchronous guarantees, which need the trailing sync.
  WorkloadGenerator(const FuzzOptions* options, bool weak_fs,
                    common::Rng* rng);

  // The per-ordinal entry point: decides generate-vs-mutate against the
  // corpus snapshot and names the workload "fuzz-<ordinal>".
  workload::Workload Build(uint64_t ordinal,
                           const std::vector<CorpusEntry>& corpus);

  // A fresh random workload: 2..max_body_ops() template ops plus the
  // weak-FS trailing sync.
  workload::Workload Generate();

  // A mutated copy of `base` (insert/replace/delete/splice-from-corpus).
  // The body cap is enforced on the finalized workload: at most
  // max_body_ops() body ops plus the trailing sync, same as Generate().
  workload::Workload Mutate(const workload::Workload& base,
                            const std::vector<CorpusEntry>& corpus);

  // Selection weighted by static dirtiness: each entry's weight is
  // 1 + its lint-finding count + its hb-finding count. `corpus` must be
  // non-empty.
  static const workload::Workload& PickCorpus(
      const std::vector<CorpusEntry>& corpus, common::Rng& rng);

  // FuzzOptions::max_ops clamped to the smallest generatable workload.
  size_t max_body_ops() const;

  // How many leading ops of `other` the splice mutation may import: all of
  // them, except that a weak-FS trailing sync stays behind — splicing it
  // mid-sequence would inflate mutated workloads with duplicate syncs on
  // top of the one Finalize re-appends.
  size_t SpliceLimit(const workload::Workload& other) const;

 private:
  std::string PickPath();
  workload::Op RandomOp();
  void Finalize(workload::Workload& w);

  const FuzzOptions* options_;
  bool weak_fs_;
  common::Rng* rng_;
  std::vector<std::string> last_paths_;
};

// The coverage-guided generator on top of the shared campaign driver:
// workload N is generated (or mutated from the corpus snapshot at its pin)
// by a per-ordinal RNG stream; workloads reaching new file-system coverage
// join the corpus at the commit barrier.
class FuzzEngine : public CampaignDriver {
 public:
  FuzzEngine(chipmunk::FsConfig config, FuzzOptions options);

 protected:
  // Builds the workload for `ordinal` against the corpus snapshot after
  // `pin` commits: the live corpus when pin == committed(), the checkpointed
  // corpus history when a resume re-builds in-flight ordinals whose pins
  // predate the recovered state.
  workload::Workload BuildWorkload(uint64_t ordinal, uint64_t pin) override;
  void FillGeneratorMeta(store::CampaignMeta& meta) const override;
  // Coverage feedback: admit workloads reaching coverage the corpus has not
  // seen (including coverage reached during crash-state recovery).
  bool DecideAdmission(const Pending& p) const override;
  void ApplyAdmitted(const store::CommitRecord& rec,
                     const workload::Workload* live_w) override;
  void SnapshotExtra(store::CampaignState& st) const override;
  common::Status RestoreExtra(const store::CampaignState& st) override;
  void OnCommitted() override;
  void FinalizeExtra() override;

 private:
  common::Rng commit_rng_;  // corpus-eviction stream, driver only
  std::vector<CorpusEntry> corpus_;
  common::CoverageMap corpus_cov_;
  uint64_t eviction_draws_ = 0;  // Next() calls consumed by corpus eviction
  // Corpus snapshots after recent commits, for resume-time pin lookups.
  std::map<uint64_t, std::vector<CorpusEntry>> corpus_history_;
};

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_FUZZ_ENGINE_H_
