// Pipelined gray-box workload fuzzer (§3.4.2), modeled on the paper's
// Syzkaller integration:
//   - workloads are random syscall sequences built from templates with
//     qualified argument types (descriptors from the live slot pool, paths
//     from a small hierarchy, arbitrary — including unaligned — sizes);
//   - each workload runs through the full Chipmunk harness (the custom
//     executor), with crash points between and inside syscalls and a
//     two-write replay cap, exactly like the paper's fuzzing setup (§4.2);
//   - coverage is collected from the file-system code (CHIPMUNK_COV sites),
//     both while running the workload and while recovering crash states;
//     workloads that reach new coverage join the corpus and are mutated;
//   - reports are deduplicated by signature and clustered by lexical
//     similarity (triage.h).
//
// The engine pipelines record → oracle → replay across workloads: the driver
// thread generates workloads in ordinal order and commits their results in
// ordinal order, while a bounded pool of `jobs` workers runs the expensive
// Harness::TestWorkload stage in between. Determinism is by construction:
//   - every random decision for workload N draws from a private RNG stream
//     derived as Rng::Stream(seed, N) — no stream is shared across
//     workloads, so execution order cannot leak into generation;
//   - workload N is generated against a pinned corpus snapshot: the corpus
//     after exactly max(0, N - lookahead + 1) commits. The lookahead bounds
//     the in-flight window, so the snapshot is a function of N alone;
//   - corpus admission, eviction, report dedup, and timeline entries happen
//     only at the ordinal-order commit barrier on the driver thread,
//     mirroring the replay engine's deterministic merge.
// Together these make FuzzResult identical for every `jobs` value (only the
// wall/CPU time fields vary run to run).
#ifndef CHIPMUNK_FUZZ_FUZZ_ENGINE_H_
#define CHIPMUNK_FUZZ_FUZZ_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/coverage.h"
#include "src/common/rng.h"
#include "src/core/harness.h"
#include "src/fuzz/triage.h"
#include "src/store/campaign_store.h"

namespace fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  // Cap on syscalls per workload body, for generated and mutated workloads
  // alike (clamped to 2, the smallest useful workload; the CLI additionally
  // rejects 0). Weak-guarantee targets get one extra trailing sync on top
  // (§3.4.2), so the on-wire size is at most max_ops + 1.
  size_t max_ops = 10;
  size_t iterations = 500;    // workloads per Run()
  size_t corpus_max = 128;
  // Worker threads for the Run() pipeline; 0 = one per hardware thread.
  // FuzzResult is identical for every value.
  size_t jobs = 1;
  // Maximum workloads in flight: workload N is generated against the corpus
  // committed through workload N - lookahead. Part of the deterministic
  // schedule — results depend on this value, never on `jobs` — so it is a
  // fixed default rather than something derived from the worker count.
  size_t lookahead = 16;
  chipmunk::HarnessOptions harness{.replay_cap = 2};  // §4.2: cap of two
  // Run the static persistence linter on every executed workload's trace.
  // Lint findings are a side channel: they never enter unique_reports (the
  // crash-consistency verdict), but they are counted, summarized per rule,
  // and used to weight corpus selection — a statically-dirty workload is
  // closer to a persistence bug and gets mutated more often.
  bool lint = true;
  // Path of the mined invariant set driving harness.invariants (the pointer
  // itself lives in harness). Recorded in the campaign meta: a different set
  // steers targeting and invariant findings differently, so campaigns with
  // different sets are incompatible.
  std::string invariants_path;
  // Persistent campaign store (see src/store/): when non-empty, every
  // committed ordinal is appended to <campaign_dir>/log.bin at the commit
  // barrier, crash states proven clean feed the cross-run equivalence
  // index, and periodic checkpoints compact the log. Empty = ephemeral run,
  // byte-identical to the pre-store engine.
  std::string campaign_dir;
  // Resume an interrupted campaign: replay checkpoint + log, then continue
  // at the next ordinal. Without it, an existing *compatible* campaign in
  // campaign_dir warm-starts a fresh run: its equivalence index skips
  // already-verified crash states and its recorded corpus admissions are
  // replayed verbatim (dedup-skipped states contribute no coverage, so the
  // admission decisions must come from the record to keep corpus evolution
  // — and therefore reports — identical).
  bool resume = false;
  // Shard `shard_index` of `shard_count`: this run owns the contiguous
  // global ordinal range [iterations*i/n, iterations*(i+1)/n). Shard
  // stores are independent and merged offline by `chipmunk campaign merge`.
  size_t shard_index = 0;
  size_t shard_count = 1;
  // Commits between compacting checkpoints (0 = only the final one).
  size_t checkpoint_interval = 64;
  // Write the final compacting checkpoint when Run() finishes. Always on in
  // real campaigns; tests disable it to leave the post-checkpoint log tail
  // in place and pin the log-replay recovery path.
  bool final_checkpoint = true;
};

struct TimelineEntry {
  uint64_t ordinal = 0;    // workload ordinal whose commit surfaced the report
  double wall_seconds = 0;  // cumulative wall-clock fuzzing time at discovery
  // Cumulative fuzzing CPU time at discovery, aggregated across all worker
  // threads (fuzz pipeline workers and replay workers alike, via the process
  // CPU clock). Unlike wall time this stays comparable across --fuzz-jobs
  // and --jobs values.
  double cpu_seconds = 0;
  std::string signature;   // report signature discovered
};

struct FuzzResult {
  size_t executed = 0;
  size_t corpus_size = 0;
  size_t coverage_points = 0;
  size_t crash_states = 0;
  // Graceful degradation: a workload whose replay dies (throws, loops past
  // the sandbox budget, or errors out) is retried once at jobs=1; a second
  // failure quarantines the workload, commits a kRecoveryFailure report, and
  // the pipeline continues. All three counters are deterministic for every
  // jobs value.
  size_t replay_failures = 0;       // failed replay attempts (incl. retries)
  size_t replay_retries = 0;        // retries performed at jobs=1
  size_t workloads_quarantined = 0; // workloads that failed twice
  size_t states_quarantined = 0;    // crash-state quarantine entries written
  // Crash states skipped because the campaign store's equivalence index had
  // already proven an identical state clean (within-run or cross-run).
  // Included in crash_states. Always 0 without a campaign store.
  size_t states_deduped = 0;
  // Crash states skipped as non-representative members of a page-signature
  // class (HarnessOptions::representative). Included in crash_states.
  // Always 0 in exhaustive (default) mode.
  size_t states_pruned = 0;
  size_t lint_findings = 0;  // total across executed workloads
  // Happens-before analyzer findings (durability races, commit inversions,
  // invariant violations) across executed workloads. Like lint findings they
  // are a side channel: never in unique_reports, but counted, summarized per
  // rule, and folded into corpus selection weight.
  size_t hb_findings = 0;
  double wall_seconds = 0;   // wall-clock time spent fuzzing
  double cpu_seconds = 0;    // aggregated CPU time across all worker threads
  std::map<std::string, size_t> lint_rule_counts;  // rule id -> findings
  std::map<std::string, size_t> hb_rule_counts;    // rule id -> hb findings
  std::vector<chipmunk::BugReport> unique_reports;
  std::vector<TimelineEntry> timeline;
  std::vector<ReportCluster> clusters;
};

// A corpus entry remembers how statically dirty its trace was; the counts
// weight corpus selection.
struct CorpusEntry {
  workload::Workload w;
  size_t lint_findings = 0;
  size_t hb_findings = 0;
};

// Builds one workload from one RNG stream. Constructed per workload ordinal
// so that no generation state (path locality, draw position) leaks between
// workloads; all inputs are the stream, the options, and an immutable corpus
// snapshot.
class WorkloadGenerator {
 public:
  // `options` and `rng` must outlive the generator. `weak_fs` marks targets
  // without synchronous guarantees, which need the trailing sync.
  WorkloadGenerator(const FuzzOptions* options, bool weak_fs,
                    common::Rng* rng);

  // The per-ordinal entry point: decides generate-vs-mutate against the
  // corpus snapshot and names the workload "fuzz-<ordinal>".
  workload::Workload Build(uint64_t ordinal,
                           const std::vector<CorpusEntry>& corpus);

  // A fresh random workload: 2..max_body_ops() template ops plus the
  // weak-FS trailing sync.
  workload::Workload Generate();

  // A mutated copy of `base` (insert/replace/delete/splice-from-corpus).
  // The body cap is enforced on the finalized workload: at most
  // max_body_ops() body ops plus the trailing sync, same as Generate().
  workload::Workload Mutate(const workload::Workload& base,
                            const std::vector<CorpusEntry>& corpus);

  // Selection weighted by static dirtiness: each entry's weight is
  // 1 + its lint-finding count + its hb-finding count. `corpus` must be
  // non-empty.
  static const workload::Workload& PickCorpus(
      const std::vector<CorpusEntry>& corpus, common::Rng& rng);

  // FuzzOptions::max_ops clamped to the smallest generatable workload.
  size_t max_body_ops() const;

  // How many leading ops of `other` the splice mutation may import: all of
  // them, except that a weak-FS trailing sync stays behind — splicing it
  // mid-sequence would inflate mutated workloads with duplicate syncs on
  // top of the one Finalize re-appends.
  size_t SpliceLimit(const workload::Workload& other) const;

 private:
  std::string PickPath();
  workload::Op RandomOp();
  void Finalize(workload::Workload& w);

  const FuzzOptions* options_;
  bool weak_fs_;
  common::Rng* rng_;
  std::vector<std::string> last_paths_;
};

class FuzzEngine {
 public:
  FuzzEngine(chipmunk::FsConfig config, FuzzOptions options);

  // Executes one workload (fresh or mutated from the corpus) inline and
  // commits it immediately — the serial loop, with no generation lookahead.
  // Returns the number of previously-unseen unique reports it produced.
  size_t Step();

  // Runs options.iterations workloads through the pipelined schedule and
  // returns the accumulated result. The deterministic fields of the result
  // depend only on (seed, iterations, lookahead, corpus state) — not on
  // jobs or thread scheduling.
  FuzzResult Run();

  // Opens the campaign store named by options.campaign_dir; a no-op when it
  // is empty. Must be called before Step()/Run(). Three paths:
  //   - fresh directory: creates a new store;
  //   - options.resume: recovers checkpoint + log, replays the log through
  //     the same commit path as a live run, and positions the schedule at
  //     the next uncommitted ordinal;
  //   - existing compatible campaign without resume: warm rerun — inherits
  //     the crash-state equivalence index and the recorded admission
  //     decisions, then starts a fresh log.
  // An existing *incompatible* campaign is an error, never overwritten.
  common::Status OpenCampaign();
  bool campaign_open() const { return store_ != nullptr; }
  // Local ordinals committed so far (nonzero only after a resume).
  uint64_t committed() const { return committed_; }

  const FuzzResult& result() const { return result_; }
  // Aggregated CPU seconds across all worker threads (process CPU clock).
  double cpu_seconds() const { return cpu_seconds_; }
  double wall_seconds() const { return wall_seconds_; }
  bool weak_fs() const { return weak_fs_; }

 private:
  // One workload moving through the pipeline: built by the driver, executed
  // by a worker, committed by the driver.
  struct Pending {
    uint64_t ordinal = 0;
    // Commit count this workload was generated against — the deterministic
    // snapshot pin, and the version cap for its equivalence-index view.
    uint64_t pin = 0;
    workload::Workload w;
    // Version-capped dedup view handed to this workload's harness; engaged
    // only when a campaign store is open.
    std::optional<store::StateIndexSnapshot> snapshot;
    std::optional<common::StatusOr<chipmunk::RunStats>> stats;
    common::CoverageMap cov;
    // Graceful degradation: the first attempt's error when the replay died
    // and was retried at jobs=1 (empty = first attempt succeeded).
    std::string first_error;
  };

  // Builds the workload for `ordinal` against the corpus snapshot after
  // `pin` commits: the live corpus when pin == committed(), the checkpointed
  // corpus history when a resume re-builds in-flight ordinals whose pins
  // predate the recovered state.
  workload::Workload BuildWorkload(uint64_t ordinal, uint64_t pin);
  // Runs the harness with a private coverage map. Thread-safe: touches only
  // `p` and the const harness/config.
  void Execute(Pending& p) const;
  // Folds one result into the corpus / dedup map / timeline and appends it
  // to the campaign log. Driver thread only, strictly in ordinal order.
  // Returns the fresh-report count.
  size_t Commit(Pending& p);
  // The serializable image of a commit: Commit = MakeRecord + quarantine
  // side effect + ApplyRecord + AppendCommit, and a resume replays the
  // logged records through the same ApplyRecord — one code path decides
  // corpus evolution for live and replayed commits alike.
  store::CommitRecord MakeRecord(const Pending& p) const;
  size_t ApplyRecord(const store::CommitRecord& rec,
                     const workload::Workload* live_w);
  store::CampaignState SnapshotState(double wall, double cpu) const;
  common::Status CheckpointNow(double wall, double cpu);
  common::Status RestoreFrom(const store::LoadedCampaign& loaded);
  void RunPool(uint64_t begin, uint64_t end, size_t jobs, uint64_t lookahead);
  void RunSerial(uint64_t begin, uint64_t end, uint64_t lookahead);
  void FinalizeResult();

  void BeginClock();
  void EndClock();
  double WallNow() const;
  double CpuNow() const;

  chipmunk::FsConfig config_;
  FuzzOptions options_;
  chipmunk::Harness harness_;
  bool weak_fs_ = false;

  common::Rng commit_rng_;  // corpus-eviction stream, driver only
  std::vector<CorpusEntry> corpus_;
  common::CoverageMap corpus_cov_;
  std::map<std::string, chipmunk::BugReport> unique_;
  FuzzResult result_;
  uint64_t next_ordinal_ = 0;

  // Campaign state (inert without OpenCampaign). `committed_` counts local
  // ordinals applied; the global ordinal space is offset by shard_start_.
  std::unique_ptr<store::CampaignStore> store_;
  store::StateIndex state_index_;
  bool store_writes_ok_ = true;  // cleared after the first store I/O error
  uint64_t committed_ = 0;
  uint64_t eviction_draws_ = 0;  // Next() calls consumed by corpus eviction
  uint64_t shard_start_ = 0;       // first global ordinal of this shard
  uint64_t shard_local_count_ = 0; // ordinals owned by this shard
  std::vector<uint8_t> admitted_;       // per-local-ordinal admissions
  std::vector<uint8_t> warm_admitted_;  // forced admissions (warm rerun)
  // Corpus snapshots after recent commits, for resume-time pin lookups.
  std::map<uint64_t, std::vector<CorpusEntry>> corpus_history_;

  double wall_seconds_ = 0;
  double cpu_seconds_ = 0;
  std::chrono::steady_clock::time_point run_wall_start_;
  double run_cpu_start_ = 0;
};

// Folds a loaded store (checkpoint + valid log suffix) into the final
// campaign state, without an engine: counters, admissions, deduplicated
// reports, and timeline are exact. Corpus *contents* past the checkpoint are
// approximate once eviction has begun (the eviction slot draws from the live
// RNG stream), but the corpus size and coverage-slot union are exact — this
// is the read side used by `campaign stats`, `campaign merge`, and warm
// reruns (which need only the admission array and the clean-state hashes).
store::CampaignState FoldCampaign(const store::LoadedCampaign& loaded);

}  // namespace fuzz

#endif  // CHIPMUNK_FUZZ_FUZZ_ENGINE_H_
