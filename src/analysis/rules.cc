#include "src/analysis/rules.h"

namespace analysis {

const std::vector<RuleInfo>& AllRuleInfos() {
  static const std::vector<RuleInfo> kRules = {
      {LintRule::kDurabilityHole, "durability-hole",
       "temporal store not flushed before the next fence: the store is not "
       "durable at the epoch boundary"},
      {LintRule::kRedundantFlush, "redundant-flush",
       "flush of cache lines with no unflushed temporal store: wasted clwb "
       "(including clwb after a pure non-temporal store)"},
      {LintRule::kUnfencedFlush, "unfenced-flush",
       "flush with no subsequent fence before the end of its syscall: the "
       "syscall returns with an unordered durability point"},
      {LintRule::kNoopFence, "noop-fence",
       "fence with an empty in-flight set: wasted sfence"},
      {LintRule::kTornUpdate, "torn-update",
       "logical update spans a cache-line / 8-byte atomicity boundary while "
       "in flight and can tear on a crash"},
      {LintRule::kCheckerContamination, "checker-contamination",
       "media write between checker-begin/checker-end markers: the "
       "consistency checker mutated the image it is judging"},
      {LintRule::kCrossSyscallRace, "cross-syscall-durability-race",
       "no byte of the write was durable when its syscall returned on a "
       "synchronous file system: the write races with every later operation"},
      {LintRule::kCommitInversion, "commit-before-payload",
       "small atomic commit write became durable strictly before a larger "
       "payload issued earlier in the same syscall: a crash can expose the "
       "commit over missing payload"},
      {LintRule::kInvariantViolation, "ordering-invariant-violation",
       "trace violates a mined persistence-ordering invariant (region A "
       "durable before region B is issued)"},
  };
  return kRules;
}

const RuleInfo& FindRule(LintRule rule) {
  for (const RuleInfo& info : AllRuleInfos()) {
    if (info.rule == rule) {
      return info;
    }
  }
  // Unreachable for valid enumerators; return the first row rather than UB.
  return AllRuleInfos().front();
}

const RuleInfo* FindRuleById(std::string_view id) {
  for (const RuleInfo& info : AllRuleInfos()) {
    if (id == info.id) {
      return &info;
    }
  }
  return nullptr;
}

}  // namespace analysis
