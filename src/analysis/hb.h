// Happens-before durability analysis over a persistence trace.
//
// The single-pass linter reasons locally (per fence window, per syscall);
// this module lifts the whole trace into an epoch-ordered durability model:
//
//   * An **epoch** is the number of fences retired so far. Fence #k closes
//     epoch k: every write that reached the media buffers before it (a
//     non-temporal store, or a temporal store whose cache line was flushed)
//     is durable once fence #k retires.
//   * A **durability interval** is one logical write's lifetime: the trace
//     index where it was issued, the flush that first carried any of its
//     bytes toward media (for temporal stores), and the epoch of the fence
//     that first made any byte of it durable. Durability is *any-byte*:
//     real file systems legitimately leave dead tail bytes of a structure
//     unflushed (e.g. the unused second cache line of a 128-byte log
//     entry), so demanding whole-interval durability would flag correct
//     code. A write none of whose bytes ever become durable has
//     durable_epoch == kNeverDurable.
//   * 8-byte-atomic temporal stores (len <= 8, not crossing an 8-byte
//     boundary) are marked atomic8 — they cannot tear, which is what makes
//     them commit-record candidates for the ordering rules.
//
// The model works on both trace shapes: with temporal logging
// (TraceLogger::set_log_temporal) temporal stores are first-class intervals
// carried by their flushes; without it, each flush op is its own interval
// (the flush is the only record of the logical update it carries).
//
// Downstream consumers: the HB lint rules and invariant mining/checking in
// invariants.h, and the replay engine's --targeted crash-state ordering.
#ifndef CHIPMUNK_ANALYSIS_HB_H_
#define CHIPMUNK_ANALYSIS_HB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/analysis/lint.h"
#include "src/pmem/trace.h"

namespace analysis {

inline constexpr uint64_t kNeverDurable = ~uint64_t{0};
inline constexpr size_t kNoOp = ~size_t{0};

struct DurabilityInterval {
  size_t op_index = 0;         // issuing trace op
  pmem::PmOpKind kind = pmem::PmOpKind::kNtStore;
  uint64_t off = 0;
  uint64_t len = 0;
  int32_t syscall_index = -1;
  uint64_t issue_epoch = 0;    // fences retired before the issue point
  // The media write op representing this interval in the replay universe:
  // the op itself for non-temporal stores and flush-backed intervals, or the
  // first post-issue flush covering any of its cache lines for temporal
  // stores (kNoOp if never flushed — such an interval never reaches media).
  size_t media_op = kNoOp;
  // Epoch of the fence that first made any byte durable (kNeverDurable if
  // no byte of the write ever becomes durable in the trace).
  uint64_t durable_epoch = kNeverDurable;
  bool atomic8 = false;        // cannot tear: len <= 8, no 8-byte crossing

  // True when any byte of this interval was durable before `b` was issued.
  bool DurableBeforeIssue(const DurabilityInterval& b) const {
    return durable_epoch != kNeverDurable && durable_epoch < b.issue_epoch;
  }
};

// One syscall's extent in the trace, recorded at its kSyscallEnd marker.
struct SyscallSpan {
  int32_t syscall_index = -1;
  size_t end_op = 0;        // trace index of the kSyscallEnd marker
  uint64_t end_epoch = 0;   // fences retired when the syscall returned
};

struct HbAnalysis {
  uint64_t epochs = 0;                       // total fences in the trace
  std::vector<size_t> fence_ops;             // trace index of fence #k
  std::vector<DurabilityInterval> intervals; // ascending by op_index
  std::vector<SyscallSpan> syscalls;         // in marker order
  bool temporal_logged = false;
};

// Builds the durability-interval model for `trace`. Ops between
// checker-begin/checker-end markers are excluded (the checker's own media
// writes are a separate defect, reported by the linter).
HbAnalysis BuildHb(const pmem::Trace& trace, const LintOptions& options = {});

// The two HB-powered lint rules the single-pass linter cannot express:
//
//   cross-syscall-durability-race (kCrossSyscallRace, error, synchronous
//     FSes only): a media write issued by syscall s has no durable byte when
//     s returns — whether it was never fenced, never flushed, or only
//     becomes durable in a later syscall, the whole-trace interval view
//     catches it (including at end of trace, where the single-pass
//     durability-hole rule never fires for want of a closing fence). One
//     finding per offending syscall.
//
//   commit-before-payload (kCommitInversion, error): within one syscall, an
//     8-byte-atomic commit write became durable at a strictly earlier epoch
//     than a larger payload write issued before it (or the payload never
//     becomes durable at all) — the commit record can be durable over
//     missing payload. One finding per commit write (its earliest
//     unordered payload). Requires at least two epochs inside the syscall,
//     so single-fence syscalls cannot fire it.
std::vector<LintFinding> HbLint(const HbAnalysis& hb,
                                const LintOptions& options = {});

}  // namespace analysis

#endif  // CHIPMUNK_ANALYSIS_HB_H_
