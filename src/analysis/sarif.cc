#include "src/analysis/sarif.h"

#include <cstdio>

namespace analysis {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToSarif(const std::vector<LintRecord>& records) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"chipmunk-lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/chipmunk\",\n"
      "          \"rules\": [\n";
  const auto& rules = AllLintRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"";
    out += LintRuleId(rules[i]);
    out += "\", \"shortDescription\": {\"text\": \"";
    out += JsonEscape(LintRuleDescription(rules[i]));
    out += "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const LintRecord& r = records[i];
    const LintFinding& f = r.finding;
    out += "        {\n          \"ruleId\": \"";
    out += LintRuleId(f.rule);
    out += "\",\n          \"level\": \"";
    out += f.severity == LintSeverity::kError ? "error" : "warning";
    out += "\",\n          \"message\": {\"text\": \"";
    out += JsonEscape(f.ToString());
    out += "\"},\n          \"locations\": [{\n";
    out += "            \"physicalLocation\": {\n";
    out += "              \"artifactLocation\": {\"uri\": \"fs/";
    out += JsonEscape(r.fs);
    out += "/";
    out += JsonEscape(r.workload);
    out += ".trace\"},\n";
    // SARIF lines are 1-based; trace ops are 0-based.
    out += "              \"region\": {\"startLine\": ";
    out += std::to_string(f.op_begin + 1);
    out += ", \"endLine\": ";
    out += std::to_string(f.op_end + 1);
    out += "}\n            }\n          }]\n        }";
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace analysis
