// SARIF 2.1.0 emitter for lint findings, so `chipmunk lint --sarif` output
// can be uploaded as a CI code-scanning artifact. One run, one result per
// finding; the "file" coordinate is the pseudo-URI fs/<fs>/<workload>.trace
// with the trace-op index as the line number.
#ifndef CHIPMUNK_ANALYSIS_SARIF_H_
#define CHIPMUNK_ANALYSIS_SARIF_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/lint.h"

namespace analysis {

// One linted (file system, workload) pair's finding.
struct LintRecord {
  std::string fs;
  std::string workload;
  LintFinding finding;
};

// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

// Renders the full SARIF 2.1.0 document (rule metadata from AllLintRules()).
std::string ToSarif(const std::vector<LintRecord>& records);

}  // namespace analysis

#endif  // CHIPMUNK_ANALYSIS_SARIF_H_
