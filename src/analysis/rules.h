// The single source of truth for analysis rule identities. Every rule the
// linter or the happens-before analyzer can emit lives in one table: enum
// value, stable kebab-case id (used in report signatures, SARIF, campaign
// rule counters, and triage clustering — it must never drift), and the
// one-line description shown in SARIF rule metadata. lint.cc, sarif.cc, and
// the analyzer all read this table; nothing else hardcodes a rule id.
#ifndef CHIPMUNK_ANALYSIS_RULES_H_
#define CHIPMUNK_ANALYSIS_RULES_H_

#include <string_view>
#include <vector>

namespace analysis {

enum class LintRule {
  // Single-pass linter rules (LintTrace).
  kDurabilityHole,
  kRedundantFlush,
  kUnfencedFlush,
  kNoopFence,
  kTornUpdate,
  kCheckerContamination,
  // Happens-before analyzer rules (HbLint / CheckInvariants).
  kCrossSyscallRace,
  kCommitInversion,
  kInvariantViolation,
};

struct RuleInfo {
  LintRule rule;
  const char* id;           // stable kebab-case id
  const char* description;  // one-line SARIF shortDescription
};

// The full rule table, in report order.
const std::vector<RuleInfo>& AllRuleInfos();

// Table row for a rule (never null — every enumerator has a row).
const RuleInfo& FindRule(LintRule rule);

// Table row by id, or nullptr if no rule has that id.
const RuleInfo* FindRuleById(std::string_view id);

}  // namespace analysis

#endif  // CHIPMUNK_ANALYSIS_RULES_H_
