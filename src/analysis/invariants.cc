#include "src/analysis/invariants.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/parse.h"

namespace analysis {

namespace {

// Trace intervals bucketed by mined region, in trace order.
std::map<uint64_t, std::vector<const DurabilityInterval*>> ByRegion(
    const HbAnalysis& hb, uint64_t granularity) {
  std::map<uint64_t, std::vector<const DurabilityInterval*>> by_region;
  for (const DurabilityInterval& iv : hb.intervals) {
    by_region[iv.off / granularity].push_back(&iv);
  }
  return by_region;
}

// Invariants bucketed by the region whose issue they constrain.
std::map<uint64_t, std::vector<const OrderingInvariant*>> ByRegionB(
    const InvariantSet& set) {
  std::map<uint64_t, std::vector<const OrderingInvariant*>> by_b;
  for (const OrderingInvariant& inv : set.invariants) {
    by_b[inv.region_b].push_back(&inv);
  }
  return by_b;
}

}  // namespace

const OrderingInvariant* InvariantSet::Find(uint64_t region_a,
                                            uint64_t region_b) const {
  auto it = std::lower_bound(
      invariants.begin(), invariants.end(),
      std::make_pair(region_a, region_b),
      [](const OrderingInvariant& inv, const std::pair<uint64_t, uint64_t>& k) {
        return std::make_pair(inv.region_a, inv.region_b) < k;
      });
  if (it != invariants.end() && it->region_a == region_a &&
      it->region_b == region_b) {
    return &*it;
  }
  return nullptr;
}

void InvariantMiner::AddTrace(const HbAnalysis& hb) {
  if (hb.intervals.size() > kMaxIntervals) {
    ++skipped_;
    return;
  }
  ++traces_;
  // Per-trace verdict for every region B the trace writes: ok[B] is the set
  // of regions A with a durable byte before EVERY B-interval's issue.
  // Candidate pair (A, B) is supported by this trace iff A ∈ ok[B] and
  // contradicted iff the trace writes both regions but A ∉ ok[B] — the
  // reversed- and never-durable-A shapes the checker must flag. A trace
  // writing only one side is neutral: regions a workload never touches say
  // nothing about its ordering discipline.
  std::map<uint64_t, std::set<uint64_t>> ok;
  for (size_t j = 0; j < hb.intervals.size(); ++j) {
    const DurabilityInterval& b = hb.intervals[j];
    const uint64_t rb = b.off / granularity_;
    std::set<uint64_t> durable;
    for (size_t i = 0; i < j; ++i) {
      const DurabilityInterval& a = hb.intervals[i];
      const uint64_t ra = a.off / granularity_;
      if (ra != rb && a.DurableBeforeIssue(b)) {
        durable.insert(ra);
      }
    }
    auto [it, fresh] = ok.try_emplace(rb, std::move(durable));
    if (!fresh) {
      std::set<uint64_t> both;
      std::set_intersection(it->second.begin(), it->second.end(),
                            durable.begin(), durable.end(),
                            std::inserter(both, both.begin()));
      it->second = std::move(both);
    }
  }
  for (const auto& [rb, ras] : ok) {
    for (const auto& a_entry : ok) {
      const uint64_t ra = a_entry.first;
      if (ra == rb) {
        continue;
      }
      ++both_[{ra, rb}];
      if (ras.count(ra) != 0) {
        ++supports_[{ra, rb}];
      }
    }
  }
}

InvariantSet InvariantMiner::Mine(std::string fs) const {
  InvariantSet set;
  set.fs = std::move(fs);
  set.granularity = granularity_;
  set.min_support = min_support_;
  set.traces = traces_;
  for (const auto& [key, supported] : supports_) {
    // Invariant iff every trace writing both regions had A durable first
    // (no contradiction) and at least min_support of them did.
    if (supported >= min_support_ && supported == both_.at(key)) {
      set.invariants.push_back(
          OrderingInvariant{key.first, key.second, supported});
    }
  }
  // std::map iteration is already (a, b)-sorted; keep the contract explicit.
  std::sort(set.invariants.begin(), set.invariants.end(),
            [](const OrderingInvariant& x, const OrderingInvariant& y) {
              return std::make_pair(x.region_a, x.region_b) <
                     std::make_pair(y.region_a, y.region_b);
            });
  return set;
}

std::vector<LintFinding> CheckInvariants(const HbAnalysis& hb,
                                         const InvariantSet& set) {
  std::vector<LintFinding> out;
  if (set.invariants.empty() ||
      hb.intervals.size() > InvariantMiner::kMaxIntervals) {
    return out;
  }
  const auto by_region = ByRegion(hb, set.granularity);
  const auto by_b = ByRegionB(set);
  std::set<std::pair<uint64_t, uint64_t>> reported;
  for (const DurabilityInterval& b : hb.intervals) {
    const auto bit = by_b.find(b.off / set.granularity);
    if (bit == by_b.end()) {
      continue;
    }
    for (const OrderingInvariant* inv : bit->second) {
      // Strict on order, neutral on absence: violated whenever this
      // B-issue had no durable region-A byte although the trace writes A —
      // whether A was written too late, in reversed order, or never made
      // durable. A trace that never touches A says nothing.
      const auto ait = by_region.find(inv->region_a);
      if (ait == by_region.end()) {
        continue;
      }
      bool satisfied = false;
      for (const DurabilityInterval* a : ait->second) {
        if (a->DurableBeforeIssue(b)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied ||
          !reported.insert({inv->region_a, inv->region_b}).second) {
        continue;
      }
      const DurabilityInterval* blame = ait->second.front();
      LintFinding f;
      f.rule = LintRule::kInvariantViolation;
      f.severity = LintSeverity::kError;
      f.op_begin = blame->op_index;
      f.op_end = b.op_index;
      f.syscall_index = b.syscall_index;
      f.byte_off = blame->off;
      f.byte_len = blame->len;
      f.detail = "region " + std::to_string(inv->region_a) +
                 " not durable before region " +
                 std::to_string(inv->region_b) +
                 " was issued (invariant support " +
                 std::to_string(inv->support) + "/" +
                 std::to_string(set.traces) + " traces)";
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::string SerializeInvariants(const InvariantSet& set) {
  std::string out = "# chipmunk-invariants v1\n";
  out += "fs " + set.fs + "\n";
  out += "granularity " + std::to_string(set.granularity) + "\n";
  out += "min-support " + std::to_string(set.min_support) + "\n";
  out += "traces " + std::to_string(set.traces) + "\n";
  out += "count " + std::to_string(set.invariants.size()) + "\n";
  for (const OrderingInvariant& inv : set.invariants) {
    out += "inv " + std::to_string(inv.region_a) + " " +
           std::to_string(inv.region_b) + " " + std::to_string(inv.support) +
           "\n";
  }
  return out;
}

common::StatusOr<InvariantSet> ParseInvariants(std::string_view text) {
  InvariantSet set;
  size_t line_no = 0;
  bool saw_header = false;
  bool saw_count = false;
  uint64_t expected = 0;
  while (!text.empty()) {
    size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{}
                                        : text.substr(nl + 1);
    ++line_no;
    if (line.empty()) {
      continue;
    }
    auto fail = [&](const std::string& what) {
      return common::Invalid("invariants line " + std::to_string(line_no) +
                             ": " + what);
    };
    if (line_no == 1) {
      if (line != "# chipmunk-invariants v1") {
        return fail("missing '# chipmunk-invariants v1' header");
      }
      saw_header = true;
      continue;
    }
    const size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view rest =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
    uint64_t num = 0;
    if (key == "fs") {
      set.fs = std::string(rest);
    } else if (key == "granularity") {
      if (!common::ParseUint64(rest, ~uint64_t{0}, &num) || num == 0) {
        return fail("bad granularity");
      }
      set.granularity = num;
    } else if (key == "min-support") {
      if (!common::ParseUint64(rest, ~uint32_t{0}, &num)) {
        return fail("bad min-support");
      }
      set.min_support = static_cast<uint32_t>(num);
    } else if (key == "traces") {
      if (!common::ParseUint64(rest, ~uint64_t{0}, &num)) {
        return fail("bad traces");
      }
      set.traces = num;
    } else if (key == "count") {
      if (!common::ParseUint64(rest, ~uint64_t{0}, &num)) {
        return fail("bad count");
      }
      expected = num;
      saw_count = true;
    } else if (key == "inv") {
      OrderingInvariant inv;
      size_t s1 = rest.find(' ');
      size_t s2 = s1 == std::string_view::npos ? std::string_view::npos
                                               : rest.find(' ', s1 + 1);
      if (s2 == std::string_view::npos ||
          !common::ParseUint64(rest.substr(0, s1), ~uint64_t{0},
                               &inv.region_a) ||
          !common::ParseUint64(rest.substr(s1 + 1, s2 - s1 - 1), ~uint64_t{0},
                               &inv.region_b) ||
          !common::ParseUint64(rest.substr(s2 + 1), ~uint32_t{0}, &num)) {
        return fail("bad inv line");
      }
      inv.support = static_cast<uint32_t>(num);
      if (!set.invariants.empty() &&
          std::make_pair(set.invariants.back().region_a,
                         set.invariants.back().region_b) >=
              std::make_pair(inv.region_a, inv.region_b)) {
        return fail("inv lines out of order");
      }
      set.invariants.push_back(inv);
    } else {
      return fail("unknown key '" + std::string(key) + "'");
    }
  }
  if (!saw_header) {
    return common::Invalid("invariants: empty input");
  }
  if (!saw_count || expected != set.invariants.size()) {
    return common::Invalid("invariants: count mismatch (header says " +
                           std::to_string(expected) + ", parsed " +
                           std::to_string(set.invariants.size()) + ")");
  }
  return set;
}

std::vector<std::pair<size_t, size_t>> SuspectPairs(const pmem::Trace& trace,
                                                    const InvariantSet* set) {
  LintOptions options;
  const HbAnalysis hb = BuildHb(trace, options);
  std::set<std::pair<size_t, size_t>> pairs;
  auto implicate = [&pairs](const DurabilityInterval& first,
                            const DurabilityInterval& outran) {
    if (first.media_op != kNoOp && outran.media_op != kNoOp) {
      pairs.emplace(first.media_op, outran.media_op);
    }
  };

  // Commit-before-payload inversions: the payload should have been durable
  // before the commit word; the exposing crash state applies the commit
  // while the payload is still in flight.
  for (const DurabilityInterval& commit : hb.intervals) {
    if (!commit.atomic8 || commit.durable_epoch == kNeverDurable ||
        commit.syscall_index < 0) {
      continue;
    }
    for (const DurabilityInterval& p : hb.intervals) {
      if (p.op_index >= commit.op_index ||
          p.syscall_index != commit.syscall_index ||
          p.len <= options.atomic_unit) {
        continue;
      }
      if (p.durable_epoch == kNeverDurable ||
          commit.durable_epoch < p.durable_epoch) {
        implicate(p, commit);
        break;
      }
    }
  }

  // Mined-invariant violations: region A should have been durable before
  // region B was issued. Strict like CheckInvariants — a reversed-order A
  // (issued after B) is exactly the late write whose in-flight state we
  // want mounted; an A the trace never writes has nothing to replay.
  if (set != nullptr && !set->invariants.empty() &&
      hb.intervals.size() <= InvariantMiner::kMaxIntervals) {
    const auto by_region = ByRegion(hb, set->granularity);
    const auto by_b = ByRegionB(*set);
    for (const DurabilityInterval& b : hb.intervals) {
      const auto bit = by_b.find(b.off / set->granularity);
      if (bit == by_b.end()) {
        continue;
      }
      for (const OrderingInvariant* inv : bit->second) {
        const auto ait = by_region.find(inv->region_a);
        if (ait == by_region.end()) {
          continue;
        }
        bool satisfied = false;
        for (const DurabilityInterval* a : ait->second) {
          if (a->DurableBeforeIssue(b)) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) {
          continue;
        }
        for (const DurabilityInterval* a : ait->second) {
          implicate(*a, b);
        }
      }
    }
  }
  return std::vector<std::pair<size_t, size_t>>(pairs.begin(), pairs.end());
}

}  // namespace analysis
