// WITCHER-style likely persistence-ordering invariants.
//
// An invariant is "region A has a durable byte before region B is issued",
// where a region is a cache-line-granularity media address (interval start
// offset / granularity). Mining runs over a corpus of traces from a
// known-good (bug-free) configuration: a candidate pair is *supported* by a
// trace when some A byte was durable before EVERY B-interval's issue epoch,
// and *contradicted* by any trace that writes both regions otherwise —
// including traces where A is written too late, in reversed order, or
// never made durable. Traces writing only one region are neutral. Pairs
// supported by at least min_support traces and contradicted by none become
// invariants — so checking the mining corpus against its own invariant set
// is clean by construction, while a checked trace that reorders the A
// write or fails to persist it is flagged.
//
// Checking a new trace flags every invariant whose ordering is violated as
// an ordering-invariant-violation finding; the replay engine's --targeted
// mode uses the implicated media ops to mount the crash states most likely
// to expose the violation first (see SuspectPairs).
#ifndef CHIPMUNK_ANALYSIS_INVARIANTS_H_
#define CHIPMUNK_ANALYSIS_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/analysis/hb.h"
#include "src/common/status.h"

namespace analysis {

struct OrderingInvariant {
  uint64_t region_a = 0;  // durable first
  uint64_t region_b = 0;  // issued after A is durable
  uint32_t support = 0;   // traces that supported the pair while mining
};

struct InvariantSet {
  std::string fs;              // configuration the corpus was recorded on
  uint64_t granularity = 64;   // region size in bytes
  uint32_t min_support = 1;
  uint64_t traces = 0;         // corpus size
  // Sorted ascending by (region_a, region_b).
  std::vector<OrderingInvariant> invariants;

  const OrderingInvariant* Find(uint64_t region_a, uint64_t region_b) const;
};

// Accumulates pair verdicts across a corpus of traces, then mines the
// invariant set. Traces with more than kMaxIntervals intervals are skipped
// (pair enumeration is quadratic); skipped() reports how many.
class InvariantMiner {
 public:
  static constexpr size_t kMaxIntervals = 2048;

  explicit InvariantMiner(uint64_t granularity = 64, uint32_t min_support = 1)
      : granularity_(granularity), min_support_(min_support) {}

  void AddTrace(const HbAnalysis& hb);
  InvariantSet Mine(std::string fs) const;

  uint64_t traces() const { return traces_; }
  uint64_t skipped() const { return skipped_; }

 private:
  uint64_t granularity_;
  uint32_t min_support_;
  uint64_t traces_ = 0;
  uint64_t skipped_ = 0;
  // supports_[{A, B}]: traces where some A byte was durable before every
  // B-interval's issue. both_[{A, B}]: traces writing both regions. A pair
  // is an invariant iff the two counts agree (no both-writing trace had A
  // late, reversed, or never durable) and meet min_support.
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> supports_;
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> both_;
};

// Flags every invariant of `set` violated by `hb`: a B-interval issued
// with no durable region-A byte although the trace writes region A —
// whether A came too late, in reversed order, or never became durable.
// One finding per violated invariant (its first violating occurrence), in
// trace order.
std::vector<LintFinding> CheckInvariants(const HbAnalysis& hb,
                                         const InvariantSet& set);

// Text round-trip ("# chipmunk-invariants v1" header + one "inv A B
// support" line per invariant). Parse rejects malformed input.
std::string SerializeInvariants(const InvariantSet& set);
common::StatusOr<InvariantSet> ParseInvariants(std::string_view text);

// Directed media-write pairs implicated in the trace's ordering findings —
// the replay engine's --targeted priority relation. A pair (first, outran)
// of trace indices means a finding claims `first` should have had a durable
// byte before `outran` was issued, so the crash state that applies `outran`
// while `first` is still in flight is exactly the state that exposes the
// violation. Commit-before-payload inversions contribute (payload, commit);
// violations of `set` (when non-null) contribute (A, B). Both ends must
// have reached media — an interval with no media op cannot be replayed.
// Cross-syscall races contribute nothing: their exposing state is the
// durable prefix itself, which every fence window already visits first.
// Sorted ascending, unique.
std::vector<std::pair<size_t, size_t>> SuspectPairs(const pmem::Trace& trace,
                                                    const InvariantSet* set);

}  // namespace analysis

#endif  // CHIPMUNK_ANALYSIS_INVARIANTS_H_
