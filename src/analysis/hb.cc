#include "src/analysis/hb.h"

#include <string>

namespace analysis {

using pmem::MarkerKind;
using pmem::PmOp;
using pmem::PmOpKind;

namespace {

bool CrossesUnit(uint64_t off, uint64_t len, uint64_t unit) {
  return len > 0 && off / unit != (off + len - 1) / unit;
}

bool Atomic8(const PmOp& op, uint64_t atomic_unit) {
  const uint64_t len = op.data.size();
  return len > 0 && len <= atomic_unit && !CrossesUnit(op.off, len, atomic_unit);
}

bool LinesOverlap(uint64_t a_off, uint64_t a_len, uint64_t b_off,
                  uint64_t b_len, uint64_t line) {
  if (a_len == 0 || b_len == 0) {
    return false;
  }
  const uint64_t a_first = a_off / line;
  const uint64_t a_last = (a_off + a_len - 1) / line;
  const uint64_t b_first = b_off / line;
  const uint64_t b_last = (b_off + b_len - 1) / line;
  return a_first <= b_last && b_first <= a_last;
}

}  // namespace

HbAnalysis BuildHb(const pmem::Trace& trace, const LintOptions& options) {
  HbAnalysis hb;
  for (const PmOp& op : trace) {
    if (op.kind == PmOpKind::kStore) {
      hb.temporal_logged = true;
      break;
    }
  }

  uint64_t epoch = 0;
  bool in_checker = false;
  // Interval indices that have reached the media buffers (non-temporal, or
  // temporal with a post-issue flush) and await the next fence.
  std::vector<size_t> awaiting_fence;
  // Temporal intervals not yet carried by any flush.
  std::vector<size_t> pending_temporal;

  for (size_t t = 0; t < trace.size(); ++t) {
    const PmOp& op = trace[t];
    if (op.kind == PmOpKind::kMarker) {
      if (op.marker == MarkerKind::kCheckerBegin) {
        in_checker = true;
      } else if (op.marker == MarkerKind::kCheckerEnd) {
        in_checker = false;
      } else if (op.marker == MarkerKind::kSyscallEnd) {
        hb.syscalls.push_back(SyscallSpan{op.syscall_index, t, epoch});
      }
      continue;
    }
    if (in_checker) {
      continue;  // checker contamination is the linter's finding, not ours
    }
    switch (op.kind) {
      case PmOpKind::kStore: {
        DurabilityInterval iv;
        iv.op_index = t;
        iv.kind = op.kind;
        iv.off = op.off;
        iv.len = op.data.size();
        iv.syscall_index = op.syscall_index;
        iv.issue_epoch = epoch;
        iv.atomic8 = Atomic8(op, options.atomic_unit);
        pending_temporal.push_back(hb.intervals.size());
        hb.intervals.push_back(iv);
        break;
      }
      case PmOpKind::kNtStore:
      case PmOpKind::kNtSet: {
        DurabilityInterval iv;
        iv.op_index = t;
        iv.kind = op.kind;
        iv.off = op.off;
        iv.len = op.data.size();
        iv.syscall_index = op.syscall_index;
        iv.issue_epoch = epoch;
        iv.media_op = t;
        iv.atomic8 =
            op.kind == PmOpKind::kNtStore && Atomic8(op, options.atomic_unit);
        awaiting_fence.push_back(hb.intervals.size());
        hb.intervals.push_back(iv);
        break;
      }
      case PmOpKind::kFlush: {
        if (hb.temporal_logged) {
          // The flush carries every pending temporal store whose cache lines
          // it touches toward media (any-byte durability: the first covering
          // flush is the interval's media representative).
          for (size_t i = 0; i < pending_temporal.size();) {
            DurabilityInterval& iv = hb.intervals[pending_temporal[i]];
            if (LinesOverlap(iv.off, iv.len, op.off, op.data.size(),
                             options.cache_line)) {
              iv.media_op = t;
              awaiting_fence.push_back(pending_temporal[i]);
              pending_temporal.erase(pending_temporal.begin() + i);
            } else {
              ++i;
            }
          }
        } else {
          // Without temporal logging the flush is the only record of the
          // logical update it carries — it becomes its own interval.
          DurabilityInterval iv;
          iv.op_index = t;
          iv.kind = op.kind;
          iv.off = op.off;
          iv.len = op.data.size();
          iv.syscall_index = op.syscall_index;
          iv.issue_epoch = epoch;
          iv.media_op = t;
          iv.atomic8 = Atomic8(op, options.atomic_unit);
          awaiting_fence.push_back(hb.intervals.size());
          hb.intervals.push_back(iv);
        }
        break;
      }
      case PmOpKind::kFence: {
        for (size_t idx : awaiting_fence) {
          hb.intervals[idx].durable_epoch = epoch;
        }
        awaiting_fence.clear();
        hb.fence_ops.push_back(t);
        ++epoch;
        break;
      }
      case PmOpKind::kMarker:
        break;  // handled above
    }
  }
  hb.epochs = epoch;
  return hb;
}

std::vector<LintFinding> HbLint(const HbAnalysis& hb,
                                const LintOptions& options) {
  std::vector<LintFinding> out;
  auto emit = [&out](LintRule rule, size_t op_begin, size_t op_end,
                     int32_t syscall, uint64_t off, uint64_t len,
                     std::string detail) {
    LintFinding f;
    f.rule = rule;
    f.severity = LintSeverity::kError;
    f.op_begin = op_begin;
    f.op_end = op_end;
    f.syscall_index = syscall;
    f.byte_off = off;
    f.byte_len = len;
    f.detail = std::move(detail);
    out.push_back(std::move(f));
  };

  // cross-syscall-durability-race: on a synchronous FS, every media write a
  // syscall issues must have at least one durable byte by the time the
  // syscall returns.
  if (options.synchronous) {
    for (const SyscallSpan& s : hb.syscalls) {
      if (s.syscall_index < 0) {
        continue;
      }
      size_t count = 0;
      const DurabilityInterval* first = nullptr;
      for (const DurabilityInterval& iv : hb.intervals) {
        if (iv.syscall_index != s.syscall_index || iv.op_index >= s.end_op) {
          continue;
        }
        if (iv.durable_epoch == kNeverDurable ||
            iv.durable_epoch >= s.end_epoch) {
          if (first == nullptr) {
            first = &iv;
          }
          ++count;
        }
      }
      if (count > 0) {
        emit(LintRule::kCrossSyscallRace, first->op_index, s.end_op,
             s.syscall_index, first->off, first->len,
             std::to_string(count) +
                 " write(s) with no durable byte when the syscall returned");
      }
    }
  }

  // commit-before-payload: an atomic commit write durable strictly before an
  // earlier-issued larger payload of the same syscall.
  for (const DurabilityInterval& commit : hb.intervals) {
    if (!commit.atomic8 || commit.durable_epoch == kNeverDurable ||
        commit.syscall_index < 0) {
      continue;
    }
    const DurabilityInterval* payload = nullptr;
    for (const DurabilityInterval& p : hb.intervals) {
      if (p.op_index >= commit.op_index ||
          p.syscall_index != commit.syscall_index ||
          p.len <= options.atomic_unit) {
        continue;
      }
      if (p.durable_epoch == kNeverDurable ||
          commit.durable_epoch < p.durable_epoch) {
        payload = &p;
        break;  // intervals are in op order: first hit is the earliest
      }
    }
    if (payload != nullptr) {
      emit(LintRule::kCommitInversion, payload->op_index, commit.op_index,
           commit.syscall_index, commit.off, commit.len,
           "atomic commit write at [" + std::to_string(commit.off) + "," +
               std::to_string(commit.off + commit.len) + ") durable at epoch " +
               std::to_string(commit.durable_epoch) + " before the " +
               std::to_string(payload->len) + "-byte payload issued at op " +
               std::to_string(payload->op_index) +
               (payload->durable_epoch == kNeverDurable
                    ? " (payload never durable)"
                    : " (payload durable at epoch " +
                          std::to_string(payload->durable_epoch) + ")"));
    }
  }
  return out;
}

}  // namespace analysis
