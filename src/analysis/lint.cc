#include "src/analysis/lint.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <unordered_set>

namespace analysis {

using pmem::MarkerKind;
using pmem::PmOp;
using pmem::PmOpKind;

const std::vector<LintRule>& AllLintRules() {
  static const std::vector<LintRule> kRules = [] {
    std::vector<LintRule> rules;
    for (const RuleInfo& info : AllRuleInfos()) {
      rules.push_back(info.rule);
    }
    return rules;
  }();
  return kRules;
}

const char* LintRuleId(LintRule rule) { return FindRule(rule).id; }

const char* LintRuleDescription(LintRule rule) {
  return FindRule(rule).description;
}

const char* LintSeverityName(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

std::string LintFinding::ToString() const {
  std::string s = std::string(LintRuleId(rule)) + " (" +
                  LintSeverityName(severity) + ") ops " +
                  std::to_string(op_begin) + "-" + std::to_string(op_end);
  if (syscall_index >= 0) {
    s += " syscall " + std::to_string(syscall_index);
  }
  if (byte_len > 0) {
    s += " bytes [" + std::to_string(byte_off) + "," +
         std::to_string(byte_off + byte_len) + ")";
  }
  s += ": " + detail;
  return s;
}

namespace {

// A temporal store whose cache lines have not all been flushed yet.
struct PendingStore {
  size_t op_idx;
  int32_t syscall;
  uint64_t off;
  uint64_t len;
  std::set<uint64_t> lines;  // lines still awaiting a flush
};

bool Crosses(uint64_t off, uint64_t len, uint64_t unit) {
  return len > 0 && off / unit != (off + len - 1) / unit;
}

bool Overlaps(uint64_t a_off, uint64_t a_len, uint64_t b_off, uint64_t b_len) {
  return a_off < b_off + b_len && b_off < a_off + a_len;
}

}  // namespace

std::vector<LintFinding> LintTrace(const pmem::Trace& trace,
                                   const LintOptions& options) {
  std::vector<LintFinding> out;
  // durability-hole and redundant-flush reason about the cache, which is
  // only visible when the logger recorded temporal stores.
  bool temporal_logged = false;
  for (const PmOp& op : trace) {
    if (op.kind == PmOpKind::kStore) {
      temporal_logged = true;
      break;
    }
  }

  const uint64_t line = options.cache_line;
  std::unordered_set<uint64_t> dirty_lines;    // stored but not yet flushed
  std::vector<PendingStore> pending_stores;    // not yet flushed or reported
  std::vector<size_t> inflight;                // write ops since last fence
  std::vector<size_t> unfenced_flushes;        // flush ops since last fence
  bool in_checker = false;

  auto emit = [&out](LintRule rule, LintSeverity severity, size_t op_begin,
                     size_t op_end, int32_t syscall, uint64_t off, uint64_t len,
                     std::string detail) {
    LintFinding f;
    f.rule = rule;
    f.severity = severity;
    f.op_begin = op_begin;
    f.op_end = op_end;
    f.syscall_index = syscall;
    f.byte_off = off;
    f.byte_len = len;
    f.detail = std::move(detail);
    out.push_back(std::move(f));
  };

  auto lines_of = [&](uint64_t off, uint64_t len) {
    std::set<uint64_t> lines;
    for (uint64_t l = off / line; l <= (off + (len > 0 ? len - 1 : 0)) / line;
         ++l) {
      lines.insert(l);
    }
    return lines;
  };

  auto check_torn = [&](size_t t, const PmOp& op) {
    const uint64_t len = op.data.size();
    if (len <= options.atomic_unit) {
      if (Crosses(op.off, len, options.atomic_unit)) {
        emit(LintRule::kTornUpdate, LintSeverity::kWarning, t, t,
             op.syscall_index, op.off, len,
             "update of " + std::to_string(len) +
                 " bytes crosses an 8-byte atomicity boundary");
      }
    } else if (len <= options.torn_update_max && Crosses(op.off, len, line)) {
      emit(LintRule::kTornUpdate, LintSeverity::kWarning, t, t,
           op.syscall_index, op.off, len,
           "update of " + std::to_string(len) +
               " bytes spans a cache-line boundary");
    }
  };

  auto check_contamination = [&](size_t t, const PmOp& op, const char* what) {
    if (in_checker) {
      emit(LintRule::kCheckerContamination, LintSeverity::kError, t, t,
           op.syscall_index, op.off, op.data.size(),
           std::string(what) + " issued between checker-begin and "
                               "checker-end markers");
    }
  };

  for (size_t t = 0; t < trace.size(); ++t) {
    const PmOp& op = trace[t];
    switch (op.kind) {
      case PmOpKind::kStore: {
        check_contamination(t, op, "temporal store");
        check_torn(t, op);
        PendingStore ps;
        ps.op_idx = t;
        ps.syscall = op.syscall_index;
        ps.off = op.off;
        ps.len = op.data.size();
        ps.lines = lines_of(op.off, op.data.size());
        dirty_lines.insert(ps.lines.begin(), ps.lines.end());
        pending_stores.push_back(std::move(ps));
        break;
      }
      case PmOpKind::kNtStore:
      case PmOpKind::kNtSet: {
        check_contamination(t, op, "non-temporal store");
        if (op.kind == PmOpKind::kNtStore) {
          check_torn(t, op);
        }
        inflight.push_back(t);
        break;
      }
      case PmOpKind::kFlush: {
        check_contamination(t, op, "flush");
        if (!temporal_logged) {
          // Temporal stores are invisible, so the flush is the only record
          // of the logical update it carries.
          check_torn(t, op);
        }
        const std::set<uint64_t> covered = lines_of(op.off, op.data.size());
        if (temporal_logged) {
          bool any_dirty = false;
          for (uint64_t l : covered) {
            if (dirty_lines.count(l) != 0) {
              any_dirty = true;
              break;
            }
          }
          if (!any_dirty) {
            emit(LintRule::kRedundantFlush, LintSeverity::kWarning, t, t,
                 op.syscall_index, op.off, op.data.size(),
                 "flush covers " + std::to_string(covered.size()) +
                     " clean cache line(s): no unflushed temporal store");
          }
          for (uint64_t l : covered) {
            dirty_lines.erase(l);
          }
          for (auto it = pending_stores.begin();
               it != pending_stores.end();) {
            for (uint64_t l : covered) {
              it->lines.erase(l);
            }
            it = it->lines.empty() ? pending_stores.erase(it) : it + 1;
          }
        }
        inflight.push_back(t);
        unfenced_flushes.push_back(t);
        break;
      }
      case PmOpKind::kFence: {
        if (inflight.empty()) {
          emit(LintRule::kNoopFence, LintSeverity::kWarning, t, t,
               op.syscall_index, 0, 0,
               "fence with an empty in-flight set");
        }
        // Every store still pending at its first fence is a durability hole:
        // the epoch boundary passed without the store being made durable.
        for (const PendingStore& ps : pending_stores) {
          emit(LintRule::kDurabilityHole, LintSeverity::kError, ps.op_idx, t,
               ps.syscall, ps.off, ps.len,
               "temporal store not flushed before the next fence (" +
                   std::to_string(ps.lines.size()) +
                   " cache line(s) unflushed)");
        }
        pending_stores.clear();
        inflight.clear();
        unfenced_flushes.clear();
        break;
      }
      case PmOpKind::kMarker: {
        if (op.marker == MarkerKind::kCheckerBegin) {
          in_checker = true;
        } else if (op.marker == MarkerKind::kCheckerEnd) {
          in_checker = false;
        } else if (op.marker == MarkerKind::kSyscallEnd &&
                   options.synchronous) {
          // Flushes issued by this syscall that have seen no fence by the
          // time it returns: the durability point is unordered with respect
          // to the syscall's completion.
          size_t count = 0;
          size_t first = 0;
          for (size_t idx : unfenced_flushes) {
            if (trace[idx].syscall_index == op.syscall_index) {
              if (count == 0) {
                first = idx;
              }
              ++count;
            }
          }
          if (count > 0) {
            emit(LintRule::kUnfencedFlush, LintSeverity::kError, first, t,
                 op.syscall_index, trace[first].off, trace[first].data.size(),
                 std::to_string(count) +
                     " flush(es) with no subsequent fence before the "
                     "syscall returned");
            unfenced_flushes.erase(
                std::remove_if(unfenced_flushes.begin(),
                               unfenced_flushes.end(),
                               [&](size_t idx) {
                                 return trace[idx].syscall_index ==
                                        op.syscall_index;
                               }),
                unfenced_flushes.end());
          }
        }
        break;
      }
    }
  }
  return out;
}

std::vector<FencePruneInfo> AnalyzeNoopFences(
    const pmem::Trace& trace, const std::vector<uint8_t>& base) {
  std::vector<FencePruneInfo> out;
  std::vector<uint8_t> image = base;
  std::vector<size_t> inflight;
  for (size_t t = 0; t < trace.size(); ++t) {
    const PmOp& op = trace[t];
    if (op.IsWrite()) {
      inflight.push_back(t);
      continue;
    }
    if (op.kind != PmOpKind::kFence) {
      continue;
    }
    FencePruneInfo info;
    info.empty = inflight.empty();
    const size_t k = inflight.size();
    // A write differs when its bytes are not already the durable bytes (an
    // out-of-range write counts as differing; it cannot be reasoned about).
    std::vector<bool> differs(k, true);
    for (size_t i = 0; i < k; ++i) {
      const PmOp& w = trace[inflight[i]];
      if (w.off <= image.size() && w.data.size() <= image.size() - w.off) {
        differs[i] = std::memcmp(image.data() + w.off, w.data.data(),
                                 w.data.size()) != 0;
      }
    }
    for (size_t i = 0; i < k; ++i) {
      if (differs[i]) {
        continue;
      }
      const PmOp& w = trace[inflight[i]];
      bool touches_differing = false;
      for (size_t j = 0; j < k && !touches_differing; ++j) {
        if (differs[j] &&
            Overlaps(w.off, w.data.size(), trace[inflight[j]].off,
                     trace[inflight[j]].data.size())) {
          touches_differing = true;
        }
      }
      if (!touches_differing) {
        info.noop_writes.push_back(inflight[i]);
      }
    }
    out.push_back(std::move(info));
    // The fence makes the window durable; advance the image.
    for (size_t idx : inflight) {
      pmem::ApplyOp(image, trace[idx]);
    }
    inflight.clear();
  }
  return out;
}

}  // namespace analysis
