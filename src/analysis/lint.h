// Static persistence-pattern analysis (the trace linter).
//
// Chipmunk's replay engine finds bugs by enumerating crash states, but a
// large class of PM defects is visible *statically* in the recorded trace:
// WITCHER-style missing/extra flush-fence patterns and the redundant
// flushes / unnecessary fences the Linux-PM issue studies report as the most
// common PM defects. The linter performs a single O(trace) pass over a
// pmem::Trace, maintaining the in-flight store set, per-cache-line flush
// state, and syscall/epoch boundaries, and emits structured findings — a
// second, replay-free bug oracle, and (via AnalyzeNoopFences) a pruning
// signal for the replay planner.
//
// The rules:
//   durability-hole        temporal store whose cache lines are never
//                          flushed before the next fence (the store is not
//                          durable at the epoch boundary). Needs temporal
//                          logging (TraceLogger::set_log_temporal).
//   redundant-flush        flush covering only clean cache lines — no
//                          temporal store dirtied them since the previous
//                          flush (includes clwb after a pure NT store).
//                          Needs temporal logging.
//   unfenced-flush         flush with no subsequent fence before the end of
//                          its syscall: the syscall returns with an
//                          unordered durability point. Synchronous FSes only.
//   noop-fence             fence with an empty in-flight set (wasted sfence).
//   torn-update            small logical update spanning a cache-line /
//                          8-byte atomicity boundary while in flight — can
//                          tear at the boundary on a crash.
//   checker-contamination  media writes between kCheckerBegin/kCheckerEnd
//                          markers: the consistency checker mutated the
//                          image it is judging (oracle contamination).
#ifndef CHIPMUNK_ANALYSIS_LINT_H_
#define CHIPMUNK_ANALYSIS_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/rules.h"
#include "src/pmem/trace.h"

namespace analysis {

// All rules, in report order (the rule-table order from rules.h — includes
// the happens-before rules, which LintTrace itself never emits).
const std::vector<LintRule>& AllLintRules();

// Stable kebab-case rule id ("durability-hole", ...), from the rule table.
const char* LintRuleId(LintRule rule);

// One-line description used by the SARIF rule metadata and --help text.
const char* LintRuleDescription(LintRule rule);

enum class LintSeverity { kWarning, kError };

const char* LintSeverityName(LintSeverity severity);

struct LintFinding {
  LintRule rule = LintRule::kNoopFence;
  LintSeverity severity = LintSeverity::kWarning;
  // Trace-op range [op_begin, op_end] the finding spans (inclusive): the
  // offending op, through the op where the violation became definite (the
  // fence for durability-hole, the syscall-end marker for unfenced-flush).
  size_t op_begin = 0;
  size_t op_end = 0;
  int32_t syscall_index = -1;  // workload op the offending op belongs to
  uint64_t byte_off = 0;       // affected media byte range (0-length when n/a)
  uint64_t byte_len = 0;
  std::string detail;

  std::string ToString() const;
};

struct LintOptions {
  // Weak-guarantee file systems (fsync semantics) may legally return from a
  // syscall with unfenced flushes; unfenced-flush only fires when true.
  bool synchronous = true;
  uint64_t cache_line = 64;
  uint64_t atomic_unit = 8;
  // torn-update only considers logical updates up to this size; larger
  // writes are bulk data, which tears by design and is covered by the replay
  // engine's partial-data states.
  uint64_t torn_update_max = 64;
};

// Single-pass linter. Findings are emitted in the trace order in which each
// violation became definite.
std::vector<LintFinding> LintTrace(const pmem::Trace& trace,
                                   const LintOptions& options = {});

// Per-fence pruning signal for the replay planner, computed by the same pass
// machinery as the noop-fence rule. For each fence (in trace order):
//   - empty: no write was in flight (the planner's existing skip);
//   - noop_writes: in-flight trace indices whose bytes are identical to the
//     durable image at that fence and whose range does not overlap any
//     differing in-flight write. Applying such a write changes no byte of
//     any crash state, so every subset containing it is image-identical to
//     the same subset without it and the planner can drop it from the
//     enumeration universe.
struct FencePruneInfo {
  bool empty = false;
  std::vector<size_t> noop_writes;  // sorted ascending
};

std::vector<FencePruneInfo> AnalyzeNoopFences(const pmem::Trace& trace,
                                              const std::vector<uint8_t>& base);

}  // namespace analysis

#endif  // CHIPMUNK_ANALYSIS_LINT_H_
