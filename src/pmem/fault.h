// Seeded, deterministic PM media fault injection.
//
// A FaultPlan turns the replayer's crash states into *media-fault* crash
// states, modelling the failure classes Gatla et al. observe on real PM
// hardware: torn 8-byte stores at the crash boundary (a store fence caught
// the bus mid-line), bit flips in durable media (uncorrected ECC), and
// poisoned lines whose reads fail (machine-check poison consumed by the CPU).
//
// Determinism contract: the decisions for crash state N are a pure function
// of (plan.seed, N, the trace, the applied-op set) — never of thread
// scheduling or wall clock — so the fault campaign is bit-identical for
// every --jobs value, and a quarantined state can be rebuilt exactly.
//
// The checker's verdict for an injected-fault mount is robustness-only:
// "fail cleanly or recover — never crash, hang, or scribble".
#ifndef CHIPMUNK_PMEM_FAULT_H_
#define CHIPMUNK_PMEM_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/pmem/trace.h"

namespace pmem {

struct FaultPlan {
  uint64_t seed = 0;
  bool torn_stores = false;  // revert half of a durable 8-byte store
  bool bit_flips = false;    // flip one bit inside an applied write
  bool read_faults = false;  // poison a line; reads of it fail / read zero

  bool enabled() const { return torn_stores || bit_flips || read_faults; }

  static FaultPlan All(uint64_t seed) {
    return FaultPlan{seed, true, true, true};
  }
};

// The concrete faults chosen for one crash state. Offsets are absolute
// media offsets; tear_index addresses the state's applied-op list.
struct FaultDecisions {
  // Torn store: the 4-byte half of the *last* >= 8-byte applied write
  // reverts to its pre-image (the store tore at the crash boundary).
  bool tear = false;
  size_t tear_index = 0;  // position in the applied list
  size_t tear_rel = 0;    // offset of the torn half within that op's data
  uint64_t tear_off = 0;  // absolute media offset of the torn half
  size_t tear_len = 0;

  bool flip = false;
  uint64_t flip_off = 0;
  uint8_t flip_mask = 0;

  bool poison = false;
  uint64_t poison_off = 0;
  size_t poison_len = 0;

  bool any() const { return tear || flip || poison; }
};

// Derives the fault decisions for crash state `ordinal`. `applied` holds the
// trace indices of the writes applied for this state (empty for syscall-end
// states). Pure function of its arguments — see the determinism contract.
FaultDecisions PlanStateFaults(const FaultPlan& plan, uint64_t ordinal,
                               const Trace& trace,
                               const std::vector<size_t>& applied,
                               size_t device_size);

// One-line human-readable description, stable across runs (report details
// and quarantine metadata embed it).
std::string DescribeFaults(const FaultDecisions& d);

}  // namespace pmem

#endif  // CHIPMUNK_PMEM_FAULT_H_
