// Simulated persistent-memory device.
//
// The device is a flat byte array standing in for the persistent media of an
// Intel Optane DIMM. All mutation goes through the Pm facade (pm.h), which
// implements the x86 epoch persistence model: temporal stores land in the
// "cache" (visible to the running file system immediately) and only become
// durable once flushed and fenced. The device itself holds the *running*
// image; the durable view at any crash point is reconstructed by the replayer
// in src/core from the trace of persistence operations.
#ifndef CHIPMUNK_PMEM_PM_DEVICE_H_
#define CHIPMUNK_PMEM_PM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pmem {

class PmDevice {
 public:
  explicit PmDevice(size_t size) : data_(size, 0) {}

  // Construct a device from an existing image (e.g., a crash state).
  explicit PmDevice(std::vector<uint8_t> image) : data_(std::move(image)) {}

  size_t size() const { return data_.size(); }

  const uint8_t* raw() const { return data_.data(); }

  std::vector<uint8_t> Snapshot() const { return data_; }

  void Restore(const std::vector<uint8_t>& image) { data_ = image; }

  // ---- Injected media faults (read poison). ----
  //
  // A poisoned range models an uncorrectable media error (the DIMM returning
  // a poison line): the bytes are still present in data_ but reads through
  // the Pm facade either fail (fallible path) or return zeros (legacy path).
  // Poison does not alter the stored image, so snapshot/restore round-trips
  // are unaffected.
  void Poison(uint64_t off, size_t n) {
    if (n > 0) {
      poison_.push_back({off, n});
    }
  }
  void ClearPoison() { poison_.clear(); }
  bool poisoned() const { return !poison_.empty(); }

  bool PoisonOverlaps(uint64_t off, size_t n) const {
    for (const auto& range : poison_) {
      if (range.off < off + n && off < range.off + range.len) {
        return true;
      }
    }
    return false;
  }

 private:
  friend class Pm;

  uint8_t* mutable_raw() { return data_.data(); }

  struct PoisonRange {
    uint64_t off;
    size_t len;
  };

  std::vector<uint8_t> data_;
  std::vector<PoisonRange> poison_;
};

}  // namespace pmem

#endif  // CHIPMUNK_PMEM_PM_DEVICE_H_
