// Simulated persistent-memory device.
//
// The device stands in for the persistent media of an Intel Optane DIMM. All
// mutation goes through the Pm facade (pm.h), which implements the x86 epoch
// persistence model: temporal stores land in the "cache" (visible to the
// running file system immediately) and only become durable once flushed and
// fenced. The device itself holds the *running* image; the durable view at
// any crash point is reconstructed by the replayer in src/core from the trace
// of persistence operations.
//
// Two storage modes share one interface:
//
//   Flat     — the device owns a private byte array (the record stage, the
//              oracle, standalone tools). Construction cost is O(size).
//   Overlay  — page-granular copy-on-write over a shared, immutable base
//              image (the replay workers). A freshly constructed overlay
//              holds no pages; the first write to a page copies that page
//              from the base. Sibling crash states of one fence window can
//              therefore share the base plus the already-fenced pages, and
//              only the pages their in-flight subsets touch are private.
//              Construction cost is O(size / kPageSize) pointers, not a full
//              image copy — the point of the mode.
//
// Reads, writes, and contiguous views work identically in both modes, so the
// Pm facade and its hooks never know which one they run against.
#ifndef CHIPMUNK_PMEM_PM_DEVICE_H_
#define CHIPMUNK_PMEM_PM_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pmem {

class PmDevice {
 public:
  // CoW granularity. Also the clustering granularity of the replay engine's
  // representative-state signatures, which reuse the device page geometry.
  static constexpr size_t kPageSize = 4096;

  explicit PmDevice(size_t size) : size_(size), data_(size, 0) {}

  // Construct a flat device from an existing image (e.g., a crash state).
  explicit PmDevice(std::vector<uint8_t> image)
      : size_(image.size()), data_(std::move(image)) {}

  // Construct a page-granular copy-on-write overlay over `base`. The base
  // must outlive the device and must not change while the overlay exists
  // (replay workers hold the workload's base snapshot, which is immutable
  // for the duration of the run).
  explicit PmDevice(const std::vector<uint8_t>* base);

  PmDevice(PmDevice&&) = default;
  PmDevice& operator=(PmDevice&&) = default;

  size_t size() const { return size_; }
  bool is_overlay() const { return base_ != nullptr; }

  // Pages privately held by an overlay (0 for flat devices): the memory the
  // copy-on-write path actually paid for.
  size_t dirty_page_count() const { return dirty_pages_; }

  // ---- Byte access (both modes; offsets must be in bounds). ----

  void Read(uint64_t off, void* dst, size_t n) const;
  void Write(uint64_t off, const void* src, size_t n);
  void Fill(uint64_t off, uint8_t value, size_t n);

  // A contiguous read-only view of [off, off + n). Flat devices and ranges
  // that do not straddle a dirty/clean page boundary return a pointer into
  // the backing storage; other overlay ranges are gathered into an internal
  // scratch buffer. The pointer is invalidated by the next View, Write,
  // Fill, or Restore call.
  const uint8_t* View(uint64_t off, size_t n) const;

  // Flat devices only: direct pointer to the backing array.
  const uint8_t* raw() const { return data_.data(); }

  // Materializes the full image (flat: a copy of the array; overlay: base
  // plus every private page).
  std::vector<uint8_t> Snapshot() const;

  // Makes the device image equal to `image` (same size as the device).
  void Restore(const std::vector<uint8_t>& image);

  // ---- Injected media faults (read poison). ----
  //
  // A poisoned range models an uncorrectable media error (the DIMM returning
  // a poison line): the bytes are still present in the image but reads
  // through the Pm facade either fail (fallible path) or return zeros
  // (legacy path). Poison does not alter the stored image, so
  // snapshot/restore round-trips are unaffected.
  //
  // Ranges are kept sorted, coalesced on insert (overlapping and adjacent
  // ranges merge into one), so repeated injection of the same line cannot
  // grow the list and the overlap query stays O(log n).
  void Poison(uint64_t off, size_t n);
  void ClearPoison() { poison_.clear(); }
  bool poisoned() const { return !poison_.empty(); }
  bool PoisonOverlaps(uint64_t off, size_t n) const;
  size_t poison_range_count() const { return poison_.size(); }

 private:
  friend class Pm;

  struct PoisonRange {
    uint64_t off;
    size_t len;
  };

  // Overlay: returns the writable private copy of `page`, copying it from
  // the base on first touch.
  uint8_t* DirtyPage(size_t page);

  size_t size_ = 0;
  // Flat mode: the full image. Overlay mode: empty.
  std::vector<uint8_t> data_;
  // Overlay mode: the shared base image and one optional private page per
  // page slot (null = read through to the base).
  const std::vector<uint8_t>* base_ = nullptr;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  size_t dirty_pages_ = 0;
  // Gather buffer for View() ranges that straddle overlay page boundaries.
  mutable std::vector<uint8_t> scratch_;

  std::vector<PoisonRange> poison_;  // sorted by off, coalesced
};

}  // namespace pmem

#endif  // CHIPMUNK_PMEM_PM_DEVICE_H_
