// Pm: the centralized persistence functions (§3.2, "Intercepting writes").
//
// Every PM file system in this repo performs *all* media access through a Pm
// instance, mirroring the paper's observation that real PM file systems use a
// small set of centralized persistence functions (non-temporal memcpy,
// non-temporal memset, buffer flush, store fence). Hooks attached to a Pm see
// every operation — this is the user-space analogue of Chipmunk's
// Kprobes/Uprobes function-level interception: no file-system code changes,
// total mediation.
//
// Persistence semantics implemented here (x86 epoch model):
//   - Temporal stores (Store*/Memcpy/Memset) modify the running image and are
//     visible to the file system immediately, but are NOT durable until a
//     FlushBuffer covering them executes followed by a Fence.
//   - FlushBuffer(off, n) captures the buffer contents at flush time; the
//     contents become durable at the next Fence.
//   - MemcpyNt/MemsetNt bypass the cache; durable at the next Fence.
//   - Between fences, in-flight writes may persist in any subset (the replayer
//     enumerates those subsets to build crash states).
//
// All access is bounds-checked. A violation does not crash the process; it
// raises a sticky fault on the Pm (the KASAN analogue used for bug 16) and the
// access becomes a no-op / zero read.
#ifndef CHIPMUNK_PMEM_PM_H_
#define CHIPMUNK_PMEM_PM_H_

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/pmem/pm_device.h"
#include "src/pmem/trace.h"

namespace pmem {

// Observer of persistence operations. OnWrite fires for every mutation
// (temporal and non-temporal) *before* it is applied, so hooks can capture
// pre-images for undo logging.
class PmHook {
 public:
  virtual ~PmHook() = default;

  virtual void OnWrite(uint64_t off, const uint8_t* old_data,
                       const uint8_t* new_data, size_t n, bool temporal) {}
  virtual void OnFlush(uint64_t off, const uint8_t* contents, size_t n) {}
  virtual void OnFence() {}
  virtual void OnMarker(MarkerKind kind, int32_t index, std::string_view note) {}
  // Fires before every load through the facade. Used by the recovery
  // sandbox's op-budget watchdog: a recovery loop that makes no progress
  // still reads media, so counting reads bounds it deterministically.
  virtual void OnRead(uint64_t off, size_t n) {}
};

class Pm {
 public:
  explicit Pm(PmDevice* device) : device_(device) {}

  Pm(const Pm&) = delete;
  Pm& operator=(const Pm&) = delete;

  PmDevice* device() { return device_; }
  size_t size() const { return device_->size(); }

  void AddHook(PmHook* hook) { hooks_.push_back(hook); }
  void RemoveHook(PmHook* hook);

  // ---- Centralized persistence functions (the interception targets). ----

  // Non-temporal memcpy: durable at the next Fence.
  void MemcpyNt(uint64_t dst, const void* src, size_t n);

  // Non-temporal memset: durable at the next Fence.
  void MemsetNt(uint64_t dst, uint8_t value, size_t n);

  // Flush a buffer of cache lines; captures current contents, durable at the
  // next Fence.
  void FlushBuffer(uint64_t off, size_t n);

  // Store fence: all in-flight writes become durable.
  void Fence();

  // ---- Temporal access (ordinary loads/stores through the cache). ----

  void Memcpy(uint64_t dst, const void* src, size_t n);
  void Memset(uint64_t dst, uint8_t value, size_t n);

  template <typename T>
  void Store(uint64_t off, T value) {
    Memcpy(off, &value, sizeof(T));
  }

  // Store + FlushBuffer in one call; still requires a Fence for durability.
  template <typename T>
  void StoreFlush(uint64_t off, T value) {
    Store(off, value);
    FlushBuffer(off, sizeof(T));
  }

  template <typename T>
  T Load(uint64_t off) const {
    T value{};
    ReadInto(off, &value, sizeof(T));
    return value;
  }

  void ReadInto(uint64_t off, void* dst, size_t n) const;

  // Fallible load: the media-error-aware read path. Out-of-bounds access
  // raises the sticky fault *and* returns it; a read overlapping a poisoned
  // range (injected media fault) zero-fills dst and returns kIo without
  // faulting the device — a correctly written FS is expected to surface the
  // error as a clean mount/IO failure, never to crash on it.
  common::Status TryReadInto(uint64_t off, void* dst, size_t n) const;

  // Read a range as a fresh vector (zero-filled on fault).
  std::vector<uint8_t> ReadVec(uint64_t off, size_t n) const;

  bool InBounds(uint64_t off, size_t n) const {
    return off <= device_->size() && n <= device_->size() - off;
  }

  // ---- Harness markers (no media effect). ----
  void Marker(MarkerKind kind, int32_t index, std::string_view note = "");

  // Restores bytes directly, bypassing hooks (undo-log rollback only).
  void RestoreRaw(uint64_t off, const uint8_t* data, size_t n);

  // ---- Fault state (out-of-bounds media access; KASAN analogue). ----
  bool faulted() const { return !fault_.ok(); }
  const common::Status& fault() const { return fault_; }
  void ClearFault() { fault_ = common::OkStatus(); }

 private:
  bool CheckRange(uint64_t off, size_t n, const char* what) const;

  PmDevice* device_;
  std::vector<PmHook*> hooks_;
  mutable common::Status fault_;
};

// TraceLogger: records every persistence op into a Trace, annotating each op
// with the syscall index carried by the most recent marker. This is the
// user-space analogue of Chipmunk's logger kernel modules.
//
// Flush dedup: a kFlush whose byte range and captured contents exactly match
// the most recent pending write op overlapping its range (recorded since the
// last fence) is not logged —
// it would duplicate bytes already in the trace's pending set without adding
// a reachable crash state (any subset containing the duplicate produces the
// image of the same subset with the original instead). This shrinks traces
// and the per-fence in-flight windows the replayer enumerates.
class TraceLogger : public PmHook {
 public:
  void OnWrite(uint64_t off, const uint8_t* old_data, const uint8_t* new_data,
               size_t n, bool temporal) override;
  void OnFlush(uint64_t off, const uint8_t* contents, size_t n) override;
  void OnFence() override;
  void OnMarker(MarkerKind kind, int32_t index, std::string_view note) override;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // With temporal logging on, temporal stores are recorded as kStore ops
  // (volatile; ignored by the replayer) so the static persistence linter can
  // check flush coverage. Off by default: replay does not need them and they
  // dominate trace volume on journaling file systems.
  void set_log_temporal(bool log) { log_temporal_ = log; }
  bool log_temporal() const { return log_temporal_; }

  const Trace& trace() const { return trace_; }
  Trace TakeTrace() {
    pending_writes_.clear();
    return std::move(trace_);
  }
  void Clear() {
    trace_.clear();
    pending_writes_.clear();
    current_syscall_ = -1;
  }

 private:
  bool enabled_ = true;
  bool log_temporal_ = false;
  int32_t current_syscall_ = -1;
  // Indices of durability-pending write ops since the last fence, scanned by
  // the flush dedup.
  std::vector<size_t> pending_writes_;
  Trace trace_;
};

// UndoRecorder: captures pre-images of every mutation so the consistency
// checker's own writes (mount-time recovery, usability probes) can be rolled
// back before testing the next crash state (§3.3, last paragraph).
class UndoRecorder : public PmHook {
 public:
  void OnWrite(uint64_t off, const uint8_t* old_data, const uint8_t* new_data,
               size_t n, bool temporal) override;

  // Restores all recorded pre-images, newest first, then clears the log.
  void RollbackInto(std::vector<uint8_t>& image);
  void Rollback(Pm& pm);

  size_t entry_count() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    uint64_t off;
    std::vector<uint8_t> old_data;
  };
  std::vector<Entry> entries_;
};

}  // namespace pmem

#endif  // CHIPMUNK_PMEM_PM_H_
