#include "src/pmem/pm.h"

#include <algorithm>

namespace pmem {

void ApplyOp(std::vector<uint8_t>& image, const PmOp& op) {
  if (!op.IsWrite()) {
    return;
  }
  if (op.off >= image.size()) {
    return;
  }
  size_t n = std::min(op.data.size(), image.size() - op.off);
  std::memcpy(image.data() + op.off, op.data.data(), n);
}

void Pm::RemoveHook(PmHook* hook) {
  hooks_.erase(std::remove(hooks_.begin(), hooks_.end(), hook), hooks_.end());
}

bool Pm::CheckRange(uint64_t off, size_t n, const char* what) const {
  if (InBounds(off, n)) {
    return true;
  }
  if (fault_.ok()) {
    fault_ = common::OutOfBounds(std::string(what) + " at offset " +
                                 std::to_string(off) + " size " +
                                 std::to_string(n) + " (device " +
                                 std::to_string(device_->size()) + ")");
  }
  return false;
}

void Pm::MemcpyNt(uint64_t dst, const void* src, size_t n) {
  if (!CheckRange(dst, n, "nt-store")) {
    return;
  }
  const auto* bytes = static_cast<const uint8_t*>(src);
  if (!hooks_.empty()) {
    // The pre-image view is only materialized when a hook can observe it;
    // it stays valid until the Write below.
    const uint8_t* old = device_->View(dst, n);
    for (PmHook* hook : hooks_) {
      hook->OnWrite(dst, old, bytes, n, /*temporal=*/false);
    }
  }
  device_->Write(dst, bytes, n);
}

void Pm::MemsetNt(uint64_t dst, uint8_t value, size_t n) {
  if (!CheckRange(dst, n, "nt-set")) {
    return;
  }
  if (hooks_.empty()) {
    device_->Fill(dst, value, n);
    return;
  }
  std::vector<uint8_t> bytes(n, value);
  const uint8_t* old = device_->View(dst, n);
  for (PmHook* hook : hooks_) {
    hook->OnWrite(dst, old, bytes.data(), n, /*temporal=*/false);
  }
  device_->Write(dst, bytes.data(), n);
}

void Pm::FlushBuffer(uint64_t off, size_t n) {
  if (!CheckRange(off, n, "flush")) {
    return;
  }
  if (hooks_.empty()) {
    return;
  }
  const uint8_t* contents = device_->View(off, n);
  for (PmHook* hook : hooks_) {
    hook->OnFlush(off, contents, n);
  }
}

void Pm::Fence() {
  for (PmHook* hook : hooks_) {
    hook->OnFence();
  }
}

void Pm::Memcpy(uint64_t dst, const void* src, size_t n) {
  if (!CheckRange(dst, n, "store")) {
    return;
  }
  const auto* bytes = static_cast<const uint8_t*>(src);
  if (!hooks_.empty()) {
    const uint8_t* old = device_->View(dst, n);
    for (PmHook* hook : hooks_) {
      hook->OnWrite(dst, old, bytes, n, /*temporal=*/true);
    }
  }
  device_->Write(dst, bytes, n);
}

void Pm::Memset(uint64_t dst, uint8_t value, size_t n) {
  if (!CheckRange(dst, n, "store")) {
    return;
  }
  if (hooks_.empty()) {
    device_->Fill(dst, value, n);
    return;
  }
  std::vector<uint8_t> bytes(n, value);
  const uint8_t* old = device_->View(dst, n);
  for (PmHook* hook : hooks_) {
    hook->OnWrite(dst, old, bytes.data(), n, /*temporal=*/true);
  }
  device_->Write(dst, bytes.data(), n);
}

void Pm::ReadInto(uint64_t off, void* dst, size_t n) const {
  for (PmHook* hook : hooks_) {
    hook->OnRead(off, n);
  }
  if (!CheckRange(off, n, "load")) {
    std::memset(dst, 0, n);
    return;
  }
  if (device_->PoisonOverlaps(off, n)) {
    // Legacy (infallible) path over poisoned media: reads return zeros, the
    // analogue of consuming a poison line without machine-check handling.
    std::memset(dst, 0, n);
    return;
  }
  device_->Read(off, dst, n);
}

common::Status Pm::TryReadInto(uint64_t off, void* dst, size_t n) const {
  for (PmHook* hook : hooks_) {
    hook->OnRead(off, n);
  }
  if (!CheckRange(off, n, "load")) {
    std::memset(dst, 0, n);
    return fault_;
  }
  if (device_->PoisonOverlaps(off, n)) {
    std::memset(dst, 0, n);
    return common::IoError("injected media read fault at offset " +
                           std::to_string(off) + " size " + std::to_string(n));
  }
  device_->Read(off, dst, n);
  return common::OkStatus();
}

std::vector<uint8_t> Pm::ReadVec(uint64_t off, size_t n) const {
  std::vector<uint8_t> out(n, 0);
  ReadInto(off, out.data(), n);
  return out;
}

void Pm::Marker(MarkerKind kind, int32_t index, std::string_view note) {
  for (PmHook* hook : hooks_) {
    hook->OnMarker(kind, index, note);
  }
}

void Pm::RestoreRaw(uint64_t off, const uint8_t* data, size_t n) {
  if (!InBounds(off, n)) {
    return;
  }
  device_->Write(off, data, n);
}

void TraceLogger::OnWrite(uint64_t off, const uint8_t* old_data,
                          const uint8_t* new_data, size_t n, bool temporal) {
  if (!enabled_) {
    return;
  }
  if (temporal && !log_temporal_) {
    // Temporal stores are not persistence operations: their contents reach
    // the trace via the FlushBuffer that later covers them. This matches the
    // paper: only the centralized persistence functions are probed.
    return;
  }
  PmOp op;
  op.kind = temporal ? PmOpKind::kStore : PmOpKind::kNtStore;
  op.off = off;
  op.data.assign(new_data, new_data + n);
  op.syscall_index = current_syscall_;
  if (!temporal) {
    pending_writes_.push_back(trace_.size());
  }
  trace_.push_back(std::move(op));
}

void TraceLogger::OnFlush(uint64_t off, const uint8_t* contents, size_t n) {
  if (!enabled_) {
    return;
  }
  // Flush dedup: skip a flush that exactly re-captures the most recent
  // pending write op touching its range (same range, same bytes). Dropping
  // it preserves the reachable crash-state images: no pending op between the
  // original and the duplicate touched the range, so any subset containing
  // the duplicate is image-identical to the subset with the original
  // substituted in, and the full-window application order is unaffected.
  // The newest-first scan stops at the first overlapping op — an older
  // identical capture with a different write in between (write X, zero,
  // write X again) must NOT absorb the new flush, or the re-applied bytes
  // would be lost from the window's final image.
  for (auto it = pending_writes_.rbegin(); it != pending_writes_.rend(); ++it) {
    const PmOp& p = trace_[*it];
    const bool overlaps = p.off < off + n && off < p.off + p.data.size();
    if (!overlaps) {
      continue;
    }
    if (p.off == off && p.data.size() == n &&
        std::memcmp(p.data.data(), contents, n) == 0) {
      return;
    }
    break;
  }
  PmOp op;
  op.kind = PmOpKind::kFlush;
  op.off = off;
  op.data.assign(contents, contents + n);
  op.syscall_index = current_syscall_;
  pending_writes_.push_back(trace_.size());
  trace_.push_back(std::move(op));
}

void TraceLogger::OnFence() {
  if (!enabled_) {
    return;
  }
  pending_writes_.clear();
  PmOp op;
  op.kind = PmOpKind::kFence;
  op.syscall_index = current_syscall_;
  trace_.push_back(std::move(op));
}

void TraceLogger::OnMarker(MarkerKind kind, int32_t index,
                           std::string_view note) {
  if (kind == MarkerKind::kSyscallBegin) {
    current_syscall_ = index;
  } else if (kind == MarkerKind::kSyscallEnd) {
    current_syscall_ = -1;
  }
  if (!enabled_) {
    return;
  }
  PmOp op;
  op.kind = PmOpKind::kMarker;
  op.marker = kind;
  op.syscall_index = index;
  op.note = std::string(note);
  trace_.push_back(std::move(op));
}

void UndoRecorder::OnWrite(uint64_t off, const uint8_t* old_data,
                           const uint8_t* new_data, size_t n, bool temporal) {
  Entry entry;
  entry.off = off;
  entry.old_data.assign(old_data, old_data + n);
  entries_.push_back(std::move(entry));
}

void UndoRecorder::RollbackInto(std::vector<uint8_t>& image) {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->off >= image.size()) {
      continue;
    }
    size_t n = std::min(it->old_data.size(), image.size() - it->off);
    std::memcpy(image.data() + it->off, it->old_data.data(), n);
  }
  entries_.clear();
}

void UndoRecorder::Rollback(Pm& pm) {
  // Apply pre-images directly through the device, bypassing hooks so the
  // rollback itself is not re-logged.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    pm.RestoreRaw(it->off, it->old_data.data(), it->old_data.size());
  }
  entries_.clear();
}

}  // namespace pmem
