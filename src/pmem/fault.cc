#include "src/pmem/fault.h"

#include <algorithm>

#include "src/common/rng.h"

namespace pmem {

FaultDecisions PlanStateFaults(const FaultPlan& plan, uint64_t ordinal,
                               const Trace& trace,
                               const std::vector<size_t>& applied,
                               size_t device_size) {
  FaultDecisions d;
  if (!plan.enabled()) {
    return d;
  }
  common::Rng rng = common::Rng::Stream(plan.seed, ordinal);
  if (plan.torn_stores) {
    // The last applied write of at least 8 bytes is the store most plausibly
    // in flight at the crash boundary — and, being last, no later applied op
    // overwrites the torn half, so the tear survives into the checked image.
    for (size_t i = applied.size(); i-- > 0;) {
      const PmOp& op = trace[applied[i]];
      if (op.data.size() < 8) {
        continue;
      }
      if (rng.Chance(1, 2)) {
        d.tear = true;
        d.tear_index = i;
        d.tear_rel = op.data.size() - 8 + (rng.Chance(1, 2) ? 4 : 0);
        d.tear_off = op.off + d.tear_rel;
        d.tear_len = 4;
      }
      break;
    }
  }
  if (plan.bit_flips && !applied.empty() && rng.Chance(1, 2)) {
    const PmOp& op = trace[applied[rng.Below(applied.size())]];
    if (!op.data.empty()) {
      d.flip = true;
      d.flip_off = op.off + rng.Below(op.data.size());
      d.flip_mask = static_cast<uint8_t>(uint8_t{1} << rng.Below(8));
    }
  }
  if (plan.read_faults && device_size >= 64 && rng.Chance(1, 4)) {
    d.poison = true;
    if (!applied.empty()) {
      const PmOp& op = trace[applied[rng.Below(applied.size())]];
      d.poison_off = op.off;
      d.poison_len = std::max<size_t>(op.data.size(), 1);
    } else {
      d.poison_off = rng.Below(device_size / 64) * 64;
      d.poison_len = 64;
    }
  }
  return d;
}

std::string DescribeFaults(const FaultDecisions& d) {
  std::string out;
  auto append = [&out](std::string part) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::move(part);
  };
  if (d.tear) {
    append("torn store at offset " + std::to_string(d.tear_off) + " len " +
           std::to_string(d.tear_len));
  }
  if (d.flip) {
    append("bit flip at offset " + std::to_string(d.flip_off) + " mask 0x" +
           [](uint8_t m) {
             const char* hex = "0123456789abcdef";
             return std::string{hex[m >> 4], hex[m & 0xf]};
           }(d.flip_mask));
  }
  if (d.poison) {
    append("poisoned read range at offset " + std::to_string(d.poison_off) +
           " len " + std::to_string(d.poison_len));
  }
  if (out.empty()) {
    out = "no faults";
  }
  return out;
}

}  // namespace pmem
