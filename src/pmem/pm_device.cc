#include "src/pmem/pm_device.h"

#include <algorithm>
#include <cstring>

namespace pmem {

namespace {

size_t PageCount(size_t size) {
  return (size + PmDevice::kPageSize - 1) / PmDevice::kPageSize;
}

}  // namespace

PmDevice::PmDevice(const std::vector<uint8_t>* base)
    : size_(base->size()), base_(base), pages_(PageCount(base->size())) {}

uint8_t* PmDevice::DirtyPage(size_t page) {
  std::unique_ptr<uint8_t[]>& slot = pages_[page];
  if (!slot) {
    slot = std::make_unique<uint8_t[]>(kPageSize);
    const size_t start = page * kPageSize;
    const size_t n = std::min(kPageSize, size_ - start);
    std::memcpy(slot.get(), base_->data() + start, n);
    if (n < kPageSize) {
      std::memset(slot.get() + n, 0, kPageSize - n);
    }
    ++dirty_pages_;
  }
  return slot.get();
}

void PmDevice::Read(uint64_t off, void* dst, size_t n) const {
  if (n == 0) {
    return;
  }
  if (base_ == nullptr) {
    std::memcpy(dst, data_.data() + off, n);
    return;
  }
  auto* out = static_cast<uint8_t*>(dst);
  while (n > 0) {
    const size_t page = off / kPageSize;
    const size_t in_page = off % kPageSize;
    const size_t chunk = std::min(n, kPageSize - in_page);
    const uint8_t* src =
        pages_[page] ? pages_[page].get() + in_page : base_->data() + off;
    std::memcpy(out, src, chunk);
    out += chunk;
    off += chunk;
    n -= chunk;
  }
}

void PmDevice::Write(uint64_t off, const void* src, size_t n) {
  if (n == 0) {
    return;
  }
  if (base_ == nullptr) {
    std::memcpy(data_.data() + off, src, n);
    return;
  }
  const auto* in = static_cast<const uint8_t*>(src);
  while (n > 0) {
    const size_t page = off / kPageSize;
    const size_t in_page = off % kPageSize;
    const size_t chunk = std::min(n, kPageSize - in_page);
    std::memcpy(DirtyPage(page) + in_page, in, chunk);
    in += chunk;
    off += chunk;
    n -= chunk;
  }
}

void PmDevice::Fill(uint64_t off, uint8_t value, size_t n) {
  if (n == 0) {
    return;
  }
  if (base_ == nullptr) {
    std::memset(data_.data() + off, value, n);
    return;
  }
  while (n > 0) {
    const size_t page = off / kPageSize;
    const size_t in_page = off % kPageSize;
    const size_t chunk = std::min(n, kPageSize - in_page);
    std::memset(DirtyPage(page) + in_page, value, chunk);
    off += chunk;
    n -= chunk;
  }
}

const uint8_t* PmDevice::View(uint64_t off, size_t n) const {
  if (base_ == nullptr) {
    return data_.data() + off;
  }
  if (n == 0) {
    return base_->data() + std::min<uint64_t>(off, base_->size());
  }
  const size_t first = off / kPageSize;
  const size_t last = (off + n - 1) / kPageSize;
  bool any_dirty = false;
  bool all_dirty = true;
  for (size_t p = first; p <= last; ++p) {
    if (pages_[p]) {
      any_dirty = true;
    } else {
      all_dirty = false;
    }
  }
  if (!any_dirty) {
    return base_->data() + off;
  }
  if (all_dirty && first == last) {
    return pages_[first].get() + off % kPageSize;
  }
  scratch_.resize(n);
  Read(off, scratch_.data(), n);
  return scratch_.data();
}

std::vector<uint8_t> PmDevice::Snapshot() const {
  if (base_ == nullptr) {
    return data_;
  }
  std::vector<uint8_t> out = *base_;
  for (size_t p = 0; p < pages_.size(); ++p) {
    if (pages_[p]) {
      const size_t start = p * kPageSize;
      std::memcpy(out.data() + start, pages_[p].get(),
                  std::min(kPageSize, size_ - start));
    }
  }
  return out;
}

void PmDevice::Restore(const std::vector<uint8_t>& image) {
  if (base_ == nullptr) {
    data_ = image;
    return;
  }
  Write(0, image.data(), std::min(image.size(), size_));
}

void PmDevice::Poison(uint64_t off, size_t n) {
  if (n == 0) {
    return;
  }
  uint64_t lo = off;
  uint64_t hi = off + n;
  // First range whose end reaches lo: everything before it is disjoint and
  // non-adjacent. Ranges are sorted and coalesced, so the ranges to merge
  // form one contiguous run starting here.
  auto first = std::partition_point(
      poison_.begin(), poison_.end(),
      [lo](const PoisonRange& r) { return r.off + r.len < lo; });
  auto last = first;
  while (last != poison_.end() && last->off <= hi) {
    lo = std::min(lo, last->off);
    hi = std::max(hi, last->off + last->len);
    ++last;
  }
  if (first != last) {
    first->off = lo;
    first->len = hi - lo;
    poison_.erase(first + 1, last);
  } else {
    poison_.insert(first, PoisonRange{lo, static_cast<size_t>(hi - lo)});
  }
}

bool PmDevice::PoisonOverlaps(uint64_t off, size_t n) const {
  if (poison_.empty() || n == 0) {
    return false;
  }
  // First range ending after off; it is the only candidate that can reach
  // into [off, off + n).
  auto it = std::partition_point(
      poison_.begin(), poison_.end(),
      [off](const PoisonRange& r) { return r.off + r.len <= off; });
  return it != poison_.end() && it->off < off + n;
}

}  // namespace pmem
