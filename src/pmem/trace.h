// Trace records produced by the persistence-function hooks.
//
// These correspond to the log entries Chipmunk's Kprobes/Uprobes handlers
// record: non-temporal stores, cache-line flushes (with the buffer contents at
// flush time), store fences, and the syscall begin/end markers the user-space
// harness inserts (§3.3, "Logging writes").
#ifndef CHIPMUNK_PMEM_TRACE_H_
#define CHIPMUNK_PMEM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmem {

enum class PmOpKind {
  kNtStore,   // non-temporal memcpy: durable at the next fence
  kNtSet,     // non-temporal memset: durable at the next fence
  kFlush,     // clwb over a buffer: contents captured, durable at next fence
  kFence,     // sfence: everything in flight becomes durable
  kMarker,    // harness marker, not a media write
  kStore,     // temporal store: volatile until flushed; recorded only when
              // the logger's temporal mode is on (static lint analysis)
};

enum class MarkerKind {
  kNone,
  kSyscallBegin,
  kSyscallEnd,
  kCheckerBegin,  // consistency checks start mutating; replayer ignores after
  kCheckerEnd,
};

struct PmOp {
  PmOpKind kind = PmOpKind::kFence;
  uint64_t off = 0;
  std::vector<uint8_t> data;  // contents for kNtStore/kNtSet/kFlush

  MarkerKind marker = MarkerKind::kNone;
  int32_t syscall_index = -1;  // workload op this belongs to; -1 = outside
  std::string note;            // marker annotation (syscall name etc.)

  // Durability-pending media writes — the ops the replayer treats as in
  // flight at a fence. Temporal kStore ops are volatile (their contents reach
  // durability only through a later kFlush) and are deliberately excluded.
  bool IsWrite() const {
    return kind == PmOpKind::kNtStore || kind == PmOpKind::kNtSet ||
           kind == PmOpKind::kFlush;
  }
};

using Trace = std::vector<PmOp>;

// Applies a single write op to an image. Out-of-range ops are clamped (they
// cannot occur for traces produced by Pm, which bounds-checks all access).
void ApplyOp(std::vector<uint8_t>& image, const PmOp& op);

}  // namespace pmem

#endif  // CHIPMUNK_PMEM_TRACE_H_
