// Lightweight Status / StatusOr error propagation for the chipmunk libraries.
//
// File-system operations return POSIX-flavoured error codes; framework-level
// failures (corruption detected at mount, out-of-bounds media access) get their
// own codes so the checker can distinguish "legal errno" from "broken FS".
#ifndef CHIPMUNK_COMMON_STATUS_H_
#define CHIPMUNK_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace common {

enum class ErrorCode {
  kOk = 0,
  kNotFound,       // ENOENT
  kExists,         // EEXIST
  kNotDir,         // ENOTDIR
  kIsDir,          // EISDIR
  kNotEmpty,       // ENOTEMPTY
  kNoSpace,        // ENOSPC
  kInvalid,        // EINVAL
  kBadFd,          // EBADF
  kTooManyFiles,   // EMFILE / ENFILE
  kNameTooLong,    // ENAMETOOLONG
  kCrossDevice,    // EXDEV
  kIo,             // EIO: media-level failure surfaced to the caller
  kCorruption,     // recovery/mount found an inconsistent image
  kOutOfBounds,    // access outside the PM device (KASAN-style fault)
  kNotMounted,     // operation issued against an unmounted FS
  kNotSupported,   // operation not implemented by this FS
  kInternal,       // invariant violation inside the framework itself
  kRecoveryTimeout,  // sandboxed recovery exhausted its cooperative op budget
};

// Human-readable name for an error code ("kNotFound" -> "not-found").
std::string_view ErrorCodeName(ErrorCode code);

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "not-found: no such entry 'foo'".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status NotFound(std::string msg = "") {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg = "") {
  return Status(ErrorCode::kExists, std::move(msg));
}
inline Status NotDir(std::string msg = "") {
  return Status(ErrorCode::kNotDir, std::move(msg));
}
inline Status IsDir(std::string msg = "") {
  return Status(ErrorCode::kIsDir, std::move(msg));
}
inline Status NotEmpty(std::string msg = "") {
  return Status(ErrorCode::kNotEmpty, std::move(msg));
}
inline Status NoSpace(std::string msg = "") {
  return Status(ErrorCode::kNoSpace, std::move(msg));
}
inline Status Invalid(std::string msg = "") {
  return Status(ErrorCode::kInvalid, std::move(msg));
}
inline Status BadFd(std::string msg = "") {
  return Status(ErrorCode::kBadFd, std::move(msg));
}
inline Status IoError(std::string msg = "") {
  return Status(ErrorCode::kIo, std::move(msg));
}
inline Status Corruption(std::string msg = "") {
  return Status(ErrorCode::kCorruption, std::move(msg));
}
inline Status OutOfBounds(std::string msg = "") {
  return Status(ErrorCode::kOutOfBounds, std::move(msg));
}
inline Status NotMounted(std::string msg = "") {
  return Status(ErrorCode::kNotMounted, std::move(msg));
}
inline Status NotSupported(std::string msg = "") {
  return Status(ErrorCode::kNotSupported, std::move(msg));
}
inline Status Internal(std::string msg = "") {
  return Status(ErrorCode::kInternal, std::move(msg));
}
inline Status RecoveryTimeout(std::string msg = "") {
  return Status(ErrorCode::kRecoveryTimeout, std::move(msg));
}

// StatusOr<T>: either a value or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : payload_(std::move(status)) {  // NOLINT: implicit
    assert(!std::get<Status>(payload_).ok() && "OK status without a value");
  }
  StatusOr(T value) : payload_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace common

// Propagates a non-OK Status from an expression.
#define RETURN_IF_ERROR(expr)                 \
  do {                                        \
    ::common::Status _st = (expr);            \
    if (!_st.ok()) {                          \
      return _st;                             \
    }                                         \
  } while (0)

// Assigns the value of a StatusOr expression or propagates its error.
#define ASSIGN_OR_RETURN(lhs, expr)           \
  ASSIGN_OR_RETURN_IMPL(                      \
      CHIPMUNK_STATUS_CONCAT(_status_or_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                          \
  if (!tmp.ok()) {                            \
    return tmp.status();                      \
  }                                           \
  lhs = std::move(tmp).value()

#define CHIPMUNK_STATUS_CONCAT_INNER(a, b) a##b
#define CHIPMUNK_STATUS_CONCAT(a, b) CHIPMUNK_STATUS_CONCAT_INNER(a, b)

#endif  // CHIPMUNK_COMMON_STATUS_H_
