#include "src/common/status.h"

namespace common {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kExists:
      return "already-exists";
    case ErrorCode::kNotDir:
      return "not-a-directory";
    case ErrorCode::kIsDir:
      return "is-a-directory";
    case ErrorCode::kNotEmpty:
      return "not-empty";
    case ErrorCode::kNoSpace:
      return "no-space";
    case ErrorCode::kInvalid:
      return "invalid-argument";
    case ErrorCode::kBadFd:
      return "bad-fd";
    case ErrorCode::kTooManyFiles:
      return "too-many-files";
    case ErrorCode::kNameTooLong:
      return "name-too-long";
    case ErrorCode::kCrossDevice:
      return "cross-device";
    case ErrorCode::kIo:
      return "io-error";
    case ErrorCode::kCorruption:
      return "corruption";
    case ErrorCode::kOutOfBounds:
      return "out-of-bounds";
    case ErrorCode::kNotMounted:
      return "not-mounted";
    case ErrorCode::kNotSupported:
      return "not-supported";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kRecoveryTimeout:
      return "recovery-timeout";
  }
  return "unknown";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace common
