// Coverage map for the gray-box fuzzer (§3.4.2).
//
// Syzkaller collects kernel coverage via compiler instrumentation (KCOV /
// sanitizer coverage). The analogue here is a process-wide coverage map that
// file-system code feeds through the CHIPMUNK_COV() macro; the fuzzer
// installs a map before running a workload and diffs it against the corpus
// afterwards. When no map is installed the macro is a cheap no-op, so
// non-fuzzing users pay almost nothing.
#ifndef CHIPMUNK_COMMON_COVERAGE_H_
#define CHIPMUNK_COMMON_COVERAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace common {

class CoverageMap {
 public:
  static constexpr size_t kSlots = 1 << 14;

  void Hit(uint32_t site) { hits_[site % kSlots] = 1; }

  // Slot accessor for serialization (campaign store). `slot` must be in
  // [0, kSlots); reconstruction via Hit(slot) is exact for that range.
  bool Test(size_t slot) const { return hits_[slot] != 0; }

  // Number of slots set here that are not set in `corpus`.
  size_t CountNewAgainst(const CoverageMap& corpus) const {
    size_t fresh = 0;
    for (size_t i = 0; i < kSlots; ++i) {
      if (hits_[i] && !corpus.hits_[i]) {
        ++fresh;
      }
    }
    return fresh;
  }

  void MergeFrom(const CoverageMap& other) {
    for (size_t i = 0; i < kSlots; ++i) {
      hits_[i] |= other.hits_[i];
    }
  }

  size_t CountSet() const {
    size_t n = 0;
    for (uint8_t h : hits_) {
      n += h;
    }
    return n;
  }

  void Clear() { hits_.fill(0); }

  // The map installed on the *calling thread*, or nullptr. The slot is
  // thread-local so the parallel replay engine can give every worker a
  // private map (merged into the parent's map with MergeFrom after the
  // workers join) without the file-system code under test taking locks on
  // the hot CHIPMUNK_COV path.
  static CoverageMap*& Current() {
    thread_local CoverageMap* current = nullptr;
    return current;
  }

 private:
  std::array<uint8_t, kSlots> hits_{};
};

namespace internal {
// FNV-1a over the file name, mixed with the line; evaluated per call site.
constexpr uint32_t CovSiteId(const char* file, uint32_t line) {
  uint32_t h = 2166136261u;
  for (const char* p = file; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint32_t>(*p)) * 16777619u;
  }
  return h ^ (line * 2654435761u);
}
}  // namespace internal

}  // namespace common

// Marks a coverage point. Place on interesting control-flow paths in
// file-system code.
#define CHIPMUNK_COV()                                                        \
  do {                                                                        \
    ::common::CoverageMap* _cov = ::common::CoverageMap::Current();           \
    if (_cov != nullptr) {                                                    \
      constexpr uint32_t _site =                                              \
          ::common::internal::CovSiteId(__FILE__, __LINE__);                  \
      _cov->Hit(_site);                                                       \
    }                                                                         \
  } while (0)

#endif  // CHIPMUNK_COMMON_COVERAGE_H_
