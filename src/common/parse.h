// Strict decimal parsing, shared by the CLI flag parser and every place that
// ingests externally-written numerics (quarantine metadata, campaign-store
// text records). std::atoi/strtoul/stoull silently accept signs, leading
// garbage, trailing garbage, and out-of-range values (or throw); this parser
// rejects all of them and never throws.
#ifndef CHIPMUNK_COMMON_PARSE_H_
#define CHIPMUNK_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>

namespace common {

// Parses `s` as an unsigned decimal integer in [0, max]. Returns false (and
// leaves *out untouched) on an empty string, any sign, any non-digit
// character, or a value exceeding `max`.
inline bool ParseUint64(std::string_view s, uint64_t max, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t parsed = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    // Checked in two steps: `max - digit` underflows when max < digit (any
    // single-digit bound), and `parsed * 10 + digit` can wrap near 2^64.
    if (parsed > max / 10) {
      return false;
    }
    parsed *= 10;
    if (digit > max - parsed) {
      return false;
    }
    parsed += digit;
  }
  *out = parsed;
  return true;
}

}  // namespace common

#endif  // CHIPMUNK_COMMON_PARSE_H_
