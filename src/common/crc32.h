// CRC32 (the zlib polynomial) used for on-media checksums in the fortis mode of
// novafs and for content fingerprints in the checker and fuzzer.
#ifndef CHIPMUNK_COMMON_CRC32_H_
#define CHIPMUNK_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace common {

// Computes CRC32 over [data, data+len), chaining from `seed` (pass 0 to start).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace common

#endif  // CHIPMUNK_COMMON_CRC32_H_
