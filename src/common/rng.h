// Deterministic, seedable RNG (splitmix64 + xoshiro256**) used throughout the
// fuzzer and the randomized tests. std::mt19937 is avoided so that streams are
// reproducible across standard-library implementations.
#ifndef CHIPMUNK_COMMON_RNG_H_
#define CHIPMUNK_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace common {

// The splitmix64 finalizer: a cheap bijective mixer. Used to decorrelate
// stream ids before they are folded into a seed, so that consecutive ids
// (workload ordinals, worker indices) yield unrelated streams.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // An independent stream keyed by (seed, ordinal): the stream depends only
  // on those two values, never on how many draws other streams have made.
  // This is what lets the fuzzer generate workload N on any thread, in any
  // order, and still be deterministic.
  static Rng Stream(uint64_t seed, uint64_t ordinal) {
    return Rng(seed ^ SplitMix64(ordinal));
  }

  uint64_t Next() {
    uint64_t* s = state_;
    const uint64_t result = Rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace common

#endif  // CHIPMUNK_COMMON_RNG_H_
