// Streaming FNV-1a 64-bit hash, used for the campaign store's crash-state
// equivalence index. CRC32 is kept for on-media framing checksums (where a
// detected mismatch just means "re-run"); the equivalence index keys *skip*
// decisions on hash equality, so it gets the 64-bit digest — a false match
// requires an FNV-1a collision across the full (image chain, check context)
// input, not a 32-bit one.
#ifndef CHIPMUNK_COMMON_HASH_H_
#define CHIPMUNK_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace common {

class Fnv64 {
 public:
  static constexpr uint64_t kOffset = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  Fnv64& Update(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ = (hash_ ^ p[i]) * kPrime;
    }
    return *this;
  }

  Fnv64& Update(std::string_view s) { return Update(s.data(), s.size()); }

  // Length-framed: Update(u64) folds the value byte-wise, so that
  // Update(a).Update(b) cannot collide with a re-split of the same byte
  // stream at a different u64 boundary in practice.
  Fnv64& Update(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ static_cast<uint8_t>(v >> (8 * i))) * kPrime;
    }
    return *this;
  }

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = kOffset;
};

}  // namespace common

#endif  // CHIPMUNK_COMMON_HASH_H_
