#include "src/workload/ace.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>

#include "src/vfs/filesystem.h"

namespace workload {

namespace {

Op Core(OpKind kind, std::string path, std::string path2 = "") {
  Op op;
  op.kind = kind;
  op.path = std::move(path);
  op.path2 = std::move(path2);
  return op;
}

Op CoreWrite(std::string path, uint64_t off, uint64_t len, bool append) {
  Op op;
  op.kind = append ? OpKind::kWrite : OpKind::kPwrite;
  op.path = std::move(path);
  op.off = off;
  op.len = len;
  return op;
}

Op CoreFalloc(std::string path, uint32_t mode, uint64_t off, uint64_t len) {
  Op op;
  op.kind = OpKind::kFalloc;
  op.path = std::move(path);
  op.falloc_mode = mode;
  op.off = off;
  op.len = len;
  return op;
}

Op CoreTruncate(std::string path, uint64_t size) {
  Op op;
  op.kind = OpKind::kTruncate;
  op.path = std::move(path);
  op.len = size;
  return op;
}

// Whether the core op requires its primary path to already exist, and what
// kind of node it must be.
bool NeedsExistingFile(const Op& op) {
  switch (op.kind) {
    case OpKind::kFalloc:
    case OpKind::kWrite:
    case OpKind::kPwrite:
    case OpKind::kTruncate:
    case OpKind::kSetxattr:
    case OpKind::kRemovexattr:
    case OpKind::kUnlink:
    case OpKind::kRemove:
    case OpKind::kRmdir:
    case OpKind::kLink:    // link source
    case OpKind::kRename:  // rename source
      return true;
    default:
      return false;
  }
}

bool IsDirPath(const std::string& path) {
  // In the ACE vocabulary directories are the single-letter paths /A, /B
  // and their nested /A/C, /B/C.
  const std::string& leaf = path.substr(path.find_last_of('/') + 1);
  return !leaf.empty() && leaf.size() == 1 && leaf[0] >= 'A' && leaf[0] <= 'Z';
}

}  // namespace

std::vector<Op> AceCoreOps() {
  std::vector<Op> ops;
  const std::vector<std::string> files = {"/foo", "/bar", "/A/foo", "/A/bar"};
  const std::vector<std::string> wfiles = {"/foo", "/A/foo"};

  // creat x4
  for (const auto& f : files) {
    ops.push_back(Core(OpKind::kCreat, f));
  }
  // mkdir x4 (top-level and nested)
  ops.push_back(Core(OpKind::kMkdir, "/A"));
  ops.push_back(Core(OpKind::kMkdir, "/B"));
  ops.push_back(Core(OpKind::kMkdir, "/A/C"));
  ops.push_back(Core(OpKind::kMkdir, "/B/C"));
  // fallocate x8: 4 modes x 2 files
  for (const auto& f : wfiles) {
    ops.push_back(CoreFalloc(f, 0, 0, 5000));
    ops.push_back(CoreFalloc(f, vfs::kFallocKeepSize, 0, 5000));
    ops.push_back(CoreFalloc(f, vfs::kFallocZeroRange | vfs::kFallocKeepSize, 496, 2048));
    ops.push_back(CoreFalloc(f, vfs::kFallocPunchHole | vfs::kFallocKeepSize, 496, 2048));
  }
  // write x12: 6 variants x 2 files. Sizes/offsets are 8-byte aligned (the
  // fuzzer covers unaligned I/O) and mostly not 256-byte-aligned.
  for (const auto& f : wfiles) {
    ops.push_back(CoreWrite(f, 0, 5000, /*append=*/false));    // multi-page
    ops.push_back(CoreWrite(f, 0, 4096, /*append=*/false));    // exact page
    ops.push_back(CoreWrite(f, 2000, 5000, /*append=*/false)); // extend middle
    ops.push_back(CoreWrite(f, 0, 1000, /*append=*/false));    // small head
    ops.push_back(CoreWrite(f, 4096, 4096, /*append=*/false)); // second page
    ops.push_back(CoreWrite(f, 0, 3000, /*append=*/true));     // append
  }
  // link x4
  ops.push_back(Core(OpKind::kLink, "/foo", "/bar"));
  ops.push_back(Core(OpKind::kLink, "/bar", "/foo"));
  ops.push_back(Core(OpKind::kLink, "/foo", "/A/bar"));
  ops.push_back(Core(OpKind::kLink, "/A/foo", "/bar"));
  // unlink x4
  for (const auto& f : files) {
    ops.push_back(Core(OpKind::kUnlink, f));
  }
  // remove x4 (two files, two directories)
  ops.push_back(Core(OpKind::kRemove, "/foo"));
  ops.push_back(Core(OpKind::kRemove, "/A/foo"));
  ops.push_back(Core(OpKind::kRemove, "/A"));
  ops.push_back(Core(OpKind::kRemove, "/B"));
  // rename x8 (file-file within and across directories, dir-dir)
  ops.push_back(Core(OpKind::kRename, "/foo", "/bar"));
  ops.push_back(Core(OpKind::kRename, "/bar", "/foo"));
  ops.push_back(Core(OpKind::kRename, "/foo", "/A/bar"));
  ops.push_back(Core(OpKind::kRename, "/A/foo", "/bar"));
  ops.push_back(Core(OpKind::kRename, "/A/foo", "/A/bar"));
  ops.push_back(Core(OpKind::kRename, "/A/bar", "/foo"));
  ops.push_back(Core(OpKind::kRename, "/A", "/B"));
  ops.push_back(Core(OpKind::kRename, "/B", "/A"));
  // truncate x6: {shrink-unaligned, zero, extend} x 2 files
  for (const auto& f : wfiles) {
    ops.push_back(CoreTruncate(f, 2504));  // 8-aligned, page-unaligned
    ops.push_back(CoreTruncate(f, 0));
    ops.push_back(CoreTruncate(f, 9000));
  }
  // rmdir x2
  ops.push_back(Core(OpKind::kRmdir, "/A"));
  ops.push_back(Core(OpKind::kRmdir, "/B"));
  return ops;
}

std::vector<Op> AceXattrOps() {
  // setxattr/removexattr variants, only meaningful for the weak-guarantee
  // systems (§4.1: "Tests run on ext4-DAX and XFS-DAX also include setxattr
  // and removexattr").
  std::vector<Op> ops;
  for (const std::string& f : {std::string("/foo"), std::string("/A/foo")}) {
    Op set;
    set.kind = OpKind::kSetxattr;
    set.path = f;
    set.path2 = "user.tag";
    set.len = 24;
    ops.push_back(set);
    Op set2 = set;
    set2.path2 = "user.checksum";
    set2.len = 64;
    ops.push_back(set2);
    Op rm;
    rm.kind = OpKind::kRemovexattr;
    rm.path = f;
    rm.path2 = "user.tag";
    ops.push_back(rm);
  }
  return ops;
}

std::vector<Op> AceMetadataCoreOps() {
  std::vector<Op> out;
  for (const Op& op : AceCoreOps()) {
    if (op.kind == OpKind::kPwrite || op.kind == OpKind::kWrite ||
        op.kind == OpKind::kLink || op.kind == OpKind::kUnlink ||
        op.kind == OpKind::kRename) {
      out.push_back(op);
    }
  }
  return out;
}

Workload BuildAceWorkload(const std::vector<Op>& core_ops, SyncPolicy sync,
                          std::string name) {
  Workload w;
  w.name = std::move(name);

  // Dependency satisfaction: parents first, then operand existence. All
  // setup ops are emitted up front, like CrashMonkey's ACE.
  std::set<std::string> ensured_dirs;
  std::set<std::string> ensured_files;
  auto ensure_parents = [&](const std::string& path) {
    std::vector<std::string> chain;
    std::string cur = ParentPath(path);
    while (cur != "/") {
      chain.push_back(cur);
      cur = ParentPath(cur);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (ensured_dirs.insert(*it).second) {
        Op op = Core(OpKind::kMkdir, *it);
        op.setup = true;
        w.ops.push_back(op);
      }
    }
  };
  auto ensure_node = [&](const std::string& path) {
    ensure_parents(path);
    if (IsDirPath(path)) {
      if (ensured_dirs.insert(path).second) {
        Op op = Core(OpKind::kMkdir, path);
        op.setup = true;
        w.ops.push_back(op);
      }
    } else if (ensured_files.insert(path).second) {
      Op op = Core(OpKind::kCreat, path);
      op.setup = true;
      w.ops.push_back(op);
    }
  };
  for (const Op& core : core_ops) {
    ensure_parents(core.path);
    if (NeedsExistingFile(core)) {
      ensure_node(core.path);
    }
    if (core.kind == OpKind::kRemovexattr) {
      Op set;
      set.kind = OpKind::kSetxattr;
      set.path = core.path;
      set.path2 = core.path2;
      set.len = 16;
      set.setup = true;
      w.ops.push_back(set);
    }
    if (!core.path2.empty()) {
      ensure_parents(core.path2);
    }
    // Nodes created by earlier core ops count as ensured.
    if (core.kind == OpKind::kCreat) {
      ensured_files.insert(core.path);
    }
    if (core.kind == OpKind::kMkdir) {
      ensured_dirs.insert(core.path);
    }
  }

  // Emit the core ops, wrapping fd-based calls in open/close and appending
  // the persistence point in weak mode.
  int next_slot = 0;
  for (const Op& core : core_ops) {
    const bool fd_based = core.kind == OpKind::kWrite ||
                          core.kind == OpKind::kPwrite ||
                          core.kind == OpKind::kFalloc;
    int slot = -1;
    if (fd_based) {
      slot = next_slot++;
      Op open;
      open.kind = OpKind::kOpen;
      open.path = core.path;
      open.fd_slot = slot;
      open.oflag_create = true;
      open.oflag_append = core.kind == OpKind::kWrite;
      open.setup = true;
      w.ops.push_back(open);
    }
    Op op = core;
    op.fd_slot = slot;
    w.ops.push_back(op);
    if (fd_based) {
      Op close;
      close.kind = OpKind::kClose;
      close.fd_slot = slot;
      close.setup = true;
      w.ops.push_back(close);
    }
    if (sync != SyncPolicy::kNone) {
      if (sync == SyncPolicy::kSync) {
        Op s;
        s.kind = OpKind::kSync;
        w.ops.push_back(s);
      } else {
        const std::string& target =
            IsDirPath(core.path) || core.path.empty() ? "" : core.path;
        if (!target.empty()) {
          int fslot = next_slot++;
          Op open;
          open.kind = OpKind::kOpen;
          open.path = target;
          open.fd_slot = fslot;
          open.oflag_create = true;
          open.setup = true;
          w.ops.push_back(open);
          Op fs;
          fs.kind = sync == SyncPolicy::kFsync ? OpKind::kFsync
                                               : OpKind::kFdatasync;
          fs.path = target;
          fs.fd_slot = fslot;
          w.ops.push_back(fs);
          Op close;
          close.kind = OpKind::kClose;
          close.fd_slot = fslot;
          close.setup = true;
          w.ops.push_back(close);
        } else {
          Op s;
          s.kind = OpKind::kSync;
          w.ops.push_back(s);
        }
      }
    }
  }
  return w;
}

AceEnumerator::AceEnumerator(const AceOptions& options) : options_(options) {
  vocab_ = options.metadata_only ? AceMetadataCoreOps() : AceCoreOps();
  if (options.weak_mode && !options.metadata_only) {
    std::vector<Op> xattrs = AceXattrOps();
    vocab_.insert(vocab_.end(), xattrs.begin(), xattrs.end());
  }
  policies_ =
      options.weak_mode
          ? std::vector<SyncPolicy>{SyncPolicy::kFsync, SyncPolicy::kFdatasync,
                                    SyncPolicy::kSync}
          : std::vector<SyncPolicy>{SyncPolicy::kNone};
  count_ = policies_.size();
  for (int i = 0; i < options_.seq; ++i) {
    count_ *= vocab_.size();
  }
}

Workload AceEnumerator::At(uint64_t ordinal) const {
  // Decode the canonical order: sync policy is the innermost loop, the
  // odometer digits are most-significant-first (idx[seq-1] fastest).
  const SyncPolicy policy = policies_[ordinal % policies_.size()];
  uint64_t rest = ordinal / policies_.size();
  std::vector<size_t> idx(options_.seq, 0);
  for (int i = options_.seq - 1; i >= 0; --i) {
    idx[i] = static_cast<size_t>(rest % vocab_.size());
    rest /= vocab_.size();
  }
  std::vector<Op> core;
  std::string name = "seq" + std::to_string(options_.seq);
  if (options_.metadata_only) {
    name += "m";
  }
  for (size_t i : idx) {
    core.push_back(vocab_[i]);
    name += "-" + std::to_string(i);
  }
  if (options_.weak_mode) {
    name += policy == SyncPolicy::kFsync
                ? "-fsync"
                : (policy == SyncPolicy::kFdatasync ? "-fdatasync" : "-sync");
  }
  return BuildAceWorkload(core, policy, std::move(name));
}

uint64_t AceWorkloadCount(const AceOptions& options) {
  return AceEnumerator(options).count();
}

uint64_t ForEachAceWorkload(const AceOptions& options,
                            const std::function<bool(const Workload&)>& fn) {
  // One construction path for streaming and random access: the stream is by
  // definition At(0), At(1), ... so sharded / resumed campaigns can never
  // drift from the sweep order.
  const AceEnumerator enumerator(options);
  uint64_t visited = 0;
  for (uint64_t g = 0; g < enumerator.count(); ++g) {
    ++visited;
    if (!fn(enumerator.At(g))) {
      break;
    }
  }
  return visited;
}

std::vector<Workload> GenerateAce(const AceOptions& options) {
  std::vector<Workload> out;
  out.reserve(AceWorkloadCount(options));
  ForEachAceWorkload(options, [&out](const Workload& w) {
    out.push_back(w);
    return true;
  });
  return out;
}

}  // namespace workload
