// Workload intermediate representation: the sequence of file-system
// operations a test executes. Produced by the ACE generator (ace.h) and the
// fuzzer (src/fuzz), consumed by the harness runner (src/core/runner.h).
#ifndef CHIPMUNK_WORKLOAD_WORKLOAD_H_
#define CHIPMUNK_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace workload {

enum class OpKind {
  kCreat,   // open(path, O_CREAT) + close
  kMkdir,
  kFalloc,  // fd_slot-based
  kWrite,   // fd_slot-based, at the descriptor offset
  kPwrite,  // fd_slot-based, at `off`
  kLink,    // path -> path2
  kUnlink,
  kRemove,  // unlink or rmdir by type
  kRename,  // path -> path2
  kTruncate,
  kRmdir,
  kOpen,   // assigns fd_slot
  kClose,  // closes fd_slot
  kFsync,
  kFdatasync,
  kSync,
  kRead,    // fd_slot-based sequential read (fuzzer-only; exercises offsets)
  kSetxattr,     // path2 = attribute name; len/fill describe the value
  kRemovexattr,  // path2 = attribute name
  kReaddir,  // directory listing by path (conflict templates: create-vs-readdir)
  kNone,
};

const char* OpKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kNone;
  std::string path;
  std::string path2;
  uint64_t off = 0;
  uint64_t len = 0;
  uint32_t falloc_mode = 0;
  uint8_t fill = 'a';
  int fd_slot = -1;  // slot index for fd-based ops / kOpen target slot
  bool oflag_create = false;
  bool oflag_trunc = false;
  bool oflag_append = false;
  bool oflag_excl = false;
  // Marks a dependency-satisfaction op inserted by ACE (not a core op).
  bool setup = false;
  // Logical thread issuing the op. The realized op order IS the schedule:
  // the runner executes ops in sequence, and `tid` records which logical
  // thread each syscall belongs to (provenance for the trace and input to
  // the linearization oracle). 0 is the default/main thread.
  int tid = 0;

  std::string ToString() const;
};

struct Workload {
  std::string name;
  std::vector<Op> ops;
  // Number of logical threads whose programs were interleaved into `ops`
  // (1 = classic single-threaded workload). The interleaving is realized at
  // generation time (src/concurrency/schedule.h) from `schedule_seed`, so
  // replay needs no scheduler: executing `ops` in order replays the
  // schedule bit-identically.
  int threads = 1;
  uint64_t schedule_seed = 0;

  // All paths the workload can touch (operands plus every ancestor
  // directory, plus "/"), sorted and deduplicated. This is the universe the
  // oracle snapshots and the checker compares.
  std::vector<std::string> Universe() const;

  std::string ToString() const;
};

// Deterministic data payload for write ops: both the recorded run and the
// oracle run must produce identical bytes.
std::vector<uint8_t> MakeData(uint8_t fill, uint64_t off, uint64_t len);

// Parent directory of an absolute path ("/a/b" -> "/a", "/a" -> "/").
std::string ParentPath(const std::string& path);

}  // namespace workload

#endif  // CHIPMUNK_WORKLOAD_WORKLOAD_H_
