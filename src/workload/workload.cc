#include "src/workload/workload.h"

#include <algorithm>
#include <set>

namespace workload {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCreat:
      return "creat";
    case OpKind::kMkdir:
      return "mkdir";
    case OpKind::kFalloc:
      return "falloc";
    case OpKind::kWrite:
      return "write";
    case OpKind::kPwrite:
      return "pwrite";
    case OpKind::kLink:
      return "link";
    case OpKind::kUnlink:
      return "unlink";
    case OpKind::kRemove:
      return "remove";
    case OpKind::kRename:
      return "rename";
    case OpKind::kTruncate:
      return "truncate";
    case OpKind::kRmdir:
      return "rmdir";
    case OpKind::kOpen:
      return "open";
    case OpKind::kClose:
      return "close";
    case OpKind::kFsync:
      return "fsync";
    case OpKind::kFdatasync:
      return "fdatasync";
    case OpKind::kSync:
      return "sync";
    case OpKind::kRead:
      return "read";
    case OpKind::kSetxattr:
      return "setxattr";
    case OpKind::kRemovexattr:
      return "removexattr";
    case OpKind::kReaddir:
      return "readdir";
    case OpKind::kNone:
      return "none";
  }
  return "?";
}

std::string Op::ToString() const {
  std::string s = OpKindName(kind);
  if (!path.empty()) {
    s += " " + path;
  }
  if (!path2.empty()) {
    s += (kind == OpKind::kSetxattr || kind == OpKind::kRemovexattr)
             ? " attr=" + path2
             : " -> " + path2;
  }
  if (kind == OpKind::kWrite || kind == OpKind::kPwrite ||
      kind == OpKind::kFalloc || kind == OpKind::kRead) {
    s += " off=" + std::to_string(off) + " len=" + std::to_string(len);
  }
  if (kind == OpKind::kTruncate) {
    s += " size=" + std::to_string(len);
  }
  if (fd_slot >= 0) {
    s += " slot=" + std::to_string(fd_slot);
  }
  if (tid > 0) {
    s += " tid=" + std::to_string(tid);
  }
  if (setup) {
    s += " (setup)";
  }
  return s;
}

std::string ParentPath(const std::string& path) {
  size_t pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) {
    return "/";
  }
  return path.substr(0, pos);
}

std::vector<std::string> Workload::Universe() const {
  std::set<std::string> paths;
  paths.insert("/");
  auto add = [&paths](const std::string& p) {
    if (p.empty() || p[0] != '/') {
      return;
    }
    std::string cur = p;
    while (cur != "/") {
      paths.insert(cur);
      cur = ParentPath(cur);
    }
  };
  for (const Op& op : ops) {
    add(op.path);
    if (op.kind == OpKind::kLink || op.kind == OpKind::kRename) {
      add(op.path2);  // for xattr ops path2 is the attribute name
    }
  }
  return std::vector<std::string>(paths.begin(), paths.end());
}

std::string Workload::ToString() const {
  std::string s = name.empty() ? "workload" : name;
  s += ":";
  for (const Op& op : ops) {
    s += "\n  " + op.ToString();
  }
  return s;
}

std::vector<uint8_t> MakeData(uint8_t fill, uint64_t off, uint64_t len) {
  std::vector<uint8_t> data(len);
  for (uint64_t i = 0; i < len; ++i) {
    data[i] = static_cast<uint8_t>(fill + (off + i) % 17);
  }
  return data;
}

}  // namespace workload
