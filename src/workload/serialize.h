// Text serialization for workloads, so bug reports can reference a
// reproducible artifact and the CLI can run workloads from files.
//
// Format: one op per line, `#` comments and blank lines ignored.
//
//   # comment
//   creat /foo
//   mkdir /A
//   open /foo slot=0 create
//   pwrite /foo slot=0 off=0 len=5000 fill=a
//   write /foo slot=0 len=100
//   falloc /foo slot=0 mode=keep_size off=0 len=4096
//   close slot=0
//   link /foo /bar
//   rename /foo /bar
//   unlink /foo
//   remove /A
//   rmdir /A
//   truncate /foo size=2500
//   fsync /foo slot=0
//   fdatasync /foo slot=0
//   sync
//   read slot=0 len=100
#ifndef CHIPMUNK_WORKLOAD_SERIALIZE_H_
#define CHIPMUNK_WORKLOAD_SERIALIZE_H_

#include <string>

#include "src/common/status.h"
#include "src/workload/workload.h"

namespace workload {

// Serializes a workload to the text format (round-trips with Parse).
std::string Serialize(const Workload& w);

// Parses the text format; fails with kInvalid on malformed lines.
common::StatusOr<Workload> ParseWorkload(const std::string& text,
                                         std::string name = "parsed");

}  // namespace workload

#endif  // CHIPMUNK_WORKLOAD_SERIALIZE_H_
