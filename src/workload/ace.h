// ACE: the Automatic Crash Explorer workload generator (§3.4.1), after
// CrashMonkey's ACE (Mohan et al., TOS '19), adapted for synchronous PM file
// systems.
//
// ACE exhaustively generates workloads of a fixed structure: sequences of n
// "core" operations drawn from a fixed vocabulary over a small set of files
// (seq-n workloads), with dependency-satisfying setup operations (mkdir for
// parents, creat for operands, open/close around fd-based calls) inserted
// automatically. The PM mode emits no fsync calls — the systems under test
// are synchronous; the default (weak) mode inserts an fsync-family
// persistence point after every core op, for ext4-DAX-style systems.
//
// seq-3 generation is restricted to the metadata vocabulary (pwrite, link,
// unlink, rename), mirroring the paper's "seq-3 metadata" workloads.
#ifndef CHIPMUNK_WORKLOAD_ACE_H_
#define CHIPMUNK_WORKLOAD_ACE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/workload/workload.h"

namespace workload {

enum class SyncPolicy {
  kNone,       // PM mode: no persistence points (strong guarantees)
  kFsync,      // after each core op, fsync the primary file
  kFdatasync,  // after each core op, fdatasync the primary file
  kSync,       // after each core op, sync()
};

struct AceOptions {
  int seq = 1;                 // number of core ops per workload
  bool metadata_only = false;  // restrict to the metadata vocabulary
  // PM mode (no fsync) when false; CrashMonkey-style default mode (all three
  // sync policies are enumerated per core sequence) when true.
  bool weak_mode = false;
};

// The core-op vocabulary (56 variants in PM mode, matching the generator
// the paper describes producing 56 seq-1 workloads).
std::vector<Op> AceCoreOps();

// The metadata subset used for seq-3 (pwrite, link, unlink, rename).
std::vector<Op> AceMetadataCoreOps();

// Number of workloads GenerateAce will produce for the options.
uint64_t AceWorkloadCount(const AceOptions& options);

// Materializes all seq-`seq` workloads. For large counts prefer
// ForEachAceWorkload, which streams without building the whole vector.
std::vector<Workload> GenerateAce(const AceOptions& options);

// Streams workloads; `fn` returns false to stop early. Returns the number
// of workloads visited.
uint64_t ForEachAceWorkload(const AceOptions& options,
                            const std::function<bool(const Workload&)>& fn);

// The canonical ordinal <-> workload mapping behind ForEachAceWorkload:
// global ordinal g enumerates the core-op odometer most-significant-digit
// first with the sync policies innermost, so At(g) is exactly the (g+1)-th
// workload the streaming enumeration visits. Random access is what makes
// ACE campaigns shardable and resumable: shard i/n owns a contiguous ordinal
// range and a resume rebuilds its in-flight window from ordinals alone.
// The vocabulary is materialized once at construction, so At() is cheap
// enough to call per workload.
class AceEnumerator {
 public:
  explicit AceEnumerator(const AceOptions& options);

  // Total workload count (== AceWorkloadCount(options)).
  uint64_t count() const { return count_; }

  // The workload at global ordinal `ordinal`; precondition ordinal < count().
  Workload At(uint64_t ordinal) const;

 private:
  AceOptions options_;
  std::vector<Op> vocab_;
  std::vector<SyncPolicy> policies_;
  uint64_t count_ = 0;
};

// Builds one concrete workload from a sequence of core-op variants,
// inserting dependency-satisfaction and persistence-point ops.
Workload BuildAceWorkload(const std::vector<Op>& core_ops, SyncPolicy sync,
                          std::string name);

}  // namespace workload

#endif  // CHIPMUNK_WORKLOAD_ACE_H_
