#include "src/workload/serialize.h"

#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "src/common/parse.h"
#include "src/vfs/filesystem.h"

namespace workload {

namespace {

std::string FallocModeName(uint32_t mode) {
  switch (mode) {
    case 0:
      return "default";
    case vfs::kFallocKeepSize:
      return "keep_size";
    case vfs::kFallocZeroRange:
      return "zero_range";
    case vfs::kFallocZeroRange | vfs::kFallocKeepSize:
      return "zero_range_keep";
    case vfs::kFallocPunchHole | vfs::kFallocKeepSize:
      return "punch_hole";
    default:
      return std::to_string(mode);
  }
}

common::StatusOr<uint32_t> ParseFallocMode(const std::string& name) {
  if (name == "default") {
    return uint32_t{0};
  }
  if (name == "keep_size") {
    return vfs::kFallocKeepSize;
  }
  if (name == "zero_range") {
    return vfs::kFallocZeroRange;
  }
  if (name == "zero_range_keep") {
    return vfs::kFallocZeroRange | vfs::kFallocKeepSize;
  }
  if (name == "punch_hole") {
    return vfs::kFallocPunchHole | vfs::kFallocKeepSize;
  }
  char* end = nullptr;
  unsigned long value = std::strtoul(name.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return common::Invalid("bad falloc mode: " + name);
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

std::string Serialize(const Workload& w) {
  std::ostringstream out;
  out << "# workload: " << (w.name.empty() ? "unnamed" : w.name) << "\n";
  // Schedule directives are emitted only for multi-threaded workloads, so
  // single-threaded files keep their classic byte-identical form.
  if (w.threads > 1 || w.schedule_seed != 0) {
    out << "# threads: " << w.threads << "\n";
    out << "# schedule-seed: " << w.schedule_seed << "\n";
  }
  for (const Op& op : w.ops) {
    switch (op.kind) {
      case OpKind::kCreat:
      case OpKind::kMkdir:
      case OpKind::kUnlink:
      case OpKind::kRemove:
      case OpKind::kRmdir:
        out << OpKindName(op.kind) << " " << op.path;
        break;
      case OpKind::kLink:
      case OpKind::kRename:
        out << OpKindName(op.kind) << " " << op.path << " " << op.path2;
        break;
      case OpKind::kOpen:
        out << "open " << op.path << " slot=" << op.fd_slot;
        if (op.oflag_create) {
          out << " create";
        }
        if (op.oflag_trunc) {
          out << " trunc";
        }
        if (op.oflag_append) {
          out << " append";
        }
        if (op.oflag_excl) {
          out << " excl";
        }
        break;
      case OpKind::kClose:
        out << "close slot=" << op.fd_slot;
        break;
      case OpKind::kWrite:
        out << "write " << op.path << " slot=" << op.fd_slot
            << " len=" << op.len << " fill=" << static_cast<char>(op.fill);
        break;
      case OpKind::kPwrite:
        out << "pwrite " << op.path << " slot=" << op.fd_slot
            << " off=" << op.off << " len=" << op.len
            << " fill=" << static_cast<char>(op.fill);
        break;
      case OpKind::kFalloc:
        out << "falloc " << op.path << " slot=" << op.fd_slot
            << " mode=" << FallocModeName(op.falloc_mode) << " off=" << op.off
            << " len=" << op.len;
        break;
      case OpKind::kTruncate:
        out << "truncate " << op.path << " size=" << op.len;
        break;
      case OpKind::kFsync:
      case OpKind::kFdatasync:
        out << OpKindName(op.kind) << " " << op.path
            << " slot=" << op.fd_slot;
        break;
      case OpKind::kSync:
        out << "sync";
        break;
      case OpKind::kSetxattr:
        out << "setxattr " << op.path << " name=" << op.path2
            << " len=" << op.len << " fill=" << static_cast<char>(op.fill);
        break;
      case OpKind::kRemovexattr:
        out << "removexattr " << op.path << " name=" << op.path2;
        break;
      case OpKind::kRead:
        out << "read slot=" << op.fd_slot << " len=" << op.len;
        break;
      case OpKind::kReaddir:
        out << "readdir " << op.path;
        break;
      case OpKind::kNone:
        continue;
    }
    if (op.tid > 0) {
      out << " tid=" << op.tid;
    }
    if (op.setup) {
      out << " setup";
    }
    out << "\n";
  }
  return out.str();
}

common::StatusOr<Workload> ParseWorkload(const std::string& text,
                                         std::string name) {
  Workload w;
  w.name = std::move(name);
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    // Schedule directives (written by Serialize for multi-threaded
    // workloads) before the generic comment skip. Parsed strictly: a
    // mangled thread count or seed silently changes what schedule a replay
    // executes, so garbage is an error, not a default.
    if (line.rfind("# threads: ", 0) == 0) {
      uint64_t threads = 0;
      if (!common::ParseUint64(line.substr(11), 64, &threads) ||
          threads == 0) {
        return common::Invalid("line " + std::to_string(line_no) +
                               ": bad thread count '" + line.substr(11) +
                               "'");
      }
      w.threads = static_cast<int>(threads);
      continue;
    }
    if (line.rfind("# schedule-seed: ", 0) == 0) {
      if (!common::ParseUint64(line.substr(17),
                               std::numeric_limits<uint64_t>::max(),
                               &w.schedule_seed)) {
        return common::Invalid("line " + std::to_string(line_no) +
                               ": bad schedule seed '" + line.substr(17) +
                               "'");
      }
      continue;
    }
    std::istringstream fields(line);
    std::string kind_name;
    fields >> kind_name;
    if (kind_name.empty() || kind_name[0] == '#') {
      continue;
    }
    auto bad = [&](const std::string& why) {
      return common::Invalid("line " + std::to_string(line_no) + ": " + why);
    };

    Op op;
    static const std::map<std::string, OpKind> kKinds = {
        {"creat", OpKind::kCreat},       {"mkdir", OpKind::kMkdir},
        {"falloc", OpKind::kFalloc},     {"write", OpKind::kWrite},
        {"pwrite", OpKind::kPwrite},     {"link", OpKind::kLink},
        {"unlink", OpKind::kUnlink},     {"remove", OpKind::kRemove},
        {"rename", OpKind::kRename},     {"truncate", OpKind::kTruncate},
        {"rmdir", OpKind::kRmdir},       {"open", OpKind::kOpen},
        {"close", OpKind::kClose},       {"fsync", OpKind::kFsync},
        {"fdatasync", OpKind::kFdatasync}, {"sync", OpKind::kSync},
        {"read", OpKind::kRead},           {"setxattr", OpKind::kSetxattr},
        {"removexattr", OpKind::kRemovexattr}, {"readdir", OpKind::kReaddir}};
    auto kit = kKinds.find(kind_name);
    if (kit == kKinds.end()) {
      return bad("unknown op '" + kind_name + "'");
    }
    op.kind = kit->second;

    // Positional paths first, then key=value / flag tokens.
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) {
      tokens.push_back(token);
    }
    size_t pos = 0;
    auto takes_path = [](OpKind kind) {
      return kind != OpKind::kClose && kind != OpKind::kSync &&
             kind != OpKind::kRead;
    };
    if (takes_path(op.kind)) {
      if (pos >= tokens.size() || tokens[pos].find('=') != std::string::npos) {
        return bad("missing path");
      }
      op.path = tokens[pos++];
    }
    if (op.kind == OpKind::kLink || op.kind == OpKind::kRename) {
      if (pos >= tokens.size()) {
        return bad("missing second path");
      }
      op.path2 = tokens[pos++];
    }
    for (; pos < tokens.size(); ++pos) {
      const std::string& t = tokens[pos];
      size_t eq = t.find('=');
      if (eq == std::string::npos) {
        if (t == "create") {
          op.oflag_create = true;
        } else if (t == "trunc") {
          op.oflag_trunc = true;
        } else if (t == "append") {
          op.oflag_append = true;
        } else if (t == "excl") {
          op.oflag_excl = true;
        } else if (t == "setup") {
          op.setup = true;
        } else {
          return bad("unknown flag '" + t + "'");
        }
        continue;
      }
      std::string key = t.substr(0, eq);
      std::string value = t.substr(eq + 1);
      if (key == "name") {
        op.path2 = value;
      } else if (key == "slot") {
        op.fd_slot = std::atoi(value.c_str());
      } else if (key == "off") {
        op.off = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "len") {
        op.len = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "size") {
        op.len = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "fill") {
        if (value.size() != 1) {
          return bad("fill must be one character");
        }
        op.fill = static_cast<uint8_t>(value[0]);
      } else if (key == "mode") {
        ASSIGN_OR_RETURN(op.falloc_mode, ParseFallocMode(value));
      } else if (key == "tid") {
        uint64_t tid = 0;
        if (!common::ParseUint64(value, 63, &tid)) {
          return bad("bad tid '" + value + "'");
        }
        op.tid = static_cast<int>(tid);
      } else {
        return bad("unknown key '" + key + "'");
      }
    }
    w.ops.push_back(std::move(op));
  }
  return w;
}

}  // namespace workload
