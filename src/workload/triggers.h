// Curated trigger-workload catalog: small ACE-shaped workloads that
// exercise each Table 1 bug, plus builders for the generic op shapes. Used
// by the test suite, the benches, and the examples.
#ifndef CHIPMUNK_WORKLOAD_TRIGGERS_H_
#define CHIPMUNK_WORKLOAD_TRIGGERS_H_

#include <string>
#include <vector>

#include "src/vfs/bug.h"
#include "src/workload/workload.h"

namespace trigger {

inline workload::Op MkOp(workload::OpKind kind, std::string path = "",
                         std::string path2 = "") {
  workload::Op op;
  op.kind = kind;
  op.path = std::move(path);
  op.path2 = std::move(path2);
  return op;
}

inline workload::Op MkOpen(std::string path, int slot, bool create = true) {
  workload::Op op = MkOp(workload::OpKind::kOpen, std::move(path));
  op.fd_slot = slot;
  op.oflag_create = create;
  return op;
}

inline workload::Op MkPwrite(std::string path, int slot, uint64_t off,
                             uint64_t len, uint8_t fill = 'a') {
  workload::Op op = MkOp(workload::OpKind::kPwrite, std::move(path));
  op.fd_slot = slot;
  op.off = off;
  op.len = len;
  op.fill = fill;
  return op;
}

inline workload::Op MkClose(int slot) {
  workload::Op op = MkOp(workload::OpKind::kClose);
  op.fd_slot = slot;
  return op;
}

inline workload::Op MkTruncate(std::string path, uint64_t size) {
  workload::Op op = MkOp(workload::OpKind::kTruncate, std::move(path));
  op.len = size;
  return op;
}

inline workload::Op MkFalloc(std::string path, int slot, uint32_t mode,
                             uint64_t off, uint64_t len) {
  workload::Op op = MkOp(workload::OpKind::kFalloc, std::move(path));
  op.fd_slot = slot;
  op.falloc_mode = mode;
  op.off = off;
  op.len = len;
  return op;
}

inline workload::Op MkFsync(std::string path, int slot) {
  workload::Op op = MkOp(workload::OpKind::kFsync, std::move(path));
  op.fd_slot = slot;
  return op;
}

inline workload::Op OnThread(workload::Op op, int tid) {
  op.tid = tid;
  return op;
}

// The named trigger workloads. Each bug's entry in TriggerFor() names one.
inline std::vector<workload::Workload> AllTriggerWorkloads() {
  using workload::OpKind;
  using workload::Workload;
  std::vector<Workload> all;
  auto add = [&all](std::string name, std::vector<workload::Op> ops) {
    Workload w;
    w.name = std::move(name);
    w.ops = std::move(ops);
    all.push_back(std::move(w));
  };

  add("creat", {MkOp(OpKind::kCreat, "/foo")});
  add("mkdir", {MkOp(OpKind::kMkdir, "/A")});
  add("write",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 5000), MkClose(0)});
  add("write-aligned",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 4096), MkClose(0)});
  add("write-unaligned-tail",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 5000), MkClose(0)});
  add("overwrite-unaligned",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 4096),
       MkPwrite("/foo", 0, 8, 1001, 'q'), MkClose(0)});
  add("append",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 2000), MkClose(0)});
  add("two-fds",
      {MkOpen("/foo", 0), MkOpen("/foo", 1, false),
       MkPwrite("/foo", 0, 0, 3000), MkPwrite("/foo", 1, 0, 100, 'q'),
       MkClose(0), MkClose(1)});
  add("two-fds-append",
      {MkOpen("/foo", 0), MkOpen("/foo", 1, false),
       MkPwrite("/foo", 1, 0, 2000), MkClose(0), MkClose(1)});
  add("meta-with-open-fds",
      {MkOpen("/a", 0), MkOpen("/b", 1), MkOp(OpKind::kCreat, "/c"),
       MkClose(0), MkClose(1)});
  add("rename", {MkOp(OpKind::kCreat, "/foo"),
                 MkOp(OpKind::kRename, "/foo", "/bar")});
  add("rename-overwrite",
      {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kCreat, "/bar"),
       MkOp(OpKind::kRename, "/foo", "/bar")});
  add("link-twice",
      {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kLink, "/foo", "/l1"),
       MkOp(OpKind::kLink, "/foo", "/l2")});
  add("unlink",
      {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kUnlink, "/foo")});
  add("unlink-with-data",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 5000), MkClose(0),
       MkOp(OpKind::kUnlink, "/foo")});
  add("truncate-unaligned",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 9000), MkClose(0),
       MkTruncate("/foo", 2500)});
  add("falloc-over-data",
      {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 3000),
       MkFalloc("/foo", 0, 0, 0, 3000), MkClose(0)});
  add("log-roll",
      {MkOp(OpKind::kCreat, "/f1"), MkOp(OpKind::kCreat, "/f2"),
       MkOp(OpKind::kCreat, "/f3"), MkOp(OpKind::kCreat, "/f4"),
       MkOp(OpKind::kCreat, "/f5")});
  add("rmdir", {MkOp(OpKind::kMkdir, "/A"), MkOp(OpKind::kRmdir, "/A")});
  // Weak-guarantee (fsync-based) workloads for ext4dax.
  add("fsync-file", {MkOpen("/foo", 0), MkPwrite("/foo", 0, 0, 5000),
                     MkFsync("/foo", 0), MkClose(0)});
  add("sync-meta", {MkOp(OpKind::kCreat, "/foo"), MkOp(OpKind::kMkdir, "/A"),
                    MkOp(OpKind::kSync)});
  // Multi-threaded trigger: two threads extend the same file through
  // separate fds. The op list is the realized schedule (tids are
  // provenance, not a to-be-scheduled program); the cross-thread handoff
  // between the two extending pwrites arms the synthetic concurrency seeds
  // (bugs 27/28), which only the isolation oracle can flag.
  {
    Workload w;
    w.name = "mt-extend-race";
    w.threads = 2;
    w.ops = {OnThread(MkOpen("/f0", 0), 0),
             OnThread(MkPwrite("/f0", 0, 0, 4096), 0),
             OnThread(MkOpen("/f0", 1, false), 1),
             OnThread(MkPwrite("/f0", 1, 4096, 4096, 'q'), 1)};
    all.push_back(std::move(w));
  }
  return all;
}

inline const workload::Workload* FindWorkload(
    const std::vector<workload::Workload>& all, const std::string& name) {
  for (const auto& w : all) {
    if (w.name == name) {
      return &w;
    }
  }
  return nullptr;
}

// The trigger workload name for each Table 1 bug.
inline const char* TriggerFor(vfs::BugId bug) {
  using vfs::BugId;
  switch (bug) {
    case BugId::kNova1LogPageInitOrder:
      return "log-roll";
    case BugId::kNova2InodeFlushMissing:
      return "creat";
    case BugId::kNova3TailOverrun:
      return "log-roll";
    case BugId::kNova4RenameInPlaceDelete:
      return "rename";
    case BugId::kNova5RenameOverwriteInPlace:
      return "rename-overwrite";
    case BugId::kNova6LinkInPlaceCount:
      return "link-twice";
    case BugId::kNova7TruncateRebuildDrop:
      return "truncate-unaligned";
    case BugId::kNova8FallocClobber:
      return "falloc-over-data";
    case BugId::kFortis9CsumNotFlushed:
      return "unlink";
    case BugId::kFortis10ReplicaNotJournaled:
      return "write";
    case BugId::kFortis11TruncListReplay:
      return "truncate-unaligned";
    case BugId::kFortis12TruncCsumStale:
      return "truncate-unaligned";
    case BugId::kPmfs13TruncListBeforeAllocator:
      return "truncate-unaligned";
    case BugId::kPmfs14WriteNotSynchronous:
      return "write-aligned";
    case BugId::kWinefs15WriteNotSynchronous:
      return "write-aligned";
    case BugId::kPmfs16JournalOobReplay:
      return "creat";
    case BugId::kPmfs17NtWriteSizeRace:
      return "write-unaligned-tail";
    case BugId::kWinefs18NtWriteSizeRace:
      return "write-unaligned-tail";
    case BugId::kWinefs19PerCpuJournalIndex:
      return "meta-with-open-fds";
    case BugId::kWinefs20UnalignedInPlace:
      return "overwrite-unaligned";
    case BugId::kSplitfs21MetaNotSynchronous:
      return "creat";
    case BugId::kSplitfs22RelinkOffsetDrop:
      return "two-fds";
    case BugId::kSplitfs23AppendCommitEarly:
      return "two-fds-append";
    case BugId::kSplitfs24CommitByteNotFlushed:
      return "write";
    case BugId::kSplitfs25RenameSecondLine:
      return "rename";
    case BugId::kNova26RecoveryLoop:
      return "creat";
    case BugId::kWinefs27TornHandoffCommit:
      return "mt-extend-race";
    case BugId::kNova28DramMediaRace:
      return "mt-extend-race";
    default:
      return "";
  }
}

}  // namespace trigger

#endif  // CHIPMUNK_WORKLOAD_TRIGGERS_H_
