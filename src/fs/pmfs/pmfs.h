// PmfsFs: PMFS-like in-place-update PM file system (see layout.h). Writes
// are synchronous but not atomic; metadata operations are atomic via the
// word-granularity undo journal.
#ifndef CHIPMUNK_FS_PMFS_PMFS_H_
#define CHIPMUNK_FS_PMFS_PMFS_H_

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/fs/pmfs/layout.h"
#include "src/pmem/pm.h"
#include "src/vfs/bug.h"
#include "src/vfs/filesystem.h"

namespace pmfs {

struct PmfsOptions {
  vfs::BugSet bugs = {};
};

class PmfsFs : public vfs::FileSystem {
 public:
  PmfsFs(pmem::Pm* pm, PmfsOptions options)
      : pm_(pm), options_(std::move(options)) {}

  std::string Name() const override { return "pmfs"; }
  vfs::CrashGuarantees Guarantees() const override {
    // Synchronous and metadata-atomic, but data writes are in place.
    return vfs::CrashGuarantees{true, true, false};
  }

  common::Status Mkfs() override;
  common::Status Mount() override;
  common::Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override;
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override;
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override;
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override;
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override;

  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override;
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override;
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override;
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override;
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override;

  common::Status Fsync(vfs::InodeNum ino) override;
  common::Status SyncAll() override;

 protected:
  // A metadata transaction: in-place byte-range updates made atomic by
  // undo-journaling the old contents at word granularity. Each range is
  // applied with a single memcpy+flush, like the real PMFS helpers.
  struct Tx {
    struct Range {
      uint64_t addr;
      std::vector<uint8_t> data;
    };
    std::vector<Range> ranges;

    void Set(uint64_t addr, uint64_t value) {
      Range range;
      range.addr = addr;
      range.data.resize(8);
      std::memcpy(range.data.data(), &value, 8);
      ranges.push_back(std::move(range));
    }
    void SetBytes(uint64_t addr, const void* data, size_t n) {
      Range range;
      range.addr = addr;
      range.data.assign(static_cast<const uint8_t*>(data),
                        static_cast<const uint8_t*>(data) + n);
      ranges.push_back(std::move(range));
    }
    // Total 8-byte words across all ranges (journal footprint).
    uint64_t WordCount() const {
      uint64_t n = 0;
      for (const Range& range : ranges) {
        n += (range.data.size() + 7) / 8;
      }
      return n;
    }
  };

  // Location of a directory entry: block index + slot.
  struct DentryLoc {
    uint64_t block = 0;  // data-region block index
    uint32_t slot = 0;
    uint64_t addr(uint64_t data_off) const {
      return data_off + block * kBlockSize + slot * kDentrySize;
    }
  };

  struct DirState {
    std::map<std::string, DentryLoc> entries;
  };

  bool BugOn(vfs::BugId id) const { return options_.bugs.Has(id); }

  uint64_t BlockOff(uint64_t block) const {
    return data_region_off_ + block * kBlockSize;
  }

  // ---- Inode field access (media-resident; DRAM caches only dirs). ----
  uint64_t InoWord0(uint32_t ino) const {
    return pm_->Load<uint64_t>(InodeOff(ino) + kInoWord0);
  }
  uint64_t InoSize(uint32_t ino) const {
    return pm_->Load<uint64_t>(InodeOff(ino) + kInoSize);
  }
  uint64_t PtrAddr(uint32_t ino, uint64_t file_block) const;
  // Returns the data block for a file block (0 = hole). `file_block` beyond
  // the indirect range returns 0.
  uint64_t LoadPtr(uint32_t ino, uint64_t file_block) const;

  common::Status CheckIno(uint32_t ino) const;
  common::Status CheckName(const std::string& name) const;

  // ---- Allocator (DRAM, rebuilt at mount). ----
  common::StatusOr<uint64_t> AllocBlock();
  common::Status FreeBlock(uint64_t block);
  virtual common::StatusOr<uint64_t> AllocBlockFor(bool data);

  // ---- Journal. ----
  common::Status CommitTx(const Tx& tx);
  common::Status RecoverJournalAt(uint64_t base, uint64_t capacity);

  // Journal region used by the current operation; winefs overrides these
  // with its per-CPU journals.
  virtual uint64_t JournalBase() const { return kJournalOff; }
  virtual uint64_t JournalCapacity() const { return kJournalMaxEntries; }
  virtual common::Status RecoverAllJournals();

  // ---- NT-store helper (the centralized persistence function whose
  // optimized tail handling hosts bugs 17/18). ----
  void NtCopy(uint64_t dst, const uint8_t* src, uint64_t len);

  // ---- Directory helpers. ----
  common::StatusOr<DentryLoc> FindFreeSlot(uint32_t dir, Tx& tx,
                                           std::vector<uint64_t>* new_blocks);
  void FillDentryTx(Tx& tx, uint64_t slot_addr, const std::string& name,
                    uint32_t ino);

  // ---- Truncate/orphan list. ----
  common::StatusOr<uint32_t> WriteTruncRecord(uint32_t ino, uint64_t new_size,
                                              uint64_t kind);
  void ClearTruncRecord(uint32_t slot);
  // Clears pointers beyond `new_size` (all, for kind=orphan) and frees the
  // blocks. Used post-transaction and by recovery replay.
  common::Status ScrubInode(uint32_t ino, uint64_t new_size, uint64_t kind);
  common::Status ReplayTruncList();

  // ---- Write-path internals (shared with winefs). ----
  common::StatusOr<uint64_t> WriteInPlace(uint32_t ino, uint64_t off,
                                          const uint8_t* data, uint64_t len);

  common::Status RemoveCommon(uint32_t dir, const std::string& name,
                              bool want_dir);

  // Mount internals.
  common::Status ScanAndBuild();

  virtual uint64_t MagicValue() const { return kMagic; }
  // The PMFS/WineFS shared bugs carry distinct Table 1 ids per system.
  virtual vfs::BugId WriteSyncBug() const {
    return vfs::BugId::kPmfs14WriteNotSynchronous;
  }
  virtual vfs::BugId NtTailBug() const {
    return vfs::BugId::kPmfs17NtWriteSizeRace;
  }
  // Hook for the winefs concurrency seed (bug 27): whether the commit about
  // to apply is a cross-CPU handoff that should take the defective
  // fence-free path. Base PMFS has a single journal and never hands off.
  virtual bool TornCommitHandoff() { return false; }

  pmem::Pm* pm_;
  PmfsOptions options_;
  bool mounted_ = false;
  bool allocator_ready_ = false;

  uint64_t data_region_off_ = 0;
  uint64_t data_blocks_ = 0;

  std::map<uint32_t, DirState> dirs_;  // ino -> directory cache
  std::vector<uint64_t> free_blocks_;
};

}  // namespace pmfs

#endif  // CHIPMUNK_FS_PMFS_PMFS_H_
