#include "src/fs/pmfs/pmfs.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "src/common/coverage.h"

namespace pmfs {

using common::Status;
using common::StatusOr;
using vfs::BugId;
using vfs::FileType;
using vfs::InodeNum;

namespace {

constexpr uint64_t kOrphanKind = 2;
constexpr uint64_t kTruncateKind = 1;

}  // namespace

Status PmfsFs::CheckName(const std::string& name) const {
  if (name.empty()) {
    return common::Invalid("empty name");
  }
  if (name.size() > kMaxNameLen) {
    return Status(common::ErrorCode::kNameTooLong, name);
  }
  return common::OkStatus();
}

Status PmfsFs::CheckIno(uint32_t ino) const {
  if (!mounted_) {
    return common::NotMounted();
  }
  if (ino == 0 || ino >= kNumInodes) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  uint64_t w0 = InoWord0(ino);
  if (Word0Valid(w0) == 0) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Format.
// ---------------------------------------------------------------------------

Status PmfsFs::Mkfs() {
  if (pm_->size() < kMinDeviceSize) {
    return common::Invalid("device too small for pmfs");
  }
  mounted_ = false;
  for (uint64_t off = 0; off < kDataRegionOff; off += kBlockSize) {
    pm_->MemsetNt(off, 0, kBlockSize);
  }
  pm_->Fence();

  Superblock sb;
  sb.magic = MagicValue();
  sb.device_size = pm_->size();
  sb.data_region_off = kDataRegionOff;
  sb.data_blocks = (pm_->size() - kDataRegionOff) / kBlockSize;
  pm_->Memcpy(kSuperblockOff, &sb, sizeof(sb));
  pm_->FlushBuffer(kSuperblockOff, sizeof(sb));

  uint64_t root = InodeOff(kRootIno);
  pm_->Store<uint64_t>(root + kInoWord0,
                       PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  pm_->FlushBuffer(root, kInodeSize);
  pm_->Fence();
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Allocator.
// ---------------------------------------------------------------------------

StatusOr<uint64_t> PmfsFs::AllocBlockFor(bool data) {
  if (!allocator_ready_) {
    return common::Internal("block allocator not initialized");
  }
  if (free_blocks_.empty()) {
    return common::NoSpace("data region full");
  }
  uint64_t block = free_blocks_.back();
  free_blocks_.pop_back();
  return block;
}

StatusOr<uint64_t> PmfsFs::AllocBlock() { return AllocBlockFor(true); }

Status PmfsFs::FreeBlock(uint64_t block) {
  if (!allocator_ready_) {
    // The DRAM free list does not exist yet — the analogue of PMFS's
    // truncate-list replay dereferencing a not-yet-built free list (bug 13).
    return common::Internal("free list not initialized");
  }
  if (block >= data_blocks_) {
    return common::Corruption("freeing block outside the data region");
  }
  if (std::find(free_blocks_.begin(), free_blocks_.end(), block) !=
      free_blocks_.end()) {
    return common::Corruption("double free of block " + std::to_string(block));
  }
  free_blocks_.push_back(block);
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Inode pointer plumbing.
// ---------------------------------------------------------------------------

uint64_t PmfsFs::PtrAddr(uint32_t ino, uint64_t file_block) const {
  if (file_block < kDirectPtrs) {
    return InodeOff(ino) + kInoDirect + file_block * 8;
  }
  uint64_t indirect = pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect);
  if (indirect == 0) {
    return 0;
  }
  return BlockOff(indirect) + (file_block - kDirectPtrs) * 8;
}

uint64_t PmfsFs::LoadPtr(uint32_t ino, uint64_t file_block) const {
  if (file_block >= kMaxFileBlocks) {
    return 0;
  }
  uint64_t addr = PtrAddr(ino, file_block);
  if (addr == 0) {
    return 0;
  }
  return pm_->Load<uint64_t>(addr);
}

// ---------------------------------------------------------------------------
// Journal.
// ---------------------------------------------------------------------------

Status PmfsFs::CommitTx(const Tx& tx) {
  if (tx.ranges.empty()) {
    return common::OkStatus();
  }
  const uint64_t base = JournalBase();
  const uint64_t n = tx.WordCount();
  if (n > JournalCapacity()) {
    return common::Internal("transaction exceeds journal capacity");
  }
  // Undo-journal the old contents, word by word.
  pm_->Store<uint64_t>(base + 8, n);
  uint64_t i = 0;
  for (const Tx::Range& range : tx.ranges) {
    for (uint64_t w = 0; w < (range.data.size() + 7) / 8; ++w) {
      uint64_t entry = base + kJournalHeaderSize + i * kJournalEntrySize;
      pm_->Store<uint64_t>(entry, range.addr + w * 8);
      pm_->Store<uint64_t>(entry + 8, pm_->Load<uint64_t>(range.addr + w * 8));
      ++i;
    }
  }
  pm_->FlushBuffer(base + 8, 8 + n * kJournalEntrySize);
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(base, 1);
  if (TornCommitHandoff()) {
    CHIPMUNK_COV();
    // BUG 27 (winefs concurrency seed): on a cross-CPU handoff the commit
    // omits the fence between marking the journal valid and applying in
    // place, so a crash can persist partial applies with no valid journal
    // to roll them back. The torn state mounts and passes fsck; only the
    // isolation oracle (no linearization of the racing threads produces the
    // mix) can flag it.
  } else {
    pm_->Fence();
  }
  // Apply in place: one store+flush per range.
  for (const Tx::Range& range : tx.ranges) {
    pm_->Memcpy(range.addr, range.data.data(), range.data.size());
    pm_->FlushBuffer(range.addr, range.data.size());
  }
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(base, 0);
  pm_->Fence();
  return common::OkStatus();
}

Status PmfsFs::RecoverJournalAt(uint64_t base, uint64_t capacity) {
  if (pm_->Load<uint64_t>(base) == 0) {
    return common::OkStatus();
  }
  CHIPMUNK_COV();
  uint64_t n = pm_->Load<uint64_t>(base + 8);
  if (BugOn(BugId::kPmfs16JournalOobReplay)) {
    CHIPMUNK_COV();
    // BUG 16: the replay loop swaps the address and old-value fields and
    // performs no bounds validation — it "restores" data to whatever media
    // offset the old value happens to name, usually far outside the device.
    if (n > capacity) {
      n = capacity;
    }
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t entry = base + kJournalHeaderSize + i * kJournalEntrySize;
      uint64_t addr = pm_->Load<uint64_t>(entry + 8);  // actually the value
      uint64_t value = pm_->Load<uint64_t>(entry);     // actually the address
      pm_->StoreFlush<uint64_t>(addr, value);
    }
  } else {
    if (n > capacity) {
      return common::Corruption("journal word count out of range");
    }
    for (uint64_t i = n; i-- > 0;) {
      uint64_t entry = base + kJournalHeaderSize + i * kJournalEntrySize;
      uint64_t addr = pm_->Load<uint64_t>(entry);
      uint64_t old_value = pm_->Load<uint64_t>(entry + 8);
      if (!pm_->InBounds(addr, 8)) {
        return common::Corruption("journal entry address out of range");
      }
      pm_->StoreFlush<uint64_t>(addr, old_value);
    }
  }
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(base, 0);
  pm_->Fence();
  return common::OkStatus();
}

Status PmfsFs::RecoverAllJournals() {
  return RecoverJournalAt(kJournalOff, kJournalMaxEntries);
}

// ---------------------------------------------------------------------------
// NT-copy helper (centralized persistence function).
// ---------------------------------------------------------------------------

void PmfsFs::NtCopy(uint64_t dst, const uint8_t* src, uint64_t len) {
  // Like the real helpers, the copy loops over cache-line batches; each
  // batch is an independent in-flight store until the next fence.
  constexpr uint64_t kChunk = 256;
  uint64_t aligned = len - len % kChunk;
  for (uint64_t pos = 0; pos < aligned; pos += kChunk) {
    pm_->MemcpyNt(dst + pos, src + pos, kChunk);
  }
  if (aligned == len) {
    return;
  }
  if (BugOn(NtTailBug())) {
    CHIPMUNK_COV();
    // BUG 17/18: the optimized non-temporal copy handles the sub-chunk tail
    // with ordinary temporal stores and forgets to flush them — the tail
    // bytes silently never become durable.
    pm_->Memcpy(dst + aligned, src + aligned, len - aligned);
    return;
  }
  pm_->MemcpyNt(dst + aligned, src + aligned, len - aligned);
}

// ---------------------------------------------------------------------------
// Directory helpers.
// ---------------------------------------------------------------------------

StatusOr<PmfsFs::DentryLoc> PmfsFs::FindFreeSlot(
    uint32_t dir, Tx& tx, std::vector<uint64_t>* new_blocks) {
  // Scan existing dentry blocks for a free slot.
  for (uint64_t fb = 0; fb < kDirectPtrs; ++fb) {
    uint64_t block = LoadPtr(dir, fb);
    if (block == 0) {
      // Allocate and zero a fresh dentry block; the pointer is journaled
      // with the rest of the transaction.
      ASSIGN_OR_RETURN(uint64_t fresh, AllocBlockFor(false));
      pm_->MemsetNt(BlockOff(fresh), 0, kBlockSize);
      pm_->Fence();
      tx.Set(PtrAddr(dir, fb), fresh);
      if (new_blocks != nullptr) {
        new_blocks->push_back(fresh);
      }
      return DentryLoc{fresh, 0};
    }
    for (uint32_t slot = 0; slot < kDentriesPerBlock; ++slot) {
      uint64_t addr = BlockOff(block) + slot * kDentrySize;
      Dentry d;
      pm_->ReadInto(addr, &d, sizeof(d));
      if (d.in_use == 0) {
        return DentryLoc{block, slot};
      }
    }
  }
  return common::NoSpace("directory full");
}

void PmfsFs::FillDentryTx(Tx& tx, uint64_t slot_addr, const std::string& name,
                          uint32_t ino) {
  Dentry d;
  d.in_use = 1;
  d.name_len = static_cast<uint8_t>(name.size());
  d.ino = ino;
  std::memcpy(d.name, name.data(), std::min(name.size(), sizeof(d.name)));
  tx.SetBytes(slot_addr, &d, sizeof(d));
}

// ---------------------------------------------------------------------------
// Truncate/orphan list.
// ---------------------------------------------------------------------------

StatusOr<uint32_t> PmfsFs::WriteTruncRecord(uint32_t ino, uint64_t new_size,
                                            uint64_t kind) {
  for (uint32_t slot = 0; slot < kTruncListSlots; ++slot) {
    uint64_t off = TruncRecordOff(slot);
    if (pm_->Load<uint64_t>(off) != 0) {
      continue;
    }
    TruncRecord rec;
    rec.valid = 1;
    rec.ino = ino;
    rec.new_size = new_size;
    rec.kind = kind;
    pm_->Memcpy(off, &rec, sizeof(rec));
    pm_->FlushBuffer(off, sizeof(rec));
    pm_->Fence();
    return slot;
  }
  return common::NoSpace("truncate list full");
}

void PmfsFs::ClearTruncRecord(uint32_t slot) {
  pm_->StoreFlush<uint64_t>(TruncRecordOff(slot), 0);
  pm_->Fence();
}

Status PmfsFs::ScrubInode(uint32_t ino, uint64_t new_size, uint64_t kind) {
  uint64_t w0 = InoWord0(ino);
  if (kind == kOrphanKind && Word0Valid(w0) != 0) {
    // The removal transaction never committed; the record is stale.
    return common::OkStatus();
  }
  // Honor the *current* size word: if the truncate transaction did not
  // commit, the scrub must not eat live data.
  uint64_t size = InoSize(ino);
  uint64_t keep_blocks =
      kind == kOrphanKind ? 0 : (size + kBlockSize - 1) / kBlockSize;

  // Zero the tail of the boundary block so a later extension reads zeros.
  if (kind == kTruncateKind && size % kBlockSize != 0) {
    uint64_t boundary = LoadPtr(ino, size / kBlockSize);
    if (boundary != 0) {
      uint64_t cut = size % kBlockSize;
      pm_->MemsetNt(BlockOff(boundary) + cut, 0, kBlockSize - cut);
      pm_->Fence();
    }
  }

  uint64_t indirect = pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect);
  bool indirect_still_used = false;
  for (uint64_t fb = keep_blocks; fb < kMaxFileBlocks; ++fb) {
    uint64_t addr = PtrAddr(ino, fb);
    if (addr == 0) {
      break;  // no indirect block: nothing beyond the directs
    }
    uint64_t block = pm_->Load<uint64_t>(addr);
    if (block == 0) {
      continue;
    }
    pm_->StoreFlush<uint64_t>(addr, 0);
    RETURN_IF_ERROR(FreeBlock(block));
  }
  if (indirect != 0) {
    for (uint64_t fb = kDirectPtrs; fb < keep_blocks; ++fb) {
      if (LoadPtr(ino, fb) != 0) {
        indirect_still_used = true;
        break;
      }
    }
    if (!indirect_still_used) {
      pm_->StoreFlush<uint64_t>(InodeOff(ino) + kInoIndirect, 0);
      RETURN_IF_ERROR(FreeBlock(indirect));
    }
  }
  pm_->Fence();
  return common::OkStatus();
}

Status PmfsFs::ReplayTruncList() {
  for (uint32_t slot = 0; slot < kTruncListSlots; ++slot) {
    TruncRecord rec;
    pm_->ReadInto(TruncRecordOff(slot), &rec, sizeof(rec));
    if (rec.valid == 0) {
      continue;
    }
    CHIPMUNK_COV();
    if (rec.ino == 0 || rec.ino >= kNumInodes) {
      return common::Corruption("truncate record with bad inode");
    }
    RETURN_IF_ERROR(
        ScrubInode(static_cast<uint32_t>(rec.ino), rec.new_size, rec.kind));
    ClearTruncRecord(slot);
  }
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Mount.
// ---------------------------------------------------------------------------

Status PmfsFs::ScanAndBuild() {
  dirs_.clear();
  std::set<uint64_t> used;
  auto mark = [&](uint64_t block) -> Status {
    if (block >= data_blocks_) {
      return common::Corruption("pointer outside the data region");
    }
    if (!used.insert(block).second) {
      return common::Corruption("block referenced twice");
    }
    return common::OkStatus();
  };

  auto mark_inode_blocks = [&](uint32_t ino) -> Status {
    for (uint64_t i = 0; i < kDirectPtrs; ++i) {
      uint64_t block = pm_->Load<uint64_t>(InodeOff(ino) + kInoDirect + i * 8);
      if (block != 0) {
        RETURN_IF_ERROR(mark(block));
      }
    }
    uint64_t indirect = pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect);
    if (indirect != 0) {
      RETURN_IF_ERROR(mark(indirect));
      for (uint64_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t block = pm_->Load<uint64_t>(BlockOff(indirect) + i * 8);
        if (block != 0) {
          RETURN_IF_ERROR(mark(block));
        }
      }
    }
    return common::OkStatus();
  };

  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    uint64_t w0 = InoWord0(ino);
    if (Word0Valid(w0) == 0) {
      continue;
    }
    FileType type = static_cast<FileType>(Word0Type(w0));
    if (type != FileType::kRegular && type != FileType::kDirectory) {
      return common::Corruption("inode with invalid type");
    }
    RETURN_IF_ERROR(mark_inode_blocks(ino));
    if (type == FileType::kDirectory) {
      DirState& ds = dirs_[ino];
      for (uint64_t fb = 0; fb < kDirectPtrs; ++fb) {
        uint64_t block = LoadPtr(ino, fb);
        if (block == 0) {
          continue;
        }
        for (uint32_t slot = 0; slot < kDentriesPerBlock; ++slot) {
          uint64_t addr = BlockOff(block) + slot * kDentrySize;
          Dentry d;
          pm_->ReadInto(addr, &d, sizeof(d));
          if (d.in_use == 0) {
            continue;
          }
          if (d.ino == 0 || d.ino >= kNumInodes ||
              Word0Valid(InoWord0(d.ino)) == 0) {
            return common::Corruption("dentry references invalid inode");
          }
          std::string name(d.name, std::min<size_t>(d.name_len, sizeof(d.name)));
          ds.entries[name] = DentryLoc{block, slot};
        }
      }
    }
  }

  // Blocks still referenced by orphan-listed inodes must not enter the free
  // list: the replay pass is about to release them itself.
  for (uint32_t slot = 0; slot < kTruncListSlots; ++slot) {
    TruncRecord rec;
    pm_->ReadInto(TruncRecordOff(slot), &rec, sizeof(rec));
    if (rec.valid == 0 || rec.ino == 0 || rec.ino >= kNumInodes) {
      continue;
    }
    if (Word0Valid(InoWord0(static_cast<uint32_t>(rec.ino))) == 0) {
      // Freed inode whose blocks were not scrubbed yet.
      RETURN_IF_ERROR(mark_inode_blocks(static_cast<uint32_t>(rec.ino)));
    }
  }

  free_blocks_.clear();
  // Block 0 stays reserved: pointer value 0 means "hole".
  for (uint64_t block = 1; block < data_blocks_; ++block) {
    if (used.count(block) == 0) {
      free_blocks_.push_back(block);
    }
  }
  allocator_ready_ = true;
  return common::OkStatus();
}

Status PmfsFs::Mount() {
  mounted_ = false;
  allocator_ready_ = false;
  free_blocks_.clear();
  dirs_.clear();

  Superblock sb;
  pm_->ReadInto(kSuperblockOff, &sb, sizeof(sb));
  if (sb.magic != MagicValue()) {
    return common::Corruption("bad superblock magic");
  }
  if (sb.device_size != pm_->size() || sb.data_region_off != kDataRegionOff) {
    return common::Corruption("superblock geometry mismatch");
  }
  data_region_off_ = sb.data_region_off;
  data_blocks_ = sb.data_blocks;

  RETURN_IF_ERROR(RecoverAllJournals());

  if (BugOn(BugId::kPmfs13TruncListBeforeAllocator)) {
    CHIPMUNK_COV();
    // BUG 13: the truncate list is replayed before the DRAM free list is
    // rebuilt; the replay's first deallocation dereferences a structure
    // that does not exist yet (the null-pointer dereference of the paper).
    RETURN_IF_ERROR(ReplayTruncList());
  }

  RETURN_IF_ERROR(ScanAndBuild());

  if (!BugOn(BugId::kPmfs13TruncListBeforeAllocator)) {
    RETURN_IF_ERROR(ReplayTruncList());
  }

  if (Word0Valid(InoWord0(kRootIno)) == 0 ||
      static_cast<FileType>(Word0Type(InoWord0(kRootIno))) !=
          FileType::kDirectory) {
    return common::Corruption("root inode missing");
  }
  if (pm_->faulted()) {
    return common::Status(pm_->fault());
  }
  mounted_ = true;
  return common::OkStatus();
}

Status PmfsFs::Unmount() {
  mounted_ = false;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Namespace operations.
// ---------------------------------------------------------------------------

StatusOr<InodeNum> PmfsFs::Lookup(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckIno(dir));
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) {
    return common::NotDir();
  }
  auto entry = it->second.entries.find(name);
  if (entry == it->second.entries.end()) {
    return common::NotFound(name);
  }
  Dentry d;
  pm_->ReadInto(entry->second.addr(data_region_off_), &d, sizeof(d));
  return static_cast<InodeNum>(d.ino);
}

StatusOr<InodeNum> PmfsFs::Create(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckName(name));
  RETURN_IF_ERROR(CheckIno(dir));
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  if (dit->second.entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  uint32_t ino = 0;
  for (uint32_t cand = 2; cand < kNumInodes; ++cand) {
    if (Word0Valid(InoWord0(cand)) == 0) {
      ino = cand;
      break;
    }
  }
  if (ino == 0) {
    return common::NoSpace("inode table full");
  }

  Tx tx;
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(dir, tx, nullptr));
  FillDentryTx(tx, loc.addr(data_region_off_), name, ino);
  {
    // Initialize the whole inode (word0/size/pointers) as one range.
    std::vector<uint8_t> init(kInoIndirect + 8, 0);
    uint64_t w0 = PackWord0(1, static_cast<uint8_t>(FileType::kRegular), 1);
    std::memcpy(init.data(), &w0, 8);
    tx.SetBytes(InodeOff(ino), init.data(), init.size());
  }
  RETURN_IF_ERROR(CommitTx(tx));
  dirs_[dir].entries[name] = loc;
  return static_cast<InodeNum>(ino);
}

StatusOr<InodeNum> PmfsFs::Mkdir(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckName(name));
  RETURN_IF_ERROR(CheckIno(dir));
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  if (dit->second.entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  uint32_t ino = 0;
  for (uint32_t cand = 2; cand < kNumInodes; ++cand) {
    if (Word0Valid(InoWord0(cand)) == 0) {
      ino = cand;
      break;
    }
  }
  if (ino == 0) {
    return common::NoSpace("inode table full");
  }

  uint64_t parent_w0 = InoWord0(dir);
  Tx tx;
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(dir, tx, nullptr));
  FillDentryTx(tx, loc.addr(data_region_off_), name, ino);
  {
    std::vector<uint8_t> init(kInoIndirect + 8, 0);
    uint64_t w0 = PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2);
    std::memcpy(init.data(), &w0, 8);
    tx.SetBytes(InodeOff(ino), init.data(), init.size());
  }
  tx.Set(InodeOff(dir) + kInoWord0,
         PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                   Word0Links(parent_w0) + 1));
  RETURN_IF_ERROR(CommitTx(tx));
  dirs_[dir].entries[name] = loc;
  dirs_[ino];  // materialize the empty child map
  return static_cast<InodeNum>(ino);
}

Status PmfsFs::RemoveCommon(uint32_t dir, const std::string& name,
                            bool want_dir) {
  RETURN_IF_ERROR(CheckIno(dir));
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  auto eit = dit->second.entries.find(name);
  if (eit == dit->second.entries.end()) {
    return common::NotFound(name);
  }
  DentryLoc loc = eit->second;
  Dentry d;
  pm_->ReadInto(loc.addr(data_region_off_), &d, sizeof(d));
  uint32_t child = d.ino;
  RETURN_IF_ERROR(CheckIno(child));
  uint64_t child_w0 = InoWord0(child);
  FileType child_type = static_cast<FileType>(Word0Type(child_w0));
  if (want_dir && child_type != FileType::kDirectory) {
    return common::NotDir(name);
  }
  if (!want_dir && child_type == FileType::kDirectory) {
    return common::IsDir(name);
  }
  if (want_dir && !dirs_[child].entries.empty()) {
    return common::NotEmpty(name);
  }

  uint32_t links = Word0Links(child_w0);
  const bool freeing = want_dir || links <= 1;
  uint32_t rec_slot = UINT32_MAX;
  if (freeing) {
    ASSIGN_OR_RETURN(rec_slot, WriteTruncRecord(child, 0, kOrphanKind));
  }
  Tx tx;
  tx.Set(loc.addr(data_region_off_), 0);  // clear in_use|name_len|ino word
  if (freeing) {
    tx.Set(InodeOff(child) + kInoWord0, 0);
    if (want_dir) {
      uint64_t parent_w0 = InoWord0(dir);
      tx.Set(InodeOff(dir) + kInoWord0,
             PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                       Word0Links(parent_w0) - 1));
    }
  } else {
    tx.Set(InodeOff(child) + kInoWord0,
           PackWord0(1, static_cast<uint8_t>(FileType::kRegular), links - 1));
  }
  RETURN_IF_ERROR(CommitTx(tx));
  if (freeing) {
    RETURN_IF_ERROR(ScrubInode(child, 0, kOrphanKind));
    ClearTruncRecord(rec_slot);
    dirs_.erase(child);
  }
  dit->second.entries.erase(name);
  return common::OkStatus();
}

Status PmfsFs::Unlink(InodeNum dir, const std::string& name) {
  return RemoveCommon(static_cast<uint32_t>(dir), name, /*want_dir=*/false);
}

Status PmfsFs::Rmdir(InodeNum dir, const std::string& name) {
  return RemoveCommon(static_cast<uint32_t>(dir), name, /*want_dir=*/true);
}

Status PmfsFs::Link(InodeNum target_in, InodeNum dir_in,
                    const std::string& name) {
  uint32_t target = static_cast<uint32_t>(target_in);
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckName(name));
  RETURN_IF_ERROR(CheckIno(target));
  RETURN_IF_ERROR(CheckIno(dir));
  uint64_t target_w0 = InoWord0(target);
  if (static_cast<FileType>(Word0Type(target_w0)) != FileType::kRegular) {
    return common::IsDir(name);
  }
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  if (dit->second.entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  Tx tx;
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(dir, tx, nullptr));
  FillDentryTx(tx, loc.addr(data_region_off_), name, target);
  tx.Set(InodeOff(target) + kInoWord0,
         PackWord0(1, static_cast<uint8_t>(FileType::kRegular),
                   Word0Links(target_w0) + 1));
  RETURN_IF_ERROR(CommitTx(tx));
  dit->second.entries[name] = loc;
  return common::OkStatus();
}

Status PmfsFs::Rename(InodeNum src_dir_in, const std::string& src_name,
                      InodeNum dst_dir_in, const std::string& dst_name) {
  uint32_t src_dir = static_cast<uint32_t>(src_dir_in);
  uint32_t dst_dir = static_cast<uint32_t>(dst_dir_in);
  RETURN_IF_ERROR(CheckName(dst_name));
  RETURN_IF_ERROR(CheckIno(src_dir));
  RETURN_IF_ERROR(CheckIno(dst_dir));
  auto sit = dirs_.find(src_dir);
  auto dit = dirs_.find(dst_dir);
  if (sit == dirs_.end() || dit == dirs_.end()) {
    return common::NotDir();
  }
  auto sloc_it = sit->second.entries.find(src_name);
  if (sloc_it == sit->second.entries.end()) {
    return common::NotFound(src_name);
  }
  DentryLoc src_loc = sloc_it->second;
  Dentry sd;
  pm_->ReadInto(src_loc.addr(data_region_off_), &sd, sizeof(sd));
  uint32_t src_ino = sd.ino;
  RETURN_IF_ERROR(CheckIno(src_ino));
  const bool src_is_dir = static_cast<FileType>(Word0Type(InoWord0(src_ino))) ==
                          FileType::kDirectory;

  uint32_t victim = 0;
  DentryLoc victim_loc;
  auto dloc_it = dit->second.entries.find(dst_name);
  if (dloc_it != dit->second.entries.end()) {
    victim_loc = dloc_it->second;
    Dentry vd;
    pm_->ReadInto(victim_loc.addr(data_region_off_), &vd, sizeof(vd));
    victim = vd.ino;
    if (victim == src_ino) {
      return common::OkStatus();
    }
    RETURN_IF_ERROR(CheckIno(victim));
    FileType vtype = static_cast<FileType>(Word0Type(InoWord0(victim)));
    if (vtype == FileType::kDirectory) {
      if (!src_is_dir) {
        return common::IsDir(dst_name);
      }
      if (!dirs_[victim].entries.empty()) {
        return common::NotEmpty(dst_name);
      }
    } else if (src_is_dir) {
      return common::NotDir(dst_name);
    }
  }

  // Parent link-count deltas (directories only).
  int src_dir_delta = 0;
  int dst_dir_delta = 0;
  bool victim_free = false;
  uint32_t victim_links = 0;
  if (victim != 0) {
    FileType vtype = static_cast<FileType>(Word0Type(InoWord0(victim)));
    if (vtype == FileType::kDirectory) {
      victim_free = true;
      dst_dir_delta -= 1;
    } else {
      victim_links = Word0Links(InoWord0(victim));
      victim_free = victim_links <= 1;
    }
  }
  if (src_is_dir && src_dir != dst_dir) {
    src_dir_delta -= 1;
    dst_dir_delta += 1;
  }

  uint32_t rec_slot = UINT32_MAX;
  if (victim_free) {
    ASSIGN_OR_RETURN(rec_slot, WriteTruncRecord(victim, 0, kOrphanKind));
  }

  Tx tx;
  DentryLoc dst_loc;
  if (victim != 0) {
    dst_loc = victim_loc;  // reuse the victim's slot
    FillDentryTx(tx, dst_loc.addr(data_region_off_), dst_name, src_ino);
    if (victim_free) {
      tx.Set(InodeOff(victim) + kInoWord0, 0);
    } else {
      tx.Set(InodeOff(victim) + kInoWord0,
             PackWord0(1, static_cast<uint8_t>(FileType::kRegular),
                       victim_links - 1));
    }
  } else {
    ASSIGN_OR_RETURN(dst_loc, FindFreeSlot(dst_dir, tx, nullptr));
    FillDentryTx(tx, dst_loc.addr(data_region_off_), dst_name, src_ino);
  }
  tx.Set(src_loc.addr(data_region_off_), 0);
  if (src_dir_delta != 0) {
    uint64_t w0 = InoWord0(src_dir);
    tx.Set(InodeOff(src_dir) + kInoWord0,
           PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                     Word0Links(w0) + src_dir_delta));
  }
  if (dst_dir_delta != 0 && dst_dir != src_dir) {
    uint64_t w0 = InoWord0(dst_dir);
    tx.Set(InodeOff(dst_dir) + kInoWord0,
           PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                     Word0Links(w0) + dst_dir_delta));
  } else if (dst_dir_delta != 0) {
    uint64_t w0 = InoWord0(dst_dir);
    tx.Set(InodeOff(dst_dir) + kInoWord0,
           PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                     Word0Links(w0) + dst_dir_delta + src_dir_delta));
  }
  RETURN_IF_ERROR(CommitTx(tx));

  if (victim_free && victim != 0) {
    RETURN_IF_ERROR(ScrubInode(victim, 0, kOrphanKind));
    ClearTruncRecord(rec_slot);
    dirs_.erase(victim);
  }
  sit->second.entries.erase(src_name);
  dirs_[dst_dir].entries[dst_name] = dst_loc;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// File operations.
// ---------------------------------------------------------------------------

StatusOr<uint64_t> PmfsFs::Read(InodeNum ino_in, uint64_t off, uint64_t len,
                                uint8_t* out) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(InoWord0(ino))) != FileType::kRegular) {
    return common::IsDir();
  }
  uint64_t size = InoSize(ino);
  if (off >= size || len == 0) {
    return uint64_t{0};
  }
  uint64_t n = std::min<uint64_t>(len, size - off);
  std::memset(out, 0, n);
  uint64_t pos = off;
  while (pos < off + n) {
    uint64_t fb = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, off + n - pos);
    uint64_t block = LoadPtr(ino, fb);
    if (block != 0) {
      pm_->ReadInto(BlockOff(block) + in_block, out + (pos - off), chunk);
    }
    pos += chunk;
  }
  return n;
}

StatusOr<uint64_t> PmfsFs::WriteInPlace(uint32_t ino, uint64_t off,
                                        const uint8_t* data, uint64_t len) {
  uint64_t end = off + len;
  if ((end + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t old_size = InoSize(ino);

  // Ensure the indirect block exists if the write reaches it.
  std::vector<std::pair<uint64_t, uint64_t>> ptr_updates;
  std::vector<uint64_t> allocated;
  uint64_t indirect = pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect);
  uint64_t last_fb = (end - 1) / kBlockSize;
  if (last_fb >= kDirectPtrs && indirect == 0) {
    auto fresh = AllocBlockFor(false);
    if (!fresh.ok()) {
      return fresh.status();
    }
    indirect = *fresh;
    allocated.push_back(indirect);
    pm_->MemsetNt(BlockOff(indirect), 0, kBlockSize);
    ptr_updates.push_back({InodeOff(ino) + kInoIndirect, indirect});
  }
  auto ptr_addr = [&](uint64_t fb) {
    return fb < kDirectPtrs ? InodeOff(ino) + kInoDirect + fb * 8
                            : BlockOff(indirect) + (fb - kDirectPtrs) * 8;
  };

  const bool sync_bug = BugOn(WriteSyncBug());
  for (uint64_t fb = off / kBlockSize; fb <= last_fb; ++fb) {
    uint64_t block_start = fb * kBlockSize;
    uint64_t from = std::max(off, block_start);
    uint64_t to = std::min(end, block_start + kBlockSize);
    uint64_t block = LoadPtr(ino, fb);
    if (fb >= kDirectPtrs && indirect != 0 &&
        pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect) == 0) {
      block = 0;  // indirect pending: nothing mapped yet
    }
    for (const auto& [addr, val] : ptr_updates) {
      if (addr == ptr_addr(fb)) {
        block = val;
      }
    }
    if (block == 0) {
      auto fresh = AllocBlockFor(true);
      if (!fresh.ok()) {
        for (uint64_t b : allocated) {
          free_blocks_.push_back(b);
        }
        return fresh.status();
      }
      block = *fresh;
      allocated.push_back(block);
      if (to - from < kBlockSize) {
        pm_->MemsetNt(BlockOff(block), 0, kBlockSize);
      }
      ptr_updates.push_back({ptr_addr(fb), block});
    }
    if (sync_bug) {
      CHIPMUNK_COV();
      // BUG 14/15: the data path uses cached stores and never flushes — the
      // syscall returns with its data still in volatile caches.
      pm_->Memcpy(BlockOff(block) + (from - block_start), data + (from - off),
                  to - from);
    } else {
      NtCopy(BlockOff(block) + (from - block_start), data + (from - off),
             to - from);
    }
  }
  pm_->Fence();  // data durable before the metadata publishes

  for (const auto& [addr, val] : ptr_updates) {
    pm_->StoreFlush<uint64_t>(addr, val);
  }
  if (end > old_size) {
    pm_->StoreFlush<uint64_t>(InodeOff(ino) + kInoSize, end);
  }
  pm_->Fence();
  return len;
}

StatusOr<uint64_t> PmfsFs::Write(InodeNum ino_in, uint64_t off,
                                 const uint8_t* data, uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(InoWord0(ino))) != FileType::kRegular) {
    return common::IsDir();
  }
  if (len == 0) {
    return uint64_t{0};
  }
  return WriteInPlace(ino, off, data, len);
}

Status PmfsFs::Truncate(InodeNum ino_in, uint64_t new_size) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(InoWord0(ino))) != FileType::kRegular) {
    return common::IsDir();
  }
  uint64_t old_size = InoSize(ino);
  if (new_size == old_size) {
    return common::OkStatus();
  }
  if ((new_size + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  if (new_size > old_size) {
    Tx tx;
    tx.Set(InodeOff(ino) + kInoSize, new_size);
    return CommitTx(tx);
  }
  ASSIGN_OR_RETURN(uint32_t rec_slot,
                   WriteTruncRecord(ino, new_size, kTruncateKind));
  Tx tx;
  tx.Set(InodeOff(ino) + kInoSize, new_size);
  RETURN_IF_ERROR(CommitTx(tx));
  RETURN_IF_ERROR(ScrubInode(ino, new_size, kTruncateKind));
  ClearTruncRecord(rec_slot);
  return common::OkStatus();
}

Status PmfsFs::Fallocate(InodeNum ino_in, uint32_t mode, uint64_t off,
                         uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(InoWord0(ino))) != FileType::kRegular) {
    return common::IsDir();
  }
  const bool keep_size = (mode & vfs::kFallocKeepSize) != 0;
  const bool punch_hole = (mode & vfs::kFallocPunchHole) != 0;
  const bool zero_range = (mode & vfs::kFallocZeroRange) != 0;
  if (punch_hole && !keep_size) {
    return common::Invalid("punch-hole requires keep-size");
  }
  uint64_t end = off + len;
  if ((end + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t old_size = InoSize(ino);
  uint64_t new_size = keep_size ? old_size : std::max(old_size, end);

  Tx tx;
  uint64_t indirect = pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect);
  uint64_t last_fb = (end - 1) / kBlockSize;
  if (!punch_hole && last_fb >= kDirectPtrs && indirect == 0) {
    ASSIGN_OR_RETURN(indirect, AllocBlockFor(false));
    pm_->MemsetNt(BlockOff(indirect), 0, kBlockSize);
    tx.Set(InodeOff(ino) + kInoIndirect, indirect);
  }
  auto ptr_addr = [&](uint64_t fb) {
    return fb < kDirectPtrs ? InodeOff(ino) + kInoDirect + fb * 8
                            : BlockOff(indirect) + (fb - kDirectPtrs) * 8;
  };

  // Zero existing data in the range (punch-hole / zero-range), in place.
  if (punch_hole || zero_range) {
    for (uint64_t fb = off / kBlockSize; fb <= last_fb; ++fb) {
      uint64_t block = LoadPtr(ino, fb);
      if (block == 0) {
        continue;
      }
      uint64_t block_start = fb * kBlockSize;
      uint64_t from = std::max(off, block_start);
      uint64_t to = std::min(end, block_start + kBlockSize);
      pm_->MemsetNt(BlockOff(block) + (from - block_start), 0, to - from);
    }
  }
  // Allocate missing blocks (plain and zero-range modes).
  if (!punch_hole) {
    for (uint64_t fb = off / kBlockSize; fb <= last_fb; ++fb) {
      if (LoadPtr(ino, fb) != 0) {
        continue;
      }
      ASSIGN_OR_RETURN(uint64_t block, AllocBlockFor(true));
      pm_->MemsetNt(BlockOff(block), 0, kBlockSize);
      tx.Set(ptr_addr(fb), block);
    }
  }
  pm_->Fence();
  if (new_size != old_size) {
    tx.Set(InodeOff(ino) + kInoSize, new_size);
  }
  return CommitTx(tx);
}

StatusOr<vfs::FsStat> PmfsFs::GetAttr(InodeNum ino_in) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  uint64_t w0 = InoWord0(ino);
  vfs::FsStat st;
  st.ino = ino;
  st.type = static_cast<FileType>(Word0Type(w0));
  st.size = st.type == FileType::kRegular ? InoSize(ino) : 0;
  st.nlink = Word0Links(w0);
  return st;
}

StatusOr<std::vector<vfs::DirEntry>> PmfsFs::ReadDir(InodeNum dir_in) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckIno(dir));
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) {
    return common::NotDir();
  }
  std::vector<vfs::DirEntry> out;
  for (const auto& [name, loc] : it->second.entries) {
    Dentry d;
    pm_->ReadInto(loc.addr(data_region_off_), &d, sizeof(d));
    out.push_back(vfs::DirEntry{name, d.ino});
  }
  return out;
}

Status PmfsFs::Fsync(InodeNum ino) {
  return CheckIno(static_cast<uint32_t>(ino));
}

Status PmfsFs::SyncAll() {
  if (!mounted_) {
    return common::NotMounted();
  }
  return common::OkStatus();
}

}  // namespace pmfs
