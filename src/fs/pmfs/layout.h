// On-media layout of pmfs (PMFS-like PM file system, after Dulloor et al.,
// EuroSys '14).
//
// Architecture:
//   - fixed inode table; inodes carry direct block pointers plus one
//     indirect block;
//   - metadata is updated *in place*, made atomic by a fine-grained undo
//     journal of 8-byte words (old values logged, rolled back on recovery);
//   - directories are blocks of fixed-size dentry slots;
//   - file data is written in place with non-temporal stores (writes are not
//     atomic);
//   - a persistent truncate/orphan list defers block reclamation so recovery
//     can finish interrupted truncates and unlinks;
//   - the free-block list lives in DRAM and is rebuilt at mount by walking
//     every inode's pointers.
#ifndef CHIPMUNK_FS_PMFS_LAYOUT_H_
#define CHIPMUNK_FS_PMFS_LAYOUT_H_

#include <cstdint>

namespace pmfs {

inline constexpr uint64_t kMagic = 0x504d465321ull;  // "PMFS!"
inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint32_t kNumInodes = 256;
inline constexpr uint32_t kRootIno = 1;
inline constexpr uint32_t kMaxNameLen = 19;

// Page 0: superblock + truncate/orphan list.
inline constexpr uint64_t kSuperblockOff = 0;
inline constexpr uint64_t kTruncListOff = 512;
inline constexpr uint64_t kTruncRecordSize = 32;
inline constexpr uint64_t kTruncListSlots = 16;

// Page 1: the undo journal.
inline constexpr uint64_t kJournalOff = kBlockSize;
inline constexpr uint64_t kJournalHeaderSize = 16;  // valid u64, nwords u64
inline constexpr uint64_t kJournalEntrySize = 16;   // addr u64, old value u64
inline constexpr uint64_t kJournalMaxEntries =
    (kBlockSize - kJournalHeaderSize) / kJournalEntrySize;

// Pages 2..9: inode table (256 inodes x 128 B).
inline constexpr uint64_t kInodeTableOff = 2 * kBlockSize;
inline constexpr uint64_t kInodeSize = 128;
inline constexpr uint64_t kInodeTableBlocks = 8;

// Data region: dentry blocks, indirect blocks, and file data blocks.
inline constexpr uint64_t kDataRegionOff =
    kInodeTableOff + kInodeTableBlocks * kBlockSize;
inline constexpr uint64_t kMinDeviceSize = kDataRegionOff + 16 * kBlockSize;

// ---- Persistent inode (128 bytes): all fields are 8-byte words so every
// update can be journaled uniformly. ----
inline constexpr uint32_t kDirectPtrs = 10;
inline constexpr uint64_t kInoWord0 = 0;    // valid u8 | type u8 | .. | links u32
inline constexpr uint64_t kInoSize = 8;
inline constexpr uint64_t kInoDirect = 16;              // 10 x u64 block index
inline constexpr uint64_t kInoIndirect = 16 + 8 * kDirectPtrs;  // u64

inline uint64_t PackWord0(uint8_t valid, uint8_t type, uint32_t links) {
  return static_cast<uint64_t>(valid) | (static_cast<uint64_t>(type) << 8) |
         (static_cast<uint64_t>(links) << 32);
}
inline uint8_t Word0Valid(uint64_t w) { return static_cast<uint8_t>(w); }
inline uint8_t Word0Type(uint64_t w) { return static_cast<uint8_t>(w >> 8); }
inline uint32_t Word0Links(uint64_t w) { return static_cast<uint32_t>(w >> 32); }

inline uint64_t InodeOff(uint32_t ino) {
  return kInodeTableOff + static_cast<uint64_t>(ino) * kInodeSize;
}

// Pointers per indirect block.
inline constexpr uint64_t kPtrsPerBlock = kBlockSize / 8;
// Maximum file size in blocks.
inline constexpr uint64_t kMaxFileBlocks = kDirectPtrs + kPtrsPerBlock;

// ---- Dentry slot (64 bytes, 8 words). Word 0 packs in-use + child ino so a
// single journaled word insert/remove flips the entry. ----
inline constexpr uint64_t kDentrySize = 64;
inline constexpr uint64_t kDentriesPerBlock = kBlockSize / kDentrySize;

struct Dentry {
  uint8_t in_use = 0;
  uint8_t name_len = 0;
  uint16_t pad = 0;
  uint32_t ino = 0;
  char name[24] = {};
  uint8_t reserved[32] = {};
};
static_assert(sizeof(Dentry) == kDentrySize, "dentry must be 64 bytes");

// ---- Truncate/orphan record (32 bytes). ----
// kind: 1 = truncate to new_size, 2 = orphan (free everything).
struct TruncRecord {
  uint64_t valid = 0;
  uint64_t ino = 0;
  uint64_t new_size = 0;
  uint64_t kind = 0;
};
static_assert(sizeof(TruncRecord) == kTruncRecordSize, "record size");

inline uint64_t TruncRecordOff(uint32_t slot) {
  return kTruncListOff + static_cast<uint64_t>(slot) * kTruncRecordSize;
}

struct Superblock {
  uint64_t magic = 0;
  uint64_t device_size = 0;
  uint64_t data_region_off = 0;
  uint64_t data_blocks = 0;
};

}  // namespace pmfs

#endif  // CHIPMUNK_FS_PMFS_LAYOUT_H_
