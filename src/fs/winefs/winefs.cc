#include "src/fs/winefs/winefs.h"

#include <cstring>
#include <vector>

#include "src/common/coverage.h"

namespace winefs {

using common::Status;
using common::StatusOr;
using pmfs::kBlockSize;
using pmfs::kDirectPtrs;
using pmfs::kInoIndirect;
using pmfs::kInoSize;
using pmfs::kInoWord0;
using pmfs::kMaxFileBlocks;
using pmfs::InodeOff;
using pmfs::Word0Type;
using vfs::BugId;
using vfs::FileType;
using vfs::InodeNum;

Status WinefsFs::RecoverAllJournals() {
  const int cpus_to_recover =
      BugOn(BugId::kWinefs19PerCpuJournalIndex) ? 1 : kNumCpus;
  if (cpus_to_recover == 1) {
    CHIPMUNK_COV();
    // BUG 19: the recovery loop mis-indexes the per-CPU journal array and
    // only ever replays CPU 0's journal. Transactions interrupted on other
    // CPUs are never rolled back, leaving half-applied metadata.
  }
  for (int cpu = 0; cpu < cpus_to_recover; ++cpu) {
    RETURN_IF_ERROR(RecoverJournalAt(
        pmfs::kJournalOff + static_cast<uint64_t>(cpu) * kJournalStride,
        kPerCpuJournalEntries));
  }
  return common::OkStatus();
}

StatusOr<uint64_t> WinefsFs::AllocBlockFor(bool data) {
  if (!allocator_ready_) {
    return common::Internal("block allocator not initialized");
  }
  if (free_blocks_.empty()) {
    return common::NoSpace("data region full");
  }
  // Alignment-aware placement: metadata (dentry/indirect blocks) comes from
  // the low end of the free space, data extents from the high end, so large
  // contiguous (huge-page-aligned) ranges stay unfragmented as the file
  // system ages.
  auto it = data ? std::max_element(free_blocks_.begin(), free_blocks_.end())
                 : std::min_element(free_blocks_.begin(), free_blocks_.end());
  uint64_t block = *it;
  free_blocks_.erase(it);
  return block;
}

StatusOr<uint64_t> WinefsFs::WriteCow(uint32_t ino, uint64_t off,
                                      const uint8_t* data, uint64_t len) {
  uint64_t end = off + len;
  if ((end + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t old_size = InoSize(ino);

  // Ensure an indirect block exists if the write reaches it (journaled with
  // the pointer swap below).
  Tx tx;
  uint64_t indirect = pm_->Load<uint64_t>(InodeOff(ino) + kInoIndirect);
  uint64_t last_fb = (end - 1) / kBlockSize;
  std::vector<uint64_t> allocated;
  if (last_fb >= kDirectPtrs && indirect == 0) {
    ASSIGN_OR_RETURN(indirect, AllocBlockFor(false));
    allocated.push_back(indirect);
    pm_->MemsetNt(BlockOff(indirect), 0, kBlockSize);
    tx.Set(InodeOff(ino) + kInoIndirect, indirect);
  }
  auto ptr_addr = [&](uint64_t fb) {
    return fb < kDirectPtrs ? InodeOff(ino) + pmfs::kInoDirect + fb * 8
                            : BlockOff(indirect) + (fb - kDirectPtrs) * 8;
  };

  // Copy-on-write every affected block into fresh blocks.
  const bool sync_bug = BugOn(WriteSyncBug());
  std::vector<std::pair<uint64_t, uint64_t>> replaced;  // fb -> old block
  std::vector<uint8_t> buf(kBlockSize);
  for (uint64_t fb = off / kBlockSize; fb <= last_fb; ++fb) {
    uint64_t block_start = fb * kBlockSize;
    uint64_t from = std::max(off, block_start);
    uint64_t to = std::min(end, block_start + kBlockSize);
    uint64_t old_block = LoadPtr(ino, fb);
    std::fill(buf.begin(), buf.end(), 0);
    if (old_block != 0) {
      pm_->ReadInto(BlockOff(old_block), buf.data(), kBlockSize);
    }
    std::memcpy(buf.data() + (from - block_start), data + (from - off),
                to - from);
    auto fresh = AllocBlockFor(true);
    if (!fresh.ok()) {
      for (uint64_t b : allocated) {
        free_blocks_.push_back(b);
      }
      return fresh.status();
    }
    allocated.push_back(*fresh);
    // Only the meaningful bytes of the block are copied (old data and the
    // new write); bytes past EOF are left untouched.
    uint64_t valid = std::min<uint64_t>(
        kBlockSize,
        std::max(to - block_start,
                 old_size > block_start ? old_size - block_start : 0));
    if (sync_bug) {
      CHIPMUNK_COV();
      // BUG 15: cached stores, never flushed (shared fix with PMFS bug 14).
      pm_->Memcpy(BlockOff(*fresh), buf.data(), valid);
    } else {
      NtCopy(BlockOff(*fresh), buf.data(), valid);
    }
    if (valid < kBlockSize) {
      // Scrub the rest of the fresh block so a later size extension cannot
      // expose bytes from the block's previous life.
      pm_->MemsetNt(BlockOff(*fresh) + valid, 0, kBlockSize - valid);
    }
    replaced.push_back({fb, old_block});
    tx.Set(ptr_addr(fb), *fresh);
  }
  pm_->Fence();  // data durable before the journaled pointer swap

  if (end > old_size) {
    tx.Set(InodeOff(ino) + kInoSize, end);
  }
  RETURN_IF_ERROR(CommitTx(tx));
  for (const auto& [fb, old_block] : replaced) {
    if (old_block != 0) {
      RETURN_IF_ERROR(FreeBlock(old_block));
    }
  }
  return len;
}

StatusOr<uint64_t> WinefsFs::Write(InodeNum ino_in, uint64_t off,
                                   const uint8_t* data, uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(pm_->Load<uint64_t>(
          InodeOff(ino) + kInoWord0))) != FileType::kRegular) {
    return common::IsDir();
  }
  if (len == 0) {
    return uint64_t{0};
  }
  if (!strict_) {
    return WriteInPlace(ino, off, data, len);
  }
  if (BugOn(BugId::kWinefs20UnalignedInPlace) &&
      (off % 8 != 0 || len % 8 != 0)) {
    CHIPMUNK_COV();
    // BUG 20: the strict-mode fast path only covers 8-byte-aligned writes;
    // unaligned writes silently take the in-place (non-atomic) path.
    return WriteInPlace(ino, off, data, len);
  }
  return WriteCow(ino, off, data, len);
}

}  // namespace winefs
