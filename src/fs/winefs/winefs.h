// WinefsFs: WineFS-like PM file system (Kadekodi et al., SOSP '21).
//
// WineFS was built on the PMFS code base, and this implementation mirrors
// that lineage: it extends PmfsFs with
//   - per-CPU undo journals (the operation's CPU comes from the harness via
//     SetCpuHint, standing in for the calling core);
//   - an alignment-aware allocator: metadata allocations are taken from the
//     low end of the free space and data allocations from the high end,
//     keeping huge-page-sized extents unfragmented;
//   - strict mode: data writes are copy-on-write and atomic (journaled
//     pointer/size swap).
//
// Injected bugs: 15/18 (shared with PMFS), 19 (recovery only replays the
// CPU-0 journal), 20 (unaligned writes fall back to the non-atomic in-place
// path in strict mode).
#ifndef CHIPMUNK_FS_WINEFS_WINEFS_H_
#define CHIPMUNK_FS_WINEFS_WINEFS_H_

#include <algorithm>

#include "src/fs/pmfs/pmfs.h"

namespace winefs {

inline constexpr uint64_t kWinefsMagic = 0x57494e45465321ull;  // "WINEFS!"
inline constexpr int kNumCpus = 4;
// The four per-CPU journals share the PMFS journal page, 1 KiB apiece.
inline constexpr uint64_t kJournalStride = 1024;
inline constexpr uint64_t kPerCpuJournalEntries =
    (kJournalStride - pmfs::kJournalHeaderSize) / pmfs::kJournalEntrySize;

struct WinefsOptions {
  vfs::BugSet bugs = {};
  bool strict = true;  // strict mode: atomic data writes
};

class WinefsFs : public pmfs::PmfsFs {
 public:
  WinefsFs(pmem::Pm* pm, WinefsOptions options)
      : pmfs::PmfsFs(pm, pmfs::PmfsOptions{options.bugs}),
        strict_(options.strict) {}

  std::string Name() const override { return "winefs"; }
  vfs::CrashGuarantees Guarantees() const override {
    return vfs::CrashGuarantees{true, true, strict_};
  }

  // The harness passes the number of open descriptors; ops run on the CPU of
  // the "calling process". Single-descriptor workloads stay on CPU 0.
  void SetCpuHint(int open_fds) override {
    cpu_ = std::clamp(open_fds - 1, 0, kNumCpus - 1);
  }

  // Multi-threaded workloads pin each op to the calling thread's CPU (the
  // runner issues this after SetCpuHint, so the thread placement wins).
  void SetThreadHint(int tid, int nthreads) override {
    mt_ = nthreads > 1;
    cpu_ = tid % kNumCpus;
  }

  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;

 protected:
  uint64_t JournalBase() const override {
    return pmfs::kJournalOff + static_cast<uint64_t>(cpu_) * kJournalStride;
  }
  uint64_t JournalCapacity() const override { return kPerCpuJournalEntries; }
  common::Status RecoverAllJournals() override;

  common::StatusOr<uint64_t> AllocBlockFor(bool data) override;

  uint64_t MagicValue() const override { return kWinefsMagic; }
  vfs::BugId WriteSyncBug() const override {
    return vfs::BugId::kWinefs15WriteNotSynchronous;
  }
  vfs::BugId NtTailBug() const override {
    return vfs::BugId::kWinefs18NtWriteSizeRace;
  }

  // BUG 27 arming: a commit is a "handoff" when the previous commit ran on a
  // different CPU. Tracked unconditionally so the defect depends only on the
  // schedule, not on when the bug toggle is consulted; fires only under
  // multi-threaded workloads (mt_) with the bug enabled.
  bool TornCommitHandoff() override {
    const int prev = last_commit_cpu_;
    last_commit_cpu_ = cpu_;
    return BugOn(vfs::BugId::kWinefs27TornHandoffCommit) && mt_ &&
           prev >= 0 && prev != cpu_;
  }

 private:
  common::StatusOr<uint64_t> WriteCow(uint32_t ino, uint64_t off,
                                      const uint8_t* data, uint64_t len);

  bool strict_;
  int cpu_ = 0;
  bool mt_ = false;           // a multi-threaded workload is running
  int last_commit_cpu_ = -1;  // CPU of the previous journal commit
};

}  // namespace winefs

#endif  // CHIPMUNK_FS_WINEFS_WINEFS_H_
