#include "src/fs/splitfs/splitfs.h"

#include <algorithm>
#include <cstring>

#include "src/common/coverage.h"

namespace splitfs {

using common::Status;
using common::StatusOr;
using vfs::BugId;
using vfs::FileType;
using vfs::InodeNum;

namespace {

// Op-log entry layout (128 bytes = two cache lines).
// Line 1 (commit byte lives here): header + write fields + dst name.
// Line 2: the rename source name.
struct OplogEntry {
  uint8_t type = 0;
  uint8_t commit = 0;
  uint8_t name_len = 0;
  uint8_t name2_len = 0;
  uint32_t ino = 0;
  uint64_t file_off = 0;
  uint32_t staging_off = 0;  // relative to the staging base
  uint32_t len = 0;
  uint64_t size_after = 0;
  uint32_t src_dir = 0;
  uint32_t dst_dir = 0;
  // Generation stamp: entries whose seq predates the header's are retired.
  // Relinking retires the whole log with one atomic header bump — clearing
  // entries one at a time would not be crash-atomic (a crash could leave an
  // earlier entry live after a later one died, folding a stale size).
  uint64_t seq = 0;
  char name1[16] = {};  // rename: destination name
  // ---- second cache line ----
  char name2[24] = {};  // rename: source name
  uint8_t pad[40] = {};
};
static_assert(sizeof(OplogEntry) == kOplogEntrySize, "oplog entry size");

}  // namespace

SplitFs::SplitFs(pmem::Pm* pm, SplitOptions options)
    : pm_(pm), options_(std::move(options)) {
  uint64_t fs_size = pm_->size() - kOplogBytes - kStagingBytes;
  fs_size -= fs_size % 4096;
  oplog_base_ = fs_size;
  staging_base_ = fs_size + kOplogBytes;
  ext4_ = std::make_unique<ext4dax::Ext4DaxFs>(
      pm_, ext4dax::Ext4Options{.fs_size = fs_size});
}

Status SplitFs::Mkfs() {
  mounted_ = false;
  RETURN_IF_ERROR(ext4_->Mkfs());
  pm_->MemsetNt(oplog_base_, 0, kOplogBytes);
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(oplog_base_, 1);  // generation 1
  pm_->Fence();
  return common::OkStatus();
}

Status SplitFs::ForceCommit(bool metadata_op) {
  if (metadata_op && BugOn(BugId::kSplitfs21MetaNotSynchronous)) {
    CHIPMUNK_COV();
    // BUG 21: the strict-mode path forgets to force the kernel journal
    // commit for forwarded metadata operations; they sit in the page cache
    // and are lost on crash even though the syscall returned.
    return common::OkStatus();
  }
  return ext4_->SyncAll();
}

// ---------------------------------------------------------------------------
// Staging + op-log machinery.
// ---------------------------------------------------------------------------

StatusOr<uint64_t> SplitFs::StageData(const uint8_t* data, uint64_t len,
                                      bool defer_fence) {
  if (staging_next_ + len > kStagingBytes || oplog_next_ >= kOplogEntries) {
    RETURN_IF_ERROR(Relink());
    if (staging_next_ + len > kStagingBytes) {
      return common::NoSpace("write larger than the staging region");
    }
  }
  uint64_t staging_off = staging_next_;
  pm_->MemcpyNt(staging_base_ + staging_off, data, len);
  if (!defer_fence) {
    pm_->Fence();  // staged data durable before the entry commits
  }
  staging_next_ += len;
  return staging_off;
}

Status SplitFs::AppendWriteEntry(uint32_t ino, uint64_t off, uint64_t len,
                                 uint64_t staging_off, uint64_t size_after,
                                 bool commit_early) {
  uint64_t entry_off = OplogOff(oplog_next_);
  OplogEntry entry;
  entry.type = kOpWrite;
  entry.commit = 0;
  entry.ino = ino;
  entry.file_off = off;
  entry.staging_off = static_cast<uint32_t>(staging_off);
  entry.len = static_cast<uint32_t>(len);
  entry.size_after = size_after;
  entry.seq = oplog_seq_;
  if (commit_early) {
    CHIPMUNK_COV();
    // BUG 23: the append fast path writes the entry pre-committed and uses a
    // single trailing fence, so the committed entry and the staged data race
    // to media — a crash can persist the entry over garbage staging bytes.
    entry.commit = 1;
    pm_->Memcpy(entry_off, &entry, sizeof(entry));
    pm_->FlushBuffer(entry_off, 64);
    pm_->Fence();
    oplog_next_ += 1;
    return common::OkStatus();
  }
  pm_->Memcpy(entry_off, &entry, sizeof(entry));
  pm_->FlushBuffer(entry_off, 64);
  pm_->Fence();
  // Publish: the commit byte makes the entry valid.
  pm_->Store<uint8_t>(entry_off + offsetof(OplogEntry, commit), 1);
  if (BugOn(BugId::kSplitfs24CommitByteNotFlushed)) {
    CHIPMUNK_COV();
    // BUG 24: the commit byte is written but its cache line is never
    // flushed before the syscall returns — the committed entry may never
    // become durable.
  } else {
    pm_->FlushBuffer(entry_off, 64);
    pm_->Fence();
  }
  oplog_next_ += 1;
  return common::OkStatus();
}

Status SplitFs::Relink() {
  // Apply staged extents to the kernel file system and commit.
  bool any = false;
  for (auto& [ino, overlay] : overlays_) {
    auto st = ext4_->GetAttr(ino);
    if (!st.ok()) {
      continue;  // the file vanished under the overlay
    }
    if (overlay.extents.empty() && overlay.size == st->size) {
      continue;
    }
    std::vector<uint8_t> buf;
    for (const StagedExtent& extent : overlay.extents) {
      buf.resize(extent.len);
      pm_->ReadInto(extent.staging_off, buf.data(), extent.len);
      auto n = ext4_->Write(ino, extent.file_off, buf.data(), extent.len);
      if (!n.ok()) {
        return n.status();
      }
      any = true;
    }
    auto after = ext4_->GetAttr(ino);
    if (after.ok() && after->size > overlay.size) {
      RETURN_IF_ERROR(ext4_->Truncate(ino, overlay.size));
      any = true;
    }
    overlay.extents.clear();
  }
  if (any || oplog_next_ > 0) {
    RETURN_IF_ERROR(ext4_->SyncAll());
    // Retire every op-log entry with one atomic generation bump. Clearing
    // entries individually would not be crash-atomic: a crash part-way
    // could leave an earlier entry live after a later one died, and replay
    // would fold a stale file size.
    ++oplog_seq_;
    pm_->StoreFlush<uint64_t>(oplog_base_, oplog_seq_);
    pm_->Fence();
    oplog_next_ = 0;
    staging_next_ = 0;
  }
  overlays_.clear();
  return common::OkStatus();
}

SplitFs::Overlay& SplitFs::GetOverlay(uint32_t ino) {
  auto it = overlays_.find(ino);
  if (it == overlays_.end()) {
    Overlay overlay;
    auto st = ext4_->GetAttr(ino);
    overlay.size = st.ok() ? st->size : 0;
    it = overlays_.emplace(ino, std::move(overlay)).first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Mount / recovery.
// ---------------------------------------------------------------------------

Status SplitFs::ReplayOplog() {
  oplog_seq_ = pm_->Load<uint64_t>(oplog_base_);
  if (oplog_seq_ == 0) {
    return common::Corruption("op-log header missing");
  }
  for (uint64_t i = 0; i < kOplogEntries; ++i) {
    OplogEntry entry;
    pm_->ReadInto(OplogOff(i), &entry, sizeof(entry));
    if (entry.type == 0) {
      break;  // end of log
    }
    if (entry.seq != oplog_seq_) {
      continue;  // retired generation
    }
    oplog_next_ = i + 1;
    if (entry.commit == 0) {
      continue;  // never published
    }
    CHIPMUNK_COV();
    if (entry.type == kOpWrite) {
      if (entry.ino == 0 || !ext4_->GetAttr(entry.ino).ok()) {
        continue;  // the file no longer exists
      }
      if (entry.staging_off + entry.len > kStagingBytes) {
        return common::Corruption("op-log staging range out of bounds");
      }
      Overlay& overlay = GetOverlay(entry.ino);
      overlay.extents.push_back(StagedExtent{
          entry.file_off, entry.len, staging_base_ + entry.staging_off});
      overlay.size = entry.size_after;
      staging_next_ =
          std::max<uint64_t>(staging_next_, entry.staging_off + entry.len);
    } else if (entry.type == kOpRename) {
      std::string dst(entry.name1,
                      std::min<size_t>(entry.name_len, sizeof(entry.name1)));
      std::string src(entry.name2,
                      std::min<size_t>(entry.name2_len, sizeof(entry.name2)));
      auto src_lookup = src.empty()
                            ? common::StatusOr<InodeNum>(common::NotFound(""))
                            : ext4_->Lookup(entry.src_dir, src);
      auto dst_lookup = ext4_->Lookup(entry.dst_dir, dst);
      if (src_lookup.ok() && *src_lookup == entry.ino) {
        // The kernel rename never happened (or the old name survived):
        // re-apply the whole rename. A replay failure (e.g. the workload
        // raced the entry with an invalid rename) is not fatal to mount.
        if (ext4_->Rename(entry.src_dir, src, entry.dst_dir, dst).ok()) {
          RETURN_IF_ERROR(ext4_->SyncAll());
        }
      } else if (!dst_lookup.ok() && entry.ino != 0 &&
                 ext4_->GetAttr(entry.ino).ok()) {
        // Source-name information is gone (see bug 25) but the destination
        // is missing: materialize it from the recorded inode.
        if (ext4_->Link(entry.ino, entry.dst_dir, dst).ok()) {
          RETURN_IF_ERROR(ext4_->SyncAll());
        }
      }
      pm_->Store<uint8_t>(OplogOff(i) + offsetof(OplogEntry, commit), 0);
      pm_->FlushBuffer(OplogOff(i), 8);
      pm_->Fence();
    } else {
      return common::Corruption("op-log entry with invalid type");
    }
  }
  return common::OkStatus();
}

Status SplitFs::Mount() {
  mounted_ = false;
  overlays_.clear();
  open_counts_.clear();
  oplog_next_ = 0;
  staging_next_ = 0;
  RETURN_IF_ERROR(ext4_->Mount());
  RETURN_IF_ERROR(ReplayOplog());
  if (pm_->faulted()) {
    return common::Status(pm_->fault());
  }
  mounted_ = true;
  return common::OkStatus();
}

Status SplitFs::Unmount() {
  if (mounted_) {
    RETURN_IF_ERROR(Relink());
    RETURN_IF_ERROR(ext4_->Unmount());
  }
  mounted_ = false;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Metadata operations (forwarded to the kernel component).
// ---------------------------------------------------------------------------

StatusOr<InodeNum> SplitFs::Lookup(InodeNum dir, const std::string& name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  return ext4_->Lookup(dir, name);
}

StatusOr<InodeNum> SplitFs::Create(InodeNum dir, const std::string& name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  ASSIGN_OR_RETURN(InodeNum ino, ext4_->Create(dir, name));
  RETURN_IF_ERROR(ForceCommit(/*metadata_op=*/true));
  return ino;
}

StatusOr<InodeNum> SplitFs::Mkdir(InodeNum dir, const std::string& name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  ASSIGN_OR_RETURN(InodeNum ino, ext4_->Mkdir(dir, name));
  RETURN_IF_ERROR(ForceCommit(/*metadata_op=*/true));
  return ino;
}

Status SplitFs::Unlink(InodeNum dir, const std::string& name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  // Staged data must be relinked first: op-log write entries must never
  // outlive the namespace state they were logged against.
  RETURN_IF_ERROR(Relink());
  RETURN_IF_ERROR(ext4_->Unlink(dir, name));
  return ForceCommit(/*metadata_op=*/true);
}

Status SplitFs::Rmdir(InodeNum dir, const std::string& name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  RETURN_IF_ERROR(ext4_->Rmdir(dir, name));
  return ForceCommit(/*metadata_op=*/true);
}

Status SplitFs::Link(InodeNum target, InodeNum dir, const std::string& name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  RETURN_IF_ERROR(ext4_->Link(target, dir, name));
  return ForceCommit(/*metadata_op=*/true);
}

Status SplitFs::Rename(InodeNum src_dir, const std::string& src_name,
                       InodeNum dst_dir, const std::string& dst_name) {
  if (!mounted_) {
    return common::NotMounted();
  }
  RETURN_IF_ERROR(Relink());
  ASSIGN_OR_RETURN(InodeNum src_ino, ext4_->Lookup(src_dir, src_name));
  if (src_name.size() > sizeof(OplogEntry{}.name2) ||
      dst_name.size() > sizeof(OplogEntry{}.name1)) {
    return Status(common::ErrorCode::kNameTooLong, dst_name);
  }
  if (oplog_next_ >= kOplogEntries) {
    RETURN_IF_ERROR(Relink());
  }

  // Persist the rename intention in the op-log so a crash between here and
  // the kernel commit is replayed at recovery.
  uint64_t entry_off = OplogOff(oplog_next_);
  OplogEntry entry;
  entry.type = kOpRename;
  entry.ino = static_cast<uint32_t>(src_ino);
  entry.src_dir = static_cast<uint32_t>(src_dir);
  entry.dst_dir = static_cast<uint32_t>(dst_dir);
  entry.name_len = static_cast<uint8_t>(dst_name.size());
  entry.name2_len = static_cast<uint8_t>(src_name.size());
  entry.seq = oplog_seq_;
  std::memcpy(entry.name1, dst_name.data(), dst_name.size());
  std::memcpy(entry.name2, src_name.data(), src_name.size());
  pm_->Memcpy(entry_off, &entry, sizeof(entry));
  pm_->FlushBuffer(entry_off, 64);  // first cache line
  if (BugOn(BugId::kSplitfs25RenameSecondLine)) {
    CHIPMUNK_COV();
    // BUG 25: the entry spans two cache lines, and the flush of the second
    // line — the one holding the source name — is missing. Recovery then
    // sees a committed rename with no source to remove and conjures the
    // destination while the old name lives on.
  } else {
    pm_->FlushBuffer(entry_off + 64, 64);
  }
  pm_->Fence();
  pm_->Store<uint8_t>(entry_off + offsetof(OplogEntry, commit), 1);
  pm_->FlushBuffer(entry_off, 64);
  pm_->Fence();
  oplog_next_ += 1;

  Status rename_status = ext4_->Rename(src_dir, src_name, dst_dir, dst_name);
  if (!rename_status.ok()) {
    // Withdraw the logged intention.
    pm_->Store<uint8_t>(entry_off + offsetof(OplogEntry, commit), 0);
    pm_->FlushBuffer(entry_off, 8);
    pm_->Fence();
    oplog_next_ -= 1;
    return rename_status;
  }
  RETURN_IF_ERROR(ext4_->SyncAll());
  // The rename is durable in the kernel FS; retire the log entry.
  pm_->Store<uint8_t>(entry_off + offsetof(OplogEntry, commit), 0);
  pm_->FlushBuffer(entry_off, 8);
  pm_->Fence();
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Data path (the user-space component).
// ---------------------------------------------------------------------------

StatusOr<uint64_t> SplitFs::Read(InodeNum ino_in, uint64_t off, uint64_t len,
                                 uint8_t* out) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  if (!mounted_) {
    return common::NotMounted();
  }
  ASSIGN_OR_RETURN(vfs::FsStat st, GetAttr(ino));
  if (st.type != FileType::kRegular) {
    return common::IsDir();
  }
  if (off >= st.size || len == 0) {
    return uint64_t{0};
  }
  uint64_t n = std::min<uint64_t>(len, st.size - off);
  std::memset(out, 0, n);
  // Base content from the kernel FS, bounded by its own size.
  auto base = ext4_->Read(ino, off, n, out);
  if (!base.ok() && base.status().code() != common::ErrorCode::kNotFound) {
    return base;
  }
  // Overlay staged extents in log order.
  auto it = overlays_.find(ino);
  if (it != overlays_.end()) {
    for (const StagedExtent& extent : it->second.extents) {
      uint64_t from = std::max(off, extent.file_off);
      uint64_t to = std::min(off + n, extent.file_off + extent.len);
      if (from >= to) {
        continue;
      }
      pm_->ReadInto(extent.staging_off + (from - extent.file_off),
                    out + (from - off), to - from);
    }
  }
  return n;
}

StatusOr<uint64_t> SplitFs::Write(InodeNum ino_in, uint64_t off,
                                  const uint8_t* data, uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  if (!mounted_) {
    return common::NotMounted();
  }
  ASSIGN_OR_RETURN(vfs::FsStat st, ext4_->GetAttr(ino));
  if (st.type != FileType::kRegular) {
    return common::IsDir();
  }
  if (len == 0) {
    return uint64_t{0};
  }

  Overlay& overlay = GetOverlay(ino);
  const bool append = off >= overlay.size;
  // The buggy append fast path only exists for files with multiple open
  // handles (the shared-handle bookkeeping is what skips the data fence), so
  // like bug 22 it needs a workload with two descriptors on one file.
  const bool commit_early = BugOn(BugId::kSplitfs23AppendCommitEarly) &&
                            append && open_counts_[ino_in] >= 2;

  ASSIGN_OR_RETURN(uint64_t staging_off, StageData(data, len, commit_early));

  uint64_t size_after = std::max(overlay.size, off + len);
  if (BugOn(BugId::kSplitfs22RelinkOffsetDrop) && open_counts_[ino_in] >= 2) {
    CHIPMUNK_COV();
    // BUG 22: with several open handles the user-space library consults its
    // per-handle cached size instead of the shared one, logging a stale
    // size_after. Recovery truncates the file to this write's end, losing
    // data written through the other handle.
    size_after = off + len;
  }
  RETURN_IF_ERROR(
      AppendWriteEntry(ino, off, len, staging_off, size_after, commit_early));

  overlay.extents.push_back(
      StagedExtent{off, len, staging_base_ + staging_off});
  overlay.size = std::max(overlay.size, off + len);
  return len;
}

Status SplitFs::Truncate(InodeNum ino_in, uint64_t new_size) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  if (!mounted_) {
    return common::NotMounted();
  }
  ASSIGN_OR_RETURN(vfs::FsStat st, ext4_->GetAttr(ino));
  if (st.type != FileType::kRegular) {
    return common::IsDir();
  }
  RETURN_IF_ERROR(Relink());
  RETURN_IF_ERROR(ext4_->Truncate(ino, new_size));
  return ForceCommit(/*metadata_op=*/false);
}

Status SplitFs::Fallocate(InodeNum ino_in, uint32_t mode, uint64_t off,
                          uint64_t len) {
  if (!mounted_) {
    return common::NotMounted();
  }
  RETURN_IF_ERROR(Relink());
  RETURN_IF_ERROR(ext4_->Fallocate(ino_in, mode, off, len));
  return ForceCommit(/*metadata_op=*/false);
}

StatusOr<vfs::FsStat> SplitFs::GetAttr(InodeNum ino_in) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  if (!mounted_) {
    return common::NotMounted();
  }
  ASSIGN_OR_RETURN(vfs::FsStat st, ext4_->GetAttr(ino));
  auto it = overlays_.find(ino);
  if (it != overlays_.end() && st.type == FileType::kRegular) {
    st.size = it->second.size;
  }
  return st;
}

StatusOr<std::vector<vfs::DirEntry>> SplitFs::ReadDir(InodeNum dir) {
  if (!mounted_) {
    return common::NotMounted();
  }
  return ext4_->ReadDir(dir);
}

Status SplitFs::Fsync(InodeNum ino) {
  if (!mounted_) {
    return common::NotMounted();
  }
  RETURN_IF_ERROR(ext4_->GetAttr(ino).status());
  return Relink();
}

Status SplitFs::SyncAll() {
  if (!mounted_) {
    return common::NotMounted();
  }
  return Relink();
}

}  // namespace splitfs
