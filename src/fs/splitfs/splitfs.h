// SplitFs: SplitFS-like hybrid PM file system in strict mode (Kadekodi et
// al., SOSP '19).
//
// Architecture: a "kernel" component — an embedded Ext4DaxFs occupying the
// low part of the device — handles metadata and checkpointed file data; the
// "user-space" component (this class) gives strict-mode guarantees on top:
//   - data writes go to a staging region and are published by a committed
//     entry in a persistent operation log (atomic + synchronous writes);
//   - reads overlay the staged extents on the ext4 state;
//   - metadata operations are forwarded to ext4 and made synchronous by
//     forcing a journal commit;
//   - rename gets its own op-log entry so it is atomic even though the
//     underlying commit is deferred (replayed at recovery if interrupted);
//   - fsync/sync "relink" staged data into ext4 and clear the op-log.
//
// Recovery: mount ext4 (journal replay), then scan the op-log in order,
// rebuilding the staging overlay and re-applying interrupted renames.
#ifndef CHIPMUNK_FS_SPLITFS_SPLITFS_H_
#define CHIPMUNK_FS_SPLITFS_SPLITFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/ext4dax/ext4dax.h"
#include "src/pmem/pm.h"
#include "src/vfs/bug.h"
#include "src/vfs/filesystem.h"

namespace splitfs {

inline constexpr uint64_t kOplogEntrySize = 128;  // two cache lines
// The first 64 bytes of the op-log region hold the header (the generation
// word); entries follow.
inline constexpr uint64_t kOplogHeaderSize = 64;
inline constexpr uint64_t kOplogEntries = 255;
inline constexpr uint64_t kOplogBytes =
    kOplogHeaderSize + kOplogEntrySize * kOplogEntries;
inline constexpr uint64_t kStagingBytes = 64 * 4096;

// Op-log entry types.
inline constexpr uint8_t kOpWrite = 1;
inline constexpr uint8_t kOpRename = 3;

struct SplitOptions {
  vfs::BugSet bugs = {};
};

class SplitFs : public vfs::FileSystem {
 public:
  SplitFs(pmem::Pm* pm, SplitOptions options);

  std::string Name() const override { return "splitfs"; }
  vfs::CrashGuarantees Guarantees() const override {
    // Strict mode: synchronous, atomic metadata, atomic data writes.
    return vfs::CrashGuarantees{true, true, true};
  }

  common::Status Mkfs() override;
  common::Status Mount() override;
  common::Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override;
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override;
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override;
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override;
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override;

  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override;
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override;
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override;
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override;
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override;

  common::Status Fsync(vfs::InodeNum ino) override;
  common::Status SyncAll() override;

  void OnOpen(vfs::InodeNum ino) override { open_counts_[ino] += 1; }
  void OnClose(vfs::InodeNum ino) override {
    auto it = open_counts_.find(ino);
    if (it != open_counts_.end() && --it->second <= 0) {
      open_counts_.erase(it);
    }
  }

 private:
  struct StagedExtent {
    uint64_t file_off = 0;
    uint64_t len = 0;
    uint64_t staging_off = 0;  // absolute media offset
  };
  struct Overlay {
    std::vector<StagedExtent> extents;
    uint64_t size = 0;  // logical size (ext4 size folded with op-log)
  };

  bool BugOn(vfs::BugId id) const { return options_.bugs.Has(id); }

  uint64_t OplogOff(uint64_t index) const {
    return oplog_base_ + kOplogHeaderSize + index * kOplogEntrySize;
  }

  // Forces the kernel component's journal commit, making a forwarded
  // metadata operation synchronous. BUG 21 skips this.
  common::Status ForceCommit(bool metadata_op);

  // Applies every staged extent to ext4, commits, and clears the op-log and
  // staging region.
  common::Status Relink();

  // Appends a committed write entry publishing a staged extent.
  // `commit_early` is the bug-23 append fast path (single trailing fence).
  common::Status AppendWriteEntry(uint32_t ino, uint64_t off, uint64_t len,
                                  uint64_t staging_off, uint64_t size_after,
                                  bool commit_early);

  common::StatusOr<uint64_t> StageData(const uint8_t* data, uint64_t len,
                                       bool defer_fence);

  common::Status ReplayOplog();

  Overlay& GetOverlay(uint32_t ino);

  pmem::Pm* pm_;
  SplitOptions options_;
  std::unique_ptr<ext4dax::Ext4DaxFs> ext4_;
  bool mounted_ = false;

  uint64_t oplog_base_ = 0;
  uint64_t staging_base_ = 0;
  uint64_t oplog_next_ = 0;    // next free entry index
  uint64_t oplog_seq_ = 1;     // current generation (mirrors the header)
  uint64_t staging_next_ = 0;  // bump offset within the staging region

  std::map<uint32_t, Overlay> overlays_;
  std::map<vfs::InodeNum, int> open_counts_;
};

}  // namespace splitfs

#endif  // CHIPMUNK_FS_SPLITFS_SPLITFS_H_
