// NovaFs: format, mount-time recovery, allocators, log machinery, and the
// journaled commit path. Syscall implementations live in nova_ops.cc.
#include <algorithm>
#include <cstring>

#include "src/common/coverage.h"
#include "src/common/crc32.h"
#include "src/fs/novafs/nova_fs.h"

namespace novafs {

using common::Status;
using common::StatusOr;
using vfs::BugId;
using vfs::FileType;

namespace {

uint64_t LogBlockBase(uint64_t off) {
  return off - (off - kLogRegionOff) % kLogBlockSize;
}

bool IsLogBlockAligned(uint64_t off) {
  return off >= kLogRegionOff && (off - kLogRegionOff) % kLogBlockSize == 0;
}

}  // namespace

LogEntry NovaFs::LoadEntry(uint64_t off) const {
  LogEntry entry;
  pm_->ReadInto(off, &entry, sizeof(entry));
  return entry;
}

Status NovaFs::CheckName(const std::string& name) const {
  if (name.empty()) {
    return common::Invalid("empty name");
  }
  if (name.size() > kMaxNameLen) {
    return Status(common::ErrorCode::kNameTooLong, name);
  }
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Format.
// ---------------------------------------------------------------------------

Status NovaFs::Mkfs() {
  if (pm_->size() < kMinDeviceSize) {
    return common::Invalid("device too small for novafs");
  }
  mounted_ = false;
  mkfs_ran_ = true;

  // Zero the metadata regions (superblock page, inode tables, log region).
  for (uint64_t off = 0; off < kDataRegionOff; off += kPageSize) {
    pm_->MemsetNt(off, 0, kPageSize);
  }
  pm_->Fence();

  Superblock sb;
  sb.magic = kMagic;
  sb.device_size = pm_->size();
  sb.data_region_off = kDataRegionOff;
  sb.data_pages = (pm_->size() - kDataRegionOff) / kPageSize;
  sb.fortis = options_.fortis ? 1 : 0;
  pm_->Memcpy(kSuperblockOff, &sb, sizeof(sb));
  pm_->FlushBuffer(kSuperblockOff, sizeof(sb));
  pm_->Fence();

  // Root inode with a preallocated first log block, so common single-entry
  // appends to the root publish only the 8-byte tail.
  uint64_t root_block = kLogRegionOff;
  pm_->StoreFlush<uint64_t>(root_block, kLogBlockMagic);
  uint64_t root = InodeOff(kRootIno);
  pm_->Store<uint64_t>(root + kInoWord0,
                       PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  pm_->Store<uint64_t>(root + kInoLogHead, root_block);
  pm_->Store<uint64_t>(root + kInoLogTail, root_block + kFirstSlotOff);
  pm_->FlushBuffer(root, 24);
  if (options_.fortis) {
    WriteInodeCsum(kRootIno, /*replica=*/false, /*flush=*/true);
    uint64_t rep = ReplicaOff(kRootIno);
    pm_->Store<uint64_t>(rep + kInoWord0,
                         pm_->Load<uint64_t>(root + kInoWord0));
    pm_->Store<uint64_t>(rep + kInoLogHead, root_block);
    pm_->Store<uint64_t>(rep + kInoLogTail, root_block + kFirstSlotOff);
    pm_->FlushBuffer(rep, 24);
    WriteInodeCsum(kRootIno, /*replica=*/true, /*flush=*/true);
  }
  pm_->Fence();
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Allocation.
// ---------------------------------------------------------------------------

StatusOr<uint32_t> NovaFs::AllocInode() {
  for (uint32_t ino = 2; ino < kNumInodes; ++ino) {
    if (!inodes_[ino].in_use) {
      inodes_[ino] = InodeState{};
      inodes_[ino].in_use = true;
      return ino;
    }
  }
  return common::NoSpace("inode table full");
}

StatusOr<uint64_t> NovaFs::AllocLogBlock() {
  if (free_log_blocks_.empty()) {
    return common::NoSpace("log region full");
  }
  uint64_t off = free_log_blocks_.back();
  free_log_blocks_.pop_back();
  return off;
}

StatusOr<uint32_t> NovaFs::AllocDataPage() {
  if (free_data_pages_.empty()) {
    return common::NoSpace("data region full");
  }
  uint32_t page = free_data_pages_.back();
  free_data_pages_.pop_back();
  return page;
}

void NovaFs::FreeLogBlock(uint64_t off) { free_log_blocks_.push_back(off); }
void NovaFs::FreeDataPage(uint32_t page) { free_data_pages_.push_back(page); }

void NovaFs::ReleaseInodeResources(InodeState& st) {
  // Free the log-block chain.
  uint64_t block = st.log_head;
  int guard = 0;
  while (block != 0 && IsLogBlockAligned(block) &&
         guard++ < static_cast<int>(kNumLogBlocks)) {
    uint64_t next = pm_->Load<uint64_t>(block + kFooterOffset);
    FreeLogBlock(block);
    block = next;
  }
  for (const auto& [page_idx, extent] : st.extents) {
    FreeDataPage(extent.data_page);
  }
  st = InodeState{};
}

// ---------------------------------------------------------------------------
// Log machinery.
// ---------------------------------------------------------------------------

StatusOr<uint64_t> NovaFs::ExtendLog(uint64_t link_from) {
  ASSIGN_OR_RETURN(uint64_t block, AllocLogBlock());
  if (BugOn(BugId::kNova1LogPageInitOrder) && link_from != 0) {
    CHIPMUNK_COV();
    // BUG 1: the new block is linked into the chain without being
    // initialized (no zeroing, no header magic). The running file system is
    // fine — its DRAM tail cache never re-reads the header — but recovery
    // walks the chain after any crash and lands in an uninitialized block,
    // leaving the file system unmountable.
    pm_->StoreFlush<uint64_t>(link_from, block);
    pm_->Fence();
    return block;
  }
  // Fixed: initialize (zero + magic), make it durable, then link.
  pm_->MemsetNt(block, 0, kLogBlockSize);
  pm_->MemcpyNt(block, &kLogBlockMagic, sizeof(kLogBlockMagic));
  pm_->Fence();
  if (link_from != 0) {
    pm_->StoreFlush<uint64_t>(link_from, block);
    pm_->Fence();
  }
  return block;
}

Status NovaFs::WriteLogEntries(uint32_t ino,
                               const std::vector<LogEntry>& entries,
                               uint64_t* new_tail, uint64_t* new_head,
                               std::vector<uint64_t>* entry_offs) {
  InodeState& st = inodes_[ino];
  uint64_t tail = st.log_tail;
  *new_head = 0;
  if (st.log_head == 0) {
    ASSIGN_OR_RETURN(uint64_t head, ExtendLog(0));
    *new_head = head;
    tail = head + kFirstSlotOff;
  }
  for (const LogEntry& entry : entries) {
    uint64_t block = LogBlockBase(tail);
    if (tail - block >= kFooterOffset) {
      // The previous entry consumed the last slot: chain a new block.
      ASSIGN_OR_RETURN(uint64_t next, ExtendLog(block + kFooterOffset));
      tail = next + kFirstSlotOff;
    }
    pm_->Memcpy(tail, &entry, sizeof(entry));
    pm_->FlushBuffer(tail, sizeof(entry));
    if (entry_offs != nullptr) {
      entry_offs->push_back(tail);
    }
    tail += kLogEntrySize;
  }
  uint64_t block = LogBlockBase(tail);
  if (tail - block >= kFooterOffset && !BugOn(BugId::kNova3TailOverrun)) {
    // Fixed: never leave the published tail pointing at a footer — extend
    // now so the commit publishes a valid entry slot.
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(block + kFooterOffset));
    tail = next + kFirstSlotOff;
  }
  // BUG 3: the tail is left pointing at the footer; the caller publishes it
  // as-is, then allocates the next block and republishes. A crash between
  // the two publishes leaves a tail that recovery rejects.
  *new_tail = tail;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Commit machinery (tail publishes and word0 updates, with the lite journal).
// ---------------------------------------------------------------------------

NovaFs::Patch NovaFs::TailPatch(uint32_t ino, uint64_t new_tail) {
  return Patch{InodeOff(ino) + kInoLogTail, new_tail, ino};
}
NovaFs::Patch NovaFs::HeadPatch(uint32_t ino, uint64_t new_head) {
  return Patch{InodeOff(ino) + kInoLogHead, new_head, ino};
}
NovaFs::Patch NovaFs::Word0Patch(uint32_t ino, uint64_t value) {
  return Patch{InodeOff(ino) + kInoWord0, value, ino};
}

void NovaFs::WriteInodeCsum(uint32_t ino, bool replica, bool flush) {
  uint64_t base = replica ? ReplicaOff(ino) : InodeOff(ino);
  std::vector<uint8_t> bytes = pm_->ReadVec(base, 24);
  uint32_t csum = common::Crc32(bytes.data(), bytes.size());
  pm_->Store<uint32_t>(base + kInoCsum, csum);
  if (flush) {
    pm_->FlushBuffer(base + kInoCsum, sizeof(csum));
  }
}

void NovaFs::JournalBegin(const std::vector<Patch>& patches) {
  // The lite journal records the *old* value of every word the transaction
  // will touch; recovery rolls uncommitted transactions back.
  uint64_t n = patches.size();
  pm_->Store<uint64_t>(kJournalOff + 8, n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t entry_off = kJournalOff + kJournalHeaderSize + i * kJournalEntrySize;
    uint64_t old_value = pm_->Load<uint64_t>(patches[i].addr);
    pm_->Store<uint64_t>(entry_off, patches[i].addr);
    pm_->Store<uint64_t>(entry_off + 8, old_value);
  }
  pm_->FlushBuffer(kJournalOff + 8, 8 + n * kJournalEntrySize);
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(kJournalOff, 1);
  pm_->Fence();
}

void NovaFs::JournalEnd() {
  pm_->StoreFlush<uint64_t>(kJournalOff, 0);
  pm_->Fence();
}

Status NovaFs::CommitPatches(const std::vector<Patch>& patches,
                             bool csum_unflushed_bug) {
  if (patches.empty()) {
    return common::OkStatus();
  }
  const bool fortis = options_.fortis;
  const bool replica_in_tx = fortis && !BugOn(BugId::kFortis10ReplicaNotJournaled);

  // Inodes touched, in first-appearance order.
  std::vector<uint32_t> inos;
  for (const Patch& p : patches) {
    if (std::find(inos.begin(), inos.end(), p.ino) == inos.end()) {
      inos.push_back(p.ino);
    }
  }

  // Build the journal word set.
  std::vector<Patch> words = patches;
  if (replica_in_tx) {
    for (const Patch& p : patches) {
      words.push_back(
          Patch{ReplicaOff(p.ino) + (p.addr - InodeOff(p.ino)), p.value, p.ino});
    }
  }
  if (fortis && !csum_unflushed_bug) {
    for (uint32_t ino : inos) {
      words.push_back(Patch{InodeOff(ino) + kInoCsum, 0, ino});
      if (replica_in_tx) {
        words.push_back(Patch{ReplicaOff(ino) + kInoCsum, 0, ino});
      }
    }
  }
  if (words.size() > kJournalMaxEntries) {
    return common::Internal("journal transaction too large");
  }

  const bool use_journal = words.size() > 1;
  if (use_journal) {
    JournalBegin(words);
  }

  // Apply the primary words.
  for (const Patch& p : patches) {
    pm_->StoreFlush<uint64_t>(p.addr, p.value);
  }
  if (fortis) {
    for (uint32_t ino : inos) {
      // BUG 9: the checksum is recomputed but its cache line is never
      // flushed, so the new fields can persist with a stale checksum.
      WriteInodeCsum(ino, /*replica=*/false, /*flush=*/!csum_unflushed_bug);
    }
    if (replica_in_tx) {
      for (const Patch& p : patches) {
        pm_->StoreFlush<uint64_t>(
            ReplicaOff(p.ino) + (p.addr - InodeOff(p.ino)), p.value);
      }
      for (uint32_t ino : inos) {
        WriteInodeCsum(ino, /*replica=*/true, /*flush=*/!csum_unflushed_bug);
      }
    }
  }
  pm_->Fence();
  if (use_journal) {
    JournalEnd();
  }

  if (fortis && !replica_in_tx) {
    CHIPMUNK_COV();
    // BUG 10: the replica is brought up to date only after the transaction
    // commits; a crash in between leaves primary and replica divergent and
    // recovery marks the inode suspect.
    for (const Patch& p : patches) {
      pm_->StoreFlush<uint64_t>(ReplicaOff(p.ino) + (p.addr - InodeOff(p.ino)),
                                p.value);
    }
    for (uint32_t ino : inos) {
      WriteInodeCsum(ino, /*replica=*/true, /*flush=*/true);
    }
    pm_->Fence();
  }
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Fortis truncate list.
// ---------------------------------------------------------------------------

void NovaFs::WriteTruncRecord(uint32_t ino, uint64_t new_size,
                              const std::vector<uint32_t>& pages) {
  for (uint32_t slot = 0; slot < kTruncListSlots; ++slot) {
    uint64_t off = TruncRecordOff(slot);
    if (pm_->Load<uint64_t>(off) != 0) {
      continue;
    }
    TruncRecord rec;
    rec.valid = 1;
    rec.ino = ino;
    rec.new_size = new_size;
    rec.npages = static_cast<uint32_t>(std::min<size_t>(pages.size(), 8));
    for (uint32_t i = 0; i < rec.npages; ++i) {
      rec.pages[i] = pages[i];
    }
    pm_->Memcpy(off, &rec, sizeof(rec));
    pm_->FlushBuffer(off, sizeof(rec));
    pm_->Fence();
    return;
  }
}

void NovaFs::ClearTruncRecords() {
  for (uint32_t slot = 0; slot < kTruncListSlots; ++slot) {
    uint64_t off = TruncRecordOff(slot);
    if (pm_->Load<uint64_t>(off) != 0) {
      pm_->StoreFlush<uint64_t>(off, 0);
    }
  }
  pm_->Fence();
}

// ---------------------------------------------------------------------------
// Mount-time recovery.
// ---------------------------------------------------------------------------

Status NovaFs::RecoverJournal() {
  if (pm_->Load<uint64_t>(kJournalOff) == 0) {
    return common::OkStatus();
  }
  CHIPMUNK_COV();
  uint64_t n = pm_->Load<uint64_t>(kJournalOff + 8);
  if (n > kJournalMaxEntries) {
    return common::Corruption("journal entry count out of range");
  }
  // Roll back, newest first.
  for (uint64_t i = n; i-- > 0;) {
    uint64_t entry_off = kJournalOff + kJournalHeaderSize + i * kJournalEntrySize;
    uint64_t addr = pm_->Load<uint64_t>(entry_off);
    uint64_t old_value = pm_->Load<uint64_t>(entry_off + 8);
    if (!pm_->InBounds(addr, 8)) {
      return common::Corruption("journal entry address out of range");
    }
    pm_->StoreFlush<uint64_t>(addr, old_value);
  }
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(kJournalOff, 0);
  pm_->Fence();
  return common::OkStatus();
}

Status NovaFs::ApplyEntryToState(uint32_t ino, const LogEntry& entry,
                                 uint64_t entry_off, InodeState& st) {
  switch (static_cast<EntryType>(entry.type)) {
    case EntryType::kDentryAdd: {
      if (st.type != FileType::kDirectory) {
        return common::Corruption("dentry entry in non-directory log");
      }
      std::string name(entry.name,
                       std::min<size_t>(entry.name_len, sizeof(entry.name)));
      st.entries[name] = entry.child_ino;
      st.entry_media_off[name] = entry_off;
      break;
    }
    case EntryType::kDentryDel: {
      if (st.type != FileType::kDirectory) {
        return common::Corruption("dentry entry in non-directory log");
      }
      std::string name(entry.name,
                       std::min<size_t>(entry.name_len, sizeof(entry.name)));
      st.entries.erase(name);
      st.entry_media_off.erase(name);
      break;
    }
    case EntryType::kWrite: {
      if (st.type != FileType::kRegular) {
        return common::Corruption("write entry in directory log");
      }
      Extent extent;
      extent.data_page = entry.data_page;
      extent.length = entry.length;
      extent.entry_off = entry_off;
      if (options_.fortis && entry.data_csum != 0) {
        std::vector<uint8_t> data =
            pm_->ReadVec(DataPageOff(entry.data_page), kPageSize);
        if (common::Crc32(data.data(), data.size()) != entry.data_csum) {
          CHIPMUNK_COV();
          extent.csum_bad = true;
        }
      }
      uint32_t page_idx = static_cast<uint32_t>(entry.file_off / kPageSize);
      st.extents[page_idx] = extent;
      st.size = entry.size_after;
      break;
    }
    case EntryType::kSetAttr: {
      if (st.type != FileType::kRegular) {
        return common::Corruption("setattr entry in directory log");
      }
      uint64_t size = entry.size_after;
      // Drop extents that lie entirely beyond the new size.
      const bool drop_boundary = BugOn(BugId::kNova7TruncateRebuildDrop);
      for (auto it = st.extents.begin(); it != st.extents.end();) {
        uint64_t page_start = static_cast<uint64_t>(it->first) * kPageSize;
        // BUG 7: the rebuild also drops the partially-retained boundary
        // page, losing the data before the truncation point.
        bool drop = drop_boundary ? (page_start + kPageSize > size)
                                  : (page_start >= size);
        if (drop) {
          it = st.extents.erase(it);
        } else {
          ++it;
        }
      }
      st.size = size;
      break;
    }
    case EntryType::kLinkChange: {
      st.nlink = entry.links_after;
      st.last_linkchange_off = entry_off;
      break;
    }
    default:
      return common::Corruption("unknown log entry type");
  }
  return common::OkStatus();
}

Status NovaFs::RebuildInode(uint32_t ino) {
  uint64_t base = InodeOff(ino);
  uint64_t word0 = pm_->Load<uint64_t>(base + kInoWord0);
  if (Word0Valid(word0) == 0) {
    return common::OkStatus();
  }
  InodeState& st = inodes_[ino];
  st.in_use = true;
  st.type = static_cast<FileType>(Word0Type(word0));
  if (st.type != FileType::kRegular && st.type != FileType::kDirectory) {
    return common::Corruption("inode with invalid type");
  }
  st.nlink = Word0Links(word0);
  st.log_head = pm_->Load<uint64_t>(base + kInoLogHead);
  st.log_tail = pm_->Load<uint64_t>(base + kInoLogTail);

  if (options_.fortis) {
    // Validate the inode checksum and the replica.
    std::vector<uint8_t> bytes = pm_->ReadVec(base, 24);
    uint32_t want = common::Crc32(bytes.data(), bytes.size());
    uint32_t have = pm_->Load<uint32_t>(base + kInoCsum);
    std::vector<uint8_t> rep_bytes = pm_->ReadVec(ReplicaOff(ino), 24);
    if (want != have || bytes != rep_bytes) {
      CHIPMUNK_COV();
      st.suspect = true;
      return common::OkStatus();  // inode quarantined, mount proceeds
    }
  }

  if (st.log_tail == 0) {
    return common::OkStatus();
  }
  if (st.log_head == 0 || !IsLogBlockAligned(st.log_head)) {
    return common::Corruption("log tail without a valid head");
  }
  if (st.log_tail < kLogRegionOff ||
      (st.log_tail - kLogRegionOff) % kLogEntrySize != 0) {
    return common::Corruption("misaligned log tail");
  }

  uint64_t block = st.log_head;
  std::set<uint64_t> visited;
  while (true) {
    if (!visited.insert(block).second) {
      return common::Corruption("cycle in log chain");
    }
    if (pm_->Load<uint64_t>(block) != kLogBlockMagic) {
      return common::Corruption("log block without magic header");
    }
    bool done = false;
    for (uint64_t slot = 0; slot < kEntriesPerBlock; ++slot) {
      uint64_t cur = block + kFirstSlotOff + slot * kLogEntrySize;
      if (cur == st.log_tail) {
        done = true;
        break;
      }
      LogEntry entry = LoadEntry(cur);
      if (entry.type == static_cast<uint8_t>(EntryType::kEnd)) {
        // Torn log: the tail outran the entries. Treat the durable prefix
        // as the log (lenient recovery; fixed code orders entries before
        // the tail so this only arises from injected bugs).
        done = true;
        break;
      }
      if (entry.type > kMaxEntryType) {
        return common::Corruption("log entry with invalid type");
      }
      if (entry.valid == 0) {
        continue;  // invalidated in place
      }
      RETURN_IF_ERROR(ApplyEntryToState(ino, entry, cur, st));
    }
    if (done) {
      break;
    }
    uint64_t footer = block + kFooterOffset;
    if (st.log_tail == footer) {
      // A published tail must point at an entry slot (see bug 3).
      return common::Corruption("log tail points into block footer");
    }
    uint64_t next = pm_->Load<uint64_t>(footer);
    if (next == 0) {
      break;  // lenient: tail beyond the durable chain
    }
    if (!IsLogBlockAligned(next)) {
      return common::Corruption("log footer links outside the log region");
    }
    block = next;
  }
  return common::OkStatus();
}

Status NovaFs::ReplayTruncList() {
  for (uint32_t slot = 0; slot < kTruncListSlots; ++slot) {
    uint64_t off = TruncRecordOff(slot);
    TruncRecord rec;
    pm_->ReadInto(off, &rec, sizeof(rec));
    if (rec.valid == 0) {
      continue;
    }
    CHIPMUNK_COV();
    // Release the pages named by the record. If log replay already released
    // them (the truncate committed before the crash), this is a double free.
    for (uint32_t i = 0; i < rec.npages && i < 8; ++i) {
      uint32_t page = rec.pages[i];
      if (std::find(free_data_pages_.begin(), free_data_pages_.end(), page) !=
          free_data_pages_.end()) {
        return common::Corruption(
            "truncate-list replay frees an already-free block");
      }
      // Freeing a block that rebuild still considers in use corrupts a live
      // file's data; surface it the same way.
      return common::Corruption("truncate-list replay frees an in-use block");
    }
    pm_->StoreFlush<uint64_t>(off, 0);
    pm_->Fence();
  }
  return common::OkStatus();
}

Status NovaFs::Mount() {
  mounted_ = false;
  inodes_.assign(kNumInodes, InodeState{});
  free_log_blocks_.clear();
  free_data_pages_.clear();

  Superblock sb;
  // The fallible read path: an injected media fault on the superblock makes
  // the mount fail cleanly instead of proceeding on zero-filled garbage.
  RETURN_IF_ERROR(pm_->TryReadInto(kSuperblockOff, &sb, sizeof(sb)));
  if (sb.magic != kMagic) {
    return common::Corruption("bad superblock magic");
  }
  if (sb.device_size != pm_->size() || sb.data_region_off != kDataRegionOff) {
    return common::Corruption("superblock geometry mismatch");
  }
  if ((sb.fortis != 0) != options_.fortis) {
    return common::Corruption("fortis flag mismatch");
  }
  data_region_off_ = sb.data_region_off;
  data_pages_ = sb.data_pages;

  if (BugOn(BugId::kNova26RecoveryLoop) && !mkfs_ran_) {
    // Synthetic robustness seed (bug 26): post-crash recovery livelocks
    // re-polling the superblock instead of proceeding. Only recovery mounts
    // are affected — a mount on the instance that formatted the device (the
    // record stage and the oracle) takes the normal path. Every iteration is
    // a media read, so the sandbox's op-budget watchdog converts the hang
    // into a deterministic recovery-failure report.
    while (pm_->Load<uint64_t>(kSuperblockOff) == kMagic) {
    }
    return common::Corruption("superblock changed under recovery");
  }

  RETURN_IF_ERROR(RecoverJournal());

  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    RETURN_IF_ERROR(RebuildInode(ino));
  }
  if (!inodes_[kRootIno].in_use ||
      inodes_[kRootIno].type != FileType::kDirectory) {
    return common::Corruption("root inode missing or not a directory");
  }

  // Validate directory entries and count subdirectories; dangling entries
  // (references to invalid inodes) quarantine the target ino so operations
  // on it fail rather than pretending the file never existed.
  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    InodeState& st = inodes_[ino];
    if (!st.in_use || st.type != FileType::kDirectory) {
      continue;
    }
    for (const auto& [name, child] : st.entries) {
      if (child == 0 || child >= kNumInodes || !inodes_[child].in_use) {
        CHIPMUNK_COV();
        if (child != 0 && child < kNumInodes) {
          inodes_[child].in_use = true;
          inodes_[child].suspect = true;
          inodes_[child].type = FileType::kRegular;
        }
        continue;
      }
      if (inodes_[child].type == FileType::kDirectory) {
        st.subdirs += 1;
      }
    }
  }

  // Rebuild the allocators from what the logs reference; any block referenced
  // twice is a consistency violation.
  std::set<uint64_t> used_log;
  std::set<uint32_t> used_data;
  used_log.insert(kLogRegionOff);  // root's preformatted first block
  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    InodeState& st = inodes_[ino];
    if (!st.in_use || st.suspect) {
      continue;
    }
    uint64_t block = st.log_head;
    int guard = 0;
    while (block != 0 && IsLogBlockAligned(block) &&
           guard++ < static_cast<int>(kNumLogBlocks)) {
      if (!used_log.insert(block).second && block != kLogRegionOff) {
        return common::Corruption("log block referenced by two chains");
      }
      if (pm_->Load<uint64_t>(block) != kLogBlockMagic) {
        break;  // chain tail past the durable prefix
      }
      block = pm_->Load<uint64_t>(block + kFooterOffset);
    }
    for (const auto& [page_idx, extent] : st.extents) {
      if (extent.data_page >= data_pages_) {
        return common::Corruption("extent references page outside device");
      }
      if (!used_data.insert(extent.data_page).second) {
        return common::Corruption("data page referenced twice");
      }
    }
  }
  for (uint32_t i = 0; i < kNumLogBlocks; ++i) {
    uint64_t off = kLogRegionOff + static_cast<uint64_t>(i) * kLogBlockSize;
    if (used_log.count(off) == 0) {
      free_log_blocks_.push_back(off);
    }
  }
  for (uint32_t p = 0; p < data_pages_; ++p) {
    if (used_data.count(p) == 0) {
      free_data_pages_.push_back(p);
    }
  }

  if (options_.fortis) {
    RETURN_IF_ERROR(ReplayTruncList());
  }

  if (pm_->faulted()) {
    return common::Status(pm_->fault());
  }
  mounted_ = true;
  return common::OkStatus();
}

Status NovaFs::Unmount() {
  mounted_ = false;
  return common::OkStatus();
}

StatusOr<NovaFs::InodeState*> NovaFs::GetState(uint32_t ino) {
  if (!mounted_) {
    return common::NotMounted();
  }
  if (ino == 0 || ino >= kNumInodes || !inodes_[ino].in_use) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  if (inodes_[ino].suspect) {
    return common::IoError("inode " + std::to_string(ino) +
                           " failed integrity validation");
  }
  return &inodes_[ino];
}

StatusOr<NovaFs::InodeState*> NovaFs::GetDirState(uint32_t ino) {
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kDirectory) {
    return common::NotDir();
  }
  return st;
}

Status NovaFs::Fsync(vfs::InodeNum ino) {
  // All operations are synchronous; fsync only validates the inode.
  return GetState(static_cast<uint32_t>(ino)).status();
}

Status NovaFs::SyncAll() {
  if (!mounted_) {
    return common::NotMounted();
  }
  return common::OkStatus();
}

}  // namespace novafs
