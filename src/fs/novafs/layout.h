// On-media layout of novafs (NOVA-like log-structured PM file system).
//
// Architecture (after Xu & Swanson, FAST '16):
//   - one log per inode, stored as a chain of small log blocks in PM;
//   - a lite journal for operations that must update multiple logs atomically
//     (rename, link, unlink) — it records old word values and rolls them back
//     if a crash interrupts a transaction;
//   - copy-on-write file data: writes allocate fresh data pages and append
//     write entries; the 8-byte log-tail publish is the commit point;
//   - all indexes (directory maps, file extent maps, allocators) live in DRAM
//     and are rebuilt at mount by scanning the inode table and walking logs.
//
// Fortis mode (NOVA-Fortis, SOSP '17) additionally keeps an inode replica
// table and CRC32 checksums over inodes and data pages.
//
// Log blocks are deliberately small (256 bytes = 3 entries + footer) so that
// block-boundary code paths — where several historical NOVA bugs live — are
// exercised by small workloads.
#ifndef CHIPMUNK_FS_NOVAFS_LAYOUT_H_
#define CHIPMUNK_FS_NOVAFS_LAYOUT_H_

#include <cstdint>

namespace novafs {

inline constexpr uint64_t kMagic = 0x4e4f56414653ull;  // "NOVAFS"
inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kLogBlockSize = 256;
inline constexpr uint64_t kLogEntrySize = 64;
// Block layout: [header 64B][entry slot][entry slot][footer 64B].
// The header carries a magic word written when the block is initialized, so
// recovery can tell a real log block from an unzeroed or recycled one.
// The footer's first 8 bytes hold the next-block pointer.
inline constexpr uint64_t kEntriesPerBlock = 2;
inline constexpr uint64_t kFirstSlotOff = kLogEntrySize;
inline constexpr uint64_t kFooterOffset = (1 + kEntriesPerBlock) * kLogEntrySize;
inline constexpr uint64_t kLogBlockMagic = 0x4c4f47424c4bull;  // "LOGBLK"

inline constexpr uint64_t kInodeSize = 128;
inline constexpr uint32_t kNumInodes = 256;
inline constexpr uint32_t kRootIno = 1;
inline constexpr uint32_t kMaxNameLen = 19;

// ---- Region offsets (bytes). ----
inline constexpr uint64_t kSuperblockOff = 0;
inline constexpr uint64_t kJournalOff = 64;
inline constexpr uint64_t kJournalHeaderSize = 16;  // valid u64, nentries u64
inline constexpr uint64_t kJournalEntrySize = 16;   // addr u64, old value u64
inline constexpr uint64_t kJournalMaxEntries = 30;
inline constexpr uint64_t kTruncListOff =
    kJournalOff + kJournalHeaderSize + kJournalMaxEntries * kJournalEntrySize;
inline constexpr uint64_t kTruncRecordSize = 64;
inline constexpr uint64_t kTruncListSlots = 8;

inline constexpr uint64_t kInodeTableOff = 1 * kPageSize;
inline constexpr uint64_t kInodeTablePages = 8;  // 256 inodes * 128 B
inline constexpr uint64_t kReplicaTableOff =
    kInodeTableOff + kInodeTablePages * kPageSize;
inline constexpr uint64_t kReplicaTablePages = 8;
inline constexpr uint64_t kLogRegionOff =
    kReplicaTableOff + kReplicaTablePages * kPageSize;
inline constexpr uint64_t kLogRegionPages = 32;
inline constexpr uint32_t kNumLogBlocks =
    kLogRegionPages * kPageSize / kLogBlockSize;
inline constexpr uint64_t kDataRegionOff =
    kLogRegionOff + kLogRegionPages * kPageSize;

inline constexpr uint64_t kMinDeviceSize = kDataRegionOff + 16 * kPageSize;

// ---- Persistent inode (128 bytes). Field offsets within the inode. ----
// Word 0 packs valid/type/links so it can be journaled and updated as one
// atomic 8-byte store.
inline constexpr uint64_t kInoWord0 = 0;   // valid u8 | type u8 | pad | links u32
inline constexpr uint64_t kInoLogHead = 8;   // byte offset of first log block
inline constexpr uint64_t kInoLogTail = 16;  // byte offset of next entry slot
inline constexpr uint64_t kInoCsum = 64;     // fortis: CRC32 of bytes [0, 24)

inline uint64_t PackWord0(uint8_t valid, uint8_t type, uint32_t links) {
  return static_cast<uint64_t>(valid) | (static_cast<uint64_t>(type) << 8) |
         (static_cast<uint64_t>(links) << 32);
}
inline uint8_t Word0Valid(uint64_t w) { return static_cast<uint8_t>(w); }
inline uint8_t Word0Type(uint64_t w) { return static_cast<uint8_t>(w >> 8); }
inline uint32_t Word0Links(uint64_t w) { return static_cast<uint32_t>(w >> 32); }

inline uint64_t InodeOff(uint32_t ino) {
  return kInodeTableOff + static_cast<uint64_t>(ino) * kInodeSize;
}
inline uint64_t ReplicaOff(uint32_t ino) {
  return kReplicaTableOff + static_cast<uint64_t>(ino) * kInodeSize;
}

// ---- Log entry (64 bytes). ----
enum class EntryType : uint8_t {
  kEnd = 0,  // zeroed slot: end of log (fixed code never publishes past one)
  kDentryAdd = 1,
  kDentryDel = 2,
  kWrite = 3,
  kSetAttr = 4,
  kLinkChange = 5,
};
inline constexpr uint8_t kMaxEntryType = 5;

struct LogEntry {
  uint8_t type = 0;
  uint8_t valid = 1;  // cleared by in-place invalidation (buggy paths)
  uint8_t name_len = 0;
  uint8_t prealloc = 0;  // write entry came from fallocate
  uint16_t links_after = 0;
  uint16_t pad = 0;
  uint64_t file_off = 0;    // kWrite: file byte offset; kSetAttr: unused
  uint64_t size_after = 0;  // resulting file size
  uint32_t child_ino = 0;   // dentry entries
  uint32_t data_page = 0;   // kWrite: data page index
  uint32_t length = 0;      // kWrite: valid bytes in the data page range
  uint32_t data_csum = 0;   // fortis: CRC32 of the data page contents
  char name[20] = {};
};
static_assert(sizeof(LogEntry) == kLogEntrySize, "log entry must be 64 bytes");

// ---- Superblock. ----
struct Superblock {
  uint64_t magic = 0;
  uint64_t device_size = 0;
  uint64_t data_region_off = 0;
  uint64_t data_pages = 0;
  uint8_t fortis = 0;
  uint8_t pad[31] = {};
};
static_assert(sizeof(Superblock) == 64, "superblock must be 64 bytes");

// ---- Fortis truncate-record (one slot of the truncate list). ----
struct TruncRecord {
  uint64_t valid = 0;
  uint64_t ino = 0;
  uint64_t new_size = 0;
  uint32_t npages = 0;
  uint32_t pad = 0;
  uint32_t pages[8] = {};  // data pages the truncate releases
};
static_assert(sizeof(TruncRecord) == kTruncRecordSize, "trunc record size");

inline uint64_t TruncRecordOff(uint32_t slot) {
  return kTruncListOff + static_cast<uint64_t>(slot) * kTruncRecordSize;
}

}  // namespace novafs

#endif  // CHIPMUNK_FS_NOVAFS_LAYOUT_H_
