// NovaFs: NOVA-like log-structured PM file system (see layout.h for the
// on-media format). With `fortis` enabled it behaves like NOVA-Fortis,
// replicating inodes and checksumming inodes and data.
//
// Every media access goes through the pmem::Pm persistence functions, so
// Chipmunk's trace logger observes all I/O without any changes here — the
// same gray-box property the paper relies on.
#ifndef CHIPMUNK_FS_NOVAFS_NOVA_FS_H_
#define CHIPMUNK_FS_NOVAFS_NOVA_FS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/fs/novafs/layout.h"
#include "src/pmem/pm.h"
#include "src/vfs/bug.h"
#include "src/vfs/filesystem.h"

namespace novafs {

struct NovaOptions {
  bool fortis = false;  // NOVA-Fortis mode: replicas + checksums
  vfs::BugSet bugs = {};
  // One of the §4.4 non-crash-consistency bugs: a write with an oversized
  // byte count greedily allocates all remaining space before failing,
  // leaving the file system unusable ("NOVA does not properly handle write
  // calls where the number of bytes to write is extremely large"). Not a
  // Table 1 bug; surfaces through the checker's usability probes.
  bool greedy_huge_writes = false;
};

class NovaFs : public vfs::FileSystem {
 public:
  NovaFs(pmem::Pm* pm, NovaOptions options)
      : pm_(pm), options_(std::move(options)) {}

  std::string Name() const override {
    return options_.fortis ? "novafs-fortis" : "novafs";
  }
  vfs::CrashGuarantees Guarantees() const override {
    // NOVA: synchronous, atomic metadata, atomic (CoW) data writes.
    return vfs::CrashGuarantees{true, true, true};
  }

  common::Status Mkfs() override;
  common::Status Mount() override;
  common::Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override;
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override;
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override;
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override;
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override;

  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override;
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override;
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override;
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override;
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override;

  common::Status Fsync(vfs::InodeNum ino) override;
  common::Status SyncAll() override;

  // Multi-threaded workloads: remember the calling thread so the write path
  // can detect a cross-thread handoff on an inode (bug 28's arming
  // condition). Single-threaded runs never call this.
  void SetThreadHint(int tid, int nthreads) override {
    cur_tid_ = tid;
    mt_ = nthreads > 1;
  }

 private:
  // ---- DRAM (volatile) state, rebuilt at mount. ----
  struct Extent {
    uint32_t data_page = 0;   // page index within the data region
    uint32_t length = 0;      // valid bytes from the page start
    uint64_t entry_off = 0;   // media offset of the write entry
    bool csum_bad = false;    // fortis rebuild found a data csum mismatch
  };
  struct InodeState {
    bool in_use = false;
    vfs::FileType type = vfs::FileType::kNone;
    uint32_t nlink = 0;
    uint64_t size = 0;
    uint64_t log_head = 0;  // media byte offsets
    uint64_t log_tail = 0;
    bool suspect = false;  // fortis: csum/replica validation failed
    // Directories.
    std::map<std::string, uint32_t> entries;
    std::map<std::string, uint64_t> entry_media_off;  // name -> dentry offset
    uint32_t subdirs = 0;
    // Regular files: file page index -> extent.
    std::map<uint32_t, Extent> extents;
    uint64_t last_linkchange_off = 0;  // for the in-place link bug path
    int last_writer_tid = 0;           // thread of the last write (bug 28)
  };

  // An inode-word update applied at commit time (tail publishes, word0
  // changes). Multi-word commits go through the lite journal.
  struct Patch {
    uint64_t addr = 0;  // media offset of an 8-byte word in the inode table
    uint64_t value = 0;
    uint32_t ino = 0;  // owning inode, for replica/csum maintenance
  };

  bool BugOn(vfs::BugId id) const { return options_.bugs.Has(id); }

  common::StatusOr<InodeState*> GetState(uint32_t ino);
  common::StatusOr<InodeState*> GetDirState(uint32_t ino);
  common::Status CheckName(const std::string& name) const;

  // ---- Allocation (DRAM free lists). ----
  common::StatusOr<uint32_t> AllocInode();
  common::StatusOr<uint64_t> AllocLogBlock();   // returns media offset, zeroed
  common::StatusOr<uint32_t> AllocDataPage();   // returns data-page index
  void FreeLogBlock(uint64_t off);
  void FreeDataPage(uint32_t page);
  uint64_t DataPageOff(uint32_t page) const {
    return data_region_off_ + static_cast<uint64_t>(page) * kPageSize;
  }

  // ---- Log machinery. ----
  // Writes `entries` to `ino`'s log without publishing the tail. On success
  // fills `new_tail` (and `new_head` if the log was empty) and records the
  // media offset of each entry in `entry_offs`.
  common::Status WriteLogEntries(uint32_t ino,
                                 const std::vector<LogEntry>& entries,
                                 uint64_t* new_tail, uint64_t* new_head,
                                 std::vector<uint64_t>* entry_offs);
  // Extends the log chain by one block; returns the new block offset.
  // `link_from` is the footer address of the current last block (0 if none).
  common::StatusOr<uint64_t> ExtendLog(uint64_t link_from);

  // ---- Commit machinery. ----
  // Atomically applies the patches (journaled when needed / in fortis mode),
  // mirroring to replicas and maintaining inode csums in fortis mode.
  common::Status CommitPatches(const std::vector<Patch>& patches,
                               bool csum_unflushed_bug);
  void JournalBegin(const std::vector<Patch>& patches);
  void JournalEnd();
  void WriteInodeCsum(uint32_t ino, bool replica, bool flush);

  // Builds the word0/tail patch helpers.
  Patch TailPatch(uint32_t ino, uint64_t new_tail);
  Patch HeadPatch(uint32_t ino, uint64_t new_head);
  Patch Word0Patch(uint32_t ino, uint64_t value);

  // ---- Mount-time recovery. ----
  common::Status RecoverJournal();
  common::Status RebuildInode(uint32_t ino);
  common::Status ReplayTruncList();

  // Applies a single log entry to DRAM state during rebuild.
  common::Status ApplyEntryToState(uint32_t ino, const LogEntry& entry,
                                   uint64_t entry_off, InodeState& st);

  // Frees an inode's resources in DRAM (log blocks + data pages).
  void ReleaseInodeResources(InodeState& st);

  // Reads/writes a LogEntry at a media offset.
  LogEntry LoadEntry(uint64_t off) const;

  // Shared unlink/rmdir implementation.
  common::Status RemoveEntry(uint32_t dir, const std::string& name,
                             bool want_dir);

  // Fortis helpers.
  void WriteTruncRecord(uint32_t ino, uint64_t new_size,
                        const std::vector<uint32_t>& pages);
  void ClearTruncRecords();

  pmem::Pm* pm_;
  NovaOptions options_;
  bool mounted_ = false;
  // Whether this instance formatted the device itself. Recovery mounts (a
  // fresh instance mounting a crashed image) are the ones bug 26 livelocks.
  bool mkfs_ran_ = false;
  int cur_tid_ = 0;  // calling thread of the op in flight (SetThreadHint)
  bool mt_ = false;  // a multi-threaded workload is running

  uint64_t data_region_off_ = 0;
  uint64_t data_pages_ = 0;

  std::vector<InodeState> inodes_;       // indexed by ino
  std::vector<uint64_t> free_log_blocks_;
  std::vector<uint32_t> free_data_pages_;
};

}  // namespace novafs

#endif  // CHIPMUNK_FS_NOVAFS_NOVA_FS_H_
