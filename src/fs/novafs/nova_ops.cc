// NovaFs syscall implementations. See nova_base.cc for recovery/commit
// machinery and DESIGN.md for the injected bug corpus.
#include <algorithm>
#include <cstddef>
#include <cstring>

#include "src/common/coverage.h"
#include "src/common/crc32.h"
#include "src/fs/novafs/nova_fs.h"

namespace novafs {

using common::Status;
using common::StatusOr;
using vfs::BugId;
using vfs::FileType;
using vfs::InodeNum;

namespace {

uint64_t LogBlockBase(uint64_t off) {
  return off - (off - kLogRegionOff) % kLogBlockSize;
}

LogEntry MakeDentry(EntryType type, const std::string& name, uint32_t child) {
  LogEntry e;
  e.type = static_cast<uint8_t>(type);
  e.valid = 1;
  e.name_len = static_cast<uint8_t>(name.size());
  e.child_ino = child;
  std::memcpy(e.name, name.data(), std::min(name.size(), sizeof(e.name)));
  return e;
}

LogEntry MakeLinkChange(uint16_t links_after) {
  LogEntry e;
  e.type = static_cast<uint8_t>(EntryType::kLinkChange);
  e.valid = 1;
  e.links_after = links_after;
  return e;
}

LogEntry MakeSetAttr(uint64_t size_after) {
  LogEntry e;
  e.type = static_cast<uint8_t>(EntryType::kSetAttr);
  e.valid = 1;
  e.size_after = size_after;
  return e;
}

}  // namespace

common::StatusOr<InodeNum> NovaFs::Lookup(InodeNum dir,
                                          const std::string& name) {
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(static_cast<uint32_t>(dir)));
  auto it = ds->entries.find(name);
  if (it == ds->entries.end()) {
    return common::NotFound(name);
  }
  return static_cast<InodeNum>(it->second);
}

// Shared append-and-commit path used by every mutating op. Implemented as a
// private-member-style helper via friendship with the ops below.
common::Status NovaFs::RemoveEntry(uint32_t dir, const std::string& name,
                                   bool want_dir) {
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  auto it = ds->entries.find(name);
  if (it == ds->entries.end()) {
    return common::NotFound(name);
  }
  uint32_t child = it->second;
  ASSIGN_OR_RETURN(InodeState * cs, GetState(child));
  if (want_dir && cs->type != FileType::kDirectory) {
    return common::NotDir(name);
  }
  if (!want_dir && cs->type == FileType::kDirectory) {
    return common::IsDir(name);
  }
  if (want_dir && !cs->entries.empty()) {
    return common::NotEmpty(name);
  }

  const bool fortis_csum_bug =
      options_.fortis && BugOn(BugId::kFortis9CsumNotFlushed);

  std::vector<LogEntry> dir_entries = {MakeDentry(EntryType::kDentryDel, name, child)};
  uint64_t dir_tail = 0, dir_head = 0;
  std::vector<uint64_t> offs;
  RETURN_IF_ERROR(WriteLogEntries(dir, dir_entries, &dir_tail, &dir_head, &offs));

  std::vector<Patch> patches;
  bool free_child = false;
  uint32_t new_links = 0;
  uint64_t child_tail = 0, child_head = 0;
  std::vector<uint64_t> child_offs;
  if (!want_dir && cs->nlink > 1) {
    new_links = cs->nlink - 1;
    std::vector<LogEntry> child_entries = {MakeLinkChange(new_links)};
    RETURN_IF_ERROR(WriteLogEntries(child, child_entries, &child_tail,
                                    &child_head, &child_offs));
  } else {
    free_child = true;
  }
  pm_->Fence();  // entries durable before the commit

  if (dir_head != 0) {
    patches.push_back(HeadPatch(dir, dir_head));
  }
  patches.push_back(TailPatch(dir, dir_tail));
  if (child_tail != 0) {
    if (child_head != 0) {
      patches.push_back(HeadPatch(child, child_head));
    }
    patches.push_back(TailPatch(child, child_tail));
  }
  if (free_child) {
    patches.push_back(Word0Patch(child, 0));
  }
  RETURN_IF_ERROR(CommitPatches(patches, fortis_csum_bug));

  // Bug-3 footer fixups.
  for (auto [ino, tail_ptr] :
       {std::pair<uint32_t, uint64_t*>{dir, &dir_tail},
        std::pair<uint32_t, uint64_t*>{child, &child_tail}}) {
    if (*tail_ptr == 0 || *tail_ptr - LogBlockBase(*tail_ptr) < kFooterOffset) {
      continue;
    }
    CHIPMUNK_COV();
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(*tail_ptr));
    *tail_ptr = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(ino, *tail_ptr)}, false));
  }

  // DRAM updates.
  bool child_is_dir = cs->type == FileType::kDirectory;
  ds->entries.erase(name);
  ds->entry_media_off.erase(name);
  ds->log_tail = dir_tail;
  if (dir_head != 0) {
    ds->log_head = dir_head;
  }
  if (child_is_dir) {
    ds->subdirs -= 1;
  }
  if (free_child) {
    ReleaseInodeResources(inodes_[child]);
  } else {
    cs->nlink = new_links;
    cs->log_tail = child_tail;
    if (child_head != 0) {
      cs->log_head = child_head;
    }
    if (!child_offs.empty()) {
      cs->last_linkchange_off = child_offs.front();
    }
  }
  return common::OkStatus();
}

StatusOr<InodeNum> NovaFs::Create(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckName(name));
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  if (ds->entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());

  // Initialize the new inode. Fixed code flushes it before the dentry that
  // references it can commit; BUG 2 omits the flush, so the dentry can point
  // at an uninitialized inode after a crash.
  uint64_t base = InodeOff(ino);
  pm_->Store<uint64_t>(base + kInoWord0,
                       PackWord0(1, static_cast<uint8_t>(FileType::kRegular), 1));
  pm_->Store<uint64_t>(base + kInoLogHead, 0);
  pm_->Store<uint64_t>(base + kInoLogTail, 0);
  const bool flush_inode = !BugOn(BugId::kNova2InodeFlushMissing);
  if (flush_inode) {
    pm_->FlushBuffer(base, 24);
  } else {
    CHIPMUNK_COV();
  }
  if (options_.fortis) {
    WriteInodeCsum(ino, /*replica=*/false, flush_inode);
    uint64_t rep = ReplicaOff(ino);
    std::vector<uint8_t> bytes = pm_->ReadVec(base, 24);
    pm_->Memcpy(rep, bytes.data(), bytes.size());
    if (flush_inode) {
      pm_->FlushBuffer(rep, 24);
    }
    WriteInodeCsum(ino, /*replica=*/true, flush_inode);
  }
  pm_->Fence();

  std::vector<LogEntry> entries = {MakeDentry(EntryType::kDentryAdd, name, ino)};
  uint64_t tail = 0, head = 0;
  std::vector<uint64_t> offs;
  Status st = WriteLogEntries(dir, entries, &tail, &head, &offs);
  if (!st.ok()) {
    inodes_[ino] = InodeState{};
    return st;
  }
  pm_->Fence();

  std::vector<Patch> patches;
  if (head != 0) {
    patches.push_back(HeadPatch(dir, head));
  }
  patches.push_back(TailPatch(dir, tail));
  RETURN_IF_ERROR(CommitPatches(patches, false));
  if (tail - LogBlockBase(tail) >= kFooterOffset) {
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(tail));
    tail = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(dir, tail)}, false));
  }

  InodeState& child = inodes_[ino];
  child.in_use = true;
  child.type = FileType::kRegular;
  child.nlink = 1;
  ds->entries[name] = ino;
  ds->entry_media_off[name] = offs.front();
  ds->log_tail = tail;
  if (head != 0) {
    ds->log_head = head;
  }
  return static_cast<InodeNum>(ino);
}

StatusOr<InodeNum> NovaFs::Mkdir(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckName(name));
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  if (ds->entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());

  uint64_t base = InodeOff(ino);
  pm_->Store<uint64_t>(
      base + kInoWord0,
      PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  pm_->Store<uint64_t>(base + kInoLogHead, 0);
  pm_->Store<uint64_t>(base + kInoLogTail, 0);
  const bool flush_inode = !BugOn(BugId::kNova2InodeFlushMissing);
  if (flush_inode) {
    pm_->FlushBuffer(base, 24);
  }
  if (options_.fortis) {
    WriteInodeCsum(ino, /*replica=*/false, flush_inode);
    uint64_t rep = ReplicaOff(ino);
    std::vector<uint8_t> bytes = pm_->ReadVec(base, 24);
    pm_->Memcpy(rep, bytes.data(), bytes.size());
    if (flush_inode) {
      pm_->FlushBuffer(rep, 24);
    }
    WriteInodeCsum(ino, /*replica=*/true, flush_inode);
  }
  pm_->Fence();

  std::vector<LogEntry> entries = {MakeDentry(EntryType::kDentryAdd, name, ino)};
  uint64_t tail = 0, head = 0;
  std::vector<uint64_t> offs;
  Status st = WriteLogEntries(dir, entries, &tail, &head, &offs);
  if (!st.ok()) {
    inodes_[ino] = InodeState{};
    return st;
  }
  pm_->Fence();

  std::vector<Patch> patches;
  if (head != 0) {
    patches.push_back(HeadPatch(dir, head));
  }
  patches.push_back(TailPatch(dir, tail));
  RETURN_IF_ERROR(CommitPatches(patches, false));
  if (tail - LogBlockBase(tail) >= kFooterOffset) {
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(tail));
    tail = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(dir, tail)}, false));
  }

  InodeState& child = inodes_[ino];
  child.in_use = true;
  child.type = FileType::kDirectory;
  child.nlink = 2;
  ds->entries[name] = ino;
  ds->entry_media_off[name] = offs.front();
  ds->subdirs += 1;
  ds->log_tail = tail;
  if (head != 0) {
    ds->log_head = head;
  }
  return static_cast<InodeNum>(ino);
}

Status NovaFs::Unlink(InodeNum dir, const std::string& name) {
  return RemoveEntry(static_cast<uint32_t>(dir), name, /*want_dir=*/false);
}

Status NovaFs::Rmdir(InodeNum dir, const std::string& name) {
  return RemoveEntry(static_cast<uint32_t>(dir), name, /*want_dir=*/true);
}

Status NovaFs::Link(InodeNum target_in, InodeNum dir_in,
                    const std::string& name) {
  uint32_t target = static_cast<uint32_t>(target_in);
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckName(name));
  ASSIGN_OR_RETURN(InodeState * ts, GetState(target));
  if (ts->type != FileType::kRegular) {
    return common::IsDir(name);
  }
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  if (ds->entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  uint16_t new_links = static_cast<uint16_t>(ts->nlink + 1);

  const bool in_place =
      BugOn(BugId::kNova6LinkInPlaceCount) && ts->last_linkchange_off != 0;
  uint64_t tgt_tail = 0, tgt_head = 0;
  std::vector<uint64_t> tgt_offs;
  if (in_place) {
    CHIPMUNK_COV();
    // BUG 6: the previous link-change entry is patched in place — and made
    // durable — before the transaction that adds the new name. A crash in
    // between leaves the link count incremented with no new dentry.
    // (The safety check mirrors the extra media read the real fix removed.)
    LogEntry prev = LoadEntry(ts->last_linkchange_off);
    if (prev.type == static_cast<uint8_t>(EntryType::kLinkChange)) {
      pm_->Store<uint16_t>(ts->last_linkchange_off + offsetof(LogEntry, links_after),
                           new_links);
      pm_->FlushBuffer(ts->last_linkchange_off, kLogEntrySize);
      pm_->Fence();
    }
  } else {
    std::vector<LogEntry> tgt_entries = {MakeLinkChange(new_links)};
    RETURN_IF_ERROR(
        WriteLogEntries(target, tgt_entries, &tgt_tail, &tgt_head, &tgt_offs));
  }

  std::vector<LogEntry> dir_entries = {
      MakeDentry(EntryType::kDentryAdd, name, target)};
  uint64_t dir_tail = 0, dir_head = 0;
  std::vector<uint64_t> dir_offs;
  RETURN_IF_ERROR(
      WriteLogEntries(dir, dir_entries, &dir_tail, &dir_head, &dir_offs));
  pm_->Fence();

  std::vector<Patch> patches;
  if (dir_head != 0) {
    patches.push_back(HeadPatch(dir, dir_head));
  }
  patches.push_back(TailPatch(dir, dir_tail));
  if (tgt_tail != 0) {
    if (tgt_head != 0) {
      patches.push_back(HeadPatch(target, tgt_head));
    }
    patches.push_back(TailPatch(target, tgt_tail));
  }
  RETURN_IF_ERROR(CommitPatches(patches, false));
  for (auto [ino, tail_ptr] :
       {std::pair<uint32_t, uint64_t*>{dir, &dir_tail},
        std::pair<uint32_t, uint64_t*>{target, &tgt_tail}}) {
    if (*tail_ptr == 0 || *tail_ptr - LogBlockBase(*tail_ptr) < kFooterOffset) {
      continue;
    }
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(*tail_ptr));
    *tail_ptr = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(ino, *tail_ptr)}, false));
  }

  ds->entries[name] = target;
  ds->entry_media_off[name] = dir_offs.front();
  ds->log_tail = dir_tail;
  if (dir_head != 0) {
    ds->log_head = dir_head;
  }
  ts->nlink = new_links;
  if (tgt_tail != 0) {
    ts->log_tail = tgt_tail;
    if (tgt_head != 0) {
      ts->log_head = tgt_head;
    }
    ts->last_linkchange_off = tgt_offs.front();
  }
  return common::OkStatus();
}

Status NovaFs::Rename(InodeNum src_dir_in, const std::string& src_name,
                      InodeNum dst_dir_in, const std::string& dst_name) {
  uint32_t src_dir = static_cast<uint32_t>(src_dir_in);
  uint32_t dst_dir = static_cast<uint32_t>(dst_dir_in);
  RETURN_IF_ERROR(CheckName(dst_name));
  ASSIGN_OR_RETURN(InodeState * sd, GetDirState(src_dir));
  ASSIGN_OR_RETURN(InodeState * dd, GetDirState(dst_dir));
  auto sit = sd->entries.find(src_name);
  if (sit == sd->entries.end()) {
    return common::NotFound(src_name);
  }
  uint32_t src_ino = sit->second;
  ASSIGN_OR_RETURN(InodeState * ss, GetState(src_ino));

  uint32_t victim = 0;
  InodeState* vs = nullptr;
  auto dit = dd->entries.find(dst_name);
  if (dit != dd->entries.end()) {
    victim = dit->second;
    if (victim == src_ino) {
      return common::OkStatus();
    }
    ASSIGN_OR_RETURN(vs, GetState(victim));
    if (vs->type == FileType::kDirectory) {
      if (ss->type != FileType::kDirectory) {
        return common::IsDir(dst_name);
      }
      if (!vs->entries.empty()) {
        return common::NotEmpty(dst_name);
      }
    } else if (ss->type == FileType::kDirectory) {
      return common::NotDir(dst_name);
    }
  }

  const bool bug4 = BugOn(BugId::kNova4RenameInPlaceDelete) && victim == 0;
  const bool bug5 = BugOn(BugId::kNova5RenameOverwriteInPlace) && victim != 0;
  uint64_t src_dentry_off = sd->entry_media_off[src_name];

  if (bug4) {
    CHIPMUNK_COV();
    // BUG 4: the old directory entry is invalidated in place — durably —
    // before the journaled transaction that creates the new name. A crash
    // in between loses the file entirely (Figure 2 of the paper).
    pm_->Store<uint8_t>(src_dentry_off + offsetof(LogEntry, valid), 0);
    pm_->FlushBuffer(src_dentry_off, kLogEntrySize);
    pm_->Fence();
  }

  // Build the transaction's log entries.
  std::vector<LogEntry> src_entries;
  std::vector<LogEntry> dst_entries;
  if (!bug4 && !bug5) {
    src_entries.push_back(MakeDentry(EntryType::kDentryDel, src_name, src_ino));
  }
  dst_entries.push_back(MakeDentry(EntryType::kDentryAdd, dst_name, src_ino));

  uint64_t src_tail = 0, src_head = 0, dst_tail = 0, dst_head = 0;
  std::vector<uint64_t> src_offs, dst_offs;
  bool victim_free = false;
  uint16_t victim_links = 0;
  uint64_t vic_tail = 0, vic_head = 0;
  std::vector<uint64_t> vic_offs;

  if (src_dir == dst_dir) {
    // Single log: write both entries in one append.
    std::vector<LogEntry> merged = src_entries;
    merged.insert(merged.end(), dst_entries.begin(), dst_entries.end());
    RETURN_IF_ERROR(
        WriteLogEntries(dst_dir, merged, &dst_tail, &dst_head, &dst_offs));
  } else {
    if (!src_entries.empty()) {
      RETURN_IF_ERROR(
          WriteLogEntries(src_dir, src_entries, &src_tail, &src_head, &src_offs));
    }
    RETURN_IF_ERROR(
        WriteLogEntries(dst_dir, dst_entries, &dst_tail, &dst_head, &dst_offs));
  }

  std::vector<Patch> patches;
  if (victim != 0) {
    if (vs->type == FileType::kRegular && vs->nlink > 1) {
      victim_links = static_cast<uint16_t>(vs->nlink - 1);
      std::vector<LogEntry> vic_entries = {MakeLinkChange(victim_links)};
      RETURN_IF_ERROR(
          WriteLogEntries(victim, vic_entries, &vic_tail, &vic_head, &vic_offs));
    } else {
      victim_free = true;
      patches.push_back(Word0Patch(victim, 0));
    }
  }
  pm_->Fence();

  if (src_tail != 0) {
    if (src_head != 0) {
      patches.push_back(HeadPatch(src_dir, src_head));
    }
    patches.push_back(TailPatch(src_dir, src_tail));
  }
  if (dst_head != 0) {
    patches.push_back(HeadPatch(dst_dir, dst_head));
  }
  patches.push_back(TailPatch(dst_dir, dst_tail));
  if (vic_tail != 0) {
    if (vic_head != 0) {
      patches.push_back(HeadPatch(victim, vic_head));
    }
    patches.push_back(TailPatch(victim, vic_tail));
  }
  RETURN_IF_ERROR(CommitPatches(patches, false));

  struct TailFix {
    uint32_t ino;
    uint64_t* tail;
  };
  for (TailFix fix : {TailFix{src_dir, &src_tail}, TailFix{dst_dir, &dst_tail},
                      TailFix{victim, &vic_tail}}) {
    if (fix.ino == 0 || *fix.tail == 0 ||
        *fix.tail - LogBlockBase(*fix.tail) < kFooterOffset) {
      continue;
    }
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(*fix.tail));
    *fix.tail = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(fix.ino, *fix.tail)}, false));
  }

  if (bug5) {
    CHIPMUNK_COV();
    // BUG 5: on the overwrite path the old directory entry is invalidated
    // in place after the transaction commits — and never flushed. Every
    // crash state keeps the old name alive alongside the new one.
    pm_->Store<uint8_t>(src_dentry_off + offsetof(LogEntry, valid), 0);
  }

  // DRAM updates (identical for fixed and buggy paths: the running file
  // system stays consistent; the defects are only visible across a crash).
  bool src_is_dir = ss->type == FileType::kDirectory;
  if (victim != 0) {
    bool victim_is_dir = vs->type == FileType::kDirectory;
    if (victim_free) {
      ReleaseInodeResources(inodes_[victim]);
      if (victim_is_dir) {
        dd->subdirs -= 1;
      }
    } else {
      vs->nlink = victim_links;
      vs->log_tail = vic_tail;
      if (vic_head != 0) {
        vs->log_head = vic_head;
      }
      if (!vic_offs.empty()) {
        vs->last_linkchange_off = vic_offs.front();
      }
    }
  }
  sd->entries.erase(src_name);
  sd->entry_media_off.erase(src_name);
  dd->entries[dst_name] = src_ino;
  dd->entry_media_off[dst_name] = dst_offs.back();
  if (src_is_dir && src_dir != dst_dir) {
    sd->subdirs -= 1;
    dd->subdirs += 1;
  }
  if (src_tail != 0) {
    sd->log_tail = src_tail;
    if (src_head != 0) {
      sd->log_head = src_head;
    }
  }
  dd->log_tail = dst_tail;
  if (dst_head != 0) {
    dd->log_head = dst_head;
  }
  return common::OkStatus();
}

StatusOr<uint64_t> NovaFs::Read(InodeNum ino_in, uint64_t off, uint64_t len,
                                uint8_t* out) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (off >= st->size || len == 0) {
    return uint64_t{0};
  }
  uint64_t n = std::min<uint64_t>(len, st->size - off);
  std::memset(out, 0, n);
  uint64_t pos = off;
  while (pos < off + n) {
    uint32_t page_idx = static_cast<uint32_t>(pos / kPageSize);
    uint64_t page_start = static_cast<uint64_t>(page_idx) * kPageSize;
    uint64_t in_page = pos - page_start;
    uint64_t chunk = std::min<uint64_t>(kPageSize - in_page, off + n - pos);
    auto it = st->extents.find(page_idx);
    if (it != st->extents.end()) {
      if (it->second.csum_bad) {
        return common::IoError("data checksum mismatch");
      }
      pm_->ReadInto(DataPageOff(it->second.data_page) + in_page,
                    out + (pos - off), chunk);
    }
    pos += chunk;
  }
  return n;
}

StatusOr<uint64_t> NovaFs::Write(InodeNum ino_in, uint64_t off,
                                 const uint8_t* data, uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (len == 0) {
    return uint64_t{0};
  }
  uint64_t end = off + len;
  if (options_.greedy_huge_writes &&
      (end + kPageSize - 1) / kPageSize > free_data_pages_.size()) {
    CHIPMUNK_COV();
    // §4.4 non-crash-consistency bug: the oversized write grabs every free
    // data page before noticing it cannot finish, and never gives them
    // back. Later allocations fail with ENOSPC.
    free_data_pages_.clear();
    return common::NoSpace("file too large");
  }
  uint64_t new_size = std::max(st->size, end);
  uint32_t p0 = static_cast<uint32_t>(off / kPageSize);
  uint32_t p1 = static_cast<uint32_t>((end - 1) / kPageSize);

  // Copy-on-write every affected page into a fresh data page.
  struct NewPage {
    uint32_t page_idx;
    uint32_t data_page;
    uint32_t csum;
  };
  std::vector<NewPage> pages;
  std::vector<uint8_t> buf(kPageSize);
  for (uint32_t p = p0; p <= p1; ++p) {
    uint64_t page_start = static_cast<uint64_t>(p) * kPageSize;
    std::fill(buf.begin(), buf.end(), 0);
    auto it = st->extents.find(p);
    if (it != st->extents.end()) {
      pm_->ReadInto(DataPageOff(it->second.data_page), buf.data(), kPageSize);
    }
    uint64_t from = std::max<uint64_t>(off, page_start);
    uint64_t to = std::min<uint64_t>(end, page_start + kPageSize);
    std::memcpy(buf.data() + (from - page_start), data + (from - off),
                to - from);
    auto alloc = AllocDataPage();
    if (!alloc.ok()) {
      for (const NewPage& np : pages) {
        FreeDataPage(np.data_page);
      }
      return alloc.status();
    }
    uint32_t dp = alloc.value();
    pm_->MemcpyNt(DataPageOff(dp), buf.data(), kPageSize);
    uint32_t csum =
        options_.fortis ? common::Crc32(buf.data(), buf.size()) : 0;
    pages.push_back(NewPage{p, dp, csum});
  }
  pm_->Fence();  // data durable before the log entries

  std::vector<LogEntry> entries;
  for (const NewPage& np : pages) {
    LogEntry e;
    e.type = static_cast<uint8_t>(EntryType::kWrite);
    e.valid = 1;
    e.file_off = static_cast<uint64_t>(np.page_idx) * kPageSize;
    e.size_after = new_size;
    e.data_page = np.data_page;
    e.length = static_cast<uint32_t>(kPageSize);
    e.data_csum = np.csum;
    entries.push_back(e);
  }
  uint64_t tail = 0, head = 0;
  std::vector<uint64_t> offs;
  Status wstatus = WriteLogEntries(ino, entries, &tail, &head, &offs);
  if (!wstatus.ok()) {
    for (const NewPage& np : pages) {
      FreeDataPage(np.data_page);
    }
    return wstatus;
  }
  pm_->Fence();

  std::vector<Patch> patches;
  if (head != 0) {
    patches.push_back(HeadPatch(ino, head));
  }
  patches.push_back(TailPatch(ino, tail));
  if (BugOn(BugId::kNova28DramMediaRace) && mt_ && patches.size() == 1 &&
      st->last_writer_tid != cur_tid_) {
    CHIPMUNK_COV();
    // BUG 28 (concurrency seed): a cross-thread handoff of a write publishes
    // the new log tail with a temporal store on the previous owner's
    // never-drained flush queue. The running instance (and the DRAM index
    // below) see the write, but the publish never becomes durable, so every
    // crash state rebuilds to the old tail and silently drops the write.
    // Mount, fsck, and usability all pass; only the isolation oracle notices
    // the state matches no linearization's post image.
    pm_->Store<uint64_t>(patches[0].addr, patches[0].value);
    pm_->Fence();
  } else {
    RETURN_IF_ERROR(CommitPatches(patches, false));
  }
  st->last_writer_tid = cur_tid_;
  if (tail - LogBlockBase(tail) >= kFooterOffset) {
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(tail));
    tail = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(ino, tail)}, false));
  }

  for (size_t i = 0; i < pages.size(); ++i) {
    auto it = st->extents.find(pages[i].page_idx);
    if (it != st->extents.end()) {
      FreeDataPage(it->second.data_page);
    }
    Extent extent;
    extent.data_page = pages[i].data_page;
    extent.length = static_cast<uint32_t>(kPageSize);
    extent.entry_off = offs[i];
    st->extents[pages[i].page_idx] = extent;
  }
  st->size = new_size;
  st->log_tail = tail;
  if (head != 0) {
    st->log_head = head;
  }
  return len;
}

Status NovaFs::Truncate(InodeNum ino_in, uint64_t new_size) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (new_size == st->size) {
    return common::OkStatus();
  }
  const bool shrink = new_size < st->size;
  std::vector<LogEntry> entries;
  uint32_t boundary_page = static_cast<uint32_t>(new_size / kPageSize);
  uint64_t cut = new_size % kPageSize;
  uint32_t cow_data_page = 0;
  bool have_cow = false;
  uint64_t old_boundary_dp = 0;
  std::vector<uint32_t> freed_pages;

  if (shrink) {
    for (const auto& [page_idx, extent] : st->extents) {
      if (static_cast<uint64_t>(page_idx) * kPageSize >= new_size) {
        freed_pages.push_back(extent.data_page);
      }
    }
    auto bit = st->extents.find(boundary_page);
    if (cut != 0 && bit != st->extents.end()) {
      if (options_.fortis && BugOn(BugId::kFortis12TruncCsumStale)) {
        CHIPMUNK_COV();
        // BUG 12: the tail of the existing data page is zeroed in place,
        // but the write entry's stored data checksum is never recomputed.
        // Post-crash rebuild validates the checksum and quarantines the
        // extent, making the file unreadable.
        std::vector<uint8_t> zeros(kPageSize - cut, 0);
        pm_->Memcpy(DataPageOff(bit->second.data_page) + cut, zeros.data(),
                    zeros.size());
        pm_->FlushBuffer(DataPageOff(bit->second.data_page) + cut,
                         zeros.size());
        pm_->Fence();
      } else {
        // Fixed: copy-on-write the boundary page with the tail zeroed and
        // a fresh checksum.
        std::vector<uint8_t> buf(kPageSize, 0);
        pm_->ReadInto(DataPageOff(bit->second.data_page), buf.data(), cut);
        ASSIGN_OR_RETURN(cow_data_page, AllocDataPage());
        pm_->MemcpyNt(DataPageOff(cow_data_page), buf.data(), kPageSize);
        pm_->Fence();
        have_cow = true;
        old_boundary_dp = bit->second.data_page;
        LogEntry e;
        e.type = static_cast<uint8_t>(EntryType::kWrite);
        e.valid = 1;
        e.file_off = static_cast<uint64_t>(boundary_page) * kPageSize;
        e.size_after = new_size;
        e.data_page = cow_data_page;
        e.length = static_cast<uint32_t>(kPageSize);
        e.data_csum =
            options_.fortis ? common::Crc32(buf.data(), buf.size()) : 0;
        entries.push_back(e);
      }
    }
  }
  entries.push_back(MakeSetAttr(new_size));

  if (options_.fortis && BugOn(BugId::kFortis11TruncListReplay) && shrink &&
      !freed_pages.empty()) {
    CHIPMUNK_COV();
    // BUG 11: a truncate record is persisted before the commit and only
    // cleared afterwards; a crash in the window makes recovery replay the
    // deallocation against blocks the log replay already released.
    WriteTruncRecord(ino, new_size, freed_pages);
  }

  uint64_t tail = 0, head = 0;
  std::vector<uint64_t> offs;
  Status wstatus = WriteLogEntries(ino, entries, &tail, &head, &offs);
  if (!wstatus.ok()) {
    if (have_cow) {
      FreeDataPage(cow_data_page);
    }
    return wstatus;
  }
  pm_->Fence();

  std::vector<Patch> patches;
  if (head != 0) {
    patches.push_back(HeadPatch(ino, head));
  }
  patches.push_back(TailPatch(ino, tail));
  const bool fortis_csum_bug =
      options_.fortis && BugOn(BugId::kFortis9CsumNotFlushed);
  RETURN_IF_ERROR(CommitPatches(patches, fortis_csum_bug));
  if (tail - LogBlockBase(tail) >= kFooterOffset) {
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(tail));
    tail = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(ino, tail)}, false));
  }

  // DRAM updates and page reclamation.
  if (shrink) {
    for (auto it = st->extents.begin(); it != st->extents.end();) {
      if (static_cast<uint64_t>(it->first) * kPageSize >= new_size) {
        FreeDataPage(it->second.data_page);
        it = st->extents.erase(it);
      } else {
        ++it;
      }
    }
    if (have_cow) {
      FreeDataPage(static_cast<uint32_t>(old_boundary_dp));
      Extent extent;
      extent.data_page = cow_data_page;
      extent.length = static_cast<uint32_t>(kPageSize);
      extent.entry_off = offs.front();
      st->extents[boundary_page] = extent;
    }
  }
  st->size = new_size;
  st->log_tail = tail;
  if (head != 0) {
    st->log_head = head;
  }

  if (options_.fortis && BugOn(BugId::kFortis11TruncListReplay) && shrink &&
      !freed_pages.empty()) {
    ClearTruncRecords();
  }
  return common::OkStatus();
}

Status NovaFs::Fallocate(InodeNum ino_in, uint32_t mode, uint64_t off,
                         uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  const bool keep_size = (mode & vfs::kFallocKeepSize) != 0;
  const bool punch_hole = (mode & vfs::kFallocPunchHole) != 0;
  const bool zero_range = (mode & vfs::kFallocZeroRange) != 0;
  if (punch_hole && !keep_size) {
    return common::Invalid("punch-hole requires keep-size");
  }
  uint64_t end = off + len;
  uint64_t new_size = keep_size ? st->size : std::max(st->size, end);
  uint32_t p0 = static_cast<uint32_t>(off / kPageSize);
  uint32_t p1 = static_cast<uint32_t>((end - 1) / kPageSize);

  const bool clobber = BugOn(BugId::kNova8FallocClobber);
  std::vector<LogEntry> entries;
  struct NewMapping {
    uint32_t page_idx;
    uint32_t data_page;
    uint64_t entry_index;
    bool replaces_existing;
  };
  std::vector<NewMapping> mappings;
  std::vector<uint8_t> buf(kPageSize);

  for (uint32_t p = p0; p <= p1; ++p) {
    uint64_t page_start = static_cast<uint64_t>(p) * kPageSize;
    auto it = st->extents.find(p);
    const bool mapped = it != st->extents.end();
    const bool must_zero = punch_hole || zero_range;

    if (mapped && must_zero) {
      // Copy-on-write with the requested range zeroed.
      pm_->ReadInto(DataPageOff(it->second.data_page), buf.data(), kPageSize);
      uint64_t from = std::max<uint64_t>(off, page_start) - page_start;
      uint64_t to = std::min<uint64_t>(end, page_start + kPageSize) - page_start;
      std::fill(buf.begin() + from, buf.begin() + to, 0);
      ASSIGN_OR_RETURN(uint32_t dp, AllocDataPage());
      pm_->MemcpyNt(DataPageOff(dp), buf.data(), kPageSize);
      LogEntry e;
      e.type = static_cast<uint8_t>(EntryType::kWrite);
      e.valid = 1;
      e.file_off = page_start;
      e.size_after = new_size;
      e.data_page = dp;
      e.length = static_cast<uint32_t>(kPageSize);
      e.data_csum = options_.fortis ? common::Crc32(buf.data(), buf.size()) : 0;
      mappings.push_back(NewMapping{p, dp, entries.size(), true});
      entries.push_back(e);
    } else if (!mapped && !punch_hole) {
      // Preallocate a zeroed page.
      ASSIGN_OR_RETURN(uint32_t dp, AllocDataPage());
      pm_->MemsetNt(DataPageOff(dp), 0, kPageSize);
      LogEntry e;
      e.type = static_cast<uint8_t>(EntryType::kWrite);
      e.valid = 1;
      e.prealloc = 1;
      e.file_off = page_start;
      e.size_after = new_size;
      e.data_page = dp;
      e.length = static_cast<uint32_t>(kPageSize);
      if (options_.fortis) {
        std::fill(buf.begin(), buf.end(), 0);
        e.data_csum = common::Crc32(buf.data(), buf.size());
      }
      mappings.push_back(NewMapping{p, dp, entries.size(), false});
      entries.push_back(e);
    } else if (mapped && clobber && !punch_hole && !zero_range) {
      CHIPMUNK_COV();
      // BUG 8: plain preallocation also emits entries for pages that are
      // already mapped, pointing at fresh zeroed pages. The running file
      // system keeps serving the old data, but rebuild replays the log and
      // maps the zeroed pages over it — the data is lost after a crash.
      ASSIGN_OR_RETURN(uint32_t dp, AllocDataPage());
      pm_->MemsetNt(DataPageOff(dp), 0, kPageSize);
      LogEntry e;
      e.type = static_cast<uint8_t>(EntryType::kWrite);
      e.valid = 1;
      e.prealloc = 1;
      e.file_off = page_start;
      e.size_after = new_size;
      e.data_page = dp;
      e.length = static_cast<uint32_t>(kPageSize);
      if (options_.fortis) {
        std::fill(buf.begin(), buf.end(), 0);
        e.data_csum = common::Crc32(buf.data(), buf.size());
      }
      entries.push_back(e);  // no DRAM mapping: live state keeps old page
    }
  }
  if (entries.empty()) {
    if (new_size == st->size) {
      return common::OkStatus();
    }
    entries.push_back(MakeSetAttr(new_size));
  }
  pm_->Fence();  // data pages durable before entries

  uint64_t tail = 0, head = 0;
  std::vector<uint64_t> offs;
  Status wstatus = WriteLogEntries(ino, entries, &tail, &head, &offs);
  if (!wstatus.ok()) {
    for (const NewMapping& m : mappings) {
      FreeDataPage(m.data_page);
    }
    return wstatus;
  }
  pm_->Fence();

  std::vector<Patch> patches;
  if (head != 0) {
    patches.push_back(HeadPatch(ino, head));
  }
  patches.push_back(TailPatch(ino, tail));
  RETURN_IF_ERROR(CommitPatches(patches, false));
  if (tail - LogBlockBase(tail) >= kFooterOffset) {
    ASSIGN_OR_RETURN(uint64_t next, ExtendLog(tail));
    tail = next + kFirstSlotOff;
    RETURN_IF_ERROR(CommitPatches({TailPatch(ino, tail)}, false));
  }

  for (const NewMapping& m : mappings) {
    auto it = st->extents.find(m.page_idx);
    if (it != st->extents.end()) {
      FreeDataPage(it->second.data_page);
    }
    Extent extent;
    extent.data_page = m.data_page;
    extent.length = static_cast<uint32_t>(kPageSize);
    extent.entry_off = offs[m.entry_index];
    st->extents[m.page_idx] = extent;
  }
  st->size = new_size;
  st->log_tail = tail;
  if (head != 0) {
    st->log_head = head;
  }
  return common::OkStatus();
}

StatusOr<vfs::FsStat> NovaFs::GetAttr(InodeNum ino_in) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  vfs::FsStat stat;
  stat.ino = ino;
  stat.type = st->type;
  stat.size = st->type == FileType::kRegular ? st->size : 0;
  stat.nlink =
      st->type == FileType::kDirectory ? 2 + st->subdirs : st->nlink;
  return stat;
}

StatusOr<std::vector<vfs::DirEntry>> NovaFs::ReadDir(InodeNum dir) {
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(static_cast<uint32_t>(dir)));
  std::vector<vfs::DirEntry> out;
  out.reserve(ds->entries.size());
  for (const auto& [name, ino] : ds->entries) {
    out.push_back(vfs::DirEntry{name, ino});
  }
  return out;
}

}  // namespace novafs
