#include "src/fs/xfsdax/xfsdax.h"

#include <algorithm>
#include <cstring>

#include "src/common/coverage.h"

namespace xfsdax {

using common::Status;
using common::StatusOr;
using vfs::FileType;
using vfs::InodeNum;

namespace {

// Extra item type: zero a whole block (used when a fresh dentry block joins a
// directory, so recycled blocks cannot leak stale entries).
constexpr uint8_t kZeroBlock = 5;

uint64_t PackWord0(uint8_t valid, uint8_t type, uint32_t links) {
  return static_cast<uint64_t>(valid) | (static_cast<uint64_t>(type) << 8) |
         (static_cast<uint64_t>(links) << 32);
}
uint8_t Word0Valid(uint64_t w) { return static_cast<uint8_t>(w); }
uint8_t Word0Type(uint64_t w) { return static_cast<uint8_t>(w >> 8); }
uint32_t Word0Links(uint64_t w) { return static_cast<uint32_t>(w >> 32); }

struct Dentry {
  uint8_t in_use = 0;
  uint8_t name_len = 0;
  uint16_t pad = 0;
  uint32_t ino = 0;
  char name[24] = {};
  uint8_t reserved[32] = {};
};
static_assert(sizeof(Dentry) == kDentrySize, "dentry size");

struct Superblock {
  uint64_t magic = 0;
  uint64_t total_blocks = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Format / mount.
// ---------------------------------------------------------------------------

Status XfsDaxFs::Mkfs() {
  uint64_t total_blocks = pm_->size() / kBlockSize;
  if (total_blocks < kDataStartBlock + 16) {
    return common::Invalid("device too small for xfsdax");
  }
  mounted_ = false;
  for (uint64_t b = 0; b < kDataStartBlock; ++b) {
    pm_->MemsetNt(BlockAddr(b), 0, kBlockSize);
  }
  pm_->Fence();
  Superblock sb;
  sb.magic = kMagic;
  sb.total_blocks = total_blocks;
  pm_->Memcpy(0, &sb, sizeof(sb));
  pm_->FlushBuffer(0, sizeof(sb));
  pm_->Store<uint64_t>(InodeOff(kRootIno) + kInoWord0,
                       PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  pm_->FlushBuffer(InodeOff(kRootIno), kInodeSize);
  pm_->Fence();
  return common::OkStatus();
}

void XfsDaxFs::ApplyItem(const LogItem& item) {
  switch (static_cast<ItemType>(item.type)) {
    case ItemType::kSetInodeField:
      pm_->Store<uint64_t>(InodeOff(item.ino) + item.field, item.value);
      pm_->FlushBuffer(InodeOff(item.ino) + item.field, 8);
      break;
    case ItemType::kWriteDentry: {
      Dentry d;
      d.in_use = 1;
      d.name_len = item.name_len;
      d.ino = item.value != 0 ? static_cast<uint32_t>(item.value) : item.ino;
      std::memcpy(d.name, item.name,
                  std::min<size_t>(item.name_len, sizeof(item.name)));
      uint64_t addr = BlockAddr(item.block) + item.slot * kDentrySize;
      pm_->Memcpy(addr, &d, sizeof(d));
      pm_->FlushBuffer(addr, sizeof(d));
      break;
    }
    case ItemType::kClearDentry: {
      uint64_t addr = BlockAddr(item.block) + item.slot * kDentrySize;
      pm_->Memset(addr, 0, kDentrySize);
      pm_->FlushBuffer(addr, kDentrySize);
      break;
    }
    case ItemType::kSetExtent: {
      uint64_t addr = InodeOff(item.ino) + kInoExtents + item.slot * 12;
      pm_->Memcpy(addr, &item.extent, sizeof(item.extent));
      pm_->FlushBuffer(addr, sizeof(item.extent));
      break;
    }
    default:
      if (item.type == kZeroBlock) {
        pm_->MemsetNt(BlockAddr(item.block), 0, kBlockSize);
      }
      break;
  }
}

Status XfsDaxFs::ReplayLog() {
  uint64_t header = BlockAddr(kLogStartBlock);
  if (pm_->Load<uint64_t>(header) == 0) {
    return common::OkStatus();
  }
  CHIPMUNK_COV();
  uint64_t n = pm_->Load<uint64_t>(header + 16);
  if (n > kMaxLogItems) {
    return common::Corruption("log item count out of range");
  }
  for (uint64_t i = 0; i < n; ++i) {
    LogItem item;
    pm_->ReadInto(header + kLogHeaderSize + i * sizeof(LogItem), &item,
                  sizeof(item));
    if (item.type == 0 || (item.type > 4 && item.type != kZeroBlock)) {
      return common::Corruption("log item with invalid type");
    }
    if (item.ino >= kNumInodes || item.block >= total_blocks_) {
      return common::Corruption("log item target out of range");
    }
    ApplyItem(item);
  }
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(header, 0);
  pm_->Fence();
  return common::OkStatus();
}

Status XfsDaxFs::ScanAndBuild() {
  inodes_.assign(kNumInodes, InodeState{});
  std::set<uint32_t> used;
  auto mark = [&](uint32_t block, uint32_t count) -> Status {
    for (uint32_t i = 0; i < count; ++i) {
      if (block + i < kDataStartBlock || block + i >= total_blocks_) {
        return common::Corruption("extent outside the data region");
      }
      if (!used.insert(block + i).second) {
        return common::Corruption("block mapped twice");
      }
    }
    return common::OkStatus();
  };

  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    uint64_t w0 = pm_->Load<uint64_t>(InodeOff(ino) + kInoWord0);
    if (Word0Valid(w0) == 0) {
      continue;
    }
    InodeState& st = inodes_[ino];
    st.in_use = true;
    st.type = static_cast<FileType>(Word0Type(w0));
    if (st.type != FileType::kRegular && st.type != FileType::kDirectory) {
      return common::Corruption("inode with invalid type");
    }
    st.nlink = Word0Links(w0);
    st.size = pm_->Load<uint64_t>(InodeOff(ino) + kInoSize);
    uint64_t nextents = pm_->Load<uint64_t>(InodeOff(ino) + kInoNextents);
    if (nextents > kMaxExtents) {
      return common::Corruption("extent count out of range");
    }
    for (uint64_t i = 0; i < nextents; ++i) {
      Extent extent;
      pm_->ReadInto(InodeOff(ino) + kInoExtents + i * 12, &extent,
                    sizeof(extent));
      if (extent.count == 0) {
        return common::Corruption("empty extent record");
      }
      RETURN_IF_ERROR(mark(extent.disk_block, extent.count));
      st.extents[extent.file_block] = {extent.disk_block, extent.count};
    }
  }
  // Directory contents.
  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    InodeState& st = inodes_[ino];
    if (!st.in_use || st.type != FileType::kDirectory) {
      continue;
    }
    for (const auto& [fb, run] : st.extents) {
      for (uint32_t i = 0; i < run.second; ++i) {
        uint32_t block = run.first + i;
        for (uint32_t slot = 0; slot < kDentriesPerBlock; ++slot) {
          Dentry d;
          pm_->ReadInto(BlockAddr(block) + slot * kDentrySize, &d, sizeof(d));
          if (d.in_use == 0) {
            continue;
          }
          if (d.ino == 0 || d.ino >= kNumInodes || !inodes_[d.ino].in_use) {
            return common::Corruption("dentry references invalid inode");
          }
          std::string name(d.name, std::min<size_t>(d.name_len, sizeof(d.name)));
          st.entries[name] = DentryLoc{block, slot};
        }
      }
    }
  }
  free_blocks_.clear();
  for (uint32_t b = total_blocks_; b-- > kDataStartBlock;) {
    if (used.count(b) == 0) {
      free_blocks_.push_back(b);  // descending: pop_back yields lowest
    }
  }
  return common::OkStatus();
}

Status XfsDaxFs::Mount() {
  mounted_ = false;
  cil_.clear();
  dirty_data_.clear();
  pending_free_.clear();
  Superblock sb;
  pm_->ReadInto(0, &sb, sizeof(sb));
  if (sb.magic != kMagic) {
    return common::Corruption("bad superblock magic");
  }
  if (sb.total_blocks != pm_->size() / kBlockSize) {
    return common::Corruption("superblock geometry mismatch");
  }
  total_blocks_ = sb.total_blocks;
  RETURN_IF_ERROR(ReplayLog());
  RETURN_IF_ERROR(ScanAndBuild());
  if (!inodes_[kRootIno].in_use ||
      inodes_[kRootIno].type != FileType::kDirectory) {
    return common::Corruption("root inode missing");
  }
  if (pm_->faulted()) {
    return common::Status(pm_->fault());
  }
  mounted_ = true;
  return common::OkStatus();
}

Status XfsDaxFs::Unmount() {
  if (mounted_) {
    RETURN_IF_ERROR(Commit(0, /*all_data=*/true));
  }
  mounted_ = false;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// CIL and commit.
// ---------------------------------------------------------------------------

Status XfsDaxFs::MaybeCheckpoint() {
  // Background checkpoint, like xfsaild pushing the AIL: when the CIL
  // approaches the log's capacity, write everything back (data first, to
  // keep ordered-mode semantics).
  if (cil_.size() + 64 > kMaxLogItems) {
    CHIPMUNK_COV();
    return Commit(0, /*all_data=*/true);
  }
  return common::OkStatus();
}

void XfsDaxFs::LogSetField(uint32_t ino, uint64_t field, uint64_t value) {
  LogItem item;
  item.type = static_cast<uint8_t>(ItemType::kSetInodeField);
  item.ino = ino;
  item.field = field;
  item.value = value;
  cil_.push_back(item);
}

void XfsDaxFs::LogDentry(uint32_t block, uint32_t slot, const std::string& name,
                         uint32_t target) {
  LogItem item;
  item.type = static_cast<uint8_t>(ItemType::kWriteDentry);
  item.block = block;
  item.slot = slot;
  item.name_len = static_cast<uint8_t>(name.size());
  item.value = target;
  std::memcpy(item.name, name.data(), std::min(name.size(), sizeof(item.name)));
  cil_.push_back(item);
}

void XfsDaxFs::LogClearDentry(uint32_t block, uint32_t slot) {
  LogItem item;
  item.type = static_cast<uint8_t>(ItemType::kClearDentry);
  item.block = block;
  item.slot = slot;
  cil_.push_back(item);
}

void XfsDaxFs::LogExtents(uint32_t ino, const InodeState& st) {
  uint32_t slot = 0;
  for (const auto& [fb, run] : st.extents) {
    LogItem item;
    item.type = static_cast<uint8_t>(ItemType::kSetExtent);
    item.ino = ino;
    item.slot = slot++;
    item.extent = Extent{fb, run.first, run.second};
    cil_.push_back(item);
  }
  LogSetField(ino, kInoNextents, st.extents.size());
}

Status XfsDaxFs::Commit(uint32_t ino, bool all_data) {
  // Ordered data: the target's dirty pages reach media before the log
  // commits the metadata that references them.
  auto flush_pages = [&](uint32_t target) {
    for (auto it = dirty_data_.begin(); it != dirty_data_.end();) {
      if (it->first.first != target) {
        ++it;
        continue;
      }
      uint32_t disk = MapBlock(inodes_[target], it->first.second);
      if (disk != 0) {
        pm_->MemcpyNt(BlockAddr(disk), it->second.data(), it->second.size());
      }
      it = dirty_data_.erase(it);
    }
  };
  if (all_data) {
    std::set<uint32_t> files;
    for (const auto& [key, buf] : dirty_data_) {
      files.insert(key.first);
    }
    for (uint32_t f : files) {
      flush_pages(f);
    }
  } else if (ino != 0) {
    flush_pages(ino);
  }
  pm_->Fence();

  if (!cil_.empty()) {
    if (cil_.size() > kMaxLogItems) {
      return common::NoSpace("log too small for checkpoint");
    }
    uint64_t header = BlockAddr(kLogStartBlock);
    pm_->Store<uint64_t>(header + 8, log_seq_++);
    pm_->Store<uint64_t>(header + 16, cil_.size());
    for (size_t i = 0; i < cil_.size(); ++i) {
      pm_->Memcpy(header + kLogHeaderSize + i * sizeof(LogItem), &cil_[i],
                  sizeof(LogItem));
    }
    pm_->FlushBuffer(header + 8, 16 + cil_.size() * sizeof(LogItem));
    pm_->Fence();
    pm_->StoreFlush<uint64_t>(header, 1);  // commit record
    pm_->Fence();
    for (const LogItem& item : cil_) {
      ApplyItem(item);  // checkpoint in place
    }
    pm_->Fence();
    pm_->StoreFlush<uint64_t>(header, 0);
    pm_->Fence();
    cil_.clear();
  }
  for (uint32_t block : pending_free_) {
    free_blocks_.push_back(block);
  }
  if (!pending_free_.empty()) {
    std::sort(free_blocks_.begin(), free_blocks_.end(),
              std::greater<uint32_t>());
    pending_free_.clear();
  }
  return common::OkStatus();
}

Status XfsDaxFs::Fsync(InodeNum ino) {
  RETURN_IF_ERROR(GetState(static_cast<uint32_t>(ino)).status());
  return Commit(static_cast<uint32_t>(ino), /*all_data=*/false);
}

Status XfsDaxFs::SyncAll() {
  if (!mounted_) {
    return common::NotMounted();
  }
  return Commit(0, /*all_data=*/true);
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

StatusOr<XfsDaxFs::InodeState*> XfsDaxFs::GetState(uint32_t ino) {
  if (!mounted_) {
    return common::NotMounted();
  }
  if (ino == 0 || ino >= kNumInodes || !inodes_[ino].in_use) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  return &inodes_[ino];
}

StatusOr<XfsDaxFs::InodeState*> XfsDaxFs::GetDirState(uint32_t ino) {
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kDirectory) {
    return common::NotDir();
  }
  return st;
}

StatusOr<uint32_t> XfsDaxFs::AllocInode() {
  for (uint32_t ino = 2; ino < kNumInodes; ++ino) {
    if (!inodes_[ino].in_use) {
      inodes_[ino] = InodeState{};
      return ino;
    }
  }
  return common::NoSpace("inode table full");
}

StatusOr<uint32_t> XfsDaxFs::AllocBlock() {
  if (free_blocks_.empty()) {
    return common::NoSpace("no free blocks");
  }
  uint32_t block = free_blocks_.back();
  free_blocks_.pop_back();
  return block;
}

void XfsDaxFs::FreeBlockDeferred(uint32_t block) {
  pending_free_.push_back(block);
}

uint32_t XfsDaxFs::MapBlock(const InodeState& st, uint32_t fb) const {
  auto it = st.extents.upper_bound(fb);
  if (it == st.extents.begin()) {
    return 0;
  }
  --it;
  if (fb >= it->first && fb < it->first + it->second.second) {
    return it->second.first + (fb - it->first);
  }
  return 0;
}

Status XfsDaxFs::AddMapping(InodeState& st, uint32_t fb, uint32_t disk) {
  st.extents[fb] = {disk, 1};
  // Normalize: merge runs that are contiguous in both spaces.
  std::map<uint32_t, std::pair<uint32_t, uint32_t>> merged;
  for (const auto& [file_block, run] : st.extents) {
    if (!merged.empty()) {
      auto& last = *merged.rbegin();
      if (last.first + last.second.second == file_block &&
          last.second.first + last.second.second == run.first) {
        last.second.second += run.second;
        continue;
      }
    }
    merged[file_block] = run;
  }
  if (merged.size() > kMaxExtents) {
    st.extents.erase(fb);
    return common::NoSpace("file too fragmented for the extent list");
  }
  st.extents = std::move(merged);
  return common::OkStatus();
}

StatusOr<XfsDaxFs::DentryLoc> XfsDaxFs::FindFreeSlot(InodeState& dir_state,
                                                     uint32_t dir) {
  std::set<std::pair<uint32_t, uint32_t>> taken;
  for (const auto& [name, loc] : dir_state.entries) {
    taken.insert({loc.block, loc.slot});
  }
  for (const auto& [fb, run] : dir_state.extents) {
    for (uint32_t i = 0; i < run.second; ++i) {
      for (uint32_t slot = 0; slot < kDentriesPerBlock; ++slot) {
        if (taken.count({run.first + i, slot}) == 0) {
          return DentryLoc{run.first + i, slot};
        }
      }
    }
  }
  // Grow the directory by one block.
  ASSIGN_OR_RETURN(uint32_t block, AllocBlock());
  uint32_t next_fb = dir_state.extents.empty()
                         ? 0
                         : dir_state.extents.rbegin()->first +
                               dir_state.extents.rbegin()->second.second;
  Status st = AddMapping(dir_state, next_fb, block);
  if (!st.ok()) {
    free_blocks_.push_back(block);
    return st;
  }
  LogItem zero;
  zero.type = kZeroBlock;
  zero.block = block;
  cil_.push_back(zero);
  LogExtents(dir, dir_state);
  return DentryLoc{block, 0};
}

// ---------------------------------------------------------------------------
// Namespace operations.
// ---------------------------------------------------------------------------

StatusOr<InodeNum> XfsDaxFs::Lookup(InodeNum dir, const std::string& name) {
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(static_cast<uint32_t>(dir)));
  auto it = ds->entries.find(name);
  if (it == ds->entries.end()) {
    return common::NotFound(name);
  }
  // Entries keep the target in the CIL-visible DRAM map; read it back from
  // the pending dentry item or media.
  for (auto cit = cil_.rbegin(); cit != cil_.rend(); ++cit) {
    if (cit->type == static_cast<uint8_t>(ItemType::kWriteDentry) &&
        cit->block == it->second.block && cit->slot == it->second.slot) {
      return static_cast<InodeNum>(cit->value);
    }
  }
  Dentry d;
  pm_->ReadInto(BlockAddr(it->second.block) + it->second.slot * kDentrySize,
                &d, sizeof(d));
  return static_cast<InodeNum>(d.ino);
}

StatusOr<InodeNum> XfsDaxFs::Create(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? common::Invalid("empty name")
                        : Status(common::ErrorCode::kNameTooLong, name);
  }
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  if (ds->entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(*ds, dir));
  InodeState& st = inodes_[ino];
  st.in_use = true;
  st.type = FileType::kRegular;
  st.nlink = 1;
  LogSetField(ino, kInoWord0,
              PackWord0(1, static_cast<uint8_t>(FileType::kRegular), 1));
  LogSetField(ino, kInoSize, 0);
  LogSetField(ino, kInoNextents, 0);
  LogDentry(loc.block, loc.slot, name, ino);
  ds->entries[name] = loc;
  return static_cast<InodeNum>(ino);
}

StatusOr<InodeNum> XfsDaxFs::Mkdir(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? common::Invalid("empty name")
                        : Status(common::ErrorCode::kNameTooLong, name);
  }
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  if (ds->entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(*ds, dir));
  InodeState& st = inodes_[ino];
  st.in_use = true;
  st.type = FileType::kDirectory;
  st.nlink = 2;
  LogSetField(ino, kInoWord0,
              PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  LogSetField(ino, kInoSize, 0);
  LogSetField(ino, kInoNextents, 0);
  LogDentry(loc.block, loc.slot, name, ino);
  ds->nlink += 1;
  LogSetField(dir, kInoWord0,
              PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                        ds->nlink));
  ds->entries[name] = loc;
  return static_cast<InodeNum>(ino);
}

Status XfsDaxFs::RemoveCommon(uint32_t dir, const std::string& name,
                              bool want_dir) {
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  auto it = ds->entries.find(name);
  if (it == ds->entries.end()) {
    return common::NotFound(name);
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  ASSIGN_OR_RETURN(InodeNum child_in, Lookup(dir, name));
  uint32_t child = static_cast<uint32_t>(child_in);
  ASSIGN_OR_RETURN(InodeState * cs, GetState(child));
  if (want_dir && cs->type != FileType::kDirectory) {
    return common::NotDir(name);
  }
  if (!want_dir && cs->type == FileType::kDirectory) {
    return common::IsDir(name);
  }
  if (want_dir && !cs->entries.empty()) {
    return common::NotEmpty(name);
  }
  LogClearDentry(it->second.block, it->second.slot);
  if (want_dir || cs->nlink <= 1) {
    for (const auto& [fb, run] : cs->extents) {
      for (uint32_t i = 0; i < run.second; ++i) {
        FreeBlockDeferred(run.first + i);
      }
    }
    for (auto dit = dirty_data_.begin(); dit != dirty_data_.end();) {
      dit = dit->first.first == child ? dirty_data_.erase(dit) : std::next(dit);
    }
    LogSetField(child, kInoWord0, 0);
    LogSetField(child, kInoNextents, 0);
    inodes_[child] = InodeState{};
    if (want_dir) {
      ds->nlink -= 1;
      LogSetField(dir, kInoWord0,
                  PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                            ds->nlink));
    }
  } else {
    cs->nlink -= 1;
    LogSetField(child, kInoWord0,
                PackWord0(1, static_cast<uint8_t>(FileType::kRegular),
                          cs->nlink));
  }
  ds->entries.erase(name);
  return common::OkStatus();
}

Status XfsDaxFs::Unlink(InodeNum dir, const std::string& name) {
  return RemoveCommon(static_cast<uint32_t>(dir), name, false);
}

Status XfsDaxFs::Rmdir(InodeNum dir, const std::string& name) {
  return RemoveCommon(static_cast<uint32_t>(dir), name, true);
}

Status XfsDaxFs::Link(InodeNum target_in, InodeNum dir_in,
                      const std::string& name) {
  uint32_t target = static_cast<uint32_t>(target_in);
  uint32_t dir = static_cast<uint32_t>(dir_in);
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? common::Invalid("empty name")
                        : Status(common::ErrorCode::kNameTooLong, name);
  }
  ASSIGN_OR_RETURN(InodeState * ts, GetState(target));
  if (ts->type != FileType::kRegular) {
    return common::IsDir(name);
  }
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(dir));
  if (ds->entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(*ds, dir));
  ts->nlink += 1;
  LogSetField(target, kInoWord0,
              PackWord0(1, static_cast<uint8_t>(FileType::kRegular), ts->nlink));
  LogDentry(loc.block, loc.slot, name, target);
  ds->entries[name] = loc;
  return common::OkStatus();
}

Status XfsDaxFs::Rename(InodeNum src_dir_in, const std::string& src_name,
                        InodeNum dst_dir_in, const std::string& dst_name) {
  uint32_t src_dir = static_cast<uint32_t>(src_dir_in);
  uint32_t dst_dir = static_cast<uint32_t>(dst_dir_in);
  if (dst_name.empty() || dst_name.size() > kMaxNameLen) {
    return dst_name.empty() ? common::Invalid("empty name")
                            : Status(common::ErrorCode::kNameTooLong, dst_name);
  }
  ASSIGN_OR_RETURN(InodeState * sd, GetDirState(src_dir));
  ASSIGN_OR_RETURN(InodeState * dd, GetDirState(dst_dir));
  auto sit = sd->entries.find(src_name);
  if (sit == sd->entries.end()) {
    return common::NotFound(src_name);
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  ASSIGN_OR_RETURN(InodeNum src_ino_in, Lookup(src_dir, src_name));
  uint32_t src_ino = static_cast<uint32_t>(src_ino_in);
  ASSIGN_OR_RETURN(InodeState * ss, GetState(src_ino));
  const bool src_is_dir = ss->type == FileType::kDirectory;

  auto dit = dd->entries.find(dst_name);
  if (dit != dd->entries.end()) {
    ASSIGN_OR_RETURN(InodeNum victim_in, Lookup(dst_dir, dst_name));
    uint32_t victim = static_cast<uint32_t>(victim_in);
    if (victim == src_ino) {
      return common::OkStatus();
    }
    ASSIGN_OR_RETURN(InodeState * vs, GetState(victim));
    if (vs->type == FileType::kDirectory) {
      if (!src_is_dir) {
        return common::IsDir(dst_name);
      }
      if (!vs->entries.empty()) {
        return common::NotEmpty(dst_name);
      }
      RETURN_IF_ERROR(RemoveCommon(dst_dir, dst_name, true));
    } else {
      if (src_is_dir) {
        return common::NotDir(dst_name);
      }
      RETURN_IF_ERROR(RemoveCommon(dst_dir, dst_name, false));
    }
  }
  DentryLoc src_loc = sd->entries.at(src_name);
  ASSIGN_OR_RETURN(DentryLoc dst_loc, FindFreeSlot(*dd, dst_dir));
  LogDentry(dst_loc.block, dst_loc.slot, dst_name, src_ino);
  LogClearDentry(src_loc.block, src_loc.slot);
  if (src_is_dir && src_dir != dst_dir) {
    sd->nlink -= 1;
    dd->nlink += 1;
    LogSetField(src_dir, kInoWord0,
                PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                          sd->nlink));
    LogSetField(dst_dir, kInoWord0,
                PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                          dd->nlink));
  }
  sd->entries.erase(src_name);
  dd->entries[dst_name] = dst_loc;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// File operations.
// ---------------------------------------------------------------------------

StatusOr<uint64_t> XfsDaxFs::Read(InodeNum ino_in, uint64_t off, uint64_t len,
                                  uint8_t* out) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (off >= st->size || len == 0) {
    return uint64_t{0};
  }
  uint64_t n = std::min<uint64_t>(len, st->size - off);
  std::memset(out, 0, n);
  uint64_t pos = off;
  while (pos < off + n) {
    uint32_t fb = static_cast<uint32_t>(pos / kBlockSize);
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, off + n - pos);
    auto dirty = dirty_data_.find({ino, fb});
    if (dirty != dirty_data_.end()) {
      std::memcpy(out + (pos - off), dirty->second.data() + in_block, chunk);
    } else {
      uint32_t disk = MapBlock(*st, fb);
      if (disk != 0) {
        pm_->ReadInto(BlockAddr(disk) + in_block, out + (pos - off), chunk);
      }
    }
    pos += chunk;
  }
  return n;
}

Status XfsDaxFs::ZeroGapCached(uint32_t ino, uint64_t old_size) {
  if (old_size % kBlockSize == 0) {
    return common::OkStatus();
  }
  InodeState& st = inodes_[ino];
  uint32_t fb = static_cast<uint32_t>(old_size / kBlockSize);
  auto it = dirty_data_.find({ino, fb});
  if (it == dirty_data_.end()) {
    uint32_t disk = MapBlock(st, fb);
    if (disk == 0) {
      return common::OkStatus();
    }
    std::vector<uint8_t> buf(kBlockSize, 0);
    pm_->ReadInto(BlockAddr(disk), buf.data(), kBlockSize);
    it = dirty_data_.emplace(std::make_pair(ino, fb), std::move(buf)).first;
  }
  std::fill(it->second.begin() + old_size % kBlockSize, it->second.end(), 0);
  return common::OkStatus();
}

StatusOr<uint64_t> XfsDaxFs::Write(InodeNum ino_in, uint64_t off,
                                   const uint8_t* data, uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (len == 0) {
    return uint64_t{0};
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  uint64_t end = off + len;
  if (end > st->size) {
    RETURN_IF_ERROR(ZeroGapCached(ino, st->size));
  }
  bool extents_changed = false;
  for (uint32_t fb = static_cast<uint32_t>(off / kBlockSize);
       fb <= static_cast<uint32_t>((end - 1) / kBlockSize); ++fb) {
    uint64_t block_start = static_cast<uint64_t>(fb) * kBlockSize;
    uint64_t from = std::max(off, block_start);
    uint64_t to = std::min(end, block_start + kBlockSize);
    auto it = dirty_data_.find({ino, fb});
    if (it == dirty_data_.end()) {
      std::vector<uint8_t> buf(kBlockSize, 0);
      uint32_t disk = MapBlock(*st, fb);
      if (disk != 0) {
        pm_->ReadInto(BlockAddr(disk), buf.data(), kBlockSize);
      }
      it = dirty_data_.emplace(std::make_pair(ino, fb), std::move(buf)).first;
    }
    std::memcpy(it->second.data() + (from - block_start), data + (from - off),
                to - from);
    if (MapBlock(*st, fb) == 0) {
      ASSIGN_OR_RETURN(uint32_t disk, AllocBlock());
      Status add = AddMapping(*st, fb, disk);
      if (!add.ok()) {
        free_blocks_.push_back(disk);
        return add;
      }
      extents_changed = true;
    }
  }
  if (extents_changed) {
    LogExtents(ino, *st);
  }
  if (end > st->size) {
    st->size = end;
    LogSetField(ino, kInoSize, end);
  }
  return len;
}

Status XfsDaxFs::Truncate(InodeNum ino_in, uint64_t new_size) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  if (new_size < st->size) {
    uint32_t keep = static_cast<uint32_t>((new_size + kBlockSize - 1) / kBlockSize);
    // Split/trim runs beyond the keep point.
    std::map<uint32_t, std::pair<uint32_t, uint32_t>> kept;
    for (const auto& [fb, run] : st->extents) {
      if (fb >= keep) {
        for (uint32_t i = 0; i < run.second; ++i) {
          FreeBlockDeferred(run.first + i);
        }
        continue;
      }
      uint32_t usable = std::min(run.second, keep - fb);
      kept[fb] = {run.first, usable};
      for (uint32_t i = usable; i < run.second; ++i) {
        FreeBlockDeferred(run.first + i);
      }
    }
    st->extents = std::move(kept);
    for (auto it = dirty_data_.begin(); it != dirty_data_.end();) {
      it = (it->first.first == ino && it->first.second >= keep)
               ? dirty_data_.erase(it)
               : std::next(it);
    }
    LogExtents(ino, *st);
  } else if (new_size > st->size) {
    RETURN_IF_ERROR(ZeroGapCached(ino, st->size));
  }
  if (new_size != st->size) {
    st->size = new_size;
    LogSetField(ino, kInoSize, new_size);
  }
  return common::OkStatus();
}

Status XfsDaxFs::Fallocate(InodeNum ino_in, uint32_t mode, uint64_t off,
                           uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  if (st->type != FileType::kRegular) {
    return common::IsDir();
  }
  const bool keep_size = (mode & vfs::kFallocKeepSize) != 0;
  const bool punch_hole = (mode & vfs::kFallocPunchHole) != 0;
  const bool zero_range = (mode & vfs::kFallocZeroRange) != 0;
  if (punch_hole && !keep_size) {
    return common::Invalid("punch-hole requires keep-size");
  }
  RETURN_IF_ERROR(MaybeCheckpoint());
  uint64_t end = off + len;
  uint64_t old_size = st->size;
  if (punch_hole || zero_range) {
    // Zero the byte range through the page cache.
    for (uint32_t fb = static_cast<uint32_t>(off / kBlockSize);
         fb <= static_cast<uint32_t>((end - 1) / kBlockSize); ++fb) {
      uint64_t block_start = static_cast<uint64_t>(fb) * kBlockSize;
      uint64_t from = std::max(off, block_start);
      uint64_t to = std::min(end, block_start + kBlockSize);
      auto it = dirty_data_.find({ino, fb});
      if (it == dirty_data_.end()) {
        uint32_t disk = MapBlock(*st, fb);
        if (disk == 0) {
          continue;
        }
        std::vector<uint8_t> buf(kBlockSize, 0);
        pm_->ReadInto(BlockAddr(disk), buf.data(), kBlockSize);
        it = dirty_data_.emplace(std::make_pair(ino, fb), std::move(buf)).first;
      }
      std::fill(it->second.begin() + (from - block_start),
                it->second.begin() + (to - block_start), 0);
    }
  }
  if (!punch_hole) {
    bool changed = false;
    for (uint32_t fb = static_cast<uint32_t>(off / kBlockSize);
         fb <= static_cast<uint32_t>((end - 1) / kBlockSize); ++fb) {
      if (MapBlock(*st, fb) != 0) {
        continue;
      }
      ASSIGN_OR_RETURN(uint32_t disk, AllocBlock());
      Status add = AddMapping(*st, fb, disk);
      if (!add.ok()) {
        free_blocks_.push_back(disk);
        return add;
      }
      dirty_data_[{ino, fb}] = std::vector<uint8_t>(kBlockSize, 0);
      changed = true;
    }
    if (changed) {
      LogExtents(ino, *st);
    }
  }
  if (!keep_size && end > old_size) {
    RETURN_IF_ERROR(ZeroGapCached(ino, old_size));
    st->size = end;
    LogSetField(ino, kInoSize, end);
  }
  return common::OkStatus();
}

StatusOr<vfs::FsStat> XfsDaxFs::GetAttr(InodeNum ino_in) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  ASSIGN_OR_RETURN(InodeState * st, GetState(ino));
  vfs::FsStat stat;
  stat.ino = ino;
  stat.type = st->type;
  stat.size = st->type == FileType::kRegular ? st->size : 0;
  stat.nlink = st->nlink;
  return stat;
}

StatusOr<std::vector<vfs::DirEntry>> XfsDaxFs::ReadDir(InodeNum dir) {
  ASSIGN_OR_RETURN(InodeState * ds, GetDirState(static_cast<uint32_t>(dir)));
  std::vector<vfs::DirEntry> out;
  for (const auto& [name, loc] : ds->entries) {
    auto target = Lookup(dir, name);
    out.push_back(vfs::DirEntry{name, target.ok() ? *target : 0});
  }
  return out;
}

}  // namespace xfsdax
