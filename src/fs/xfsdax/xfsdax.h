// XfsDaxFs: an XFS-DAX-like file system — the second weak-guarantee system
// of §4.1, architecturally distinct from ext4dax:
//
//   - files map data through *extent lists* embedded in the inode record
//     (XFS's bmap btree, flattened: up to kMaxExtents runs per file) instead
//     of direct/indirect block pointers;
//   - metadata changes accumulate as *logical log items* in an in-DRAM CIL
//     (committed item list), XFS's delayed logging, rather than whole dirty
//     blocks; fsync/sync serialize the items into the on-media log, write a
//     commit record, and only then checkpoint them in place;
//   - recovery replays the committed item list (physical-logical redo: every
//     item names its exact media target, so replay is deterministic and
//     idempotent).
//
// Guarantees are weak like ext4dax (fsync required; ordered data). No bugs
// are injected (§4.4: the mature base file systems yielded none).
#ifndef CHIPMUNK_FS_XFSDAX_XFSDAX_H_
#define CHIPMUNK_FS_XFSDAX_XFSDAX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/pmem/pm.h"
#include "src/vfs/filesystem.h"

namespace xfsdax {

inline constexpr uint64_t kMagic = 0x58465344415821ull;  // "XFSDAX!"
inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint32_t kNumInodes = 256;
inline constexpr uint32_t kRootIno = 1;
inline constexpr uint32_t kMaxNameLen = 19;

// Block map: [0] superblock, [1..kLogBlocks] the log, then the inode table,
// then data (dentry blocks + file blocks).
inline constexpr uint64_t kLogStartBlock = 1;
inline constexpr uint64_t kLogBlocks = 16;
inline constexpr uint64_t kInodeTableBlock = kLogStartBlock + kLogBlocks;
inline constexpr uint64_t kInodeSize = 256;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
inline constexpr uint64_t kInodeTableBlocks = kNumInodes / kInodesPerBlock;
inline constexpr uint64_t kDataStartBlock = kInodeTableBlock + kInodeTableBlocks;

// Inode record layout (256 bytes).
inline constexpr uint64_t kInoWord0 = 0;  // valid | type | links
inline constexpr uint64_t kInoSize = 8;
inline constexpr uint64_t kInoNextents = 16;
inline constexpr uint64_t kInoExtents = 24;  // kMaxExtents x 12 bytes
inline constexpr uint32_t kMaxExtents = 12;

// One mapped run: file blocks [file_block, file_block+count) live at disk
// blocks [disk_block, disk_block+count).
struct Extent {
  uint32_t file_block = 0;
  uint32_t disk_block = 0;
  uint32_t count = 0;
};
static_assert(sizeof(Extent) == 12, "extent record is 12 bytes");

inline constexpr uint64_t kDentrySize = 64;
inline constexpr uint64_t kDentriesPerBlock = kBlockSize / kDentrySize;

// ---- Logical log items (64 bytes each). ----
enum class ItemType : uint8_t {
  kSetInodeField = 1,  // ino.field <- value
  kWriteDentry = 2,    // dentry at (block, slot) <- {name, target ino}
  kClearDentry = 3,    // dentry at (block, slot) <- zero
  kSetExtent = 4,      // ino.extents[slot] <- extent, bumping nextents
};

struct LogItem {
  uint8_t type = 0;
  uint8_t name_len = 0;
  uint16_t pad = 0;
  uint32_t ino = 0;
  uint32_t block = 0;
  uint32_t slot = 0;
  uint64_t field = 0;  // byte offset within the inode record
  uint64_t value = 0;
  Extent extent;
  char name[20] = {};
};
static_assert(sizeof(LogItem) == 64, "log item is 64 bytes");

// Log region layout: header {valid u64, seq u64, nitems u64} then items.
inline constexpr uint64_t kLogHeaderSize = 64;
inline constexpr uint64_t kMaxLogItems =
    (kLogBlocks * kBlockSize - kLogHeaderSize) / sizeof(LogItem);

struct XfsOptions {};

class XfsDaxFs : public vfs::FileSystem {
 public:
  XfsDaxFs(pmem::Pm* pm, XfsOptions options) : pm_(pm) {}

  std::string Name() const override { return "xfsdax"; }
  vfs::CrashGuarantees Guarantees() const override {
    return vfs::CrashGuarantees{false, false, false};
  }

  common::Status Mkfs() override;
  common::Status Mount() override;
  common::Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override;
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override;
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override;
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override;
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override;

  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override;
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override;
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override;
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override;
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override;

  common::Status Fsync(vfs::InodeNum ino) override;
  common::Status SyncAll() override;

 private:
  // ---- DRAM (write-back) state. ----
  struct DentryLoc {
    uint32_t block = 0;
    uint32_t slot = 0;
  };
  struct InodeState {
    bool in_use = false;
    vfs::FileType type = vfs::FileType::kNone;
    uint32_t nlink = 0;
    uint64_t size = 0;
    // file block -> (disk block, run length), normalized (merged runs).
    std::map<uint32_t, std::pair<uint32_t, uint32_t>> extents;
    std::map<std::string, DentryLoc> entries;  // directories
  };

  uint64_t InodeOff(uint32_t ino) const {
    return kInodeTableBlock * kBlockSize +
           static_cast<uint64_t>(ino) * kInodeSize;
  }
  uint64_t BlockAddr(uint64_t block) const { return block * kBlockSize; }

  common::StatusOr<InodeState*> GetState(uint32_t ino);
  common::StatusOr<InodeState*> GetDirState(uint32_t ino);

  common::StatusOr<uint32_t> AllocInode();
  common::StatusOr<uint32_t> AllocBlock();
  void FreeBlockDeferred(uint32_t block);

  // Maps a file block to its disk block through the extent list (0 = hole).
  uint32_t MapBlock(const InodeState& st, uint32_t fb) const;
  // Adds fb -> disk to the extent map, merging adjacent runs; fails with
  // kNoSpace when the file would exceed kMaxExtents runs.
  common::Status AddMapping(InodeState& st, uint32_t fb, uint32_t disk);
  // Re-emits the inode's extent list into the CIL after any mapping change.
  void LogExtents(uint32_t ino, const InodeState& st);

  // ---- CIL / logging. ----
  void LogSetField(uint32_t ino, uint64_t field, uint64_t value);
  void LogDentry(uint32_t block, uint32_t slot, const std::string& name,
                 uint32_t target);
  void LogClearDentry(uint32_t block, uint32_t slot);
  void ApplyItem(const LogItem& item);

  common::StatusOr<DentryLoc> FindFreeSlot(InodeState& dir_state, uint32_t dir);

  common::Status RemoveCommon(uint32_t dir, const std::string& name,
                              bool want_dir);
  common::Status ZeroGapCached(uint32_t ino, uint64_t old_size);

  // Commits the CIL (and the target's data; all data for sync).
  common::Status Commit(uint32_t ino, bool all_data);
  // Forces a checkpoint when the CIL nears the log capacity.
  common::Status MaybeCheckpoint();
  common::Status ReplayLog();
  common::Status ScanAndBuild();

  pmem::Pm* pm_;
  bool mounted_ = false;
  uint64_t total_blocks_ = 0;
  uint64_t log_seq_ = 1;

  std::vector<InodeState> inodes_;
  std::vector<LogItem> cil_;  // the delayed-logging committed item list
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint8_t>> dirty_data_;
  std::vector<uint32_t> free_blocks_;
  std::vector<uint32_t> pending_free_;
};

}  // namespace xfsdax

#endif  // CHIPMUNK_FS_XFSDAX_XFSDAX_H_
