// Ext4DaxFs: an ext4-DAX-like file system with weak crash-consistency
// guarantees (§2): updates land in a DRAM page/metadata cache and only become
// durable through fsync/fdatasync/sync, which run an ordered-mode jbd2-style
// commit — file data first, then a journal transaction containing every dirty
// metadata block, then the in-place checkpoint.
//
// Like the real system, fsync(A) commits *all* pending metadata (the journal
// is global) but only A's data: other files can end up with sizes ahead of
// their data after a crash, which is exactly the behaviour the weak-mode
// checker allows. No bugs are injected here (§4.4 attributes the absence of
// findings to the maturity of the ext4 code base).
#ifndef CHIPMUNK_FS_EXT4DAX_EXT4DAX_H_
#define CHIPMUNK_FS_EXT4DAX_EXT4DAX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/pmem/pm.h"
#include "src/vfs/filesystem.h"

namespace ext4dax {

inline constexpr uint64_t kMagic = 0x45585434444158ull;  // "EXT4DAX"
inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint32_t kNumInodes = 256;
inline constexpr uint32_t kRootIno = 1;
inline constexpr uint32_t kMaxNameLen = 19;

// Block indices within the file-system region.
inline constexpr uint64_t kJournalHeaderBlock = 1;
inline constexpr uint64_t kJournalDataBlock = 2;
inline constexpr uint64_t kJournalBlocks = 64;
inline constexpr uint64_t kInodeTableBlock = kJournalDataBlock + kJournalBlocks;
inline constexpr uint64_t kInodeTableBlocks = 8;
inline constexpr uint64_t kDataStartBlock = kInodeTableBlock + kInodeTableBlocks;

inline constexpr uint64_t kInodeSize = 128;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
inline constexpr uint32_t kDirectPtrs = 10;

// On-media inode field offsets (all 8-byte words).
inline constexpr uint64_t kInoWord0 = 0;  // valid | type | links
inline constexpr uint64_t kInoSize = 8;
inline constexpr uint64_t kInoDirect = 16;
inline constexpr uint64_t kInoIndirect = 16 + 8 * kDirectPtrs;
inline constexpr uint64_t kInoXattr = kInoIndirect + 8;  // xattr block ptr
inline constexpr uint64_t kPtrsPerBlock = kBlockSize / 8;
inline constexpr uint64_t kMaxFileBlocks = kDirectPtrs + kPtrsPerBlock;

inline constexpr uint64_t kDentrySize = 64;
inline constexpr uint64_t kDentriesPerBlock = kBlockSize / kDentrySize;

// Extended-attribute storage: one block per inode, fixed-size slots.
inline constexpr uint64_t kXattrSlotSize = 128;
inline constexpr uint32_t kXattrSlotsPerBlock = kBlockSize / kXattrSlotSize;
inline constexpr size_t kXattrMaxName = 28;
inline constexpr size_t kXattrMaxValue = 92;

struct Ext4Options {
  // Size of the file-system region in bytes; 0 = the whole device. SplitFS
  // reserves the remainder of the device for its staging area and op-log.
  uint64_t fs_size = 0;
};

class Ext4DaxFs : public vfs::FileSystem {
 public:
  Ext4DaxFs(pmem::Pm* pm, Ext4Options options) : pm_(pm), options_(options) {}

  std::string Name() const override { return "ext4dax"; }
  vfs::CrashGuarantees Guarantees() const override {
    return vfs::CrashGuarantees{false, false, false};
  }

  common::Status Mkfs() override;
  common::Status Mount() override;
  common::Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override;
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override;
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override;
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override;
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override;

  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override;
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override;
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override;
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override;
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override;

  common::Status SetXattr(vfs::InodeNum ino, const std::string& name,
                          const std::vector<uint8_t>& value) override;
  common::StatusOr<std::vector<uint8_t>> GetXattr(
      vfs::InodeNum ino, const std::string& name) override;
  common::Status RemoveXattr(vfs::InodeNum ino,
                             const std::string& name) override;
  common::StatusOr<std::vector<std::string>> ListXattrs(
      vfs::InodeNum ino) override;

  // The weak-guarantee persistence points.
  common::Status Fsync(vfs::InodeNum ino) override;
  common::Status SyncAll() override;

 private:
  struct DentryLoc {
    uint64_t block = 0;  // media block index (within the fs region)
    uint32_t slot = 0;
  };
  struct DirState {
    std::map<std::string, DentryLoc> entries;
  };

  uint64_t BlockAddr(uint64_t block) const { return block * kBlockSize; }
  uint64_t InodeBlock(uint32_t ino) const {
    return kInodeTableBlock + ino / kInodesPerBlock;
  }
  uint64_t InodeByteInBlock(uint32_t ino) const {
    return static_cast<uint64_t>(ino % kInodesPerBlock) * kInodeSize;
  }

  // ---- Cached block access. ----
  // Reads a whole block through the metadata cache.
  std::vector<uint8_t> ReadBlockCached(uint64_t block) const;
  // Returns the mutable cached copy, faulting it in on first touch.
  std::vector<uint8_t>& BlockForWrite(uint64_t block);

  uint64_t LoadInodeWord(uint32_t ino, uint64_t field) const;
  void StoreInodeWord(uint32_t ino, uint64_t field, uint64_t value);

  uint64_t LoadPtr(uint32_t ino, uint64_t fb) const;
  common::Status SetPtr(uint32_t ino, uint64_t fb, uint64_t block,
                        bool alloc_indirect);

  common::Status CheckIno(uint32_t ino) const;
  common::StatusOr<uint32_t> AllocInode() const;
  common::StatusOr<uint64_t> AllocBlock();
  void FreeBlockDeferred(uint64_t block);

  common::StatusOr<DentryLoc> FindFreeSlot(uint32_t dir);
  void WriteDentry(const DentryLoc& loc, const std::string& name,
                   uint32_t ino);
  void ClearDentry(const DentryLoc& loc);
  uint32_t DentryIno(const DentryLoc& loc) const;

  common::Status RemoveCommon(uint32_t dir, const std::string& name,
                              bool want_dir);
  // Finds the slot holding `name` in the inode's xattr block (block 0 = no
  // xattr block). free_slot receives the first empty slot, if any.
  struct XattrLoc {
    uint64_t block = 0;
    int slot = -1;       // slot holding the name, -1 if absent
    int free_slot = -1;  // first free slot, -1 if full
  };
  XattrLoc FindXattr(uint32_t ino, const std::string& name) const;
  common::Status ScrubBeyond(uint32_t ino, uint64_t new_size);
  // Zeroes the cached stale bytes past `old_size` in its boundary page;
  // called whenever the file grows past a previous unaligned size.
  common::Status ZeroGap(uint32_t ino, uint64_t old_size);

  // Writes `ino`'s dirty data pages to media, then commits every dirty
  // metadata block through the journal. ino == 0 commits metadata only;
  // `all_data` flushes every file's data (sync).
  common::Status Commit(uint32_t ino, bool all_data);
  common::Status ReplayJournal();

  pmem::Pm* pm_;
  Ext4Options options_;
  bool mounted_ = false;

  uint64_t total_blocks_ = 0;
  uint64_t journal_seq_ = 1;

  // DRAM caches.
  mutable std::map<uint64_t, std::vector<uint8_t>> dirty_meta_;
  std::map<uint32_t, std::map<uint64_t, std::vector<uint8_t>>> dirty_data_;
  std::map<uint32_t, DirState> dirs_;
  std::vector<uint64_t> free_blocks_;
  std::vector<uint64_t> pending_free_;  // released when the next tx commits
};

}  // namespace ext4dax

#endif  // CHIPMUNK_FS_EXT4DAX_EXT4DAX_H_
