#include "src/fs/ext4dax/ext4dax.h"

#include <algorithm>
#include <cstring>

#include "src/common/coverage.h"

namespace ext4dax {

using common::Status;
using common::StatusOr;
using vfs::FileType;
using vfs::InodeNum;

namespace {

uint64_t PackWord0(uint8_t valid, uint8_t type, uint32_t links) {
  return static_cast<uint64_t>(valid) | (static_cast<uint64_t>(type) << 8) |
         (static_cast<uint64_t>(links) << 32);
}
uint8_t Word0Valid(uint64_t w) { return static_cast<uint8_t>(w); }
uint8_t Word0Type(uint64_t w) { return static_cast<uint8_t>(w >> 8); }
uint32_t Word0Links(uint64_t w) { return static_cast<uint32_t>(w >> 32); }

struct Dentry {
  uint8_t in_use = 0;
  uint8_t name_len = 0;
  uint16_t pad = 0;
  uint32_t ino = 0;
  char name[24] = {};
  uint8_t reserved[32] = {};
};
static_assert(sizeof(Dentry) == kDentrySize, "dentry size");

struct Superblock {
  uint64_t magic = 0;
  uint64_t fs_size = 0;
  uint64_t total_blocks = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Cached block access.
// ---------------------------------------------------------------------------

std::vector<uint8_t> Ext4DaxFs::ReadBlockCached(uint64_t block) const {
  auto it = dirty_meta_.find(block);
  if (it != dirty_meta_.end()) {
    return it->second;
  }
  return pm_->ReadVec(BlockAddr(block), kBlockSize);
}

std::vector<uint8_t>& Ext4DaxFs::BlockForWrite(uint64_t block) {
  auto it = dirty_meta_.find(block);
  if (it == dirty_meta_.end()) {
    it = dirty_meta_.emplace(block, pm_->ReadVec(BlockAddr(block), kBlockSize))
             .first;
  }
  return it->second;
}

uint64_t Ext4DaxFs::LoadInodeWord(uint32_t ino, uint64_t field) const {
  std::vector<uint8_t> block = ReadBlockCached(InodeBlock(ino));
  uint64_t value = 0;
  std::memcpy(&value, block.data() + InodeByteInBlock(ino) + field, 8);
  return value;
}

void Ext4DaxFs::StoreInodeWord(uint32_t ino, uint64_t field, uint64_t value) {
  std::vector<uint8_t>& block = BlockForWrite(InodeBlock(ino));
  std::memcpy(block.data() + InodeByteInBlock(ino) + field, &value, 8);
}

uint64_t Ext4DaxFs::LoadPtr(uint32_t ino, uint64_t fb) const {
  if (fb < kDirectPtrs) {
    return LoadInodeWord(ino, kInoDirect + fb * 8);
  }
  if (fb >= kMaxFileBlocks) {
    return 0;
  }
  uint64_t indirect = LoadInodeWord(ino, kInoIndirect);
  if (indirect == 0) {
    return 0;
  }
  std::vector<uint8_t> block = ReadBlockCached(indirect);
  uint64_t value = 0;
  std::memcpy(&value, block.data() + (fb - kDirectPtrs) * 8, 8);
  return value;
}

Status Ext4DaxFs::SetPtr(uint32_t ino, uint64_t fb, uint64_t block,
                         bool alloc_indirect) {
  if (fb < kDirectPtrs) {
    StoreInodeWord(ino, kInoDirect + fb * 8, block);
    return common::OkStatus();
  }
  if (fb >= kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t indirect = LoadInodeWord(ino, kInoIndirect);
  if (indirect == 0) {
    if (!alloc_indirect) {
      return common::OkStatus();
    }
    ASSIGN_OR_RETURN(indirect, AllocBlock());
    std::vector<uint8_t>& fresh = BlockForWrite(indirect);
    std::fill(fresh.begin(), fresh.end(), 0);
    StoreInodeWord(ino, kInoIndirect, indirect);
  }
  std::vector<uint8_t>& iblock = BlockForWrite(indirect);
  std::memcpy(iblock.data() + (fb - kDirectPtrs) * 8, &block, 8);
  return common::OkStatus();
}

Status Ext4DaxFs::CheckIno(uint32_t ino) const {
  if (!mounted_) {
    return common::NotMounted();
  }
  if (ino == 0 || ino >= kNumInodes) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  if (Word0Valid(LoadInodeWord(ino, kInoWord0)) == 0) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  return common::OkStatus();
}

StatusOr<uint32_t> Ext4DaxFs::AllocInode() const {
  for (uint32_t ino = 2; ino < kNumInodes; ++ino) {
    if (Word0Valid(LoadInodeWord(ino, kInoWord0)) == 0) {
      return ino;
    }
  }
  return common::NoSpace("inode table full");
}

StatusOr<uint64_t> Ext4DaxFs::AllocBlock() {
  if (free_blocks_.empty()) {
    return common::NoSpace("no free blocks");
  }
  uint64_t block = free_blocks_.back();
  free_blocks_.pop_back();
  return block;
}

void Ext4DaxFs::FreeBlockDeferred(uint64_t block) {
  // Freed blocks must not be reused until the transaction that frees them
  // commits, or ordered-mode data writes could land in still-referenced
  // blocks.
  pending_free_.push_back(block);
}

// ---------------------------------------------------------------------------
// Format / mount / journal.
// ---------------------------------------------------------------------------

Status Ext4DaxFs::Mkfs() {
  uint64_t fs_size = options_.fs_size == 0 ? pm_->size() : options_.fs_size;
  if (fs_size > pm_->size()) {
    return common::Invalid("fs region exceeds device");
  }
  uint64_t total_blocks = fs_size / kBlockSize;
  if (total_blocks < kDataStartBlock + 16) {
    return common::Invalid("device too small for ext4dax");
  }
  mounted_ = false;
  for (uint64_t b = 0; b < kDataStartBlock; ++b) {
    pm_->MemsetNt(BlockAddr(b), 0, kBlockSize);
  }
  pm_->Fence();
  Superblock sb;
  sb.magic = kMagic;
  sb.fs_size = fs_size;
  sb.total_blocks = total_blocks;
  pm_->Memcpy(0, &sb, sizeof(sb));
  pm_->FlushBuffer(0, sizeof(sb));
  uint64_t root_addr = BlockAddr(InodeBlock(kRootIno)) +
                       InodeByteInBlock(kRootIno) + kInoWord0;
  pm_->Store<uint64_t>(root_addr,
                       PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  pm_->FlushBuffer(root_addr, 8);
  pm_->Fence();
  return common::OkStatus();
}

Status Ext4DaxFs::ReplayJournal() {
  uint64_t header = BlockAddr(kJournalHeaderBlock);
  if (pm_->Load<uint64_t>(header) == 0) {
    return common::OkStatus();
  }
  CHIPMUNK_COV();
  uint64_t n = pm_->Load<uint64_t>(header + 8);
  if (n > kJournalBlocks) {
    return common::Corruption("journal block count out of range");
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t tag = pm_->Load<uint64_t>(header + 24 + i * 8);
    if (tag >= total_blocks_) {
      return common::Corruption("journal tag out of range");
    }
    std::vector<uint8_t> data =
        pm_->ReadVec(BlockAddr(kJournalDataBlock + i), kBlockSize);
    pm_->MemcpyNt(BlockAddr(tag), data.data(), data.size());
  }
  pm_->Fence();
  pm_->StoreFlush<uint64_t>(header, 0);
  pm_->Fence();
  return common::OkStatus();
}

Status Ext4DaxFs::Mount() {
  mounted_ = false;
  dirty_meta_.clear();
  dirty_data_.clear();
  dirs_.clear();
  free_blocks_.clear();
  pending_free_.clear();

  Superblock sb;
  pm_->ReadInto(0, &sb, sizeof(sb));
  if (sb.magic != kMagic) {
    return common::Corruption("bad superblock magic");
  }
  uint64_t fs_size = options_.fs_size == 0 ? pm_->size() : options_.fs_size;
  if (sb.fs_size != fs_size) {
    return common::Corruption("superblock geometry mismatch");
  }
  total_blocks_ = sb.total_blocks;

  RETURN_IF_ERROR(ReplayJournal());

  // Rebuild directory maps and the free list by walking the inode table.
  std::set<uint64_t> used;
  auto mark = [&](uint64_t block) -> Status {
    if (block < kDataStartBlock || block >= total_blocks_) {
      return common::Corruption("pointer outside the data region");
    }
    if (!used.insert(block).second) {
      return common::Corruption("block referenced twice");
    }
    return common::OkStatus();
  };
  for (uint32_t ino = 1; ino < kNumInodes; ++ino) {
    uint64_t w0 = LoadInodeWord(ino, kInoWord0);
    if (Word0Valid(w0) == 0) {
      continue;
    }
    FileType type = static_cast<FileType>(Word0Type(w0));
    if (type != FileType::kRegular && type != FileType::kDirectory) {
      return common::Corruption("inode with invalid type");
    }
    uint64_t indirect = LoadInodeWord(ino, kInoIndirect);
    uint64_t xattr_block = LoadInodeWord(ino, kInoXattr);
    if (xattr_block != 0) {
      RETURN_IF_ERROR(mark(xattr_block));
    }
    for (uint64_t fb = 0; fb < kDirectPtrs; ++fb) {
      uint64_t block = LoadInodeWord(ino, kInoDirect + fb * 8);
      if (block != 0) {
        RETURN_IF_ERROR(mark(block));
      }
    }
    if (indirect != 0) {
      RETURN_IF_ERROR(mark(indirect));
      std::vector<uint8_t> iblock = ReadBlockCached(indirect);
      for (uint64_t i = 0; i < kPtrsPerBlock; ++i) {
        uint64_t block = 0;
        std::memcpy(&block, iblock.data() + i * 8, 8);
        if (block != 0) {
          RETURN_IF_ERROR(mark(block));
        }
      }
    }
    if (type == FileType::kDirectory) {
      DirState& ds = dirs_[ino];
      for (uint64_t fb = 0; fb < kDirectPtrs; ++fb) {
        uint64_t block = LoadInodeWord(ino, kInoDirect + fb * 8);
        if (block == 0) {
          continue;
        }
        std::vector<uint8_t> dblock = ReadBlockCached(block);
        for (uint32_t slot = 0; slot < kDentriesPerBlock; ++slot) {
          Dentry d;
          std::memcpy(&d, dblock.data() + slot * kDentrySize, sizeof(d));
          if (d.in_use == 0) {
            continue;
          }
          if (d.ino == 0 || d.ino >= kNumInodes ||
              Word0Valid(LoadInodeWord(d.ino, kInoWord0)) == 0) {
            return common::Corruption("dentry references invalid inode");
          }
          std::string name(d.name, std::min<size_t>(d.name_len, sizeof(d.name)));
          ds.entries[name] = DentryLoc{block, slot};
        }
      }
    }
  }
  if (Word0Valid(LoadInodeWord(kRootIno, kInoWord0)) == 0) {
    return common::Corruption("root inode missing");
  }
  for (uint64_t b = kDataStartBlock; b < total_blocks_; ++b) {
    if (used.count(b) == 0) {
      free_blocks_.push_back(b);
    }
  }
  if (pm_->faulted()) {
    return common::Status(pm_->fault());
  }
  mounted_ = true;
  return common::OkStatus();
}

Status Ext4DaxFs::Unmount() {
  if (mounted_) {
    RETURN_IF_ERROR(Commit(0, /*all_data=*/true));
  }
  mounted_ = false;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// Extended attributes (per-inode xattr block, journaled like all metadata).
// ---------------------------------------------------------------------------

namespace {
struct XattrSlot {
  uint8_t in_use = 0;
  uint8_t name_len = 0;
  uint16_t value_len = 0;
  uint8_t pad[4] = {};
  char name[kXattrMaxName] = {};
  uint8_t value[kXattrMaxValue] = {};
};
static_assert(sizeof(XattrSlot) == kXattrSlotSize, "xattr slot size");
}  // namespace

Ext4DaxFs::XattrLoc Ext4DaxFs::FindXattr(uint32_t ino,
                                         const std::string& name) const {
  XattrLoc loc;
  loc.block = LoadInodeWord(ino, kInoXattr);
  if (loc.block == 0) {
    return loc;
  }
  std::vector<uint8_t> block = ReadBlockCached(loc.block);
  for (uint32_t i = 0; i < kXattrSlotsPerBlock; ++i) {
    XattrSlot slot;
    std::memcpy(&slot, block.data() + i * kXattrSlotSize, sizeof(slot));
    if (slot.in_use == 0) {
      if (loc.free_slot < 0) {
        loc.free_slot = static_cast<int>(i);
      }
      continue;
    }
    if (std::string(slot.name, std::min<size_t>(slot.name_len,
                                                sizeof(slot.name))) == name) {
      loc.slot = static_cast<int>(i);
    }
  }
  return loc;
}

Status Ext4DaxFs::SetXattr(InodeNum ino_in, const std::string& name,
                           const std::vector<uint8_t>& value) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (name.empty() || name.size() > kXattrMaxName ||
      value.size() > kXattrMaxValue) {
    return common::Invalid("xattr name/value too large");
  }
  XattrLoc loc = FindXattr(ino, name);
  if (loc.block == 0) {
    ASSIGN_OR_RETURN(loc.block, AllocBlock());
    std::vector<uint8_t>& fresh = BlockForWrite(loc.block);
    std::fill(fresh.begin(), fresh.end(), 0);
    StoreInodeWord(ino, kInoXattr, loc.block);
    loc.free_slot = 0;
  }
  int target = loc.slot >= 0 ? loc.slot : loc.free_slot;
  if (target < 0) {
    return common::NoSpace("xattr table full");
  }
  XattrSlot slot;
  slot.in_use = 1;
  slot.name_len = static_cast<uint8_t>(name.size());
  slot.value_len = static_cast<uint16_t>(value.size());
  std::memcpy(slot.name, name.data(), name.size());
  std::memcpy(slot.value, value.data(), value.size());
  std::vector<uint8_t>& block = BlockForWrite(loc.block);
  std::memcpy(block.data() + target * kXattrSlotSize, &slot, sizeof(slot));
  return common::OkStatus();
}

StatusOr<std::vector<uint8_t>> Ext4DaxFs::GetXattr(InodeNum ino_in,
                                                   const std::string& name) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  XattrLoc loc = FindXattr(ino, name);
  if (loc.slot < 0) {
    return common::NotFound(name);
  }
  std::vector<uint8_t> block = ReadBlockCached(loc.block);
  XattrSlot slot;
  std::memcpy(&slot, block.data() + loc.slot * kXattrSlotSize, sizeof(slot));
  return std::vector<uint8_t>(slot.value, slot.value + slot.value_len);
}

Status Ext4DaxFs::RemoveXattr(InodeNum ino_in, const std::string& name) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  XattrLoc loc = FindXattr(ino, name);
  if (loc.slot < 0) {
    return common::NotFound(name);
  }
  std::vector<uint8_t>& block = BlockForWrite(loc.block);
  std::memset(block.data() + loc.slot * kXattrSlotSize, 0, kXattrSlotSize);
  return common::OkStatus();
}

StatusOr<std::vector<std::string>> Ext4DaxFs::ListXattrs(InodeNum ino_in) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  std::vector<std::string> names;
  uint64_t xblock = LoadInodeWord(ino, kInoXattr);
  if (xblock == 0) {
    return names;
  }
  std::vector<uint8_t> block = ReadBlockCached(xblock);
  for (uint32_t i = 0; i < kXattrSlotsPerBlock; ++i) {
    XattrSlot slot;
    std::memcpy(&slot, block.data() + i * kXattrSlotSize, sizeof(slot));
    if (slot.in_use != 0) {
      names.emplace_back(slot.name,
                         std::min<size_t>(slot.name_len, sizeof(slot.name)));
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// The commit path (fsync/sync).
// ---------------------------------------------------------------------------

Status Ext4DaxFs::Commit(uint32_t ino, bool all_data) {
  // Ordered mode: file data reaches media before the metadata that
  // references it commits.
  auto flush_data = [&](uint32_t target) {
    auto it = dirty_data_.find(target);
    if (it == dirty_data_.end()) {
      return;
    }
    for (const auto& [fb, buf] : it->second) {
      uint64_t block = LoadPtr(target, fb);
      if (block != 0) {
        pm_->MemcpyNt(BlockAddr(block), buf.data(), buf.size());
      }
    }
    dirty_data_.erase(it);
  };
  if (all_data) {
    std::vector<uint32_t> files;
    for (const auto& [target, pages] : dirty_data_) {
      files.push_back(target);
    }
    for (uint32_t target : files) {
      flush_data(target);
    }
  } else if (ino != 0) {
    flush_data(ino);
  }
  pm_->Fence();

  if (!dirty_meta_.empty()) {
    if (dirty_meta_.size() > kJournalBlocks) {
      return common::NoSpace("journal too small for transaction");
    }
    // Write the journal: data blocks, then tags + header, then commit.
    uint64_t header = BlockAddr(kJournalHeaderBlock);
    uint64_t i = 0;
    for (const auto& [block, buf] : dirty_meta_) {
      pm_->MemcpyNt(BlockAddr(kJournalDataBlock + i), buf.data(), buf.size());
      pm_->Store<uint64_t>(header + 24 + i * 8, block);
      ++i;
    }
    pm_->Store<uint64_t>(header + 8, i);
    pm_->Store<uint64_t>(header + 16, journal_seq_++);
    pm_->FlushBuffer(header + 8, 16 + i * 8);
    pm_->Fence();
    pm_->StoreFlush<uint64_t>(header, 1);  // commit record
    pm_->Fence();
    // Checkpoint in place.
    for (const auto& [block, buf] : dirty_meta_) {
      pm_->MemcpyNt(BlockAddr(block), buf.data(), buf.size());
    }
    pm_->Fence();
    pm_->StoreFlush<uint64_t>(header, 0);
    pm_->Fence();
    dirty_meta_.clear();
  }
  // Blocks freed by the just-committed transaction are now reusable.
  for (uint64_t block : pending_free_) {
    free_blocks_.push_back(block);
  }
  pending_free_.clear();
  return common::OkStatus();
}

Status Ext4DaxFs::Fsync(InodeNum ino) {
  RETURN_IF_ERROR(CheckIno(static_cast<uint32_t>(ino)));
  return Commit(static_cast<uint32_t>(ino), /*all_data=*/false);
}

Status Ext4DaxFs::SyncAll() {
  if (!mounted_) {
    return common::NotMounted();
  }
  return Commit(0, /*all_data=*/true);
}

// ---------------------------------------------------------------------------
// Directory helpers.
// ---------------------------------------------------------------------------

StatusOr<Ext4DaxFs::DentryLoc> Ext4DaxFs::FindFreeSlot(uint32_t dir) {
  for (uint64_t fb = 0; fb < kDirectPtrs; ++fb) {
    uint64_t block = LoadInodeWord(dir, kInoDirect + fb * 8);
    if (block == 0) {
      ASSIGN_OR_RETURN(block, AllocBlock());
      std::vector<uint8_t>& fresh = BlockForWrite(block);
      std::fill(fresh.begin(), fresh.end(), 0);
      StoreInodeWord(dir, kInoDirect + fb * 8, block);
      return DentryLoc{block, 0};
    }
    std::vector<uint8_t> dblock = ReadBlockCached(block);
    for (uint32_t slot = 0; slot < kDentriesPerBlock; ++slot) {
      if (dblock[slot * kDentrySize] == 0) {
        return DentryLoc{block, slot};
      }
    }
  }
  return common::NoSpace("directory full");
}

void Ext4DaxFs::WriteDentry(const DentryLoc& loc, const std::string& name,
                            uint32_t ino) {
  Dentry d;
  d.in_use = 1;
  d.name_len = static_cast<uint8_t>(name.size());
  d.ino = ino;
  std::memcpy(d.name, name.data(), std::min(name.size(), sizeof(d.name)));
  std::vector<uint8_t>& block = BlockForWrite(loc.block);
  std::memcpy(block.data() + loc.slot * kDentrySize, &d, sizeof(d));
}

void Ext4DaxFs::ClearDentry(const DentryLoc& loc) {
  std::vector<uint8_t>& block = BlockForWrite(loc.block);
  std::memset(block.data() + loc.slot * kDentrySize, 0, kDentrySize);
}

uint32_t Ext4DaxFs::DentryIno(const DentryLoc& loc) const {
  std::vector<uint8_t> block = ReadBlockCached(loc.block);
  Dentry d;
  std::memcpy(&d, block.data() + loc.slot * kDentrySize, sizeof(d));
  return d.ino;
}

// ---------------------------------------------------------------------------
// Namespace operations (DRAM mutations; durable only at commit).
// ---------------------------------------------------------------------------

StatusOr<InodeNum> Ext4DaxFs::Lookup(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckIno(dir));
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) {
    return common::NotDir();
  }
  auto entry = it->second.entries.find(name);
  if (entry == it->second.entries.end()) {
    return common::NotFound(name);
  }
  return static_cast<InodeNum>(DentryIno(entry->second));
}

StatusOr<InodeNum> Ext4DaxFs::Create(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? common::Invalid("empty name")
                        : Status(common::ErrorCode::kNameTooLong, name);
  }
  RETURN_IF_ERROR(CheckIno(dir));
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  if (dit->second.entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(dir));
  WriteDentry(loc, name, ino);
  StoreInodeWord(ino, kInoWord0,
                 PackWord0(1, static_cast<uint8_t>(FileType::kRegular), 1));
  StoreInodeWord(ino, kInoSize, 0);
  for (uint64_t i = 0; i < kDirectPtrs; ++i) {
    StoreInodeWord(ino, kInoDirect + i * 8, 0);
  }
  StoreInodeWord(ino, kInoIndirect, 0);
  StoreInodeWord(ino, kInoXattr, 0);
  dirs_[dir].entries[name] = loc;
  return static_cast<InodeNum>(ino);
}

StatusOr<InodeNum> Ext4DaxFs::Mkdir(InodeNum dir_in, const std::string& name) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? common::Invalid("empty name")
                        : Status(common::ErrorCode::kNameTooLong, name);
  }
  RETURN_IF_ERROR(CheckIno(dir));
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  if (dit->second.entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(dir));
  WriteDentry(loc, name, ino);
  StoreInodeWord(ino, kInoWord0,
                 PackWord0(1, static_cast<uint8_t>(FileType::kDirectory), 2));
  StoreInodeWord(ino, kInoSize, 0);
  for (uint64_t i = 0; i < kDirectPtrs; ++i) {
    StoreInodeWord(ino, kInoDirect + i * 8, 0);
  }
  StoreInodeWord(ino, kInoIndirect, 0);
  StoreInodeWord(ino, kInoXattr, 0);
  uint64_t parent_w0 = LoadInodeWord(dir, kInoWord0);
  StoreInodeWord(dir, kInoWord0,
                 PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                           Word0Links(parent_w0) + 1));
  dirs_[dir].entries[name] = loc;
  dirs_[ino];
  return static_cast<InodeNum>(ino);
}

Status Ext4DaxFs::ScrubBeyond(uint32_t ino, uint64_t new_size) {
  uint64_t keep = (new_size + kBlockSize - 1) / kBlockSize;
  uint64_t indirect = LoadInodeWord(ino, kInoIndirect);
  for (uint64_t fb = keep; fb < kMaxFileBlocks; ++fb) {
    if (fb >= kDirectPtrs && indirect == 0) {
      break;
    }
    uint64_t block = LoadPtr(ino, fb);
    if (block != 0) {
      RETURN_IF_ERROR(SetPtr(ino, fb, 0, false));
      FreeBlockDeferred(block);
    }
    auto dit = dirty_data_.find(ino);
    if (dit != dirty_data_.end()) {
      dit->second.erase(fb);
    }
  }
  if (indirect != 0 && keep <= kDirectPtrs) {
    StoreInodeWord(ino, kInoIndirect, 0);
    FreeBlockDeferred(indirect);
  }
  // Note: the stale bytes past new_size in the boundary page are NOT zeroed
  // here. Zeroing them would be an in-place data write that races the size
  // commit in ordered mode; instead ZeroGap() scrubs them lazily whenever
  // the file is extended (then a crash can only expose invisible zeroing).
  return common::OkStatus();
}

Status Ext4DaxFs::ZeroGap(uint32_t ino, uint64_t old_size) {
  if (old_size % kBlockSize == 0) {
    return common::OkStatus();
  }
  uint64_t fb = old_size / kBlockSize;
  auto& pages = dirty_data_[ino];
  auto pit = pages.find(fb);
  if (pit == pages.end()) {
    uint64_t block = LoadPtr(ino, fb);
    if (block == 0) {
      return common::OkStatus();  // hole: reads as zeros already
    }
    std::vector<uint8_t> buf(kBlockSize, 0);
    pm_->ReadInto(BlockAddr(block), buf.data(), kBlockSize);
    pit = pages.emplace(fb, std::move(buf)).first;
  }
  std::fill(pit->second.begin() + old_size % kBlockSize, pit->second.end(), 0);
  return common::OkStatus();
}

Status Ext4DaxFs::RemoveCommon(uint32_t dir, const std::string& name,
                               bool want_dir) {
  RETURN_IF_ERROR(CheckIno(dir));
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  auto eit = dit->second.entries.find(name);
  if (eit == dit->second.entries.end()) {
    return common::NotFound(name);
  }
  DentryLoc loc = eit->second;
  uint32_t child = DentryIno(loc);
  RETURN_IF_ERROR(CheckIno(child));
  uint64_t child_w0 = LoadInodeWord(child, kInoWord0);
  FileType type = static_cast<FileType>(Word0Type(child_w0));
  if (want_dir && type != FileType::kDirectory) {
    return common::NotDir(name);
  }
  if (!want_dir && type == FileType::kDirectory) {
    return common::IsDir(name);
  }
  if (want_dir && !dirs_[child].entries.empty()) {
    return common::NotEmpty(name);
  }
  uint32_t links = Word0Links(child_w0);
  ClearDentry(loc);
  if (want_dir || links <= 1) {
    RETURN_IF_ERROR(ScrubBeyond(child, 0));
    uint64_t xattr_block = LoadInodeWord(child, kInoXattr);
    if (xattr_block != 0) {
      StoreInodeWord(child, kInoXattr, 0);
      FreeBlockDeferred(xattr_block);
    }
    StoreInodeWord(child, kInoWord0, 0);
    dirty_data_.erase(child);
    dirs_.erase(child);
    if (want_dir) {
      uint64_t parent_w0 = LoadInodeWord(dir, kInoWord0);
      StoreInodeWord(dir, kInoWord0,
                     PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                               Word0Links(parent_w0) - 1));
    }
  } else {
    StoreInodeWord(child, kInoWord0,
                   PackWord0(1, static_cast<uint8_t>(FileType::kRegular),
                             links - 1));
  }
  dit->second.entries.erase(name);
  return common::OkStatus();
}

Status Ext4DaxFs::Unlink(InodeNum dir, const std::string& name) {
  return RemoveCommon(static_cast<uint32_t>(dir), name, false);
}

Status Ext4DaxFs::Rmdir(InodeNum dir, const std::string& name) {
  return RemoveCommon(static_cast<uint32_t>(dir), name, true);
}

Status Ext4DaxFs::Link(InodeNum target_in, InodeNum dir_in,
                       const std::string& name) {
  uint32_t target = static_cast<uint32_t>(target_in);
  uint32_t dir = static_cast<uint32_t>(dir_in);
  if (name.empty() || name.size() > kMaxNameLen) {
    return name.empty() ? common::Invalid("empty name")
                        : Status(common::ErrorCode::kNameTooLong, name);
  }
  RETURN_IF_ERROR(CheckIno(target));
  RETURN_IF_ERROR(CheckIno(dir));
  uint64_t target_w0 = LoadInodeWord(target, kInoWord0);
  if (static_cast<FileType>(Word0Type(target_w0)) != FileType::kRegular) {
    return common::IsDir(name);
  }
  auto dit = dirs_.find(dir);
  if (dit == dirs_.end()) {
    return common::NotDir();
  }
  if (dit->second.entries.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  ASSIGN_OR_RETURN(DentryLoc loc, FindFreeSlot(dir));
  WriteDentry(loc, name, target);
  StoreInodeWord(target, kInoWord0,
                 PackWord0(1, static_cast<uint8_t>(FileType::kRegular),
                           Word0Links(target_w0) + 1));
  dit->second.entries[name] = loc;
  return common::OkStatus();
}

Status Ext4DaxFs::Rename(InodeNum src_dir_in, const std::string& src_name,
                         InodeNum dst_dir_in, const std::string& dst_name) {
  uint32_t src_dir = static_cast<uint32_t>(src_dir_in);
  uint32_t dst_dir = static_cast<uint32_t>(dst_dir_in);
  if (dst_name.empty() || dst_name.size() > kMaxNameLen) {
    return dst_name.empty() ? common::Invalid("empty name")
                            : Status(common::ErrorCode::kNameTooLong, dst_name);
  }
  RETURN_IF_ERROR(CheckIno(src_dir));
  RETURN_IF_ERROR(CheckIno(dst_dir));
  auto sit = dirs_.find(src_dir);
  auto dit = dirs_.find(dst_dir);
  if (sit == dirs_.end() || dit == dirs_.end()) {
    return common::NotDir();
  }
  auto sloc_it = sit->second.entries.find(src_name);
  if (sloc_it == sit->second.entries.end()) {
    return common::NotFound(src_name);
  }
  DentryLoc src_loc = sloc_it->second;
  uint32_t src_ino = DentryIno(src_loc);
  RETURN_IF_ERROR(CheckIno(src_ino));
  const bool src_is_dir =
      static_cast<FileType>(Word0Type(LoadInodeWord(src_ino, kInoWord0))) ==
      FileType::kDirectory;

  auto dloc_it = dit->second.entries.find(dst_name);
  if (dloc_it != dit->second.entries.end()) {
    uint32_t victim = DentryIno(dloc_it->second);
    if (victim == src_ino) {
      return common::OkStatus();
    }
    RETURN_IF_ERROR(CheckIno(victim));
    FileType vtype =
        static_cast<FileType>(Word0Type(LoadInodeWord(victim, kInoWord0)));
    if (vtype == FileType::kDirectory) {
      if (!src_is_dir) {
        return common::IsDir(dst_name);
      }
      if (!dirs_[victim].entries.empty()) {
        return common::NotEmpty(dst_name);
      }
      RETURN_IF_ERROR(RemoveCommon(dst_dir, dst_name, true));
    } else {
      if (src_is_dir) {
        return common::NotDir(dst_name);
      }
      RETURN_IF_ERROR(RemoveCommon(dst_dir, dst_name, false));
    }
    dit = dirs_.find(dst_dir);
    sit = dirs_.find(src_dir);
  }
  ASSIGN_OR_RETURN(DentryLoc dst_loc, FindFreeSlot(dst_dir));
  WriteDentry(dst_loc, dst_name, src_ino);
  ClearDentry(src_loc);
  if (src_is_dir && src_dir != dst_dir) {
    uint64_t sw0 = LoadInodeWord(src_dir, kInoWord0);
    StoreInodeWord(src_dir, kInoWord0,
                   PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                             Word0Links(sw0) - 1));
    uint64_t dw0 = LoadInodeWord(dst_dir, kInoWord0);
    StoreInodeWord(dst_dir, kInoWord0,
                   PackWord0(1, static_cast<uint8_t>(FileType::kDirectory),
                             Word0Links(dw0) + 1));
  }
  sit->second.entries.erase(src_name);
  dit->second.entries[dst_name] = dst_loc;
  return common::OkStatus();
}

// ---------------------------------------------------------------------------
// File operations.
// ---------------------------------------------------------------------------

StatusOr<uint64_t> Ext4DaxFs::Read(InodeNum ino_in, uint64_t off, uint64_t len,
                                   uint8_t* out) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(LoadInodeWord(ino, kInoWord0))) !=
      FileType::kRegular) {
    return common::IsDir();
  }
  uint64_t size = LoadInodeWord(ino, kInoSize);
  if (off >= size || len == 0) {
    return uint64_t{0};
  }
  uint64_t n = std::min<uint64_t>(len, size - off);
  std::memset(out, 0, n);
  auto pages_it = dirty_data_.find(ino);
  uint64_t pos = off;
  while (pos < off + n) {
    uint64_t fb = pos / kBlockSize;
    uint64_t in_block = pos % kBlockSize;
    uint64_t chunk = std::min<uint64_t>(kBlockSize - in_block, off + n - pos);
    const std::vector<uint8_t>* cached = nullptr;
    if (pages_it != dirty_data_.end()) {
      auto pit = pages_it->second.find(fb);
      if (pit != pages_it->second.end()) {
        cached = &pit->second;
      }
    }
    if (cached != nullptr) {
      std::memcpy(out + (pos - off), cached->data() + in_block, chunk);
    } else {
      uint64_t block = LoadPtr(ino, fb);
      if (block != 0) {
        pm_->ReadInto(BlockAddr(block) + in_block, out + (pos - off), chunk);
      }
    }
    pos += chunk;
  }
  return n;
}

StatusOr<uint64_t> Ext4DaxFs::Write(InodeNum ino_in, uint64_t off,
                                    const uint8_t* data, uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(LoadInodeWord(ino, kInoWord0))) !=
      FileType::kRegular) {
    return common::IsDir();
  }
  if (len == 0) {
    return uint64_t{0};
  }
  uint64_t end = off + len;
  if ((end + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t old_size = LoadInodeWord(ino, kInoSize);
  if (end > old_size) {
    RETURN_IF_ERROR(ZeroGap(ino, old_size));
  }
  auto& pages = dirty_data_[ino];
  for (uint64_t fb = off / kBlockSize; fb <= (end - 1) / kBlockSize; ++fb) {
    uint64_t block_start = fb * kBlockSize;
    uint64_t from = std::max(off, block_start);
    uint64_t to = std::min(end, block_start + kBlockSize);
    auto pit = pages.find(fb);
    if (pit == pages.end()) {
      std::vector<uint8_t> buf(kBlockSize, 0);
      uint64_t block = LoadPtr(ino, fb);
      if (block != 0) {
        pm_->ReadInto(BlockAddr(block), buf.data(), kBlockSize);
      }
      pit = pages.emplace(fb, std::move(buf)).first;
    }
    std::memcpy(pit->second.data() + (from - block_start), data + (from - off),
                to - from);
    if (LoadPtr(ino, fb) == 0) {
      ASSIGN_OR_RETURN(uint64_t block, AllocBlock());
      RETURN_IF_ERROR(SetPtr(ino, fb, block, true));
    }
  }
  if (end > LoadInodeWord(ino, kInoSize)) {
    StoreInodeWord(ino, kInoSize, end);
  }
  return len;
}

Status Ext4DaxFs::Truncate(InodeNum ino_in, uint64_t new_size) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(LoadInodeWord(ino, kInoWord0))) !=
      FileType::kRegular) {
    return common::IsDir();
  }
  if ((new_size + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t old_size = LoadInodeWord(ino, kInoSize);
  if (new_size < old_size) {
    RETURN_IF_ERROR(ScrubBeyond(ino, new_size));
  } else if (new_size > old_size) {
    RETURN_IF_ERROR(ZeroGap(ino, old_size));
  }
  if (new_size != old_size) {
    StoreInodeWord(ino, kInoSize, new_size);
  }
  return common::OkStatus();
}

Status Ext4DaxFs::Fallocate(InodeNum ino_in, uint32_t mode, uint64_t off,
                            uint64_t len) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  if (static_cast<FileType>(Word0Type(LoadInodeWord(ino, kInoWord0))) !=
      FileType::kRegular) {
    return common::IsDir();
  }
  const bool keep_size = (mode & vfs::kFallocKeepSize) != 0;
  const bool punch_hole = (mode & vfs::kFallocPunchHole) != 0;
  const bool zero_range = (mode & vfs::kFallocZeroRange) != 0;
  if (punch_hole && !keep_size) {
    return common::Invalid("punch-hole requires keep-size");
  }
  uint64_t end = off + len;
  if ((end + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return common::NoSpace("file too large");
  }
  uint64_t old_size = LoadInodeWord(ino, kInoSize);

  if (punch_hole || zero_range) {
    // Zero existing bytes in range, through the page cache.
    auto& pages = dirty_data_[ino];
    for (uint64_t fb = off / kBlockSize; fb <= (end - 1) / kBlockSize; ++fb) {
      uint64_t block_start = fb * kBlockSize;
      uint64_t from = std::max(off, block_start);
      uint64_t to = std::min(end, block_start + kBlockSize);
      uint64_t block = LoadPtr(ino, fb);
      auto pit = pages.find(fb);
      if (pit == pages.end() && block == 0) {
        continue;
      }
      if (pit == pages.end()) {
        std::vector<uint8_t> buf(kBlockSize, 0);
        pm_->ReadInto(BlockAddr(block), buf.data(), kBlockSize);
        pit = pages.emplace(fb, std::move(buf)).first;
      }
      std::fill(pit->second.begin() + (from - block_start),
                pit->second.begin() + (to - block_start), 0);
    }
  }
  if (!punch_hole) {
    for (uint64_t fb = off / kBlockSize; fb <= (end - 1) / kBlockSize; ++fb) {
      if (LoadPtr(ino, fb) == 0) {
        ASSIGN_OR_RETURN(uint64_t block, AllocBlock());
        // Fresh blocks must read as zeros even without cached data.
        auto& pages = dirty_data_[ino];
        if (pages.find(fb) == pages.end()) {
          pages.emplace(fb, std::vector<uint8_t>(kBlockSize, 0));
        }
        RETURN_IF_ERROR(SetPtr(ino, fb, block, true));
      }
    }
  }
  if (!keep_size && end > old_size) {
    RETURN_IF_ERROR(ZeroGap(ino, old_size));
    StoreInodeWord(ino, kInoSize, end);
  }
  return common::OkStatus();
}

StatusOr<vfs::FsStat> Ext4DaxFs::GetAttr(InodeNum ino_in) {
  uint32_t ino = static_cast<uint32_t>(ino_in);
  RETURN_IF_ERROR(CheckIno(ino));
  uint64_t w0 = LoadInodeWord(ino, kInoWord0);
  vfs::FsStat st;
  st.ino = ino;
  st.type = static_cast<FileType>(Word0Type(w0));
  st.size = st.type == FileType::kRegular ? LoadInodeWord(ino, kInoSize) : 0;
  st.nlink = Word0Links(w0);
  return st;
}

StatusOr<std::vector<vfs::DirEntry>> Ext4DaxFs::ReadDir(InodeNum dir_in) {
  uint32_t dir = static_cast<uint32_t>(dir_in);
  RETURN_IF_ERROR(CheckIno(dir));
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) {
    return common::NotDir();
  }
  std::vector<vfs::DirEntry> out;
  for (const auto& [name, loc] : it->second.entries) {
    out.push_back(vfs::DirEntry{name, DentryIno(loc)});
  }
  return out;
}

}  // namespace ext4dax
