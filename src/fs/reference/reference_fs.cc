#include "src/fs/reference/reference_fs.h"

#include <algorithm>
#include <cstring>

namespace reffs {

using common::Status;
using common::StatusOr;
using vfs::FileType;
using vfs::InodeNum;

Status ReferenceFs::Mkfs() {
  inodes_.clear();
  next_ino_ = 2;
  Inode root;
  root.type = FileType::kDirectory;
  root.nlink = 2;
  inodes_[RootIno()] = std::move(root);
  mounted_ = false;
  return common::OkStatus();
}

Status ReferenceFs::Mount() {
  if (inodes_.find(RootIno()) == inodes_.end()) {
    return common::Corruption("no root inode; run Mkfs first");
  }
  mounted_ = true;
  return common::OkStatus();
}

Status ReferenceFs::Unmount() {
  mounted_ = false;
  return common::OkStatus();
}

StatusOr<ReferenceFs::Inode*> ReferenceFs::GetInode(InodeNum ino) {
  if (!mounted_) {
    return common::NotMounted();
  }
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return common::NotFound("inode " + std::to_string(ino));
  }
  return &it->second;
}

StatusOr<ReferenceFs::Inode*> ReferenceFs::GetDir(InodeNum ino) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type != FileType::kDirectory) {
    return common::NotDir();
  }
  return inode;
}

uint64_t ReferenceFs::UsedBytes() const {
  uint64_t used = 0;
  for (const auto& [ino, inode] : inodes_) {
    used += inode.content.size();
  }
  return used;
}

StatusOr<InodeNum> ReferenceFs::Lookup(InodeNum dir, const std::string& name) {
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) {
    return common::NotFound(name);
  }
  return it->second;
}

StatusOr<InodeNum> ReferenceFs::Create(InodeNum dir, const std::string& name) {
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  if (d->children.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  InodeNum ino = next_ino_++;
  Inode inode;
  inode.type = FileType::kRegular;
  inode.nlink = 1;
  inodes_[ino] = std::move(inode);
  inodes_[dir].children[name] = ino;
  return ino;
}

StatusOr<InodeNum> ReferenceFs::Mkdir(InodeNum dir, const std::string& name) {
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  if (d->children.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  InodeNum ino = next_ino_++;
  Inode inode;
  inode.type = FileType::kDirectory;
  inode.nlink = 2;
  inodes_[ino] = std::move(inode);
  inodes_[dir].children[name] = ino;
  inodes_[dir].nlink += 1;
  return ino;
}

Status ReferenceFs::Unlink(InodeNum dir, const std::string& name) {
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) {
    return common::NotFound(name);
  }
  InodeNum ino = it->second;
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type == FileType::kDirectory) {
    return common::IsDir(name);
  }
  d->children.erase(it);
  if (--inode->nlink == 0) {
    inodes_.erase(ino);
  }
  return common::OkStatus();
}

Status ReferenceFs::Rmdir(InodeNum dir, const std::string& name) {
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  auto it = d->children.find(name);
  if (it == d->children.end()) {
    return common::NotFound(name);
  }
  InodeNum ino = it->second;
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type != FileType::kDirectory) {
    return common::NotDir(name);
  }
  if (!inode->children.empty()) {
    return common::NotEmpty(name);
  }
  d->children.erase(it);
  d->nlink -= 1;
  inodes_.erase(ino);
  return common::OkStatus();
}

Status ReferenceFs::Link(InodeNum target, InodeNum dir,
                         const std::string& name) {
  ASSIGN_OR_RETURN(Inode * t, GetInode(target));
  if (t->type != FileType::kRegular) {
    return common::IsDir(name);
  }
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  if (d->children.count(name) != 0) {
    return common::AlreadyExists(name);
  }
  d->children[name] = target;
  t->nlink += 1;
  return common::OkStatus();
}

Status ReferenceFs::Rename(InodeNum src_dir, const std::string& src_name,
                           InodeNum dst_dir, const std::string& dst_name) {
  ASSIGN_OR_RETURN(Inode * sd, GetDir(src_dir));
  ASSIGN_OR_RETURN(Inode * dd, GetDir(dst_dir));
  auto sit = sd->children.find(src_name);
  if (sit == sd->children.end()) {
    return common::NotFound(src_name);
  }
  InodeNum src_ino = sit->second;
  ASSIGN_OR_RETURN(Inode * src, GetInode(src_ino));

  auto dit = dd->children.find(dst_name);
  if (dit != dd->children.end()) {
    InodeNum dst_ino = dit->second;
    if (dst_ino == src_ino) {
      return common::OkStatus();
    }
    ASSIGN_OR_RETURN(Inode * dst, GetInode(dst_ino));
    if (dst->type == FileType::kDirectory) {
      if (src->type != FileType::kDirectory) {
        return common::IsDir(dst_name);
      }
      if (!dst->children.empty()) {
        return common::NotEmpty(dst_name);
      }
      dd->nlink -= 1;
      inodes_.erase(dst_ino);
    } else {
      if (src->type == FileType::kDirectory) {
        return common::NotDir(dst_name);
      }
      if (--dst->nlink == 0) {
        inodes_.erase(dst_ino);
      }
    }
    dd = &inodes_[dst_dir];  // re-fetch: erase may have invalidated pointers
    sd = &inodes_[src_dir];
    src = &inodes_[src_ino];
  }
  dd->children[dst_name] = src_ino;
  sd->children.erase(src_name);
  if (src->type == FileType::kDirectory && src_dir != dst_dir) {
    sd->nlink -= 1;
    dd->nlink += 1;
  }
  return common::OkStatus();
}

StatusOr<uint64_t> ReferenceFs::Read(InodeNum ino, uint64_t off, uint64_t len,
                                     uint8_t* out) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (off >= inode->content.size()) {
    return uint64_t{0};
  }
  uint64_t n = std::min<uint64_t>(len, inode->content.size() - off);
  std::memcpy(out, inode->content.data() + off, n);
  return n;
}

StatusOr<uint64_t> ReferenceFs::Write(InodeNum ino, uint64_t off,
                                      const uint8_t* data, uint64_t len) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (capacity_bytes_ != 0) {
    uint64_t new_size = std::max<uint64_t>(inode->content.size(), off + len);
    uint64_t growth = new_size - inode->content.size();
    if (growth > 0 && UsedBytes() + growth > capacity_bytes_) {
      return common::NoSpace();
    }
  }
  if (off + len > inode->content.size()) {
    inode->content.resize(off + len, 0);
  }
  std::memcpy(inode->content.data() + off, data, len);
  return len;
}

Status ReferenceFs::Truncate(InodeNum ino, uint64_t new_size) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type != FileType::kRegular) {
    return common::IsDir();
  }
  if (capacity_bytes_ != 0 && new_size > inode->content.size() &&
      UsedBytes() + (new_size - inode->content.size()) > capacity_bytes_) {
    return common::NoSpace();
  }
  inode->content.resize(new_size, 0);
  return common::OkStatus();
}

Status ReferenceFs::Fallocate(InodeNum ino, uint32_t mode, uint64_t off,
                              uint64_t len) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->type != FileType::kRegular) {
    return common::IsDir();
  }
  const bool keep_size = (mode & vfs::kFallocKeepSize) != 0;
  const bool punch_hole = (mode & vfs::kFallocPunchHole) != 0;
  const bool zero_range = (mode & vfs::kFallocZeroRange) != 0;
  if (punch_hole && !keep_size) {
    return common::Invalid("punch-hole requires keep-size");
  }
  if (punch_hole || zero_range) {
    uint64_t end = std::min<uint64_t>(off + len, inode->content.size());
    for (uint64_t i = off; i < end; ++i) {
      inode->content[i] = 0;
    }
  }
  if (!keep_size && off + len > inode->content.size()) {
    if (capacity_bytes_ != 0 &&
        UsedBytes() + (off + len - inode->content.size()) > capacity_bytes_) {
      return common::NoSpace();
    }
    inode->content.resize(off + len, 0);
  }
  return common::OkStatus();
}

StatusOr<vfs::FsStat> ReferenceFs::GetAttr(InodeNum ino) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  vfs::FsStat st;
  st.ino = ino;
  st.type = inode->type;
  st.size = inode->type == FileType::kRegular ? inode->content.size() : 0;
  st.nlink = inode->nlink;
  return st;
}

StatusOr<std::vector<vfs::DirEntry>> ReferenceFs::ReadDir(InodeNum dir) {
  ASSIGN_OR_RETURN(Inode * d, GetDir(dir));
  std::vector<vfs::DirEntry> out;
  out.reserve(d->children.size());
  for (const auto& [name, ino] : d->children) {
    out.push_back(vfs::DirEntry{name, ino});
  }
  return out;
}

// The xattr limits shared with ext4dax (kept identical so differential
// tests agree on error behaviour).
Status ReferenceFs::SetXattr(InodeNum ino, const std::string& name,
                             const std::vector<uint8_t>& value) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (name.empty() || name.size() > 28 || value.size() > 92) {
    return common::Invalid("xattr name/value too large");
  }
  if (inode->xattrs.size() >= 32 && inode->xattrs.count(name) == 0) {
    return common::NoSpace("xattr table full");
  }
  inode->xattrs[name] = value;
  return common::OkStatus();
}

StatusOr<std::vector<uint8_t>> ReferenceFs::GetXattr(InodeNum ino,
                                                     const std::string& name) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  auto it = inode->xattrs.find(name);
  if (it == inode->xattrs.end()) {
    return common::NotFound(name);
  }
  return it->second;
}

Status ReferenceFs::RemoveXattr(InodeNum ino, const std::string& name) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  if (inode->xattrs.erase(name) == 0) {
    return common::NotFound(name);
  }
  return common::OkStatus();
}

StatusOr<std::vector<std::string>> ReferenceFs::ListXattrs(InodeNum ino) {
  ASSIGN_OR_RETURN(Inode * inode, GetInode(ino));
  std::vector<std::string> names;
  for (const auto& [name, value] : inode->xattrs) {
    names.push_back(name);
  }
  return names;
}

Status ReferenceFs::Fsync(InodeNum ino) {
  return GetInode(ino).status();
}

Status ReferenceFs::SyncAll() {
  if (!mounted_) {
    return common::NotMounted();
  }
  return common::OkStatus();
}

}  // namespace reffs
