// ReferenceFs: a trivially correct in-DRAM file system.
//
// Chipmunk's oracle (§3.3, "Testing crash states") runs the original workload
// on a fresh file-system instance and records the legal state of each file
// before and after every syscall. We use this DRAM implementation as that
// instance; it is also the baseline for differential testing of the PM file
// systems (same syscall in, same result out).
#ifndef CHIPMUNK_FS_REFERENCE_REFERENCE_FS_H_
#define CHIPMUNK_FS_REFERENCE_REFERENCE_FS_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/vfs/filesystem.h"

namespace reffs {

class ReferenceFs : public vfs::FileSystem {
 public:
  ReferenceFs() = default;

  std::string Name() const override { return "reference"; }
  vfs::CrashGuarantees Guarantees() const override {
    return vfs::CrashGuarantees{true, true, true};
  }

  common::Status Mkfs() override;
  common::Status Mount() override;
  common::Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  common::StatusOr<vfs::InodeNum> Lookup(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Create(vfs::InodeNum dir,
                                         const std::string& name) override;
  common::StatusOr<vfs::InodeNum> Mkdir(vfs::InodeNum dir,
                                        const std::string& name) override;
  common::Status Unlink(vfs::InodeNum dir, const std::string& name) override;
  common::Status Rmdir(vfs::InodeNum dir, const std::string& name) override;
  common::Status Link(vfs::InodeNum target, vfs::InodeNum dir,
                      const std::string& name) override;
  common::Status Rename(vfs::InodeNum src_dir, const std::string& src_name,
                        vfs::InodeNum dst_dir,
                        const std::string& dst_name) override;

  common::StatusOr<uint64_t> Read(vfs::InodeNum ino, uint64_t off,
                                  uint64_t len, uint8_t* out) override;
  common::StatusOr<uint64_t> Write(vfs::InodeNum ino, uint64_t off,
                                   const uint8_t* data, uint64_t len) override;
  common::Status Truncate(vfs::InodeNum ino, uint64_t new_size) override;
  common::Status Fallocate(vfs::InodeNum ino, uint32_t mode, uint64_t off,
                           uint64_t len) override;
  common::StatusOr<vfs::FsStat> GetAttr(vfs::InodeNum ino) override;
  common::StatusOr<std::vector<vfs::DirEntry>> ReadDir(
      vfs::InodeNum dir) override;

  common::Status SetXattr(vfs::InodeNum ino, const std::string& name,
                          const std::vector<uint8_t>& value) override;
  common::StatusOr<std::vector<uint8_t>> GetXattr(
      vfs::InodeNum ino, const std::string& name) override;
  common::Status RemoveXattr(vfs::InodeNum ino,
                             const std::string& name) override;
  common::StatusOr<std::vector<std::string>> ListXattrs(
      vfs::InodeNum ino) override;

  common::Status Fsync(vfs::InodeNum ino) override;
  common::Status SyncAll() override;

  // Capacity cap so differential tests against fixed-size PM devices agree on
  // ENOSPC behaviour. 0 = unlimited.
  void set_capacity_bytes(uint64_t cap) { capacity_bytes_ = cap; }

 private:
  struct Inode {
    vfs::FileType type = vfs::FileType::kNone;
    uint32_t nlink = 0;
    std::vector<uint8_t> content;              // regular files
    std::map<std::string, vfs::InodeNum> children;  // directories
    std::map<std::string, std::vector<uint8_t>> xattrs;
  };

  common::StatusOr<Inode*> GetInode(vfs::InodeNum ino);
  common::StatusOr<Inode*> GetDir(vfs::InodeNum ino);
  uint64_t UsedBytes() const;

  bool mounted_ = false;
  vfs::InodeNum next_ino_ = 2;
  std::unordered_map<vfs::InodeNum, Inode> inodes_;
  uint64_t capacity_bytes_ = 0;
};

}  // namespace reffs

#endif  // CHIPMUNK_FS_REFERENCE_REFERENCE_FS_H_
